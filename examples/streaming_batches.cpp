// Streaming ingestion, served live: one ingest thread folds arriving batches
// into shadow copies and publishes them as snapshot versions v2, v3, ...
// (serve::TableStore), while N reader threads hammer the same ServeEngine
// with a mixed marginal / conditional / pair-MI workload the whole time.
// Readers are never blocked by a publish — they pin whatever version the
// atomic snapshot swap hands them — and repeated queries within a version are
// answered from the sharded result cache.
//
// Watch two things converge: the MI estimates per published version (the
// drafting statistics stabilizing as m grows), and the cache hit rate (the
// fraction of reader traffic the version-keyed cache absorbs).
//
//   ./streaming_batches --batches 8 --batch-size 25000 --threads 4 --readers 2
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "data/generators.hpp"
#include "serve/serve_engine.hpp"
#include "serve/table_store.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace wfbn;

  CliParser cli("streaming_batches — serving queries while batches publish");
  cli.add_option("batches", "8", "Number of arriving batches");
  cli.add_option("batch-size", "25000", "Observations per batch");
  cli.add_option("variables", "10", "Binary variables");
  cli.add_option("threads", "4", "Builder threads (= table partitions)");
  cli.add_option("readers", "2", "Concurrent reader threads");
  cli.add_option("copy", "0.8", "Chain copy probability");
  cli.add_option("seed", "21", "Base seed (batch b uses seed+b)");
  if (!cli.parse(argc, argv)) return 0;

  const auto batches = static_cast<std::size_t>(cli.get_int("batches"));
  const auto batch_size = static_cast<std::size_t>(cli.get_int("batch-size"));
  const auto n = static_cast<std::size_t>(cli.get_int("variables"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const auto readers = static_cast<std::size_t>(cli.get_int("readers"));
  const double copy = cli.get_double("copy");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // Batch 1 builds version 1; the ingest thread publishes the rest.
  WaitFreeBuilderOptions options;
  options.threads = threads;
  serve::TableStore store(
      WaitFreeBuilder(options).build(
          generate_chain_correlated(batch_size, n, 2, copy, seed)),
      options);
  serve::ServeEngine engine(store);

  std::printf(
      "serving %zu reader(s) while %zu batches of %zu rows publish "
      "(n=%zu, chain copy=%.2f)\n\n",
      readers, batches, batch_size, n, copy);

  // Readers: a mixed workload over the live store until ingestion finishes.
  // Per-thread counters; the only shared state is the serving layer itself.
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> reader_queries(readers, 0);
  std::vector<std::uint64_t> reader_hits(readers, 0);
  std::vector<std::uint64_t> reader_versions(readers, 0);
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      std::uint64_t queries = 0, hits = 0, last_version = 0, versions_seen = 0;
      std::size_t tick = r;  // offset so readers don't issue in lockstep
      while (!done.load(std::memory_order_acquire)) {
        serve::ServeResult result;
        const std::size_t a = tick % n;
        const std::size_t b = (tick + 1) % n;
        switch (tick % 3) {
          case 0: {
            const std::size_t vars[] = {a};
            result = engine.marginal(vars);
            break;
          }
          case 1: {
            const std::size_t vars[] = {a};
            const Evidence evidence[] = {{b, 0}};
            result = engine.conditional(vars, evidence);
            break;
          }
          default:
            result = engine.pair_mi(a, b);
            break;
        }
        ++queries;
        if (result.cache_hit) ++hits;
        if (result.version != last_version) {
          last_version = result.version;
          ++versions_seen;
        }
        ++tick;
      }
      reader_queries[r] = queries;
      reader_hits[r] = hits;
      reader_versions[r] = versions_seen;
    });
  }

  // Ingest thread: publish the remaining batches, recording the drafting
  // statistics of every version through the same serving path the readers
  // use (so the convergence rows below also exercise the cache).
  TablePrinter table({"version", "total m", "distinct keys", "I(X0;X1)",
                      "I(X0;X2)", "shadow ms"});
  auto record_version = [&](double shadow_ms) {
    const serve::SnapshotPtr snap = store.current();
    table.add_row({std::to_string(snap->version()),
                   std::to_string(snap->table().sample_count()),
                   std::to_string(snap->table().distinct_keys()),
                   TablePrinter::fmt(engine.pair_mi(0, 1).values[0], 4),
                   TablePrinter::fmt(engine.pair_mi(0, 2).values[0], 4),
                   TablePrinter::fmt(shadow_ms, 2)});
  };
  std::thread ingest_thread([&] {
    record_version(0.0);  // version 1 (the initial build)
    for (std::size_t b = 2; b <= batches; ++b) {
      const Dataset batch =
          generate_chain_correlated(batch_size, n, 2, copy, seed + b);
      const serve::IngestStats stats = engine.ingest(batch);
      record_version(stats.shadow_seconds * 1e3);
    }
    done.store(true, std::memory_order_release);
  });

  ingest_thread.join();
  for (std::thread& t : reader_threads) t.join();

  table.print("MI convergence per published version (served live)");

  std::uint64_t total_queries = 0, total_hits = 0;
  for (std::size_t r = 0; r < readers; ++r) {
    total_queries += reader_queries[r];
    total_hits += reader_hits[r];
  }
  const serve::CacheStats cache = engine.cache_stats();
  std::printf("\nreader traffic while ingesting:\n");
  for (std::size_t r = 0; r < readers; ++r) {
    std::printf("  reader %zu: %llu queries, %llu cache hits, %llu versions\n",
                r, static_cast<unsigned long long>(reader_queries[r]),
                static_cast<unsigned long long>(reader_hits[r]),
                static_cast<unsigned long long>(reader_versions[r]));
  }
  std::printf(
      "  total: %llu queries, cache hit rate %.1f%% "
      "(%llu inserts, %llu invalidated on publish)\n",
      static_cast<unsigned long long>(total_queries),
      100.0 * (total_queries == 0
                   ? 0.0
                   : static_cast<double>(total_hits) /
                         static_cast<double>(total_queries)),
      static_cast<unsigned long long>(cache.insertions),
      static_cast<unsigned long long>(cache.invalidated_entries));

  std::printf(
      "\nExpected: I(X0;X1) > I(X0;X2) at every version (direct vs two-hop\n"
      "chain dependence), both stabilizing as m grows; every batch is folded\n"
      "into a shadow copy by the two-stage wait-free kernel and published\n"
      "through the wait-free snapshot cell — readers were never blocked.\n");
  return 0;
}
