// Streaming ingestion: training data arrives in batches, each folded into
// the same potential table with WaitFreeBuilder::append (the two-stage
// wait-free kernel over the existing partitions). After every batch, the
// drafting statistics are recomputed from the growing table — watch the MI
// estimates converge to their large-sample values.
//
//   ./streaming_batches --batches 8 --batch-size 25000 --threads 4
#include <cstdio>

#include "core/all_pairs_mi.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace wfbn;

  CliParser cli("streaming_batches — incremental wait-free table updates");
  cli.add_option("batches", "8", "Number of arriving batches");
  cli.add_option("batch-size", "25000", "Observations per batch");
  cli.add_option("variables", "10", "Binary variables");
  cli.add_option("threads", "4", "Worker threads (= table partitions)");
  cli.add_option("copy", "0.8", "Chain copy probability");
  cli.add_option("seed", "21", "Base seed (batch b uses seed+b)");
  if (!cli.parse(argc, argv)) return 0;

  const auto batches = static_cast<std::size_t>(cli.get_int("batches"));
  const auto batch_size = static_cast<std::size_t>(cli.get_int("batch-size"));
  const auto n = static_cast<std::size_t>(cli.get_int("variables"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const double copy = cli.get_double("copy");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  WaitFreeBuilderOptions options;
  options.threads = threads;
  WaitFreeBuilder builder(options);
  AllPairsMi all_pairs(AllPairsOptions{threads, AllPairsStrategy::kFused});

  std::printf("streaming %zu batches of %zu rows (n=%zu, chain copy=%.2f)\n\n",
              batches, batch_size, n, copy);
  TablePrinter table({"batch", "total m", "distinct keys", "I(X0;X1)",
                      "I(X0;X2)", "foreign keys routed"});

  // First batch builds the table; the rest are appended in place.
  PotentialTable potential =
      builder.build(generate_chain_correlated(batch_size, n, 2, copy, seed));
  for (std::size_t b = 1; b <= batches; ++b) {
    if (b > 1) {
      const Dataset batch =
          generate_chain_correlated(batch_size, n, 2, copy, seed + b);
      builder.append(batch, potential);
    }
    const MiMatrix mi = all_pairs.compute(potential);
    table.add_row({std::to_string(b),
                   std::to_string(potential.sample_count()),
                   std::to_string(potential.distinct_keys()),
                   TablePrinter::fmt(mi.at(0, 1), 4),
                   TablePrinter::fmt(mi.at(0, 2), 4),
                   TablePrinter::fmt(builder.stats().total_foreign_pushes())});
  }
  table.print("MI convergence as batches accumulate");

  std::printf(
      "\nExpected: I(X0;X1) > I(X0;X2) throughout (direct vs two-hop chain\n"
      "dependence), both stabilizing as m grows; every batch is folded with\n"
      "the same two-stage wait-free kernel (zero locks).\n");
  return 0;
}
