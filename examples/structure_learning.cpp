// End-to-end structure learning: sample a repository network (default ASIA),
// learn it back with any of the three learners built on the wait-free
// primitives — Cheng's three-phase algorithm, PC-stable, or BIC hill
// climbing — and compare the learned skeleton against the ground truth.
//
//   ./structure_learning --network alarm --learner cheng --samples 200000
#include <cstdio>

#include "bn/metrics.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "learn/cheng.hpp"
#include "learn/pc_stable.hpp"
#include "learn/score.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace wfbn;

void report(const char* learner, const BayesianNetwork& truth, const Dag& dag,
            double seconds) {
  const SkeletonMetrics m = compare_skeletons(dag.skeleton(), truth.dag().skeleton());
  std::printf(
      "\n[%s] %.1f ms — %zu edges, precision=%.3f recall=%.3f F1=%.3f "
      "(tp=%zu fp=%zu fn=%zu), SHD=%zu\n",
      learner, seconds * 1e3, dag.edge_count(), m.precision, m.recall, m.f1,
      m.true_positives, m.false_positives, m.false_negatives,
      structural_hamming_distance(dag, truth.dag()));
}

void print_edges(const BayesianNetwork& truth, const Dag& dag) {
  std::printf("learned edges (oriented where evidence allows):\n");
  for (const Edge& e : dag.edges()) {
    const bool correct = truth.dag().skeleton().has_edge(e.from, e.to);
    std::printf("  %s -> %s%s\n", truth.name(e.from).c_str(),
                truth.name(e.to).c_str(), correct ? "" : "  (spurious)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("structure_learning — learn a repository network from samples");
  cli.add_option("network", "asia",
                 "asia|cancer|earthquake|survey|sachs|child|alarm");
  cli.add_option("learner", "cheng", "cheng|pc|hillclimb|all");
  cli.add_option("samples", "200000", "Training samples to draw");
  cli.add_option("threads", "4", "Worker threads for the primitives");
  cli.add_option("epsilon", "0.003", "MI threshold (nats) for CI decisions");
  cli.add_option("seed", "7", "Sampling seed");
  cli.add_flag("edges", "Print the learned edge list");
  if (!cli.parse(argc, argv)) return 0;

  RepositoryNetwork which = RepositoryNetwork::kAsia;
  for (const RepositoryNetwork candidate : all_repository_networks()) {
    if (repository_network_name(candidate) == cli.get("network")) {
      which = candidate;
    }
  }
  const BayesianNetwork truth = load_network(which);
  std::printf("network: %s (%zu nodes, %zu edges)\n",
              repository_network_name(which).c_str(), truth.node_count(),
              truth.dag().edge_count());

  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const double epsilon = cli.get_double("epsilon");
  const Dataset data = forward_sample(
      truth, samples, static_cast<std::uint64_t>(cli.get_int("seed")), threads);
  std::printf("sampled %zu observations with %zu threads\n", samples, threads);

  const std::string learner = cli.get("learner");
  const bool all = learner == "all";
  Timer timer;

  if (all || learner == "cheng") {
    ChengOptions options;
    options.ci.threads = threads;
    options.ci.mi_threshold = epsilon;
    timer.reset();
    const ChengResult result = ChengLearner(options).learn(data);
    report("cheng", truth, result.oriented, timer.seconds());
    std::printf(
        "  phases: draft=%zu edges, thickening +%zu, thinning -%zu, CI "
        "tests=%llu\n",
        result.draft_edge_count, result.thickening_added,
        result.thinning_removed,
        static_cast<unsigned long long>(result.ci_tests));
    if (cli.get_bool("edges")) print_edges(truth, result.oriented);
  }
  if (all || learner == "pc") {
    PcStableOptions options;
    options.ci.threads = threads;
    options.ci.mi_threshold = epsilon;
    timer.reset();
    const PcStableResult result = PcStableLearner(options).learn(data);
    report("pc-stable", truth, result.oriented, timer.seconds());
    std::printf("  levels=%zu, CI tests=%llu\n", result.levels_run,
                static_cast<unsigned long long>(result.ci_tests));
    if (cli.get_bool("edges")) print_edges(truth, result.oriented);
  }
  if (all || learner == "hillclimb") {
    HillClimbOptions options;
    options.threads = threads;
    timer.reset();
    const HillClimbResult result = hill_climb_sparse(data, 5, options);
    report("hillclimb(BIC, top-5 MI candidates)", truth, result.dag,
           timer.seconds());
    std::printf("  moves=%zu, families evaluated=%llu (cache hits %llu)\n",
                result.moves,
                static_cast<unsigned long long>(result.families_evaluated),
                static_cast<unsigned long long>(result.cache_hits));
    if (cli.get_bool("edges")) print_edges(truth, result.dag);
  }
  return 0;
}
