// Quickstart: build a potential table from data with the wait-free primitive,
// marginalize it, and score pairwise dependence — the paper's phase-1
// pipeline in ~40 lines.
#include <cstdio>

#include "core/all_pairs_mi.hpp"
#include "core/info_theory.hpp"
#include "core/marginalizer.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"

int main() {
  using namespace wfbn;

  // 1. Training data: 100k observations of 8 binary variables where each
  //    variable copies its predecessor 85% of the time (a noisy chain).
  const Dataset data = generate_chain_correlated(100000, 8, 2, 0.85, 2024);
  std::printf("dataset: m=%zu samples, n=%zu variables\n", data.sample_count(),
              data.variable_count());

  // 2. Potential table via the wait-free construction primitive (4 workers).
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  std::printf("potential table: %zu distinct state strings across %zu partitions\n",
              table.distinct_keys(), table.partitions().partition_count());
  std::printf("stage-1 foreign keys routed through SPSC queues: %llu\n",
              static_cast<unsigned long long>(
                  builder.stats().total_foreign_pushes()));

  // 3. Marginalization primitive: P(X0, X1) and its entropy.
  const Marginalizer marginalizer(4);
  const std::size_t pair[] = {0, 1};
  const MarginalTable joint = marginalizer.marginalize(table, pair);
  std::printf("H(X0,X1) = %.4f nats, I(X0;X1) = %.4f nats\n", entropy(joint),
              mutual_information(joint));

  // 4. All-pairs MI (the drafting-phase statistics pass).
  AllPairsMi all_pairs(AllPairsOptions{4, AllPairsStrategy::kFused});
  const MiMatrix mi = all_pairs.compute(table);
  std::printf("\npairwise MI (adjacent chain pairs should dominate):\n");
  for (std::size_t i = 0; i < data.variable_count(); ++i) {
    for (std::size_t j = i + 1; j < data.variable_count(); ++j) {
      if (mi.at(i, j) > 0.05) {
        std::printf("  I(X%zu;X%zu) = %.4f\n", i, j, mi.at(i, j));
      }
    }
  }
  return 0;
}
