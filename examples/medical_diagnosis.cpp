// Medical-diagnosis workflow on the ASIA chest-clinic network: sample
// training records, build the potential table with the wait-free primitive,
// and answer diagnostic queries straight from data — then check them against
// the exact posterior from the generating network, and round-trip the
// network through the serialization layer.
//
//   ./medical_diagnosis --samples 300000 --threads 4
#include <cstdio>
#include <sstream>

#include "bn/inference.hpp"
#include "bn/io.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "core/query.hpp"
#include "core/wait_free_builder.hpp"
#include "util/cli.hpp"

using namespace wfbn;

int main(int argc, char** argv) {
  CliParser cli("medical_diagnosis — data-driven queries on the ASIA network");
  cli.add_option("samples", "300000", "Patient records to simulate");
  cli.add_option("threads", "4", "Worker threads");
  cli.add_option("seed", "12", "Sampling seed");
  if (!cli.parse(argc, argv)) return 0;

  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));

  std::printf("simulating %zu patient records from the chest clinic...\n",
              samples);
  const Dataset records = forward_sample(
      asia, samples, static_cast<std::uint64_t>(cli.get_int("seed")), threads);

  WaitFreeBuilderOptions build_options;
  build_options.threads = threads;
  WaitFreeBuilder builder(build_options);
  const PotentialTable table = builder.build(records);
  const QueryEngine engine(table, threads);

  const NodeId lung = asia.node_by_name("lung");
  const NodeId xray = asia.node_by_name("xray");
  const NodeId smoke = asia.node_by_name("smoke");
  const NodeId dysp = asia.node_by_name("dysp");

  struct Case {
    const char* description;
    std::vector<Evidence> evidence;
  };
  // State 0 = "yes" in the canonical ASIA encoding.
  const Case cases[] = {
      {"no evidence", {}},
      {"positive x-ray", {{xray, 0}}},
      {"positive x-ray, smoker", {{xray, 0}, {smoke, 0}}},
      {"positive x-ray, smoker, dyspnoea", {{xray, 0}, {smoke, 0}, {dysp, 0}}},
  };

  std::printf(
      "\nP(lung cancer = yes | evidence): data estimate vs exact "
      "(variable elimination)\n");
  for (const Case& c : cases) {
    const std::size_t vars[] = {lung};
    const std::vector<double> posterior = engine.conditional(vars, c.evidence);
    const std::vector<double> exact = exact_posterior(asia, vars, c.evidence);
    std::printf("  %-38s %.4f   (exact %.4f)\n", c.description, posterior[0],
                exact[0]);
  }

  // Most probable diagnosis pattern for a symptomatic smoker.
  const std::size_t diagnosis_vars[] = {lung, asia.node_by_name("bronc"),
                                        asia.node_by_name("tub")};
  const Evidence symptomatic[] = {{smoke, 0}, {dysp, 0}};
  const auto map = engine.most_probable(diagnosis_vars, symptomatic);
  std::printf(
      "\nmost probable (lung, bronc, tub) for a dyspnoeic smoker: "
      "(%s, %s, %s) with posterior %.3f\n",
      map.states[0] == 0 ? "yes" : "no", map.states[1] == 0 ? "yes" : "no",
      map.states[2] == 0 ? "yes" : "no", map.probability);

  // Round-trip the generating network through the text format.
  std::stringstream stream;
  write_network(asia, stream);
  const BayesianNetwork reloaded = read_network(stream);
  std::printf("\nnetwork serialization round-trip: %zu nodes, %zu edges, %s\n",
              reloaded.node_count(), reloaded.dag().edge_count(),
              reloaded.validate() ? "valid" : "INVALID");
  return 0;
}
