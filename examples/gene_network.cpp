// Bioinformatics-style workload (the paper's §III motivation: constraint-
// based learners are preferred for large gene-regulatory networks): build a
// random scale-free-ish regulatory DAG, sample expression-like discrete data,
// and reverse-engineer the skeleton with the parallel phase-1 pipeline plus
// thickening/thinning.
//
//   ./gene_network --genes 60 --samples 100000 --threads 4
#include <algorithm>
#include <cstdio>

#include "bn/metrics.hpp"
#include "bn/sampling.hpp"
#include "learn/cheng.hpp"
#include "learn/sparse_candidate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace wfbn;

/// Random regulatory DAG: each gene picks 1–`max_regulators` earlier genes as
/// regulators, preferring recent ones (gives hub-ish structure).
Dag random_regulatory_dag(std::size_t genes, std::size_t max_regulators,
                          Xoshiro256& rng) {
  Dag dag(genes);
  for (NodeId g = 1; g < genes; ++g) {
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.bounded(std::min<std::uint64_t>(
                max_regulators, g)));
    for (std::size_t i = 0; i < k; ++i) {
      // Preferential attachment flavour: sample two candidates, keep the one
      // with more children.
      const NodeId a = static_cast<NodeId>(rng.bounded(g));
      const NodeId b = static_cast<NodeId>(rng.bounded(g));
      const NodeId regulator =
          dag.children(a).size() >= dag.children(b).size() ? a : b;
      dag.add_edge(regulator, g);
    }
  }
  return dag;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("gene_network — reverse-engineer a synthetic regulatory network");
  cli.add_option("genes", "50", "Number of genes (variables)");
  cli.add_option("samples", "100000", "Expression samples to draw");
  cli.add_option("threads", "4", "Worker threads");
  cli.add_option("states", "2",
                 "Discretized expression levels per gene (keys must satisfy "
                 "states^genes < 2^63)");
  cli.add_option("epsilon", "0.005", "MI threshold (nats)");
  cli.add_option("seed", "99", "Seed for structure, CPTs and sampling");
  if (!cli.parse(argc, argv)) return 0;

  const auto genes = static_cast<std::size_t>(cli.get_int("genes"));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const auto states = static_cast<std::uint32_t>(cli.get_int("states"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  Xoshiro256 rng(seed);
  const Dag truth_dag = random_regulatory_dag(genes, 2, rng);
  BayesianNetwork truth(truth_dag, std::vector<std::uint32_t>(genes, states));
  truth.randomize_cpts(seed + 1, /*alpha=*/0.35);
  std::printf("regulatory network: %zu genes, %zu regulations, %u levels\n",
              genes, truth.dag().edge_count(), states);

  const Dataset data = forward_sample(truth, samples, seed + 2, threads);

  ChengOptions options;
  options.ci.threads = threads;
  options.ci.mi_threshold = cli.get_double("epsilon");
  const ChengResult result = ChengLearner(options).learn(data);

  const SkeletonMetrics metrics =
      compare_skeletons(result.skeleton, truth.dag().skeleton());
  std::printf(
      "\nlearned %zu interactions: precision=%.3f recall=%.3f F1=%.3f\n",
      result.skeleton.edge_count(), metrics.precision, metrics.recall,
      metrics.f1);

  // The all-pairs MI matrix doubles as a sparse-candidate pruner (paper §III,
  // Friedman et al.'s search-space reduction).
  const auto candidates = sparse_candidates(result.mi, 5);
  std::size_t covered = 0;
  std::size_t total_regulations = 0;
  for (NodeId g = 0; g < genes; ++g) {
    for (const NodeId regulator : truth.dag().parents(g)) {
      ++total_regulations;
      const auto& c = candidates[g];
      if (std::find(c.begin(), c.end(), regulator) != c.end()) ++covered;
    }
  }
  std::printf(
      "sparse-candidate screening: %zu/%zu true regulators inside each "
      "gene's top-5 MI partners\n",
      covered, total_regulations);
  return 0;
}
