// Wide-key pipeline: phase 1 on networks whose joint state space exceeds the
// paper's 64-bit key limit (Eq. 3 needs ∏ r_j to fit one integer — 63 binary
// variables). The two-word codec lifts that to 2^126 while keeping the same
// wait-free two-stage construction and O(1)-per-variable decoding.
//
//   ./wide_scale --variables 100 --samples 200000 --threads 4
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/all_pairs_mi.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace wfbn;

  CliParser cli("wide_scale — phase 1 beyond the 64-bit key limit");
  cli.add_option("variables", "100", "Binary variables (64-bit keys cap at 63)");
  cli.add_option("samples", "200000", "Training samples");
  cli.add_option("threads", "4", "Worker threads");
  cli.add_option("copy", "0.8", "Chain copy probability (dependence strength)");
  cli.add_option("seed", "33", "Workload seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("variables"));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));

  std::printf("chain-correlated data: m=%zu, n=%zu binary variables", samples, n);
  std::printf(" (joint state space 2^%zu)\n", n);
  const Dataset data = generate_chain_correlated(
      samples, n, 2, cli.get_double("copy"),
      static_cast<std::uint64_t>(cli.get_int("seed")));

  Timer timer;
  WideBuilderOptions options;
  options.threads = threads;
  WideWaitFreeBuilder builder(options);
  const WidePotentialTable table = builder.build(data);
  std::printf("wide wait-free construction: %.1f ms, %zu distinct state strings\n",
              timer.milliseconds(), table.distinct_keys());

  timer.reset();
  const MiMatrix mi = wide_all_pairs_mi(table, threads);
  std::printf("all-pairs MI over %zu pairs: %.1f ms\n", n * (n - 1) / 2,
              timer.milliseconds());

  // Drafting-phase quality check: the true chain edges should top the list.
  const auto candidates = mi.pairs_above(0.01);
  std::size_t adjacent_hits = 0;
  const std::size_t top = std::min<std::size_t>(n - 1, candidates.size());
  for (std::size_t k = 0; k < top; ++k) {
    if (candidates[k].j == candidates[k].i + 1) ++adjacent_hits;
  }
  std::printf(
      "top-%zu candidate edges: %zu/%zu are true chain adjacencies "
      "(I(X_i;X_{i+1}) dominates)\n",
      top, adjacent_hits, top);

  // Cross-word sanity: variables on opposite sides of the 63-variable word
  // boundary still interact correctly.
  if (n > 64) {
    std::printf("word-boundary pair I(X62;X63) = %.4f nats (adjacent, high); "
                "I(X62;X%zu) = %.4f nats (distant, low)\n",
                mi.at(62, 63), n - 1, mi.at(62, n - 1));
  }
  return 0;
}
