// Feature screening with the all-pairs MI primitive: rank every feature's
// dependence on a chosen target variable, and build a Chow–Liu tree from the
// same MI matrix — two downstream consumers of one phase-1 pass (paper §III:
// "a parallel and efficient tool to help reduce the search space of other
// structure learning algorithms").
//
//   ./mi_screening --target 0 --samples 150000 --threads 4
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/all_pairs_mi.hpp"
#include "core/wait_free_builder.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "learn/chow_liu.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace wfbn;

  CliParser cli("mi_screening — rank features by MI against a target");
  cli.add_option("network", "child", "Repository network supplying the data");
  cli.add_option("target", "1", "Target variable index");
  cli.add_option("samples", "150000", "Training samples");
  cli.add_option("threads", "4", "Worker threads");
  cli.add_option("seed", "5", "Sampling seed");
  if (!cli.parse(argc, argv)) return 0;

  RepositoryNetwork which = RepositoryNetwork::kChild;
  for (const RepositoryNetwork candidate : all_repository_networks()) {
    if (repository_network_name(candidate) == cli.get("network")) {
      which = candidate;
    }
  }
  const BayesianNetwork network = load_network(which);
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const auto target = static_cast<std::size_t>(cli.get_int("target"));
  const Dataset data = forward_sample(
      network, samples, static_cast<std::uint64_t>(cli.get_int("seed")),
      threads);

  WaitFreeBuilderOptions build_options;
  build_options.threads = threads;
  WaitFreeBuilder builder(build_options);
  const PotentialTable table = builder.build(data);

  AllPairsMi all_pairs(AllPairsOptions{threads, AllPairsStrategy::kFused});
  const MiMatrix mi = all_pairs.compute(table);
  std::printf("all-pairs MI over %zu variables: %.1f ms (%llu pairs)\n",
              data.variable_count(), all_pairs.stats().total_seconds * 1e3,
              static_cast<unsigned long long>(all_pairs.stats().pair_count));

  // --- screening report for the target variable.
  std::vector<std::pair<double, std::size_t>> ranking;
  for (std::size_t v = 0; v < data.variable_count(); ++v) {
    if (v != target) ranking.emplace_back(mi.at(target, v), v);
  }
  std::sort(ranking.rbegin(), ranking.rend());
  std::printf("\ntop features by I(%s; ·):\n", network.name(target).c_str());
  for (std::size_t k = 0; k < std::min<std::size_t>(8, ranking.size()); ++k) {
    std::printf("  %-16s %.5f nats\n", network.name(ranking[k].second).c_str(),
                ranking[k].first);
  }

  // --- Chow–Liu tree from the same matrix.
  const ChowLiuResult tree = chow_liu_tree(mi, /*min_mi=*/1e-4);
  std::printf("\nChow–Liu tree: %zu edges, total MI %.4f nats\n",
              tree.tree.edge_count(), tree.total_mi);
  for (const Edge& e : tree.rooted.edges()) {
    std::printf("  %s -> %s\n", network.name(e.from).c_str(),
                network.name(e.to).c_str());
  }
  return 0;
}
