// Serving over the network, end to end: a ServeServer on loopback over a
// crash-safe DurableTableStore, hit concurrently by a query client and an
// ingest streamer — the deployment shape the net/ subsystem exists for.
//
//   server    ServeEngine over DurableTableStore: queries answer from the
//             pinned snapshot, ingested batches publish v2, v3, ... and
//             persist asynchronously; a final FLUSH makes the last version
//             durable before shutdown.
//   queries   one ServeClient issuing a mixed marginal / conditional /
//             pair-MI workload, measuring per-request latency.
//   ingest    a second ServeClient streaming observation batches. When the
//             admission layer answers OVERLOADED the streamer does what a
//             well-behaved producer should: waits the server's retry_after_ms
//             hint and resends the same batch.
//
// The summary prints per-class latency percentiles, the rejection/retry
// counts, and the served vs durable version — all observed purely through
// the wire protocol.
//
//   ./serve_over_network --batches 6 --batch-size 20000 --queries 2000
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "net/serve_client.hpp"
#include "net/serve_server.hpp"
#include "serve/persist/durable_store.hpp"
#include "serve/serve_engine.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (rank - static_cast<double>(lo));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfbn;

  CliParser cli(
      "serve_over_network — query client + ingest streamer against a "
      "ServeServer over a DurableTableStore on loopback");
  cli.add_option("batches", "6", "Batches the ingest streamer sends");
  cli.add_option("batch-size", "20000", "Observations per batch");
  cli.add_option("queries", "2000", "Queries the query client issues");
  cli.add_option("variables", "10", "Binary variables");
  cli.add_option("threads", "4", "Server worker threads");
  cli.add_option("ingest-admit-rate", "0",
                 "Optional cap on admitted ingest batches/sec (0 = uncapped)");
  cli.add_option("seed", "7", "Workload seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto batches = static_cast<std::size_t>(cli.get_int("batches"));
  const auto batch_size = static_cast<std::size_t>(cli.get_int("batch-size"));
  const auto queries = static_cast<std::size_t>(cli.get_int("queries"));
  const auto n = static_cast<std::size_t>(cli.get_int("variables"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const double admit_rate = static_cast<double>(cli.get_int("ingest-admit-rate"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "wfbn_serve_over_network";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Version 1: built locally, persisted by the durable store's constructor.
  WaitFreeBuilderOptions build_options;
  build_options.threads = threads;
  serve::persist::DurableTableStore durable(
      dir, WaitFreeBuilder(build_options).build(
               generate_chain_correlated(batch_size, n, 2, 0.8, seed)));
  serve::ServeEngine engine(durable.store());
  ThreadPool pool(threads);

  net::ServerOptions server_options;
  if (admit_rate > 0.0) {
    net::ClassPolicy& ingest_policy =
        server_options.admission
            .per_class[static_cast<std::size_t>(net::RequestClass::kIngest)];
    ingest_policy.rate_per_sec = admit_rate;
    ingest_policy.burst = 2;
  }
  net::ServeServer server(engine, pool, server_options, &durable);
  server.start();
  std::printf("server listening on 127.0.0.1:%u (snapshot dir %s)\n\n",
              server.port(), dir.c_str());

  net::ClientOptions client_options;
  client_options.port = server.port();

  // --- ingest streamer -----------------------------------------------------
  std::uint64_t ingested = 0;
  std::uint64_t retries = 0;
  std::vector<double> ingest_ms;
  std::thread streamer([&] {
    net::ServeClient client(client_options);
    for (std::size_t b = 0; b < batches; ++b) {
      const Dataset batch =
          generate_chain_correlated(batch_size, n, 2, 0.8, seed + 1 + b);
      net::Request request;
      request.id = b;
      request.opcode = net::Opcode::kIngest;
      request.ingest_samples = batch.sample_count();
      request.ingest_cardinalities = batch.cardinalities();
      request.ingest_cells.assign(batch.raw().begin(), batch.raw().end());
      while (true) {
        Timer timer;
        const net::Response r = client.call(request);
        if (r.status == net::Status::kOverloaded) {
          // The server said no and told us when to come back.
          ++retries;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(std::max<int>(1, r.retry_after_ms)));
          continue;
        }
        ingest_ms.push_back(timer.seconds() * 1e3);
        if (r.status == net::Status::kOk) {
          ++ingested;
          std::printf("  ingest: batch %zu -> published v%llu (%llu rows)\n",
                      b, static_cast<unsigned long long>(r.published_version),
                      static_cast<unsigned long long>(r.batch_rows));
        } else {
          std::printf("  ingest: batch %zu failed: %s\n", b, r.error.c_str());
        }
        break;
      }
    }
  });

  // --- query client --------------------------------------------------------
  std::uint64_t answered = 0;
  std::uint64_t cache_hits = 0;
  std::vector<double> query_ms;
  std::thread querier([&] {
    net::ServeClient client(client_options);
    for (std::size_t i = 0; i < queries; ++i) {
      net::Request request;
      request.id = i;
      switch (i % 3) {
        case 0:
          request.opcode = net::Opcode::kMarginal;
          request.query.kind = serve::QueryKind::kMarginal;
          request.query.variables = {i % n, (i + 1) % n};
          break;
        case 1:
          request.opcode = net::Opcode::kConditional;
          request.query.kind = serve::QueryKind::kConditional;
          request.query.variables = {(i + 2) % n};
          request.query.evidence = {{i % n, static_cast<State>(i % 2)}};
          break;
        default:
          request.opcode = net::Opcode::kPairMi;
          request.query.kind = serve::QueryKind::kPairMi;
          request.query.variables = {i % n, (i + 1) % n};
          break;
      }
      Timer timer;
      const net::Response r = client.call(request);
      query_ms.push_back(timer.seconds() * 1e3);
      if (r.status == net::Status::kOk) {
        ++answered;
        if (r.cache_hit) ++cache_hits;
      }
    }
  });

  streamer.join();
  querier.join();

  // --- admin: flush, then read the server's own view of the run -----------
  net::ServeClient admin(client_options);
  net::Request flush;
  flush.id = 1;
  flush.opcode = net::Opcode::kFlush;
  const net::Response flushed = admin.call(flush);
  net::Request stats;
  stats.id = 2;
  stats.opcode = net::Opcode::kStats;
  const net::Response st = admin.call(stats);

  TablePrinter table({"class", "requests", "p50 ms", "p95 ms", "p99 ms"});
  table.add_row({"interactive", std::to_string(query_ms.size()),
                 TablePrinter::fmt(percentile(query_ms, 50), 3),
                 TablePrinter::fmt(percentile(query_ms, 95), 3),
                 TablePrinter::fmt(percentile(query_ms, 99), 3)});
  table.add_row({"ingest", std::to_string(ingest_ms.size()),
                 TablePrinter::fmt(percentile(ingest_ms, 50), 3),
                 TablePrinter::fmt(percentile(ingest_ms, 95), 3),
                 TablePrinter::fmt(percentile(ingest_ms, 99), 3)});
  std::printf("\n");
  table.print("per-class latency over the wire");

  std::printf(
      "\nqueries answered: %llu/%zu (%.1f%% served from the result cache)\n"
      "batches published: %llu/%zu, OVERLOADED retries honoured: %llu\n"
      "admission counters (server): admitted=%llu rejected=%llu\n"
      "flush: %s — served v%llu, durable v%llu\n",
      static_cast<unsigned long long>(answered), queries,
      answered == 0 ? 0.0
                    : 100.0 * static_cast<double>(cache_hits) /
                          static_cast<double>(answered),
      static_cast<unsigned long long>(ingested), batches,
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(st.admitted),
      static_cast<unsigned long long>(st.rejected),
      flushed.flushed ? "ok" : "FAILED",
      static_cast<unsigned long long>(flushed.served_version),
      static_cast<unsigned long long>(flushed.durable_version));

  server.stop();
  const bool ok = answered == queries && ingested == batches &&
                  flushed.flushed &&
                  flushed.durable_version == flushed.served_version;
  if (!ok) {
    std::printf("\nFAILURE: not every request completed\n");
    return 1;
  }
  std::printf("\nall traffic served; every published version is durable\n");
  return 0;
}
