#include "data/dataset.hpp"

#include <utility>

#include "util/error.hpp"

namespace wfbn {

Dataset::Dataset(std::size_t samples, std::vector<std::uint32_t> cardinalities)
    : samples_(samples), cardinalities_(std::move(cardinalities)) {
  WFBN_EXPECT(!cardinalities_.empty(), "dataset needs at least one variable");
  cells_.assign(samples_ * cardinalities_.size(), 0);
}

Dataset::Dataset(std::size_t samples, std::vector<std::uint32_t> cardinalities,
                 std::vector<State> cells)
    : samples_(samples),
      cardinalities_(std::move(cardinalities)),
      cells_(std::move(cells)) {
  WFBN_EXPECT(!cardinalities_.empty(), "dataset needs at least one variable");
  if (cells_.size() != samples_ * cardinalities_.size()) {
    throw DataError("cell buffer size does not match samples × variables");
  }
  if (!validate()) throw DataError("dataset contains out-of-range states");
}

bool Dataset::validate() const noexcept {
  const std::size_t n = variable_count();
  for (std::size_t i = 0; i < samples_; ++i) {
    const State* cells = cells_.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      if (cells[j] >= cardinalities_[j]) return false;
    }
  }
  return true;
}

}  // namespace wfbn
