#include "data/discretize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wfbn {

State DiscretizationModel::transform_value(std::size_t j, double value) const {
  const std::vector<double>& cuts = boundaries[j];
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), value);
  return static_cast<State>(it - cuts.begin());
}

DiscretizationModel fit_discretizer(std::span<const double> values,
                                    std::size_t samples, std::size_t columns,
                                    DiscretizeOptions options) {
  WFBN_EXPECT(options.bins >= 2 && options.bins <= 255, "bins in [2,255]");
  WFBN_EXPECT(samples >= 2, "need at least two samples to fit bins");
  WFBN_EXPECT(values.size() == samples * columns,
              "value buffer does not match samples × columns");
  for (const double v : values) {
    if (!std::isfinite(v)) throw DataError("non-finite value in input");
  }

  DiscretizationModel model;
  model.options = options;
  model.boundaries.resize(columns);
  std::vector<double> column(samples);
  for (std::size_t j = 0; j < columns; ++j) {
    for (std::size_t i = 0; i < samples; ++i) {
      column[i] = values[i * columns + j];
    }
    std::vector<double>& cuts = model.boundaries[j];
    cuts.reserve(options.bins - 1);
    if (options.method == DiscretizeMethod::kEqualWidth) {
      const auto [lo_it, hi_it] = std::minmax_element(column.begin(), column.end());
      const double lo = *lo_it;
      const double hi = *hi_it;
      const double width = (hi - lo) / options.bins;
      for (std::uint32_t k = 1; k < options.bins; ++k) {
        cuts.push_back(lo + width * k);
      }
    } else {
      std::sort(column.begin(), column.end());
      for (std::uint32_t k = 1; k < options.bins; ++k) {
        const std::size_t rank = k * samples / options.bins;
        cuts.push_back(column[std::min(rank, samples - 1)]);
      }
    }
    // Degenerate columns (constant value) produce equal cut points; keep
    // them — every value lands in one bin, which is the honest encoding.
  }
  return model;
}

Dataset discretize(const DiscretizationModel& model,
                   std::span<const double> values, std::size_t samples,
                   std::size_t columns) {
  WFBN_EXPECT(model.boundaries.size() == columns,
              "model fitted for a different column count");
  WFBN_EXPECT(values.size() == samples * columns,
              "value buffer does not match samples × columns");
  Dataset data(samples,
               std::vector<std::uint32_t>(columns, model.options.bins));
  for (std::size_t i = 0; i < samples; ++i) {
    auto row = data.row(i);
    for (std::size_t j = 0; j < columns; ++j) {
      row[j] = model.transform_value(j, values[i * columns + j]);
    }
  }
  return data;
}

Dataset discretize(std::span<const double> values, std::size_t samples,
                   std::size_t columns, DiscretizeOptions options) {
  return discretize(fit_discretizer(values, samples, columns, options), values,
                    samples, columns);
}

}  // namespace wfbn
