// Training data container: the m × n matrix D of observed states (paper
// §II-B). Row i is the i-th observation / state string.
//
// Stored row-major as uint8 states, since the construction primitive consumes
// whole rows (encode → route); cardinalities travel with the matrix so every
// consumer derives the same KeyCodec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "table/key_codec.hpp"

namespace wfbn {

class Dataset {
 public:
  /// Zero-initialized dataset of `samples` rows over variables with the given
  /// cardinalities.
  Dataset(std::size_t samples, std::vector<std::uint32_t> cardinalities);

  /// Wraps existing row-major cells (cells.size() == samples * n). Throws
  /// DataError if any state exceeds its cardinality.
  Dataset(std::size_t samples, std::vector<std::uint32_t> cardinalities,
          std::vector<State> cells);

  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] std::size_t variable_count() const noexcept {
    return cardinalities_.size();
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cardinalities() const noexcept {
    return cardinalities_;
  }

  [[nodiscard]] std::span<const State> row(std::size_t i) const noexcept {
    return {cells_.data() + i * variable_count(), variable_count()};
  }
  [[nodiscard]] std::span<State> row(std::size_t i) noexcept {
    return {cells_.data() + i * variable_count(), variable_count()};
  }

  [[nodiscard]] State at(std::size_t i, std::size_t j) const noexcept {
    return cells_[i * variable_count() + j];
  }
  void set(std::size_t i, std::size_t j, State s) noexcept {
    cells_[i * variable_count() + j] = s;
  }

  /// The codec all consumers of this dataset share.
  [[nodiscard]] KeyCodec codec() const { return KeyCodec(cardinalities_); }

  /// Checks every cell against its cardinality. O(m·n).
  [[nodiscard]] bool validate() const noexcept;

  [[nodiscard]] std::span<const State> raw() const noexcept { return cells_; }

 private:
  std::size_t samples_;
  std::vector<std::uint32_t> cardinalities_;
  std::vector<State> cells_;
};

}  // namespace wfbn
