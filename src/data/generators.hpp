// Synthetic training-data generators.
//
// The paper's evaluation (§V-A) uses "variable instances synthesized from
// uniform and independent distributions for each variable" — that is
// generate_uniform(). Correlated and clustered generators are provided so the
// tests and ablations can also exercise skewed key populations (where e.g.
// modulo vs. range partitioning behave differently), and BN forward sampling
// (src/bn/sampling.hpp) gives data with real structure for the end-to-end
// learning examples.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace wfbn {

/// Uniform, independent states per variable — the paper's workload.
/// Deterministic in (samples, cardinalities, seed, threads): block `b` of the
/// row range is filled from RNG stream `b` (disjoint xoshiro jump streams),
/// with blocks assigned by ThreadPool::block_range.
Dataset generate_uniform(std::size_t samples,
                         std::vector<std::uint32_t> cardinalities,
                         std::uint64_t seed, std::size_t threads = 1);

/// Uniform with uniform cardinality r over n variables (paper parameters).
Dataset generate_uniform(std::size_t samples, std::size_t n, std::uint32_t r,
                         std::uint64_t seed, std::size_t threads = 1);

/// Pairwise-correlated data: variable j copies variable j-1 with probability
/// `copy_prob`, else samples uniformly. Produces strongly dependent adjacent
/// pairs — useful to validate that mutual information ranks true edges first.
Dataset generate_chain_correlated(std::size_t samples, std::size_t n,
                                  std::uint32_t r, double copy_prob,
                                  std::uint64_t seed);

/// Skewed keys: rows are drawn from `hot_fraction` of the state space with
/// probability `hot_mass` (a heavy-hitter distribution). Stresses hashtable
/// collision handling and partition imbalance.
Dataset generate_skewed(std::size_t samples, std::size_t n, std::uint32_t r,
                        double hot_fraction, double hot_mass,
                        std::uint64_t seed);

}  // namespace wfbn
