#include "data/generators.hpp"

#include <algorithm>
#include <utility>

#include "concurrent/thread_pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wfbn {

Dataset generate_uniform(std::size_t samples,
                         std::vector<std::uint32_t> cardinalities,
                         std::uint64_t seed, std::size_t threads) {
  WFBN_EXPECT(threads >= 1, "need at least one generator thread");
  Dataset data(samples, std::move(cardinalities));
  const std::size_t n = data.variable_count();
  const auto& cards = data.cardinalities();

  auto fill_block = [&](std::size_t block, std::size_t lo, std::size_t hi) {
    Xoshiro256 rng = Xoshiro256(seed).split(static_cast<unsigned>(block));
    for (std::size_t i = lo; i < hi; ++i) {
      auto row = data.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = static_cast<State>(rng.bounded(cards[j]));
      }
    }
  };

  if (threads == 1) {
    fill_block(0, 0, samples);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(0, samples, fill_block);
  }
  return data;
}

Dataset generate_uniform(std::size_t samples, std::size_t n, std::uint32_t r,
                         std::uint64_t seed, std::size_t threads) {
  return generate_uniform(samples, std::vector<std::uint32_t>(n, r), seed,
                          threads);
}

Dataset generate_chain_correlated(std::size_t samples, std::size_t n,
                                  std::uint32_t r, double copy_prob,
                                  std::uint64_t seed) {
  WFBN_EXPECT(n >= 1, "need at least one variable");
  WFBN_EXPECT(copy_prob >= 0.0 && copy_prob <= 1.0, "copy_prob in [0,1]");
  Dataset data(samples, std::vector<std::uint32_t>(n, r));
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < samples; ++i) {
    auto row = data.row(i);
    row[0] = static_cast<State>(rng.bounded(r));
    for (std::size_t j = 1; j < n; ++j) {
      row[j] = rng.uniform01() < copy_prob
                   ? row[j - 1]
                   : static_cast<State>(rng.bounded(r));
    }
  }
  return data;
}

Dataset generate_skewed(std::size_t samples, std::size_t n, std::uint32_t r,
                        double hot_fraction, double hot_mass,
                        std::uint64_t seed) {
  WFBN_EXPECT(hot_fraction > 0.0 && hot_fraction <= 1.0, "hot_fraction in (0,1]");
  WFBN_EXPECT(hot_mass >= 0.0 && hot_mass <= 1.0, "hot_mass in [0,1]");
  Dataset data(samples, std::vector<std::uint32_t>(n, r));
  const KeyCodec codec = data.codec();

  // The hot set is a contiguous prefix of the key space, capped so it can be
  // enumerated; contiguity is deliberate — it concentrates the hot keys in
  // one range partition, which is the worst case for range ownership.
  const std::uint64_t space =
      std::min<std::uint64_t>(codec.state_space_size(), 1ULL << 40);
  const std::uint64_t hot_keys = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(hot_fraction * static_cast<double>(space)));

  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < samples; ++i) {
    auto row = data.row(i);
    if (rng.uniform01() < hot_mass) {
      const Key key = rng.bounded(hot_keys);
      codec.decode_all(key, row);
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = static_cast<State>(rng.bounded(r));
      }
    }
  }
  return data;
}

}  // namespace wfbn
