// Dataset persistence: CSV (human-readable, interoperable with bnlearn-style
// tooling) and a compact binary format for large synthetic datasets.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace wfbn {

/// CSV layout: first line "r_1,r_2,...,r_n" (cardinalities header), then one
/// observation per line as comma-separated integer states.
void write_csv(const Dataset& data, std::ostream& out);
void write_csv_file(const Dataset& data, const std::string& path);

/// Parses the layout produced by write_csv. Throws DataError on malformed
/// input (ragged rows, non-integers, out-of-range states).
Dataset read_csv(std::istream& in);
Dataset read_csv_file(const std::string& path);

/// Binary layout: magic "WFBN" + u32 version + u64 m + u32 n + n×u32
/// cardinalities + m·n bytes of states. Little-endian, as written.
void write_binary_file(const Dataset& data, const std::string& path);
Dataset read_binary_file(const std::string& path);

}  // namespace wfbn
