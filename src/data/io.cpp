#include "data/io.hpp"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/binary_io.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace wfbn {

namespace {

std::vector<std::uint32_t> parse_int_line(const std::string& line,
                                          const char* what) {
  std::vector<std::uint32_t> out;
  std::size_t begin = 0;
  while (begin <= line.size()) {
    std::size_t end = line.find(',', begin);
    if (end == std::string::npos) end = line.size();
    std::uint32_t value = 0;
    const char* first = line.data() + begin;
    const char* last = line.data() + end;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last || first == last) {
      throw DataError(std::string("malformed ") + what + " in CSV: '" + line + "'");
    }
    out.push_back(value);
    begin = end + 1;
  }
  return out;
}

}  // namespace

void write_csv(const Dataset& data, std::ostream& out) {
  const auto& cards = data.cardinalities();
  for (std::size_t j = 0; j < cards.size(); ++j) {
    out << cards[j] << (j + 1 < cards.size() ? "," : "\n");
  }
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      out << static_cast<unsigned>(row[j]) << (j + 1 < row.size() ? "," : "\n");
    }
  }
}

void write_csv_file(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw DataError("cannot open for writing: " + path);
  write_csv(data, out);
  if (!out) throw DataError("write failed: " + path);
}

Dataset read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw DataError("CSV is empty");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::uint32_t> cards = parse_int_line(line, "cardinality header");
  for (const std::uint32_t r : cards) {
    if (r == 0 || r > 255) {
      throw DataError("cardinality out of supported range [1,255]");
    }
  }

  std::vector<State> cells;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::uint32_t> row = parse_int_line(line, "observation row");
    if (row.size() != cards.size()) {
      throw DataError("ragged CSV row: expected " + std::to_string(cards.size()) +
                      " states, got " + std::to_string(row.size()));
    }
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j] >= cards[j]) {
        throw DataError("state " + std::to_string(row[j]) +
                        " out of range for variable " + std::to_string(j));
      }
      cells.push_back(static_cast<State>(row[j]));
    }
    ++samples;
  }
  return Dataset(samples, std::move(cards), std::move(cells));
}

Dataset read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("cannot open for reading: " + path);
  return read_csv(in);
}

namespace {
constexpr char kMagic[4] = {'W', 'F', 'B', 'N'};
// Version 2 adds an FNV-1a checksum of the row payload to the header so
// truncation and bit-rot are detected instead of silently loading garbage.
// Version-1 files (no checksum) are still readable.
constexpr std::uint32_t kVersion = 2;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  bio::write_pod(out, value);
}

template <typename T>
T read_pod(std::istream& in) {
  return bio::read_pod<T>(in, "binary dataset");
}
}  // namespace

void write_binary_file(const Dataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw DataError("cannot open for writing: " + path);
  out.write(kMagic, sizeof kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(data.sample_count()));
  write_pod(out, static_cast<std::uint32_t>(data.variable_count()));
  for (const std::uint32_t r : data.cardinalities()) write_pod(out, r);
  const auto raw = data.raw();
  write_pod(out, fnv1a_bytes(raw.data(), raw.size()));
  out.write(reinterpret_cast<const char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
  if (!out) throw DataError("write failed: " + path);
}

Dataset read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DataError("cannot open for reading: " + path);
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    throw DataError("not a WFBN binary dataset: " + path);
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != 1 && version != kVersion) {
    throw DataError("unsupported dataset version " + std::to_string(version));
  }
  const auto samples = read_pod<std::uint64_t>(in);
  const auto n = read_pod<std::uint32_t>(in);
  if (n == 0) throw DataError("binary dataset has zero variables");
  std::vector<std::uint32_t> cards(n);
  for (auto& r : cards) r = read_pod<std::uint32_t>(in);
  const std::uint64_t expected_checksum =
      version >= 2 ? read_pod<std::uint64_t>(in) : 0;
  std::vector<State> cells(static_cast<std::size_t>(samples) * n);
  in.read(reinterpret_cast<char*>(cells.data()),
          static_cast<std::streamsize>(cells.size()));
  if (!in) throw DataError("truncated binary dataset: " + path);
  if (version >= 2 &&
      fnv1a_bytes(cells.data(), cells.size()) != expected_checksum) {
    throw DataError("corrupt dataset (payload checksum mismatch): " + path);
  }
  return Dataset(static_cast<std::size_t>(samples), std::move(cards),
                 std::move(cells));
}

}  // namespace wfbn
