// Discretization of continuous observations into the discrete Dataset the
// primitives consume. Real structure-learning inputs (gene expression,
// sensor values) are continuous; the paper's machinery assumes discrete
// states, so this is the standard preprocessing front door.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace wfbn {

enum class DiscretizeMethod {
  kEqualWidth,      ///< bins of equal value range between per-column min/max
  kEqualFrequency,  ///< quantile bins (≈ equal sample counts per bin)
};

struct DiscretizeOptions {
  DiscretizeMethod method = DiscretizeMethod::kEqualFrequency;
  std::uint32_t bins = 3;
};

/// Per-column bin boundaries produced by fit (boundaries[j] has bins−1
/// ascending cut points; value < cut[k] ⇒ state <= k).
struct DiscretizationModel {
  DiscretizeOptions options;
  std::vector<std::vector<double>> boundaries;

  /// State of a single value for column j.
  [[nodiscard]] State transform_value(std::size_t j, double value) const;
};

/// Learns cut points from row-major continuous data (samples × columns).
[[nodiscard]] DiscretizationModel fit_discretizer(
    std::span<const double> values, std::size_t samples, std::size_t columns,
    DiscretizeOptions options = {});

/// Applies a fitted model. Values outside the fitted range clamp to the
/// first/last bin.
[[nodiscard]] Dataset discretize(const DiscretizationModel& model,
                                 std::span<const double> values,
                                 std::size_t samples, std::size_t columns);

/// fit + transform in one call.
[[nodiscard]] Dataset discretize(std::span<const double> values,
                                 std::size_t samples, std::size_t columns,
                                 DiscretizeOptions options = {});

}  // namespace wfbn
