// Shared binary IO helpers: fixed-layout POD (de)serialization over streams
// and over in-memory buffers.
//
// Two consumers share these: the binary dataset format (data/io.cpp) reads
// and writes PODs against iostreams, and the snapshot persistence layer
// (serve/persist/) serializes whole sections into a byte buffer first so it
// can checksum and fsync them as a unit. Keeping both flavors in one header
// keeps the layout rules identical — native byte order, no padding words,
// `sizeof(T)` bytes per value — so a field written by one path is readable
// by the other.
//
// All types must be trivially copyable; the buffer readers throw DataError
// on underrun instead of reading past the end, which is what turns a
// truncated file into a typed error rather than garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace wfbn::bio {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in, const char* what = "binary stream") {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw DataError(std::string("truncated ") + what);
  return value;
}

/// Appends `value`'s bytes to `buffer`.
template <typename T>
void put_pod(std::vector<std::uint8_t>& buffer, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  buffer.insert(buffer.end(), bytes, bytes + sizeof value);
}

/// Cursor over a read-only byte buffer. get() advances; throws DataError on
/// underrun (with the caller's context string) so torn/truncated inputs
/// surface as typed errors at the exact field that fell off the end.
class BufferReader {
 public:
  BufferReader(const std::uint8_t* data, std::size_t size,
               const char* what = "binary buffer")
      : cursor_(data), end_(data + size), what_(what) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (remaining() < sizeof value) {
      throw DataError(std::string("truncated ") + what_);
    }
    std::memcpy(&value, cursor_, sizeof value);
    cursor_ += sizeof value;
    return value;
  }

  /// Raw view of the next `size` bytes without copying; advances the cursor.
  [[nodiscard]] const std::uint8_t* get_span(std::size_t size) {
    if (remaining() < size) {
      throw DataError(std::string("truncated ") + what_);
    }
    const std::uint8_t* out = cursor_;
    cursor_ += size;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - cursor_);
  }
  [[nodiscard]] const std::uint8_t* cursor() const noexcept { return cursor_; }

 private:
  const std::uint8_t* cursor_;
  const std::uint8_t* end_;
  const char* what_;
};

}  // namespace wfbn::bio
