// ModelAtomics: the atomics policy that routes every atomic operation (and
// every access to the non-atomic cells the atomics are supposed to publish)
// through the wfcheck Model. Instantiating a primitive with this policy —
// SpscQueue<T, Cap, ModelAtomics>, BasicSpinBarrier<ModelAtomics>,
// BasicPtrCell<Ptr, ModelAtomics> — runs the IDENTICAL protocol source under
// the model checker; the production build uses RealAtomics and compiles to
// plain std::atomic with zero overhead (see concurrent/atomics_policy.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "analysis/model.hpp"

namespace wfbn::mc {

namespace detail {

inline Model& active_model() {
  Model* m = Model::current();
  if (m == nullptr) {
    throw std::logic_error(
        "wfcheck: a ModelAtomics-instantiated primitive was used outside "
        "mc::check() — model objects only live on model threads");
  }
  return *m;
}

template <typename T>
[[nodiscard]] std::uint64_t bits_of(const T& v) noexcept {
  if constexpr (std::is_trivially_copyable_v<T> && sizeof(T) <= 8) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(T));
    return bits;
  } else {
    return 0;  // traced as opaque; identity still race-checked
  }
}

template <typename T>
[[nodiscard]] T from_bits(std::uint64_t bits) noexcept {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
  T v;
  std::memcpy(&v, &bits, sizeof(T));
  return v;
}

}  // namespace detail

/// Drop-in for std::atomic<T> (the subset the primitives use) that announces
/// each operation to the active Model as a schedule point and memory-model
/// event. T must be an 8-byte-or-smaller trivially-copyable type (ints,
/// bools, pointers — everything the primitives store atomically).
template <typename T>
class ModelAtomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "ModelAtomic requires a <=8-byte trivially copyable type");

 public:
  ModelAtomic() : ModelAtomic(T{}) {}
  explicit ModelAtomic(T initial)
      : loc_(detail::active_model().register_atomic(detail::bits_of(initial))) {}
  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;
  ~ModelAtomic() {
    if (Model* m = Model::current()) m->unregister_atomic(loc_);
  }

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    return detail::from_bits<T>(detail::active_model().atomic_load(loc_, mo));
  }

  void store(T value, std::memory_order mo = std::memory_order_seq_cst) {
    detail::active_model().atomic_store(loc_, detail::bits_of(value), mo);
  }

  T exchange(T value, std::memory_order mo = std::memory_order_seq_cst) {
    return detail::from_bits<T>(detail::active_model().atomic_rmw(
        loc_, RmwOp::kExchange, detail::bits_of(value), 0, mo));
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo = std::memory_order_seq_cst) {
    bool ok = false;
    const std::uint64_t prev = detail::active_model().atomic_rmw(
        loc_, RmwOp::kCas, detail::bits_of(desired), detail::bits_of(expected),
        mo, &ok);
    if (!ok) expected = detail::from_bits<T>(prev);
    return ok;
  }

  /// The model has no spurious failures; weak == strong. Schedules where a
  /// real weak CAS would fail spuriously are a subset of the retry loops the
  /// checker already explores via genuine interference.
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo);
  }

  template <typename U = T,
            std::enable_if_t<std::is_integral_v<U>, int> = 0>
  T fetch_add(T delta, std::memory_order mo = std::memory_order_seq_cst) {
    return detail::from_bits<T>(detail::active_model().atomic_rmw(
        loc_, RmwOp::kAdd, detail::bits_of(delta), 0, mo));
  }

  template <typename U = T,
            std::enable_if_t<std::is_integral_v<U>, int> = 0>
  T fetch_sub(T delta, std::memory_order mo = std::memory_order_seq_cst) {
    return detail::from_bits<T>(detail::active_model().atomic_rmw(
        loc_, RmwOp::kSub, detail::bits_of(delta), 0, mo));
  }

 private:
  std::size_t loc_;
};

/// Drop-in for a plain (non-atomic) T cell: the payload slots the atomics
/// publish. Every read/write is checked against the vector-clock race
/// detector — this is what turns a missing release/acquire edge into a
/// reported data race instead of a silent wrong value.
template <typename T>
class ModelData {
 public:
  ModelData() : value_{}, loc_(detail::active_model().register_data()) {}
  ModelData(const T& v)  // NOLINT(google-explicit-constructor)
      : value_(v), loc_(detail::active_model().register_data()) {}
  ModelData(T&& v)  // NOLINT(google-explicit-constructor)
      : value_(std::move(v)), loc_(detail::active_model().register_data()) {}
  ModelData(const ModelData&) = delete;
  ModelData& operator=(const ModelData&) = delete;
  ~ModelData() {
    if (Model* m = Model::current()) m->unregister_data(loc_);
  }

  ModelData& operator=(const T& v) {
    detail::active_model().data_store(loc_, detail::bits_of(v));
    value_ = v;
    return *this;
  }

  ModelData& operator=(T&& v) {
    detail::active_model().data_store(loc_, detail::bits_of(v));
    value_ = std::move(v);
    return *this;
  }

  operator T() const {  // NOLINT(google-explicit-constructor)
    detail::active_model().data_load(loc_, detail::bits_of(value_));
    return value_;
  }

 private:
  T value_;
  std::size_t loc_;
};

/// The atomics policy handed to the templated primitives when they run under
/// the checker. Spin loops yield immediately (threshold 0) so a waiting
/// thread is descheduled until a store can actually wake it — without this,
/// enumerating schedules of a spin loop would never terminate.
struct ModelAtomics {
  template <typename T>
  using Atomic = ModelAtomic<T>;
  template <typename T>
  using Data = ModelData<T>;
  static constexpr std::size_t kSpinYieldThreshold = 0;
  static constexpr bool kNoexceptOps = false;  // checker unwinds by throwing
  static void yield() { detail::active_model().thread_yield(); }
};

}  // namespace wfbn::mc
