// Umbrella header for the wfcheck model checker: pull in the Model, the
// trace types, and the ModelAtomics policy in one include. Harnesses
// typically need nothing else:
//
//   #include "analysis/wfcheck.hpp"
//   #include "concurrent/spsc_queue.hpp"
//
//   wfbn::mc::ModelOptions opts;
//   auto result = wfbn::mc::check(opts, [] {
//     auto* q = new wfbn::SpscQueue<int, 2, wfbn::mc::ModelAtomics>();
//     std::size_t producer = wfbn::mc::spawn([&] { ... });
//     ...
//     wfbn::mc::join(producer);
//     delete q;
//   });
#pragma once

#include "analysis/model.hpp"        // IWYU pragma: export
#include "analysis/model_atomic.hpp" // IWYU pragma: export
#include "analysis/trace.hpp"        // IWYU pragma: export
#include "analysis/version_vec.hpp"  // IWYU pragma: export
