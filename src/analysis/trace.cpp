#include "analysis/trace.hpp"

#include <atomic>
#include <sstream>

namespace wfbn::mc {

const char* op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kAtomicLoad: return "load ";
    case OpKind::kAtomicStore: return "store";
    case OpKind::kAtomicRmw: return "rmw  ";
    case OpKind::kDataLoad: return "read ";
    case OpKind::kDataStore: return "write";
    case OpKind::kYield: return "yield";
    case OpKind::kSpawn: return "spawn";
    case OpKind::kJoin: return "join ";
    case OpKind::kThreadStart: return "start";
    case OpKind::kThreadExit: return "exit ";
  }
  return "?";
}

const char* order_name(int std_memory_order) noexcept {
  switch (static_cast<std::memory_order>(std_memory_order)) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "";
}

std::string Trace::to_string() const {
  std::ostringstream out;
  out << "wfcheck failing interleaving (" << events.size() << " ops):\n";
  for (const TraceEvent& e : events) {
    out << "  #" << e.index << "\tT" << e.thread << "  " << op_kind_name(e.kind);
    if (e.loc != SIZE_MAX) {
      out << "  " << (e.loc_is_data ? "d" : "a") << e.loc;
      if (e.kind == OpKind::kAtomicLoad || e.kind == OpKind::kDataLoad ||
          e.kind == OpKind::kAtomicRmw) {
        out << " -> " << e.value;
      } else {
        out << " = " << e.value;
      }
    }
    if (e.order >= 0) out << "  " << order_name(e.order);
    if (e.demoted) out << " [DEMOTED->relaxed]";
    if (e.read_from != SIZE_MAX) {
      out << "  rf=mod#" << e.read_from << (e.synced ? " [syncs-with]" : "");
    }
    if (!e.note.empty()) out << "  ; " << e.note;
    out << "\n";
  }
  out << "happens-before edges established by acquire/release:\n";
  if (hb_edges.empty()) out << "  (none)\n";
  for (const HbEdge& edge : hb_edges) {
    out << "  #" << edge.from_event << " -> #" << edge.to_event << "  (a"
        << edge.loc << ")\n";
  }
  out << "failure: " << (failure.empty() ? "(none)" : failure) << "\n";
  if (seed != 0) {
    out << "replay: random schedule seed " << seed << "\n";
  } else {
    out << "replay: decision string [";
    for (std::size_t i = 0; i < decisions.size(); ++i)
      out << (i ? "," : "") << decisions[i];
    out << "]\n";
  }
  return out.str();
}

}  // namespace wfbn::mc
