#include "analysis/model.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

namespace wfbn::mc {

namespace {

thread_local Model* tls_model = nullptr;
thread_local std::size_t tls_self = SIZE_MAX;

[[nodiscard]] bool is_acquire(std::memory_order mo) noexcept {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst || mo == std::memory_order_consume;
}

[[nodiscard]] bool is_release(std::memory_order mo) noexcept {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

void merge_loc_views(std::vector<std::uint32_t>& dst,
                     const std::vector<std::uint32_t>& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i)
    dst[i] = std::max(dst[i], src[i]);
}

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::string CheckResult::summary() const {
  std::ostringstream out;
  out << (ok ? "OK" : "FAIL") << ": " << executions << " executions ("
      << exhaustive_executions << " exhaustive"
      << (exhausted ? " [space exhausted]" : " [budget hit]") << ", "
      << random_executions << " random), " << branch_points
      << " branch points, " << sleep_set_prunes << " sleep-set prunes, "
      << shared_locations << " shared locations, " << sharing_rounds
      << " sharing rounds";
  if (!ok) out << "; failure: " << failure;
  return out.str();
}

Model* Model::current() noexcept { return tls_model; }

Model::ThreadCtx& Model::self_ctx() {
  if (tls_model != this || tls_self == SIZE_MAX)
    throw std::logic_error("wfcheck: model operation outside a model thread");
  return threads_[tls_self];
}

// ---------------------------------------------------------------------------
// Check driver: exhaustive DFS (with sharing fixpoint) + random phase.
// ---------------------------------------------------------------------------

CheckResult Model::check(const ModelOptions& options,
                         const std::function<void()>& body) {
  opts_ = options;
  result_ = {};
  shared_mask_.clear();

  bool exhausted = true;
  // The exhaustive phase learns which locations are shared as it runs; a
  // location discovered shared mid-phase may have hidden schedule points
  // from earlier executions, so the phase repeats until the shared set is
  // stable (it only grows, so this terminates).
  for (std::size_t round = 0; round < 16 && exhausted; ++round) {
    ++result_.sharing_rounds;
    sharing_grew_ = false;
    prefix_.clear();
    random_mode_ = false;
    for (;;) {
      if (result_.exhaustive_executions >= opts_.max_exhaustive_executions) {
        exhausted = false;
        break;
      }
      run_one_execution(body);
      ++result_.executions;
      ++result_.exhaustive_executions;
      if (failed_) return finalize_failure(0);
      // Backtrack: drop fully-explored suffix, advance the deepest node
      // with an unexplored alternative.
      while (!path_.empty() && path_.back().pick + 1 >= path_.back().n)
        path_.pop_back();
      if (path_.empty()) break;  // schedule space fully enumerated
      prefix_.resize(path_.size());
      for (std::size_t i = 0; i + 1 < path_.size(); ++i)
        prefix_[i] = path_[i].pick;
      prefix_.back() = path_.back().pick + 1;
    }
    if (!sharing_grew_) break;
  }
  result_.exhausted = exhausted;

  // Random phase: seeded schedules with no preemption bound. Every atomic
  // op is a schedule point here (independent of the learned sharing), so a
  // schedule is a pure function of its seed — the replay guarantee.
  random_mode_ = true;
  prefix_.clear();
  for (std::size_t i = 0; i < opts_.random_schedules; ++i) {
    cur_seed_ = opts_.seed + 0x9E3779B97F4A7C15ull * (i + 1);
    rng_state_ = cur_seed_;
    run_one_execution(body);
    ++result_.executions;
    ++result_.random_executions;
    if (failed_) return finalize_failure(cur_seed_);
  }

  result_.ok = true;
  result_.shared_locations = count_shared();
  return result_;
}

Trace Model::replay_seed(const ModelOptions& options, std::uint64_t seed,
                         const std::function<void()>& body) {
  opts_ = options;
  result_ = {};
  shared_mask_.clear();
  random_mode_ = true;
  prefix_.clear();
  cur_seed_ = seed;
  rng_state_ = seed;
  run_one_execution(body);
  trace_.seed = seed;
  trace_.decisions.clear();
  for (const ChoiceNode& n : path_) trace_.decisions.push_back(n.pick);
  return trace_;
}

CheckResult Model::finalize_failure(std::uint64_t seed) {
  trace_.seed = seed;
  trace_.decisions.clear();
  for (const ChoiceNode& n : path_) trace_.decisions.push_back(n.pick);
  result_.ok = false;
  result_.failure = trace_.failure;
  result_.trace = trace_;
  result_.shared_locations = count_shared();
  return result_;
}

std::size_t Model::count_shared() const {
  std::size_t n = 0;
  for (std::uint8_t m : shared_mask_)
    if (std::popcount(m) >= 2) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// One execution: cooperative scheduling of real std::threads, one at a time.
// ---------------------------------------------------------------------------

void Model::run_one_execution(const std::function<void()>& body) {
  threads_.clear();
  atomics_.clear();
  datas_.clear();
  trace_ = {};
  path_.clear();
  depth_ = 0;
  preemptions_ = 0;
  step_count_ = 0;
  store_epoch_ = 1;
  current_ = kController;
  sleeping_.clear();
  aborting_ = false;
  redundant_ = false;
  failed_ = false;

  // ThreadCtx references are held across schedule points; never reallocate.
  threads_.reserve(kMaxThreads);
  threads_.emplace_back();
  ThreadCtx& t0 = threads_.back();
  t0.id = 0;
  t0.fn = body;
  t0.hb.tick(0);
  launch_thread(0);

  for (;;) {
    if (++step_count_ > opts_.max_steps_per_execution) {
      if (!failed_) {
        failed_ = true;
        trace_.failure = "livelock suspected: execution exceeded " +
                         std::to_string(opts_.max_steps_per_execution) +
                         " scheduling steps";
      }
      abort_all_threads();
      break;
    }
    bool redundant = false;
    const std::size_t tid = pick_next_thread(&redundant);
    if (tid == kController) {
      if (redundant) {
        redundant_ = true;
        ++result_.sleep_set_prunes;
        abort_all_threads();
        break;
      }
      bool all_done = true;
      for (const ThreadCtx& t : threads_)
        if (t.state != ThreadCtx::State::kDone) all_done = false;
      if (all_done) break;
      if (!failed_) {
        failed_ = true;
        std::ostringstream msg;
        msg << "deadlock: no runnable thread;";
        for (const ThreadCtx& t : threads_) {
          if (t.state == ThreadCtx::State::kDone) continue;
          msg << " T" << t.id
              << (t.state == ThreadCtx::State::kBlockedJoin
                      ? " blocked joining T" + std::to_string(t.join_target)
                      : " spinning (yielded, no store can wake it)");
        }
        trace_.failure = msg.str();
      }
      abort_all_threads();
      break;
    }
    current_ = tid;
    resume_thread(tid);
    if (failed_) {
      abort_all_threads();
      break;
    }
  }
  finish_threads();
}

bool Model::runnable_now(const ThreadCtx& t) const {
  switch (t.state) {
    case ThreadCtx::State::kRunnable:
      return true;
    case ThreadCtx::State::kBlockedJoin:
      return threads_[t.join_target].state == ThreadCtx::State::kDone;
    case ThreadCtx::State::kYielded:
      // A spinning thread makes progress once there is anything it has not
      // yet observed — a store since it yielded, or an older store it read
      // past the stale side of (its floor lags the location's newest).
      // Only a spinner that has seen the latest of everything stays parked;
      // if every thread is in that state, that is a real deadlock.
      return store_epoch_ > t.yield_epoch || has_unseen_store(t);
    case ThreadCtx::State::kDone:
      return false;
  }
  return false;
}

bool Model::has_unseen_store(const ThreadCtx& t) const {
  for (std::size_t loc = 0; loc < atomics_.size(); ++loc) {
    if (atomics_[loc].history.empty()) continue;
    const std::uint32_t seen = loc < t.loc_view.size() ? t.loc_view[loc] : 0;
    if (atomics_[loc].history.back().seq > seen) return true;
  }
  return false;
}

std::size_t Model::pick_next_thread(bool* out_redundant) {
  *out_redundant = false;
  std::vector<std::size_t> enabled;
  for (const ThreadCtx& t : threads_)
    if (runnable_now(t)) enabled.push_back(t.id);
  if (enabled.empty()) return kController;

  std::vector<std::size_t> cands;
  // Current thread first, so choice 0 = "no preemption". Sleeping threads
  // are excluded; if every enabled thread sleeps, this whole branch only
  // reorders already-explored independent ops — prune it.
  const bool current_runs =
      current_ != kController && !is_sleeping(current_) &&
      std::find(enabled.begin(), enabled.end(), current_) != enabled.end();
  if (current_runs) cands.push_back(current_);
  for (std::size_t tid : enabled)
    if (tid != current_ && !is_sleeping(tid)) cands.push_back(tid);
  if (cands.empty()) {
    *out_redundant = true;
    return kController;
  }

  // Preemption bound: once spent, a runnable current thread keeps running.
  if (!random_mode_ && current_runs && preemptions_ >= opts_.preemption_bound) {
    return current_;
  }

  std::size_t idx = 0;
  if (cands.size() > 1) {
    idx = choose(cands.size());
    if (!random_mode_ && opts_.sleep_sets) {
      // Explored siblings sleep until a conflicting op wakes them.
      for (std::size_t i = 0; i < idx; ++i) {
        const PendingOp& p = threads_[cands[i]].pending;
        if (p.kind == OpKind::kAtomicLoad || p.kind == OpKind::kAtomicStore ||
            p.kind == OpKind::kAtomicRmw) {
          sleeping_.push_back({cands[i], p.loc, p.is_write});
        }
      }
    }
  }
  const std::size_t tid = cands[idx];
  if (current_runs && tid != current_) ++preemptions_;
  return tid;
}

bool Model::is_sleeping(std::size_t tid) const {
  for (const SleepEntry& e : sleeping_)
    if (e.tid == tid) return true;
  return false;
}

void Model::wake_sleepers(std::size_t loc, bool is_write) {
  sleeping_.erase(std::remove_if(sleeping_.begin(), sleeping_.end(),
                                 [&](const SleepEntry& e) {
                                   return e.loc == loc &&
                                          (is_write || e.is_write);
                                 }),
                  sleeping_.end());
}

std::size_t Model::choose(std::size_t n) {
  if (n <= 1) return 0;
  std::size_t pick;
  if (depth_ < prefix_.size()) {
    pick = prefix_[depth_];
  } else if (random_mode_) {
    pick = static_cast<std::size_t>(rng_next() % n);
  } else {
    pick = 0;
  }
  if (pick >= n) pick = n - 1;  // defensive: replay divergence
  path_.push_back({static_cast<std::uint32_t>(pick),
                   static_cast<std::uint32_t>(n)});
  ++depth_;
  ++result_.branch_points;
  return pick;
}

std::uint64_t Model::rng_next() { return splitmix64(rng_state_); }

// ---------------------------------------------------------------------------
// Thread lifecycle and the cooperative handoff.
// ---------------------------------------------------------------------------

void Model::launch_thread(std::size_t tid) {
  threads_[tid].thr = std::thread([this, tid] { thread_main(tid); });
}

void Model::thread_main(std::size_t tid) {
  tls_model = this;
  tls_self = tid;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return running_ == tid; });
  }
  ThreadCtx& self = threads_[tid];
  if (!aborting_) {
    try {
      record_event(self, OpKind::kThreadStart, SIZE_MAX, false, 0, -1);
      self.fn();
      record_event(self, OpKind::kThreadExit, SIZE_MAX, false, 0, -1);
    } catch (const AbortExecution&) {
      // failure already recorded (or execution pruned); just unwind
    } catch (const std::exception& e) {
      if (!failed_) {
        failed_ = true;
        trace_.failure = "uncaught exception in T" + std::to_string(tid) +
                         ": " + e.what();
      }
    } catch (...) {
      if (!failed_) {
        failed_ = true;
        trace_.failure = "uncaught non-std exception in T" + std::to_string(tid);
      }
    }
  }
  std::unique_lock<std::mutex> lk(mu_);
  self.state = ThreadCtx::State::kDone;
  running_ = kController;
  cv_.notify_all();
}

void Model::resume_thread(std::size_t tid) {
  std::unique_lock<std::mutex> lk(mu_);
  running_ = tid;
  cv_.notify_all();
  cv_.wait(lk, [&] { return running_ == kController; });
}

void Model::schedule_point(ThreadCtx& self) {
  std::unique_lock<std::mutex> lk(mu_);
  running_ = kController;
  cv_.notify_all();
  cv_.wait(lk, [&] { return running_ == self.id; });
  if (aborting_) throw AbortExecution{};
}

void Model::abort_all_threads() {
  aborting_ = true;
  // Children unwind first; the body (T0, owner of the shared structures)
  // last, so its locals are destroyed after every other stack is gone.
  for (std::size_t i = threads_.size(); i-- > 1;)
    if (threads_[i].state != ThreadCtx::State::kDone) resume_thread(i);
  if (!threads_.empty() && threads_[0].state != ThreadCtx::State::kDone)
    resume_thread(0);
}

void Model::finish_threads() {
  for (ThreadCtx& t : threads_)
    if (t.thr.joinable()) t.thr.join();
}

std::size_t Model::spawn(std::function<void()> fn) {
  ThreadCtx& self = self_ctx();
  if (threads_.size() >= kMaxThreads)
    fail("spawn: more than " + std::to_string(kMaxThreads) + " model threads");
  const std::size_t tid = threads_.size();
  threads_.emplace_back();
  ThreadCtx& child = threads_.back();
  child.id = tid;
  child.fn = std::move(fn);
  child.hb = self.hb;  // spawn edge: the child sees everything the parent did
  child.hb.tick(tid);
  child.loc_view = self.loc_view;
  record_event(self, OpKind::kSpawn, SIZE_MAX, false, tid, -1);
  launch_thread(tid);
  return tid;
}

void Model::join(std::size_t tid) {
  ThreadCtx& self = self_ctx();
  while (threads_[tid].state != ThreadCtx::State::kDone) {
    self.state = ThreadCtx::State::kBlockedJoin;
    self.join_target = tid;
    self.pending = {OpKind::kJoin, SIZE_MAX, false};
    schedule_point(self);
    self.state = ThreadCtx::State::kRunnable;
    self.join_target = SIZE_MAX;
  }
  // Join edge: the parent sees everything the child did.
  self.hb.merge(threads_[tid].hb);
  merge_loc_views(self.loc_view, threads_[tid].loc_view);
  record_event(self, OpKind::kJoin, SIZE_MAX, false, tid, -1);
}

void Model::thread_yield() {
  ThreadCtx& self = self_ctx();
  if (aborting_) return;
  record_event(self, OpKind::kYield, SIZE_MAX, false, 0, -1);
  self.state = ThreadCtx::State::kYielded;
  self.yield_epoch = store_epoch_;
  self.pending = {OpKind::kYield, SIZE_MAX, false};
  schedule_point(self);
  self.state = ThreadCtx::State::kRunnable;
  // Staleness is bounded on real hardware: by the time a descheduled thread
  // runs again, earlier stores have propagated. Advance this thread's
  // coherence floors to the newest store of every location so a spin loop
  // cannot re-read a stale value forever (which would be a false deadlock
  // once the writer finishes). Floors carry NO happens-before: reading the
  // fresh value without acquire still races on the data it publishes.
  for (std::size_t loc = 0; loc < atomics_.size(); ++loc) {
    if (atomics_[loc].history.empty()) continue;
    std::uint32_t& v = view_of(self, loc);
    v = std::max(v, atomics_[loc].history.back().seq);
  }
}

void Model::fail(const std::string& message) {
  if (!failed_) {
    failed_ = true;
    trace_.failure = message;
  }
  throw AbortExecution{};
}

// ---------------------------------------------------------------------------
// Memory model: per-location store histories, per-thread views, race clocks.
// ---------------------------------------------------------------------------

TraceEvent& Model::record_event(ThreadCtx& self, OpKind kind, std::size_t loc,
                                bool loc_is_data, std::uint64_t value,
                                int order) {
  TraceEvent e;
  e.index = trace_.events.size();
  e.thread = self.id;
  e.kind = kind;
  e.loc = loc;
  e.loc_is_data = loc_is_data;
  e.value = value;
  e.order = order;
  trace_.events.push_back(e);
  return trace_.events.back();
}

void Model::mark_accessor(std::size_t loc, std::size_t tid) {
  if (shared_mask_.size() <= loc) shared_mask_.resize(loc + 1, 0);
  const auto bit = static_cast<std::uint8_t>(1u << tid);
  std::uint8_t& m = shared_mask_[loc];
  if ((m & bit) == 0) {
    const bool was_shared = std::popcount(m) >= 2;
    m = static_cast<std::uint8_t>(m | bit);
    if (!was_shared && std::popcount(m) >= 2) sharing_grew_ = true;
  }
}

bool Model::loc_is_shared(std::size_t loc) const {
  return loc < shared_mask_.size() && std::popcount(shared_mask_[loc]) >= 2;
}

std::uint32_t& Model::view_of(ThreadCtx& t, std::size_t loc) {
  if (t.loc_view.size() <= loc) t.loc_view.resize(loc + 1, 0);
  return t.loc_view[loc];
}

std::size_t Model::register_atomic(std::uint64_t initial) {
  ThreadCtx& self = self_ctx();
  const std::size_t loc = atomics_.size();
  atomics_.emplace_back();
  AtomicLoc& a = atomics_.back();
  self.hb.tick(self.id);
  StoreRecord s;
  s.value = initial;
  s.writer = self.id;
  s.seq = 0;
  a.next_seq = 1;
  // Initialization is not an atomic op: its visibility to other threads
  // rides on whatever edge publishes the enclosing object (spawn, or a
  // release store of a pointer to it) — exactly the C++ rule.
  if (!aborting_) {
    TraceEvent& e = record_event(self, OpKind::kAtomicStore, loc, false,
                                 initial, -1);
    e.note = "init";
    s.event_index = e.index;
  }
  view_of(self, loc) = 0;
  mark_accessor(loc, self.id);
  a.history.push_back(std::move(s));
  return loc;
}

void Model::unregister_atomic(std::size_t loc) {
  if (loc < atomics_.size()) atomics_[loc].alive = false;
}

std::size_t Model::register_data() {
  ThreadCtx& self = self_ctx();
  const std::size_t loc = datas_.size();
  datas_.emplace_back();
  DataLoc& d = datas_.back();
  self.hb.tick(self.id);
  d.last_writer = self.id;
  d.write_epoch = self.hb.at(self.id);
  if (!aborting_) {
    TraceEvent& e = record_event(self, OpKind::kDataStore, loc, true, 0, -1);
    e.note = "init";
    d.write_event = e.index;
  }
  return loc;
}

void Model::unregister_data(std::size_t loc) {
  if (loc < datas_.size()) datas_[loc].alive = false;
}

bool Model::should_park(std::size_t loc) const {
  // A schedule point is only worth taking when another thread could actually
  // be scheduled instead AND the location is contended (exhaustive mode) or
  // we are in the all-points random mode. The alive>1 condition also keeps
  // post-join teardown (destructors are noexcept) from ever parking, so an
  // abort can never need to throw through a destructor.
  if (aborting_) return false;
  std::size_t alive = 0;
  for (const ThreadCtx& t : threads_)
    if (t.state != ThreadCtx::State::kDone) ++alive;
  if (alive <= 1) return false;
  return loc_is_shared(loc) || random_mode_;
}

std::uint64_t Model::atomic_load(std::size_t loc, std::memory_order mo) {
  ThreadCtx& self = self_ctx();
  mark_accessor(loc, self.id);
  if (should_park(loc)) {
    self.pending = {OpKind::kAtomicLoad, loc, false};
    schedule_point(self);
  }
  return execute_load(self, loc, mo);
}

std::uint64_t Model::execute_load(ThreadCtx& self, std::size_t loc,
                                  std::memory_order mo) {
  AtomicLoc& a = atomics_[loc];
  if (!a.alive && !aborting_)
    fail("use-after-free: load of dead atomic a" + std::to_string(loc) +
         " by T" + std::to_string(self.id));
  self.hb.tick(self.id);

  // Coherence floor: this thread's view of the location, plus (for seq_cst
  // loads) the newest seq_cst store — the SC total order is schedule order.
  std::uint32_t floor = view_of(self, loc);
  if (mo == std::memory_order_seq_cst && a.latest_sc_seq >= 0)
    floor = std::max(floor, static_cast<std::uint32_t>(a.latest_sc_seq));

  std::size_t first = 0;
  while (first < a.history.size() && a.history[first].seq < floor) ++first;
  const std::size_t n = a.history.size() - first;
  std::size_t pick = 0;  // 0 = newest (the SC-like execution explored first)
  if (n > 1 && !aborting_) pick = choose(n);
  const StoreRecord& s = a.history[a.history.size() - 1 - pick];

  view_of(self, loc) = std::max(view_of(self, loc), s.seq);
  bool synced = false;
  if (is_acquire(mo) && s.has_release_view) {
    self.hb.merge(s.release_hb);
    merge_loc_views(self.loc_view, s.release_locs);
    synced = true;
  }
  if (!aborting_) {
    TraceEvent& e = record_event(self, OpKind::kAtomicLoad, loc, false,
                                 s.value, static_cast<int>(mo));
    e.read_from = s.seq;
    e.synced = synced;
    if (synced) trace_.hb_edges.push_back({s.event_index, e.index, loc});
    wake_sleepers(loc, false);
  }
  return s.value;
}

void Model::atomic_store(std::size_t loc, std::uint64_t value,
                         std::memory_order mo) {
  ThreadCtx& self = self_ctx();
  mark_accessor(loc, self.id);
  if (should_park(loc)) {
    self.pending = {OpKind::kAtomicStore, loc, true};
    schedule_point(self);
  }
  execute_store(self, loc, value, mo);
}

void Model::execute_store(ThreadCtx& self, std::size_t loc,
                          std::uint64_t value, std::memory_order mo) {
  AtomicLoc& a = atomics_[loc];
  if (!a.alive && !aborting_)
    fail("use-after-free: store to dead atomic a" + std::to_string(loc) +
         " by T" + std::to_string(self.id));
  self.hb.tick(self.id);

  const bool demoted = opts_.demote_store_loc >= 0 &&
                       static_cast<std::size_t>(opts_.demote_store_loc) == loc &&
                       is_release(mo);
  const std::memory_order eff = demoted ? std::memory_order_relaxed : mo;

  StoreRecord s;
  s.value = value;
  s.writer = self.id;
  s.seq = a.next_seq++;
  view_of(self, loc) = s.seq;
  if (is_release(eff)) {
    // A plain (non-RMW) store starts a fresh release sequence; it does NOT
    // inherit the previous store's views (C++20 dropped same-thread
    // continuation, and wfcheck models the C++20 rule).
    s.has_release_view = true;
    s.release_hb = self.hb;
    s.release_locs = self.loc_view;
  }
  s.is_sc = eff == std::memory_order_seq_cst;
  if (s.is_sc) a.latest_sc_seq = s.seq;
  if (!aborting_) {
    TraceEvent& e = record_event(self, OpKind::kAtomicStore, loc, false, value,
                                 static_cast<int>(mo));
    e.demoted = demoted;
    s.event_index = e.index;
  }
  a.history.push_back(std::move(s));
  ++store_epoch_;
  if (!aborting_) wake_sleepers(loc, true);
  prune_history(loc);
}

std::uint64_t Model::atomic_rmw(std::size_t loc, RmwOp op,
                                std::uint64_t operand,
                                std::uint64_t cas_expected,
                                std::memory_order mo, bool* cas_ok) {
  ThreadCtx& self = self_ctx();
  mark_accessor(loc, self.id);
  if (should_park(loc)) {
    self.pending = {OpKind::kAtomicRmw, loc, true};
    schedule_point(self);
  }
  AtomicLoc& a = atomics_[loc];
  if (!a.alive && !aborting_)
    fail("use-after-free: rmw on dead atomic a" + std::to_string(loc) +
         " by T" + std::to_string(self.id));
  self.hb.tick(self.id);

  // An RMW reads the LAST value in modification order (C++ guarantees this
  // atomicity); only plain loads may observe stale stores.
  const StoreRecord last = a.history.back();
  const std::uint64_t prev = last.value;
  const bool acq = is_acquire(mo);

  if (op == RmwOp::kCas && prev != cas_expected) {
    if (cas_ok != nullptr) *cas_ok = false;
    view_of(self, loc) = std::max(view_of(self, loc), last.seq);
    if (acq && last.has_release_view) {
      self.hb.merge(last.release_hb);
      merge_loc_views(self.loc_view, last.release_locs);
    }
    if (!aborting_) {
      TraceEvent& e = record_event(self, OpKind::kAtomicRmw, loc, false, prev,
                                   static_cast<int>(mo));
      e.read_from = last.seq;
      e.note = "cas-fail";
      wake_sleepers(loc, false);
    }
    return prev;
  }
  if (cas_ok != nullptr) *cas_ok = true;

  std::uint64_t next = 0;
  switch (op) {
    case RmwOp::kAdd: next = prev + operand; break;
    case RmwOp::kSub: next = prev - operand; break;
    case RmwOp::kExchange:
    case RmwOp::kCas: next = operand; break;
  }

  bool synced = false;
  if (acq && last.has_release_view) {
    self.hb.merge(last.release_hb);
    merge_loc_views(self.loc_view, last.release_locs);
    synced = true;
  }

  const bool demoted = opts_.demote_store_loc >= 0 &&
                       static_cast<std::size_t>(opts_.demote_store_loc) == loc &&
                       is_release(mo);
  StoreRecord s;
  s.value = next;
  s.writer = self.id;
  s.seq = a.next_seq++;
  view_of(self, loc) = s.seq;
  if (last.has_release_view) {
    // Release-sequence continuation: an RMW carries forward the views of the
    // store it read, whatever its own order.
    s.has_release_view = true;
    s.release_hb = last.release_hb;
    s.release_locs = last.release_locs;
  }
  if (is_release(mo) && !demoted) {
    s.has_release_view = true;
    s.release_hb.merge(self.hb);
    merge_loc_views(s.release_locs, self.loc_view);
  }
  s.is_sc = mo == std::memory_order_seq_cst && !demoted;
  if (s.is_sc) a.latest_sc_seq = s.seq;
  if (!aborting_) {
    TraceEvent& e = record_event(self, OpKind::kAtomicRmw, loc, false, next,
                                 static_cast<int>(mo));
    e.read_from = last.seq;
    e.synced = synced;
    e.demoted = demoted;
    if (synced) trace_.hb_edges.push_back({last.event_index, e.index, loc});
    s.event_index = e.index;
  }
  a.history.push_back(std::move(s));
  ++store_epoch_;
  if (!aborting_) wake_sleepers(loc, true);
  prune_history(loc);
  return prev;
}

void Model::prune_history(std::size_t loc) {
  AtomicLoc& a = atomics_[loc];
  if (a.history.size() <= 16) return;
  std::uint32_t floor = UINT32_MAX;
  for (ThreadCtx& t : threads_) {
    if (t.state == ThreadCtx::State::kDone) continue;
    floor = std::min(floor, view_of(t, loc));
  }
  std::size_t drop = 0;
  while (drop + 1 < a.history.size() && a.history[drop].seq < floor) ++drop;
  if (drop > 0)
    a.history.erase(a.history.begin(),
                    a.history.begin() + static_cast<std::ptrdiff_t>(drop));
}

void Model::data_load(std::size_t loc, std::uint64_t value_bits) {
  ThreadCtx& self = self_ctx();
  if (aborting_) return;
  DataLoc& d = datas_[loc];
  if (!d.alive)
    fail("use-after-free: read of dead data cell d" + std::to_string(loc) +
         " by T" + std::to_string(self.id));
  self.hb.tick(self.id);
  TraceEvent& e = record_event(self, OpKind::kDataLoad, loc, true, value_bits,
                               -1);
  if (d.last_writer != SIZE_MAX && d.last_writer != self.id &&
      d.write_epoch > self.hb.at(d.last_writer)) {
    fail("data race on d" + std::to_string(loc) + ": read by T" +
         std::to_string(self.id) + " (event #" + std::to_string(e.index) +
         ") is unordered with write by T" + std::to_string(d.last_writer) +
         " (event #" + std::to_string(d.write_event) +
         ") — no happens-before edge (missing release/acquire?)");
  }
  d.read_epochs[self.id] = self.hb.at(self.id);
  d.read_events[self.id] = e.index;
}

void Model::data_store(std::size_t loc, std::uint64_t value_bits) {
  ThreadCtx& self = self_ctx();
  if (aborting_) return;
  DataLoc& d = datas_[loc];
  if (!d.alive)
    fail("use-after-free: write of dead data cell d" + std::to_string(loc) +
         " by T" + std::to_string(self.id));
  self.hb.tick(self.id);
  TraceEvent& e = record_event(self, OpKind::kDataStore, loc, true, value_bits,
                               -1);
  if (d.last_writer != SIZE_MAX && d.last_writer != self.id &&
      d.write_epoch > self.hb.at(d.last_writer)) {
    fail("data race on d" + std::to_string(loc) + ": write by T" +
         std::to_string(self.id) + " (event #" + std::to_string(e.index) +
         ") is unordered with write by T" + std::to_string(d.last_writer) +
         " (event #" + std::to_string(d.write_event) +
         ") — no happens-before edge (missing release/acquire?)");
  }
  for (std::size_t r = 0; r < kMaxThreads; ++r) {
    if (r == self.id || d.read_epochs[r] == 0) continue;
    if (d.read_epochs[r] > self.hb.at(r)) {
      fail("data race on d" + std::to_string(loc) + ": write by T" +
           std::to_string(self.id) + " (event #" + std::to_string(e.index) +
           ") is unordered with read by T" + std::to_string(r) + " (event #" +
           std::to_string(d.read_events[r]) +
           ") — no happens-before edge (missing release/acquire?)");
    }
  }
  d.last_writer = self.id;
  d.write_epoch = self.hb.at(self.id);
  d.write_event = e.index;
  d.read_epochs.fill(0);
}

// ---------------------------------------------------------------------------
// Free-function helpers.
// ---------------------------------------------------------------------------

namespace {
Model& required_model() {
  Model* m = Model::current();
  if (m == nullptr)
    throw std::logic_error(
        "wfcheck: mc::spawn/join/yield/model_assert used outside mc::check");
  return *m;
}
}  // namespace

std::size_t spawn(std::function<void()> fn) {
  return required_model().spawn(std::move(fn));
}

void join(std::size_t tid) { required_model().join(tid); }

void yield() { required_model().thread_yield(); }

void model_assert(bool condition, const char* message) {
  if (!condition)
    required_model().fail(std::string("assertion failed: ") + message);
}

CheckResult check(const ModelOptions& options,
                  const std::function<void()>& body) {
  Model model;
  return model.check(options, body);
}

Trace replay_seed(const ModelOptions& options, std::uint64_t seed,
                  const std::function<void()>& body) {
  Model model;
  return model.replay_seed(options, seed, body);
}

}  // namespace wfbn::mc
