// wfcheck: a loom/relacy-style deterministic concurrency model checker for
// the repo's wait-free primitives.
//
// The Model runs real protocol code (SpscQueue, SpinBarrier, BasicPtrCell —
// instantiated with the ModelAtomics policy from analysis/model_atomic.hpp)
// under a cooperative scheduler. Only one model thread runs at a time; every
// atomic operation on a *shared* location is a schedule point where the
// scheduler may hand control to another thread. Schedules are enumerated
// depth-first and exhaustively up to a preemption bound, with DPOR-lite
// pruning (last-access/sharedness: context switches are only considered at
// operations on locations touched by more than one thread — learned across
// executions and iterated to a fixpoint — plus sleep sets over explored
// siblings), and then sampled with seeded random schedules beyond the bound.
//
// Weak memory is simulated operationally, per location:
//  - every atomic store is appended to the location's modification-order
//    history; a relaxed or acquire load may legally return ANY store not
//    excluded by coherence (the thread's per-location view) — which store is
//    itself a checker decision, so stale values are explored systematically;
//  - release stores snapshot the writer's views; acquire loads that read
//    them merge the snapshot (the syncs-with edge). A release edge that was
//    never formed — e.g. a store mutated to relaxed — therefore never
//    transfers the writer's clock, and the non-atomic data it was supposed
//    to publish (Policy::Data cells) is flagged by the vector-clock race
//    detector;
//  - seq_cst is modeled as acquire/release plus a per-location constraint
//    that a seq_cst load cannot read anything older than the newest seq_cst
//    store (the SC total order is the schedule order).
//
// What the model can and cannot prove is documented in docs/VERIFICATION.md.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/trace.hpp"
#include "analysis/version_vec.hpp"

namespace wfbn::mc {

struct ModelOptions {
  /// Max context switches away from a runnable thread per execution in the
  /// exhaustive phase (free switches at blocked/finished threads don't
  /// count). The phase enumerates every schedule within this bound.
  std::size_t preemption_bound = 2;
  /// Abort the exhaustive phase (exhausted=false) past this many executions.
  std::uint64_t max_exhaustive_executions = 200000;
  /// Seeded random schedules run after the exhaustive phase, with no
  /// preemption bound — the "beyond the bound" sampling pass.
  std::size_t random_schedules = 128;
  std::uint64_t seed = 0x5eed;
  /// Runaway guard: an execution this long is reported as a livelock.
  std::size_t max_steps_per_execution = 50000;
  /// Sleep-set pruning over explored siblings (exhaustive phase only).
  bool sleep_sets = true;
  /// Mutation knob for the checker's self-test: every release/seq_cst STORE
  /// to the atomic location with this creation-order id executes as relaxed
  /// (no release view, no SC slot). -1 = off.
  int demote_store_loc = -1;
};

struct CheckResult {
  bool ok = true;
  bool exhausted = false;  ///< exhaustive phase fully enumerated within bounds
  std::uint64_t executions = 0;
  std::uint64_t exhaustive_executions = 0;
  std::uint64_t random_executions = 0;
  std::uint64_t branch_points = 0;    ///< decision nodes visited (all kinds)
  std::uint64_t sleep_set_prunes = 0; ///< executions cut as redundant
  std::uint64_t sharing_rounds = 0;   ///< fixpoint repeats of the phase
  std::size_t shared_locations = 0;
  std::string failure;  ///< empty = all executions passed
  Trace trace;          ///< the failing interleaving when !ok
  [[nodiscard]] std::string summary() const;
};

/// Thrown inside model threads to unwind them when an execution is aborted
/// (failure found, or schedule pruned as redundant). User protocol code is
/// exception-safe, so stacks unwind cleanly.
struct AbortExecution {};

enum class RmwOp : std::uint8_t { kAdd, kSub, kExchange, kCas };

class Model {
 public:
  /// The model driving the calling thread's execution, or nullptr when the
  /// caller is not a model thread (i.e. production code).
  static Model* current() noexcept;

  /// Runs `body` (on model thread 0) under every schedule the options allow.
  /// `body` constructs the shared state, spawns threads with mc::spawn,
  /// joins them with mc::join, and asserts invariants with mc::model_assert.
  /// Stops at the first failing schedule.
  CheckResult check(const ModelOptions& options,
                    const std::function<void()>& body);

  /// Runs exactly ONE execution under the seeded random scheduler and
  /// returns its trace (pass or fail) — the replay-by-seed entry point.
  Trace replay_seed(const ModelOptions& options, std::uint64_t seed,
                    const std::function<void()>& body);

  // ------------------------------------------------------------------
  // Instrumentation API — called from model threads by the ModelAtomic /
  // ModelData wrappers and the spawn/join/yield helpers.
  // ------------------------------------------------------------------
  std::size_t register_atomic(std::uint64_t initial);
  void unregister_atomic(std::size_t loc);
  std::uint64_t atomic_load(std::size_t loc, std::memory_order mo);
  void atomic_store(std::size_t loc, std::uint64_t value, std::memory_order mo);
  /// Returns the previous value. For kCas, `*cas_ok` reports success and the
  /// store only happens when the previous value equals `cas_expected`.
  std::uint64_t atomic_rmw(std::size_t loc, RmwOp op, std::uint64_t operand,
                           std::uint64_t cas_expected, std::memory_order mo,
                           bool* cas_ok = nullptr);

  std::size_t register_data();
  void unregister_data(std::size_t loc);
  void data_load(std::size_t loc, std::uint64_t value_bits);
  void data_store(std::size_t loc, std::uint64_t value_bits);

  std::size_t spawn(std::function<void()> fn);
  void join(std::size_t tid);
  /// What a model spin loop does while it waits: the thread is descheduled
  /// until some other thread performs an atomic store/RMW.
  void thread_yield();
  /// Records a failure and aborts the current execution.
  [[noreturn]] void fail(const std::string& message);

 private:
  static constexpr std::size_t kController = SIZE_MAX;

  struct StoreRecord {
    std::uint64_t value = 0;
    std::size_t writer = 0;
    std::uint32_t seq = 0;
    bool has_release_view = false;
    VersionVec release_hb;                    ///< writer hb at the release
    std::vector<std::uint32_t> release_locs;  ///< writer per-loc view at it
    bool is_sc = false;
    std::size_t event_index = 0;
  };

  struct AtomicLoc {
    std::vector<StoreRecord> history;  ///< modification order, pruned prefix
    std::uint32_t next_seq = 0;
    std::int64_t latest_sc_seq = -1;
    bool alive = true;
  };

  struct DataLoc {
    std::size_t last_writer = SIZE_MAX;
    std::uint32_t write_epoch = 0;
    std::size_t write_event = SIZE_MAX;
    std::array<std::uint32_t, kMaxThreads> read_epochs{};
    std::array<std::size_t, kMaxThreads> read_events{};
    bool alive = true;
  };

  struct PendingOp {
    OpKind kind = OpKind::kThreadStart;
    std::size_t loc = SIZE_MAX;
    bool is_write = false;
  };

  struct ThreadCtx {
    std::size_t id = 0;
    std::thread thr;
    enum class State { kRunnable, kBlockedJoin, kYielded, kDone };
    State state = State::kRunnable;
    std::size_t join_target = SIZE_MAX;
    std::uint64_t yield_epoch = 0;  ///< store_epoch_ when it yielded
    PendingOp pending;
    VersionVec hb;
    std::vector<std::uint32_t> loc_view;  ///< per atomic loc: coherence floor
    std::function<void()> fn;
  };

  struct ChoiceNode {
    std::uint32_t pick = 0;
    std::uint32_t n = 0;
  };

  struct SleepEntry {
    std::size_t tid;
    std::size_t loc;
    bool is_write;
  };

  // --- execution driving (controller side) ---
  void run_one_execution(const std::function<void()>& body);
  void launch_thread(std::size_t tid);
  void resume_thread(std::size_t tid);
  void abort_all_threads();
  void finish_threads();
  std::size_t pick_next_thread(bool* out_redundant);
  CheckResult finalize_failure(std::uint64_t seed);
  [[nodiscard]] std::size_t count_shared() const;
  [[nodiscard]] bool is_sleeping(std::size_t tid) const;

  // --- model thread side ---
  void thread_main(std::size_t tid);
  void schedule_point(ThreadCtx& self);
  [[nodiscard]] bool runnable_now(const ThreadCtx& t) const;
  [[nodiscard]] bool has_unseen_store(const ThreadCtx& t) const;

  // --- decisions ---
  std::size_t choose(std::size_t n);
  std::uint64_t rng_next();

  // --- memory model ---
  std::uint64_t execute_load(ThreadCtx& self, std::size_t loc,
                             std::memory_order mo);
  void execute_store(ThreadCtx& self, std::size_t loc, std::uint64_t value,
                     std::memory_order mo);
  void prune_history(std::size_t loc);
  void wake_sleepers(std::size_t loc, bool is_write);
  TraceEvent& record_event(ThreadCtx& self, OpKind kind, std::size_t loc,
                           bool loc_is_data, std::uint64_t value, int order);
  [[nodiscard]] bool loc_is_shared(std::size_t loc) const;
  [[nodiscard]] bool should_park(std::size_t loc) const;
  void mark_accessor(std::size_t loc, std::size_t tid);
  std::uint32_t& view_of(ThreadCtx& t, std::size_t loc);

  ThreadCtx& self_ctx();

  // --- per-check() state ---
  ModelOptions opts_;
  std::vector<std::uint8_t> shared_mask_;  ///< per loc id: accessor bitmask
  bool sharing_grew_ = false;
  CheckResult result_;

  // --- per-execution state ---
  std::vector<ThreadCtx> threads_;
  std::vector<AtomicLoc> atomics_;
  std::vector<DataLoc> datas_;
  Trace trace_;
  std::vector<ChoiceNode> path_;
  std::vector<std::uint32_t> prefix_;
  std::size_t depth_ = 0;
  std::size_t preemptions_ = 0;
  std::size_t step_count_ = 0;
  std::uint64_t store_epoch_ = 1;
  std::size_t current_ = kController;
  std::vector<SleepEntry> sleeping_;
  bool random_mode_ = false;
  std::uint64_t rng_state_ = 0;
  std::uint64_t cur_seed_ = 0;
  bool aborting_ = false;
  bool redundant_ = false;
  bool failed_ = false;

  // --- handoff ---
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t running_ = kController;
};

// ------------------------------------------------------------------
// Harness-facing helpers (thin forwarding onto the active model).
// ------------------------------------------------------------------
std::size_t spawn(std::function<void()> fn);
void join(std::size_t tid);
void yield();
void model_assert(bool condition, const char* message);

/// One-shot convenience wrappers around a fresh Model.
CheckResult check(const ModelOptions& options, const std::function<void()>& body);
Trace replay_seed(const ModelOptions& options, std::uint64_t seed,
                  const std::function<void()>& body);

}  // namespace wfbn::mc
