// Vector clocks for the wfcheck model checker (docs/VERIFICATION.md): the
// happens-before machinery everything else builds on.
//
// A VersionVec maps each model thread to the newest event of that thread
// known to the clock's owner. Merging a store's release view into a loading
// thread's clock is how acquire/release synchronization is simulated;
// pointwise comparison is how the race detector asks "is that write ordered
// before this access?".
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace wfbn::mc {

/// Hard cap on model threads per execution (test body + spawned threads).
/// Checker harnesses use 2-4 threads; the cap keeps clocks flat and cheap.
inline constexpr std::size_t kMaxThreads = 8;

class VersionVec {
 public:
  [[nodiscard]] std::uint32_t at(std::size_t tid) const { return c_[tid]; }
  void set(std::size_t tid, std::uint32_t v) { c_[tid] = v; }
  void tick(std::size_t tid) { ++c_[tid]; }

  /// Pointwise maximum: afterwards *this knows everything `other` knew.
  void merge(const VersionVec& other) {
    for (std::size_t t = 0; t < kMaxThreads; ++t)
      c_[t] = std::max(c_[t], other.c_[t]);
  }

  /// True iff *this <= other pointwise, i.e. every event known here is also
  /// known to `other` (this clock happens-before-or-equals that one).
  [[nodiscard]] bool leq(const VersionVec& other) const {
    for (std::size_t t = 0; t < kMaxThreads; ++t)
      if (c_[t] > other.c_[t]) return false;
    return true;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out = "[";
    for (std::size_t t = 0; t < kMaxThreads; ++t) {
      if (c_[t] == 0) continue;
      if (out.size() > 1) out += ' ';
      out += 'T' + std::to_string(t) + ':' + std::to_string(c_[t]);
    }
    return out + "]";
  }

 private:
  std::array<std::uint32_t, kMaxThreads> c_{};
};

}  // namespace wfbn::mc
