// Failure traces for wfcheck: every instrumented operation of an execution
// is recorded as a TraceEvent, and when an execution fails (assertion, data
// race, deadlock, livelock) the full interleaving plus the happens-before
// edges that DID form is printed — the missing edge is usually visible by
// its absence. Traces also carry the decision string and seed that replay
// the schedule byte-for-byte (tests/test_wfcheck.cpp proves this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wfbn::mc {

enum class OpKind : std::uint8_t {
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kDataLoad,
  kDataStore,
  kYield,
  kSpawn,
  kJoin,
  kThreadStart,
  kThreadExit,
};

[[nodiscard]] const char* op_kind_name(OpKind kind) noexcept;

/// Memory orders as trace strings ("relaxed", "acquire", ...).
[[nodiscard]] const char* order_name(int std_memory_order) noexcept;

struct TraceEvent {
  std::size_t index = 0;       ///< position in the interleaving
  std::size_t thread = 0;
  OpKind kind = OpKind::kAtomicLoad;
  std::size_t loc = SIZE_MAX;  ///< location id (creation order), SIZE_MAX n/a
  bool loc_is_data = false;
  std::uint64_t value = 0;     ///< value read or written (raw bits)
  int order = -1;              ///< std::memory_order as int, -1 n/a
  std::size_t read_from = SIZE_MAX;  ///< for loads: mod-order seq of the store read
  bool synced = false;         ///< acquire load merged a release view
  bool demoted = false;        ///< mutation knob stripped this store's release
  std::string note;
};

/// One happens-before edge established by synchronization during the
/// execution (release store event -> acquire load event).
struct HbEdge {
  std::size_t from_event = 0;
  std::size_t to_event = 0;
  std::size_t loc = 0;
};

struct Trace {
  std::vector<TraceEvent> events;
  std::vector<HbEdge> hb_edges;
  std::vector<std::uint32_t> decisions;  ///< choice string that replays this
  std::uint64_t seed = 0;                ///< nonzero: random-mode schedule seed
  std::string failure;                   ///< empty = execution passed

  /// Human-readable dump: interleaving, then hb edges, then replay recipe.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace wfbn::mc
