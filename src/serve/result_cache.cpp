#include "serve/result_cache.hpp"

#include <algorithm>
#include <utility>

#include "util/fault_injection.hpp"

namespace wfbn::serve {

namespace {

/// FNV-1a over the key words, byte order independent of endianness concerns
/// because the words are hashed as 64-bit values directly.
std::uint64_t fnv1a(const std::vector<std::uint64_t>& words) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint64_t w : words) {
    h = (h ^ w) * 0x100000001B3ULL;
  }
  // Avalanche the tail so both the shard index (high bits) and the map
  // bucket (low bits) see well-mixed values even for near-identical keys.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

CacheKey::CacheKey(std::vector<std::uint64_t> words)
    : words_(std::move(words)), hash_(fnv1a(words_)) {}

ResultCache::ResultCache(std::size_t shards, std::size_t max_entries_per_shard)
    : max_entries_per_shard_(std::max<std::size_t>(max_entries_per_shard, 1)) {
  shards_.reserve(std::max<std::size_t>(shards, 1));
  for (std::size_t s = 0; s < std::max<std::size_t>(shards, 1); ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<std::vector<double>> ResultCache::lookup(const CacheKey& key) {
  Shard& shard = shard_of(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ResultCache::insert(const CacheKey& key, const std::vector<double>& values) {
  // Best-effort: a failing insert degrades to "not cached", never to a
  // failing query. kServeCache uses the non-throwing should_fail flavor for
  // exactly this reason (same pattern as thread-spawn degradation).
  if (fault::enabled() &&
      fault::should_fail(fault::Point::kServeCache)) [[unlikely]] {
    dropped_inserts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  Shard& shard = shard_of(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.size() >= max_entries_per_shard_ &&
      shard.map.find(key) == shard.map.end()) {
    // Reclaim superseded versions first; only a shard full of current-version
    // entries is cleared wholesale (coarse, but publishes reset the working
    // set anyway).
    std::size_t reclaimed = 0;
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->first.version() < key.version()) {
        it = shard.map.erase(it);
        ++reclaimed;
      } else {
        ++it;
      }
    }
    if (shard.map.size() >= max_entries_per_shard_) {
      reclaimed += shard.map.size();
      shard.map.clear();
    }
    evicted_.fetch_add(reclaimed, std::memory_order_relaxed);
  }
  const bool inserted = shard.map.emplace(key, values).second;
  if (inserted) {
    insertions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_inserts_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ResultCache::invalidate_before(std::uint64_t version) {
  std::size_t dropped = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (it->first.version() < version) {
        it = shard->map.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidated_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

CacheStats ResultCache::stats() const noexcept {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.dropped_inserts = dropped_inserts_.load(std::memory_order_relaxed);
  out.invalidated_entries = invalidated_.load(std::memory_order_relaxed);
  out.evicted_entries = evicted_.load(std::memory_order_relaxed);
  return out;
}

std::size_t ResultCache::entry_count() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

}  // namespace wfbn::serve
