#include "serve/result_cache.hpp"

#include <algorithm>
#include <utility>

#include "util/checksum.hpp"
#include "util/fault_injection.hpp"

namespace wfbn::serve {

// The shared FNV-1a word hash plus the avalanche finalizer, so both the
// shard index (high bits) and the map bucket (low bits) see well-mixed
// values even for near-identical keys.
CacheKey::CacheKey(std::vector<std::uint64_t> words)
    : words_(std::move(words)), hash_(avalanche64(fnv1a_words(words_))) {}

ResultCache::ResultCache(std::size_t shards, std::size_t max_entries_per_shard)
    : max_entries_per_shard_(std::max<std::size_t>(max_entries_per_shard, 1)) {
  shards_.reserve(std::max<std::size_t>(shards, 1));
  for (std::size_t s = 0; s < std::max<std::size_t>(shards, 1); ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<std::vector<double>> ResultCache::lookup(const CacheKey& key) {
  Shard& shard = shard_of(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ResultCache::insert(const CacheKey& key, const std::vector<double>& values) {
  // Best-effort: a failing insert degrades to "not cached", never to a
  // failing query. kServeCache uses the non-throwing should_fail flavor for
  // exactly this reason (same pattern as thread-spawn degradation).
  if (fault::enabled() &&
      fault::should_fail(fault::Point::kServeCache)) [[unlikely]] {
    dropped_inserts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  Shard& shard = shard_of(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.size() >= max_entries_per_shard_ &&
      shard.map.find(key) == shard.map.end()) {
    // Reclaim superseded versions first; only a shard full of current-version
    // entries is cleared wholesale (coarse, but publishes reset the working
    // set anyway).
    std::size_t reclaimed = 0;
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->first.version() < key.version()) {
        it = shard.map.erase(it);
        ++reclaimed;
      } else {
        ++it;
      }
    }
    if (shard.map.size() >= max_entries_per_shard_) {
      reclaimed += shard.map.size();
      shard.map.clear();
    }
    evicted_.fetch_add(reclaimed, std::memory_order_relaxed);
  }
  const bool inserted = shard.map.emplace(key, values).second;
  if (inserted) {
    insertions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_inserts_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ResultCache::invalidate_before(std::uint64_t version) {
  std::size_t dropped = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (it->first.version() < version) {
        it = shard->map.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidated_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

CacheStats ResultCache::stats() const noexcept {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.dropped_inserts = dropped_inserts_.load(std::memory_order_relaxed);
  out.invalidated_entries = invalidated_.load(std::memory_order_relaxed);
  out.evicted_entries = evicted_.load(std::memory_order_relaxed);
  return out;
}

std::size_t ResultCache::entry_count() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

}  // namespace wfbn::serve
