// SnapshotCell: a wait-free published pointer cell (the "left-right"
// construction of Ramalhete & Correia), used by TableStore to hand the
// current snapshot to readers.
//
// Why not std::atomic<std::shared_ptr>? libstdc++'s _Sp_atomic guards its
// internal pointer with a spin bit but releases it with a relaxed RMW on the
// read path, so a reader load racing a writer store is a data race under the
// C++ memory model (ThreadSanitizer reports it). This cell provides the same
// interface on top of plainly-ordered atomics, and makes the reader side
// *wait-free* rather than lock-bit-spinning:
//
//  - load(): two seq_cst RMW/loads, one shared_ptr copy, one release RMW.
//    No loops, no CAS retries, never blocked by a writer — a publish in
//    flight hands the reader either the old or the new snapshot, complete.
//  - store(): single-writer (TableStore serializes publishes behind its
//    ingest mutex). Writes the instance readers are NOT looking at, toggles
//    which instance readers use, then waits for the straggler cohorts to
//    drain before reusing the other instance. Writers wait; readers don't —
//    the same asymmetry the paper's primitives put at construction time.
//
// Correctness sketch (the left-right invariant): a reader copies
// instances_[lr] only after announcing itself on the read indicator chosen
// by version_index_; the writer only writes an instance after both drain
// phases observe the indicators at zero, which (via the seq_cst total order
// on arrive/toggle and the acquire/release pairing on depart/drain) implies
// every reader that could have been copying that instance has finished.
//
// The protocol is generic twice over: BasicPtrCell publishes any copyable
// pointer-like payload (the serve layer instantiates it with a snapshot
// shared_ptr), and the Policy parameter (concurrent/atomics_policy.hpp)
// selects real atomics or the wfcheck model backend, under which this exact
// publish/pin source is exhaustively interleaved and its instances_ slots
// are happens-before-checked.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "concurrent/atomics_policy.hpp"
#include "serve/snapshot.hpp"

namespace wfbn::serve {

template <typename PtrT, typename Policy = RealAtomics>
class BasicPtrCell {
 public:
  using Ptr = PtrT;

  explicit BasicPtrCell(Ptr initial) noexcept(Policy::kNoexceptOps) {
    instances_[0] = std::move(initial);
    instances_[1] = static_cast<Ptr>(instances_[0]);
  }

  BasicPtrCell(const BasicPtrCell&) = delete;
  BasicPtrCell& operator=(const BasicPtrCell&) = delete;

  /// Wait-free reader side: pins and returns the currently published
  /// snapshot. Safe from any thread, any number of concurrent readers.
  // wfbn-lint: wait-free-begin
  [[nodiscard]] Ptr load() const noexcept(Policy::kNoexceptOps) {
    const std::size_t vi = version_index_.load(std::memory_order_seq_cst);
    readers_[vi].count.fetch_add(1, std::memory_order_seq_cst);
    const std::size_t lr = left_right_.load(std::memory_order_seq_cst);
    Ptr result = instances_[lr];
    readers_[vi].count.fetch_sub(1, std::memory_order_release);
    return result;
  }
  // wfbn-lint: wait-free-end

  /// Publishes `next`. SINGLE WRITER: callers must serialize store() calls
  /// externally (TableStore holds its ingest mutex across this). May wait
  /// for in-flight readers to drain; never makes a reader wait.
  void store(Ptr next) noexcept(Policy::kNoexceptOps) {
    const std::size_t lr = left_right_.load(std::memory_order_relaxed);
    // No reader copies instances_[1 - lr]: stragglers from the previous
    // publish were drained before it was last written.
    instances_[1 - lr] = next;
    left_right_.store(1 - lr, std::memory_order_seq_cst);

    const std::size_t vi = version_index_.load(std::memory_order_relaxed);
    drain(1 - vi);
    version_index_.store(1 - vi, std::memory_order_seq_cst);
    drain(vi);
    // Both cohorts that could have been copying instances_[lr] are gone.
    instances_[lr] = std::move(next);
  }

 private:
  template <typename U>
  using Atomic = typename Policy::template Atomic<U>;

  void drain(std::size_t vi) const noexcept(Policy::kNoexceptOps) {
    std::size_t spins = 0;
    // seq_cst, not acquire: arrive/drain is a Dekker pattern (reader writes
    // the indicator then reads left_right_; writer writes left_right_ then
    // reads the indicator), and Dekker needs the SC total order on BOTH
    // sides. With an acquire load here the C++ model lets the writer miss an
    // announced reader entirely and reuse the instance it is still copying —
    // found by wfcheck (tests/test_wfcheck.cpp, model_snapshot_publish).
    // Same codegen as acquire on the writer-side spin for x86 and ARM.
    while (readers_[vi].count.load(std::memory_order_seq_cst) != 0) {
      if (++spins > Policy::kSpinYieldThreshold) Policy::yield();
    }
  }

  // Read indicators on separate cache lines: every reader RMWs one of them.
  struct alignas(64) Indicator {
    Atomic<std::uint64_t> count{0};
  };

  typename Policy::template Data<Ptr> instances_[2];
  Atomic<std::size_t> left_right_{0};    ///< which instance readers copy
  Atomic<std::size_t> version_index_{0};  ///< which indicator they use
  mutable Indicator readers_[2];
};

template <typename K, typename Policy = RealAtomics>
using BasicSnapshotCell = BasicPtrCell<BasicSnapshotPtr<K>, Policy>;

using SnapshotCell = BasicSnapshotCell<Key>;
using WideSnapshotCell = BasicSnapshotCell<WideKey>;

}  // namespace wfbn::serve
