// ServeEngine: the query-serving front end over a TableStore.
//
// One engine serves a mixed workload — normalized marginals, conditionals
// given evidence, pairwise mutual information — from whatever snapshot the
// store currently publishes. Per query it (1) pins the current snapshot with
// one wait-free load, (2) consults the sharded result cache under the key
// (kind, query payload, snapshot version), and (3) on a miss evaluates
// inline with a per-snapshot QueryEngine and inserts the answer. Ingestion
// goes through the same engine so the publish and the cache invalidation of
// superseded versions stay paired.
//
// Thread safety: every public method may be called concurrently from any
// number of threads. serve_batch() additionally dispatches a whole workload
// across an existing ThreadPool, block-partitioning the queries over the
// workers (the same scheduling the wait-free builder applies to rows).
//
// A template over the key type: the cache key packs only (version, kind,
// query payload) — never the table key — so ServeEngine (narrow) and
// WideServeEngine share the ResultCache implementation unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "core/query.hpp"
#include "data/dataset.hpp"
#include "serve/result_cache.hpp"
#include "serve/table_store.hpp"

namespace wfbn::serve {

struct ServeOptions {
  bool cache_enabled = true;
  std::size_t cache_shards = 16;
  std::size_t cache_entries_per_shard = 4096;
  /// Threads per single query sweep. 1 (the default) evaluates inline on the
  /// serving thread — the right choice under concurrent load, where the
  /// parallelism comes from many queries in flight, not from one query.
  std::size_t query_threads = 1;
};

enum class QueryKind : std::uint8_t {
  kMarginal,     ///< P(V) over `variables`
  kConditional,  ///< P(V | evidence)
  kPairMi,       ///< I(X_i; X_j) with variables = {i, j}
};

/// One request of a mixed workload.
struct ServeQuery {
  QueryKind kind = QueryKind::kMarginal;
  std::vector<std::size_t> variables;
  std::vector<Evidence> evidence;  ///< kConditional only
};

struct ServeResult {
  std::uint64_t version = 0;  ///< snapshot version that answered
  bool cache_hit = false;
  bool ok = true;             ///< false only from serve_batch (error captured)
  std::string error;          ///< populated when !ok
  /// The distribution in MarginalTable layout for kMarginal/kConditional;
  /// a single element — I(X_i;X_j) in nats — for kPairMi.
  std::vector<double> values;
};

template <typename K>
class BasicServeEngine {
 public:
  using Store = BasicTableStore<K>;
  using Table = BasicPotentialTable<K>;

  /// Borrows `store`; it must outlive the engine.
  explicit BasicServeEngine(Store& store, ServeOptions options = {});

  /// P(V). Throws PreconditionError on invalid variables.
  ServeResult marginal(std::span<const std::size_t> variables);

  /// P(V | evidence). Throws DataError on zero-support evidence; the failed
  /// answer is never cached.
  ServeResult conditional(std::span<const std::size_t> variables,
                          std::span<const Evidence> evidence);

  /// I(X_i; X_j) in nats, from the pair marginal of the current snapshot.
  ServeResult pair_mi(std::size_t i, std::size_t j);

  /// Dispatches one ServeQuery to the matching method above.
  ServeResult serve(const ServeQuery& query);

  /// Runs a mixed workload across `pool`, one contiguous block of queries
  /// per worker. Per-query failures are captured in the result (ok = false)
  /// instead of aborting the batch — a serving layer answers what it can.
  std::vector<ServeResult> serve_batch(std::span<const ServeQuery> queries,
                                       ThreadPool& pool);

  /// Publishes `batch` as the next snapshot version (TableStore::ingest) and
  /// invalidates cached answers of superseded versions. Throws without
  /// publishing on failure; the served version is untouched.
  IngestStats ingest(const Dataset& batch);

  /// Tells the engine a new version was published *around* it — e.g. by a
  /// DurableTableStore wrapping the same underlying store — so superseded
  /// cached answers can be reclaimed. Purely a memory-reclaim hook: the
  /// version-keyed cache is already correct without it.
  void note_published(std::uint64_t version);

  [[nodiscard]] CacheStats cache_stats() const noexcept {
    return cache_.stats();
  }
  [[nodiscard]] const Store& store() const noexcept { return *store_; }
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }

 private:
  ServeResult answer(QueryKind kind, std::span<const std::size_t> variables,
                     std::span<const Evidence> evidence);
  [[nodiscard]] std::vector<double> compute(
      const Table& table, QueryKind kind,
      std::span<const std::size_t> variables,
      std::span<const Evidence> evidence) const;

  Store* store_;
  ServeOptions options_;
  ResultCache cache_;
};

extern template class BasicServeEngine<Key>;
extern template class BasicServeEngine<WideKey>;

using ServeEngine = BasicServeEngine<Key>;
using WideServeEngine = BasicServeEngine<WideKey>;

}  // namespace wfbn::serve
