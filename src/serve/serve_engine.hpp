// ServeEngine: the query-serving front end over a TableStore.
//
// One engine serves a mixed workload — normalized marginals, conditionals
// given evidence, pairwise mutual information — from whatever snapshot the
// store currently publishes. Per query it (1) pins the current snapshot with
// one wait-free load, (2) consults the sharded result cache under the key
// (kind, query payload, snapshot version), and (3) on a miss evaluates
// inline with a per-snapshot QueryEngine and inserts the answer. Ingestion
// goes through the same engine so the publish and the cache invalidation of
// superseded versions stay paired.
//
// Thread safety: every public method may be called concurrently from any
// number of threads. serve_batch() additionally dispatches a whole workload
// across an existing ThreadPool, block-partitioning the queries over the
// workers (the same scheduling the wait-free builder applies to rows).
//
// A template over the key type: the cache key packs only (version, kind,
// query payload) — never the table key — so ServeEngine (narrow) and
// WideServeEngine share the ResultCache implementation unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "core/query.hpp"
#include "data/dataset.hpp"
#include "learn/ci_scheduler.hpp"
#include "serve/result_cache.hpp"
#include "serve/table_store.hpp"

namespace wfbn::serve {

struct ServeOptions {
  bool cache_enabled = true;
  std::size_t cache_shards = 16;
  std::size_t cache_entries_per_shard = 4096;
  /// Threads per single query sweep. 1 (the default) evaluates inline on the
  /// serving thread — the right choice under concurrent load, where the
  /// parallelism comes from many queries in flight, not from one query.
  std::size_t query_threads = 1;
};

enum class QueryKind : std::uint8_t {
  kMarginal,     ///< P(V) over `variables`
  kConditional,  ///< P(V | evidence)
  kPairMi,       ///< I(X_i; X_j) with variables = {i, j}
};

/// One request of a mixed workload.
struct ServeQuery {
  QueryKind kind = QueryKind::kMarginal;
  std::vector<std::size_t> variables;
  std::vector<Evidence> evidence;  ///< kConditional only
};

struct ServeResult {
  std::uint64_t version = 0;  ///< snapshot version that answered
  bool cache_hit = false;
  bool ok = true;             ///< false only from serve_batch (error captured)
  std::string error;          ///< populated when !ok
  /// The distribution in MarginalTable layout for kMarginal/kConditional;
  /// a single element — I(X_i;X_j) in nats — for kPairMi.
  std::vector<double> values;
};

enum class LearnAlgorithm : std::uint8_t {
  kCheng = 0,     ///< Cheng et al. three-phase constraint learner
  kPcStable = 1,  ///< PC-stable skeleton + orientation
  kChowLiu = 2,   ///< maximum-MI spanning tree
};

/// A "learn the structure" job served against the current snapshot — the
/// admin-class counterpart of a ServeQuery. Bounded by construction: the
/// cut-set / level caps limit the conditioning tables, `threads` the pool
/// the job may occupy, and `cancel` lets the caller abort a running job
/// cooperatively (the learner throws OperationCancelled at the next CI
/// test — a clean error, never a torn graph).
struct LearnRequest {
  LearnAlgorithm algorithm = LearnAlgorithm::kCheng;
  CiMethod method = CiMethod::kMiThreshold;
  double mi_threshold = 0.01;  ///< ε for kMiThreshold; min-MI for kChowLiu
  double alpha = 0.01;         ///< significance for kGTest
  std::size_t max_cutset_size = 6;  ///< kCheng
  std::size_t max_level = 3;        ///< kPcStable
  std::size_t threads = 1;          ///< workers for this job's pool
  const std::atomic<bool>* cancel = nullptr;  ///< borrowed, may be null
};

/// The learned CPDAG, version-stamped like every served answer. Skeleton
/// edges are (min, max) pairs in lexicographic order; directed edges are
/// (from, to) in the oriented DAG's lexicographic order.
struct LearnedStructure {
  std::uint64_t version = 0;  ///< snapshot version learned against
  std::size_t nodes = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> skeleton_edges;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> directed_edges;
  std::uint64_t ci_tests = 0;
  double seconds = 0.0;  ///< wall time of the learn job
  CiScheduleStats schedule;
};

template <typename K>
class BasicServeEngine {
 public:
  using Store = BasicTableStore<K>;
  using Table = BasicPotentialTable<K>;

  /// Borrows `store`; it must outlive the engine.
  explicit BasicServeEngine(Store& store, ServeOptions options = {});

  /// P(V). Throws PreconditionError on invalid variables.
  ServeResult marginal(std::span<const std::size_t> variables);

  /// P(V | evidence). Throws DataError on zero-support evidence; the failed
  /// answer is never cached.
  ServeResult conditional(std::span<const std::size_t> variables,
                          std::span<const Evidence> evidence);

  /// I(X_i; X_j) in nats, from the pair marginal of the current snapshot.
  ServeResult pair_mi(std::size_t i, std::size_t j);

  /// Dispatches one ServeQuery to the matching method above.
  ServeResult serve(const ServeQuery& query);

  /// Runs a mixed workload across `pool`, one contiguous block of queries
  /// per worker. Per-query failures are captured in the result (ok = false)
  /// instead of aborting the batch — a serving layer answers what it can.
  std::vector<ServeResult> serve_batch(std::span<const ServeQuery> queries,
                                       ThreadPool& pool);

  /// Learns a structure from the *pinned current snapshot*: the job keeps
  /// answering against one immutable table even if ingests publish newer
  /// versions mid-learn, and the result is stamped with that version. Runs
  /// on its own pool of request.threads workers through the parallel CI
  /// scheduler; interactive queries on other threads are untouched. Throws
  /// OperationCancelled when request.cancel is observed set, and propagates
  /// learner errors — callers (the network server) map exceptions to clean
  /// error responses.
  [[nodiscard]] LearnedStructure learn_structure(const LearnRequest& request);

  /// Publishes `batch` as the next snapshot version (TableStore::ingest) and
  /// invalidates cached answers of superseded versions. Throws without
  /// publishing on failure; the served version is untouched.
  IngestStats ingest(const Dataset& batch);

  /// Tells the engine a new version was published *around* it — e.g. by a
  /// DurableTableStore wrapping the same underlying store — so superseded
  /// cached answers can be reclaimed. Purely a memory-reclaim hook: the
  /// version-keyed cache is already correct without it.
  void note_published(std::uint64_t version);

  [[nodiscard]] CacheStats cache_stats() const noexcept {
    return cache_.stats();
  }
  [[nodiscard]] const Store& store() const noexcept { return *store_; }
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }

 private:
  ServeResult answer(QueryKind kind, std::span<const std::size_t> variables,
                     std::span<const Evidence> evidence);
  [[nodiscard]] std::vector<double> compute(
      const Table& table, QueryKind kind,
      std::span<const std::size_t> variables,
      std::span<const Evidence> evidence) const;

  Store* store_;
  ServeOptions options_;
  ResultCache cache_;
};

extern template class BasicServeEngine<Key>;
extern template class BasicServeEngine<WideKey>;

using ServeEngine = BasicServeEngine<Key>;
using WideServeEngine = BasicServeEngine<WideKey>;

}  // namespace wfbn::serve
