#include "serve/table_store.hpp"

#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/timer.hpp"

namespace wfbn::serve {

template <typename K, typename Policy>
BasicTableStore<K, Policy>::BasicTableStore(Table initial,
                                    WaitFreeBuilderOptions ingest_options,
                                    std::uint64_t initial_version)
    : current_([&] {
        WFBN_EXPECT(initial_version >= 1, "snapshot versions are 1-based");
        return std::make_shared<const BasicSnapshot<K>>(std::move(initial),
                                                        initial_version);
      }()),
      builder_(ingest_options) {}

template <typename K, typename Policy>
IngestStats BasicTableStore<K, Policy>::ingest(const Dataset& batch) {
  const std::lock_guard<std::mutex> lock(ingest_mutex_);
  Timer total_timer;
  IngestStats stats;
  stats.batch_rows = batch.sample_count();

  // The shadow fold never touches the served table: append_shadow deep-copies
  // it first, and append()'s strong guarantee means a mid-fold throw discards
  // a still-private object. Readers keep sweeping the current snapshot
  // throughout.
  const Ptr base = current();
  Timer shadow_timer;
  Table shadow = builder_.append_shadow(batch, base->table());
  stats.shadow_seconds = shadow_timer.seconds();

  WFBN_FAULT_POINT(fault::Point::kServePublish);

  // Publish: the one toggle that makes version v+1 visible. The cell's
  // ordering guarantees a reader that pins the new snapshot also sees every
  // byte of the shadow fold, and one that pins the old snapshot sees it
  // whole — never a mix.
  current_.store(std::make_shared<const BasicSnapshot<K>>(
      std::move(shadow), base->version() + 1));
  publishes_.fetch_add(1, std::memory_order_relaxed);

  stats.published_version = base->version() + 1;
  stats.total_seconds = total_timer.seconds();
  return stats;
}

template class BasicTableStore<Key>;
template class BasicTableStore<WideKey>;

}  // namespace wfbn::serve
