#include "serve/serve_engine.hpp"

#include <exception>
#include <utility>

#include "core/info_theory.hpp"
#include "util/error.hpp"

namespace wfbn::serve {

namespace {

/// Packs (version, kind, variables, evidence) into a flat word vector. Each
/// variable-length section is preceded by its length, so the encoding is
/// self-delimiting and two distinct queries can never pack identically.
CacheKey make_key(std::uint64_t version, QueryKind kind,
                  std::span<const std::size_t> variables,
                  std::span<const Evidence> evidence) {
  std::vector<std::uint64_t> words;
  words.reserve(4 + variables.size() + evidence.size());
  words.push_back(version);  // word 0: version (ResultCache relies on this)
  words.push_back(static_cast<std::uint64_t>(kind));
  words.push_back(static_cast<std::uint64_t>(variables.size()));
  for (const std::size_t v : variables) {
    words.push_back(static_cast<std::uint64_t>(v));
  }
  words.push_back(static_cast<std::uint64_t>(evidence.size()));
  for (const Evidence& e : evidence) {
    words.push_back((static_cast<std::uint64_t>(e.variable) << 8) |
                    static_cast<std::uint64_t>(e.state));
  }
  return CacheKey(std::move(words));
}

}  // namespace

template <typename K>
BasicServeEngine<K>::BasicServeEngine(Store& store, ServeOptions options)
    : store_(&store),
      options_(options),
      cache_(options.cache_shards, options.cache_entries_per_shard) {
  WFBN_EXPECT(options_.query_threads >= 1,
              "serve engine needs at least one query thread");
}

template <typename K>
std::vector<double> BasicServeEngine<K>::compute(
    const Table& table, QueryKind kind,
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) const {
  switch (kind) {
    case QueryKind::kMarginal:
      return BasicQueryEngine<K>(table, options_.query_threads)
          .marginal(variables);
    case QueryKind::kConditional:
      return BasicQueryEngine<K>(table, options_.query_threads)
          .conditional(variables, evidence);
    case QueryKind::kPairMi: {
      WFBN_EXPECT(variables.size() == 2, "pair MI takes exactly two variables");
      // One pair marginalization answers Eq. 1 — the single-variable
      // marginals are derived from the pair table (paper §IV-C).
      return {mutual_information(table.marginalize_sequential(variables))};
    }
  }
  throw PreconditionError("unknown query kind");
}

template <typename K>
ServeResult BasicServeEngine<K>::answer(
    QueryKind kind, std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) {
  // Pin the snapshot once: version, cache key, and evaluation all refer to
  // this one table even if a publish lands mid-query.
  const BasicSnapshotPtr<K> snapshot = store_->current();
  ServeResult result;
  result.version = snapshot->version();

  CacheKey key;
  if (options_.cache_enabled) {
    key = make_key(snapshot->version(), kind, variables, evidence);
    if (std::optional<std::vector<double>> hit = cache_.lookup(key)) {
      result.cache_hit = true;
      result.values = std::move(*hit);
      return result;
    }
  }

  result.values = compute(snapshot->table(), kind, variables, evidence);
  if (options_.cache_enabled) {
    cache_.insert(key, result.values);
  }
  return result;
}

template <typename K>
ServeResult BasicServeEngine<K>::marginal(
    std::span<const std::size_t> variables) {
  return answer(QueryKind::kMarginal, variables, {});
}

template <typename K>
ServeResult BasicServeEngine<K>::conditional(
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) {
  return answer(QueryKind::kConditional, variables, evidence);
}

template <typename K>
ServeResult BasicServeEngine<K>::pair_mi(std::size_t i, std::size_t j) {
  const std::size_t pair[] = {i, j};
  return answer(QueryKind::kPairMi, pair, {});
}

template <typename K>
ServeResult BasicServeEngine<K>::serve(const ServeQuery& query) {
  return answer(query.kind, query.variables, query.evidence);
}

template <typename K>
std::vector<ServeResult> BasicServeEngine<K>::serve_batch(
    std::span<const ServeQuery> queries, ThreadPool& pool) {
  std::vector<ServeResult> results(queries.size());
  pool.run([&](std::size_t w) {
    const auto [lo, hi] =
        ThreadPool::block_range(queries.size(), pool.size(), w);
    for (std::size_t i = lo; i < hi; ++i) {
      try {
        results[i] = serve(queries[i]);
      } catch (const std::exception& e) {
        results[i].ok = false;
        results[i].error = e.what();
        results[i].version = store_->version();
      }
    }
  });
  return results;
}

template <typename K>
IngestStats BasicServeEngine<K>::ingest(const Dataset& batch) {
  const IngestStats stats = store_->ingest(batch);
  if (options_.cache_enabled) {
    // Reclaim answers of superseded versions. Version-keyed lookups already
    // guarantee they can never be served again; this only frees the memory.
    cache_.invalidate_before(stats.published_version);
  }
  return stats;
}

template <typename K>
void BasicServeEngine<K>::note_published(std::uint64_t version) {
  if (options_.cache_enabled) {
    cache_.invalidate_before(version);
  }
}

template class BasicServeEngine<Key>;
template class BasicServeEngine<WideKey>;

}  // namespace wfbn::serve
