#include "serve/serve_engine.hpp"

#include <exception>
#include <utility>

#include "core/info_theory.hpp"
#include "learn/cheng.hpp"
#include "learn/chow_liu.hpp"
#include "learn/pc_stable.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wfbn::serve {

namespace {

/// Packs (version, kind, variables, evidence) into a flat word vector. Each
/// variable-length section is preceded by its length, so the encoding is
/// self-delimiting and two distinct queries can never pack identically.
CacheKey make_key(std::uint64_t version, QueryKind kind,
                  std::span<const std::size_t> variables,
                  std::span<const Evidence> evidence) {
  std::vector<std::uint64_t> words;
  words.reserve(4 + variables.size() + evidence.size());
  words.push_back(version);  // word 0: version (ResultCache relies on this)
  words.push_back(static_cast<std::uint64_t>(kind));
  words.push_back(static_cast<std::uint64_t>(variables.size()));
  for (const std::size_t v : variables) {
    words.push_back(static_cast<std::uint64_t>(v));
  }
  words.push_back(static_cast<std::uint64_t>(evidence.size()));
  for (const Evidence& e : evidence) {
    words.push_back((static_cast<std::uint64_t>(e.variable) << 8) |
                    static_cast<std::uint64_t>(e.state));
  }
  return CacheKey(std::move(words));
}

}  // namespace

template <typename K>
BasicServeEngine<K>::BasicServeEngine(Store& store, ServeOptions options)
    : store_(&store),
      options_(options),
      cache_(options.cache_shards, options.cache_entries_per_shard) {
  WFBN_EXPECT(options_.query_threads >= 1,
              "serve engine needs at least one query thread");
}

template <typename K>
std::vector<double> BasicServeEngine<K>::compute(
    const Table& table, QueryKind kind,
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) const {
  switch (kind) {
    case QueryKind::kMarginal:
      return BasicQueryEngine<K>(table, options_.query_threads)
          .marginal(variables);
    case QueryKind::kConditional:
      return BasicQueryEngine<K>(table, options_.query_threads)
          .conditional(variables, evidence);
    case QueryKind::kPairMi: {
      WFBN_EXPECT(variables.size() == 2, "pair MI takes exactly two variables");
      // One pair marginalization answers Eq. 1 — the single-variable
      // marginals are derived from the pair table (paper §IV-C).
      return {mutual_information(table.marginalize_sequential(variables))};
    }
  }
  throw PreconditionError("unknown query kind");
}

template <typename K>
ServeResult BasicServeEngine<K>::answer(
    QueryKind kind, std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) {
  // Pin the snapshot once: version, cache key, and evaluation all refer to
  // this one table even if a publish lands mid-query.
  const BasicSnapshotPtr<K> snapshot = store_->current();
  ServeResult result;
  result.version = snapshot->version();

  CacheKey key;
  if (options_.cache_enabled) {
    key = make_key(snapshot->version(), kind, variables, evidence);
    if (std::optional<std::vector<double>> hit = cache_.lookup(key)) {
      result.cache_hit = true;
      result.values = std::move(*hit);
      return result;
    }
  }

  result.values = compute(snapshot->table(), kind, variables, evidence);
  if (options_.cache_enabled) {
    cache_.insert(key, result.values);
  }
  return result;
}

template <typename K>
ServeResult BasicServeEngine<K>::marginal(
    std::span<const std::size_t> variables) {
  return answer(QueryKind::kMarginal, variables, {});
}

template <typename K>
ServeResult BasicServeEngine<K>::conditional(
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) {
  return answer(QueryKind::kConditional, variables, evidence);
}

template <typename K>
ServeResult BasicServeEngine<K>::pair_mi(std::size_t i, std::size_t j) {
  const std::size_t pair[] = {i, j};
  return answer(QueryKind::kPairMi, pair, {});
}

template <typename K>
ServeResult BasicServeEngine<K>::serve(const ServeQuery& query) {
  return answer(query.kind, query.variables, query.evidence);
}

template <typename K>
std::vector<ServeResult> BasicServeEngine<K>::serve_batch(
    std::span<const ServeQuery> queries, ThreadPool& pool) {
  std::vector<ServeResult> results(queries.size());
  pool.run([&](std::size_t w) {
    const auto [lo, hi] =
        ThreadPool::block_range(queries.size(), pool.size(), w);
    for (std::size_t i = lo; i < hi; ++i) {
      try {
        results[i] = serve(queries[i]);
      } catch (const std::exception& e) {
        results[i].ok = false;
        results[i].error = e.what();
        results[i].version = store_->version();
      }
    }
  });
  return results;
}

namespace {

std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_pairs(
    const std::vector<Edge>& edges) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    out.emplace_back(static_cast<std::uint32_t>(e.from),
                     static_cast<std::uint32_t>(e.to));
  }
  return out;
}

void check_cancel(const std::atomic<bool>* cancel) {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    throw OperationCancelled("learn job cancelled");
  }
}

}  // namespace

template <typename K>
LearnedStructure BasicServeEngine<K>::learn_structure(
    const LearnRequest& request) {
  WFBN_EXPECT(request.threads >= 1, "learn job needs at least one thread");
  const Timer timer;
  // Pin once: the whole job — MI matrix, every CI test, the result stamp —
  // reads this one immutable table, however many ingests land meanwhile.
  const BasicSnapshotPtr<K> snapshot = store_->current();
  const Table& table = snapshot->table();

  LearnedStructure learned;
  learned.version = snapshot->version();
  learned.nodes = table.codec().variable_count();

  ThreadPool pool(request.threads);
  CiOptions ci;
  ci.method = request.method;
  ci.mi_threshold = request.mi_threshold;
  ci.alpha = request.alpha;
  ci.threads = request.threads;
  ci.cancel = request.cancel;

  switch (request.algorithm) {
    case LearnAlgorithm::kCheng: {
      ChengOptions options;
      options.ci = ci;
      options.max_cutset_size = request.max_cutset_size;
      const BasicChengLearner<K> learner(options, pool);
      ChengResult result = learner.learn(table);
      learned.skeleton_edges = edge_pairs(result.skeleton.edges());
      learned.directed_edges = edge_pairs(result.oriented.edges());
      learned.ci_tests = result.ci_tests;
      learned.schedule = result.schedule;
      break;
    }
    case LearnAlgorithm::kPcStable: {
      PcStableOptions options;
      options.ci = ci;
      options.max_level = request.max_level;
      const BasicPcStableLearner<K> learner(options, pool);
      PcStableResult result = learner.learn(table);
      learned.skeleton_edges = edge_pairs(result.skeleton.edges());
      learned.directed_edges = edge_pairs(result.oriented.edges());
      learned.ci_tests = result.ci_tests;
      learned.schedule = result.schedule;
      break;
    }
    case LearnAlgorithm::kChowLiu: {
      // The MI sweep is one parallel pass without per-test cancel points;
      // poll the token on either side so a cancelled job still returns
      // promptly relative to its own runtime.
      check_cancel(request.cancel);
      const ChowLiuResult result =
          chow_liu_learn(table, pool, request.mi_threshold);
      check_cancel(request.cancel);
      learned.skeleton_edges = edge_pairs(result.tree.edges());
      learned.directed_edges = edge_pairs(result.rooted.edges());
      break;
    }
  }
  learned.seconds = timer.seconds();
  return learned;
}

template <typename K>
IngestStats BasicServeEngine<K>::ingest(const Dataset& batch) {
  const IngestStats stats = store_->ingest(batch);
  if (options_.cache_enabled) {
    // Reclaim answers of superseded versions. Version-keyed lookups already
    // guarantee they can never be served again; this only frees the memory.
    cache_.invalidate_before(stats.published_version);
  }
  return stats;
}

template <typename K>
void BasicServeEngine<K>::note_published(std::uint64_t version) {
  if (options_.cache_enabled) {
    cache_.invalidate_before(version);
  }
}

template class BasicServeEngine<Key>;
template class BasicServeEngine<WideKey>;

}  // namespace wfbn::serve
