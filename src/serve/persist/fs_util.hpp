// Crash-safe filesystem primitives for the persistence layer.
//
// write_file_atomic() is the one way bytes reach a store directory: write to
// a `<name>.tmp` sibling, fsync the file, rename() over the final name, and
// fsync the directory so the rename itself is durable. The named fault
// points persist.open / persist.write / persist.fsync / persist.rename fire
// immediately before the corresponding syscall, so an injected fault leaves
// the directory exactly as a power cut at that instant would — including the
// orphaned temp file, which recovery must (and does) ignore.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace wfbn::serve::persist {

/// Atomically publishes `bytes` as `dir/name`. Throws DataError on any IO
/// error (with errno context) and InjectedFault from armed persist.* points.
/// On failure the final file is either absent or still the previous complete
/// version — never a torn mix; at most a `<name>.tmp` orphan is left behind.
/// `do_fsync` false skips both fsyncs (benchmarks measuring serialization
/// cost; real durability requires true).
void write_file_atomic(const std::filesystem::path& dir,
                       const std::string& name,
                       std::span<const std::uint8_t> bytes, bool do_fsync);

/// Reads a whole file. Throws DataError when the file cannot be opened or
/// read (the caller turns that into a recovery rejection, not a crash).
[[nodiscard]] std::vector<std::uint8_t> read_file(
    const std::filesystem::path& path);

/// Removes `*.tmp` orphans left by crashes or injected faults. Best-effort:
/// returns the number removed, never throws.
std::size_t remove_stale_temps(const std::filesystem::path& dir) noexcept;

/// fsyncs a directory so a completed rename survives power loss. Throws
/// DataError on failure.
void fsync_directory(const std::filesystem::path& dir);

}  // namespace wfbn::serve::persist
