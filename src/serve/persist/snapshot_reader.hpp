// SnapshotReader: corruption-tolerant parsing of segments and recovery of a
// store directory back to the newest fully-valid snapshot.
//
// read_segment() is strict: every defect — wrong magic, wrong key width,
// truncation at any field, a failing header or section checksum, trailing
// garbage, out-of-range keys, zero counts, a count sum disagreeing with the
// recorded sample count — surfaces as a typed DataError naming the defect.
// It never returns a partially-loaded table.
//
// recover_store_dir() turns those strict failures into fallback: it walks
// the segments newest-first until one validates end-to-end, recording every
// rejection in the RecoveryReport. The newest valid segment wins even when
// the manifest lags behind it — a crash between the segment rename and the
// manifest update must not roll durability back — so the manifest is a
// cross-check (reported, repaired on reopen), never the routing decision.
// A directory where nothing validates — including a missing or empty
// directory — recovers to "no snapshot" (recovered_version 0) rather than
// an error: a fresh store is the correct degraded state after losing
// everything.
//
// The recover.checksum fault point routes through every checksum comparison
// made during recovery (manifest, segment header, sections), using the
// non-throwing should_fail flavor: firing it forces that one comparison to
// report a mismatch, deterministically driving the fallback path in tests.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "table/potential_table.hpp"

namespace wfbn::serve::persist {

/// A fully parsed and validated segment.
template <typename K>
struct SegmentData {
  BasicPotentialTable<K> table;
  std::uint64_t version = 0;
};

/// Parses and validates one segment file. Throws DataError naming the defect
/// on any corruption; never returns a partial table.
template <typename K>
[[nodiscard]] SegmentData<K> read_segment(const std::filesystem::path& path);

/// Parses `bytes` as a segment (the file-reading step already done). Same
/// contract as read_segment().
template <typename K>
[[nodiscard]] SegmentData<K> parse_segment(
    const std::vector<std::uint8_t>& bytes);

/// One segment recovery gave up on, and why.
struct RejectedSegment {
  std::uint64_t version = 0;
  std::string reason;
};

struct RecoveryReport {
  /// Version served after recovery; 0 = nothing recoverable (fresh start).
  std::uint64_t recovered_version = 0;
  /// True when the manifest itself parsed and checksummed clean. It may
  /// still disagree with recovered_version (stale after a crash between
  /// segment rename and manifest update, or naming a rejected segment).
  bool manifest_valid = false;
  /// The version the manifest names; 0 when the manifest was invalid.
  std::uint64_t manifest_version = 0;
  /// Segments read during the newest-first scan.
  std::size_t segments_scanned = 0;
  /// Every segment tried and rejected, newest first, with the defect —
  /// plus an entry when a valid manifest names a segment that is missing.
  std::vector<RejectedSegment> rejected;
};

template <typename K>
struct RecoveryResult {
  /// The newest fully-valid snapshot table, or nullopt for a fresh start.
  std::optional<BasicPotentialTable<K>> table;
  RecoveryReport report;
};

/// Recovers `dir` to the newest fully-valid snapshot via a newest-first
/// scan, falling back version by version past rejected segments. Only
/// throws on programming errors — corruption and missing files degrade into
/// the report instead.
template <typename K>
[[nodiscard]] RecoveryResult<K> recover_store_dir(
    const std::filesystem::path& dir);

extern template SegmentData<Key> read_segment<Key>(
    const std::filesystem::path&);
extern template SegmentData<WideKey> read_segment<WideKey>(
    const std::filesystem::path&);
extern template SegmentData<Key> parse_segment<Key>(
    const std::vector<std::uint8_t>&);
extern template SegmentData<WideKey> parse_segment<WideKey>(
    const std::vector<std::uint8_t>&);
extern template RecoveryResult<Key> recover_store_dir<Key>(
    const std::filesystem::path&);
extern template RecoveryResult<WideKey> recover_store_dir<WideKey>(
    const std::filesystem::path&);

}  // namespace wfbn::serve::persist
