#include "serve/persist/snapshot_writer.hpp"

#include <algorithm>
#include <utility>

#include "data/binary_io.hpp"
#include "serve/persist/format.hpp"
#include "serve/persist/fs_util.hpp"
#include "util/checksum.hpp"
#include "util/fault_injection.hpp"

namespace wfbn::serve::persist {

template <typename K>
BasicSnapshotWriter<K>::BasicSnapshotWriter(std::filesystem::path dir,
                                            WriterOptions options)
    : dir_(std::move(dir)), options_(options) {
  options_.keep_segments = std::max<std::size_t>(options_.keep_segments, 1);
}

template <typename K>
std::vector<std::uint8_t> BasicSnapshotWriter<K>::serialize(
    const Snapshot& snapshot, bool section_checksums) {
  const auto& table = snapshot.table();
  const auto& cards = table.codec().cardinalities();
  const auto& partitions = table.partitions();

  std::vector<std::uint8_t> buffer;
  // Entries dominate; pre-size for them plus a small header allowance.
  buffer.reserve(table.distinct_keys() * KeyIo<K>::kEntryBytes +
                 cards.size() * sizeof(std::uint32_t) + 256);

  buffer.insert(buffer.end(), kSegmentMagic, kSegmentMagic + 4);
  bio::put_pod(buffer, kFormatVersion);
  bio::put_pod(buffer, KeyIo<K>::kWidthCode);
  bio::put_pod(buffer,
               section_checksums ? kFlagSectionChecksums : std::uint32_t{0});
  bio::put_pod(buffer, snapshot.version());
  bio::put_pod(buffer, table.sample_count());
  bio::put_pod(buffer, static_cast<std::uint32_t>(cards.size()));
  for (const std::uint32_t r : cards) bio::put_pod(buffer, r);
  bio::put_pod(buffer, static_cast<std::uint32_t>(partitions.scheme()));
  bio::put_pod(buffer, std::uint32_t{0});  // reserved
  bio::put_pod(buffer, static_cast<std::uint64_t>(table.partition_count()));
  bio::put_pod(buffer, partitions.state_space());
  bio::put_pod(buffer, fnv1a_bytes(buffer.data(), buffer.size()));

  for (std::size_t p = 0; p < table.partition_count(); ++p) {
    const std::size_t section_start = buffer.size();
    const auto& part = table.partition(p);
    bio::put_pod(buffer, static_cast<std::uint64_t>(part.size()));
    part.for_each([&buffer](K key, std::uint64_t count) {
      KeyIo<K>::put(buffer, key);
      bio::put_pod(buffer, count);
    });
    if (section_checksums) {
      bio::put_pod(buffer, fnv1a_bytes(buffer.data() + section_start,
                                       buffer.size() - section_start));
    }
  }
  return buffer;
}

template <typename K>
void BasicSnapshotWriter<K>::write_segment(const Snapshot& snapshot) {
  const std::vector<std::uint8_t> bytes =
      serialize(snapshot, options_.section_checksums);
  write_file_atomic(dir_, segment_name(snapshot.version()), bytes,
                    options_.fsync);
}

template <typename K>
void BasicSnapshotWriter<K>::write_manifest(std::uint64_t version) {
  WFBN_FAULT_POINT(fault::Point::kPersistManifest);
  std::vector<std::uint8_t> buffer;
  buffer.reserve(4 + 2 * sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t));
  buffer.insert(buffer.end(), kManifestMagic, kManifestMagic + 4);
  bio::put_pod(buffer, kFormatVersion);
  bio::put_pod(buffer, KeyIo<K>::kWidthCode);
  bio::put_pod(buffer, version);
  bio::put_pod(buffer, fnv1a_bytes(buffer.data(), buffer.size()));
  write_file_atomic(dir_, kManifestName, buffer, options_.fsync);
}

template <typename K>
std::size_t BasicSnapshotWriter<K>::prune() noexcept {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> segments;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    std::uint64_t version = 0;
    if (parse_segment_name(entry.path().filename().string(), &version)) {
      segments.emplace_back(version, entry.path());
    }
  }
  if (segments.size() <= options_.keep_segments) return 0;
  std::sort(segments.begin(), segments.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t removed = 0;
  for (std::size_t i = options_.keep_segments; i < segments.size(); ++i) {
    if (std::filesystem::remove(segments[i].second, ec)) ++removed;
  }
  return removed;
}

template <typename K>
void BasicSnapshotWriter<K>::write(const Snapshot& snapshot) {
  write_segment(snapshot);
  write_manifest(snapshot.version());
  prune();
}

template class BasicSnapshotWriter<Key>;
template class BasicSnapshotWriter<WideKey>;

}  // namespace wfbn::serve::persist
