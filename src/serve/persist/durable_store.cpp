#include "serve/persist/durable_store.hpp"

#include <utility>

#include "serve/persist/fs_util.hpp"

namespace wfbn::serve::persist {

template <typename K>
BasicDurableTableStore<K>::BasicDurableTableStore(std::filesystem::path dir,
                                                  Table initial,
                                                  DurableOptions options)
    : BasicDurableTableStore(std::move(dir), std::move(initial), options,
                             /*initial_version=*/1, /*persist_initial=*/true) {}

template <typename K>
BasicDurableTableStore<K>::BasicDurableTableStore(std::filesystem::path dir,
                                                  Table initial,
                                                  DurableOptions options,
                                                  std::uint64_t initial_version,
                                                  bool persist_initial)
    : store_(std::move(initial), options.ingest, initial_version),
      writer_(std::move(dir), options.writer),
      options_(options) {
  std::filesystem::create_directories(writer_.directory());
  remove_stale_temps(writer_.directory());
  if (persist_initial) {
    // A durable store must be recoverable from its first instant, so the
    // initial snapshot is persisted synchronously — and a failure here is a
    // construction failure, not a lagging-durability condition.
    requested_.fetch_add(1, std::memory_order_relaxed);
    writer_.write(*store_.current());
    persisted_.fetch_add(1, std::memory_order_relaxed);
    last_durable_.store(initial_version, std::memory_order_release);
  } else {
    last_durable_.store(initial_version, std::memory_order_release);
  }
  if (options_.async) {
    persist_thread_ = std::thread([this] { persist_loop(); });
  }
}

template <typename K>
std::unique_ptr<BasicDurableTableStore<K>> BasicDurableTableStore<K>::open(
    std::filesystem::path dir, DurableOptions options,
    RecoveryReport* report) {
  RecoveryResult<K> recovery = recover_store_dir<K>(dir);
  if (report) *report = recovery.report;
  if (!recovery.table) return nullptr;
  std::unique_ptr<BasicDurableTableStore> store(new BasicDurableTableStore(
      std::move(dir), std::move(*recovery.table), options,
      recovery.report.recovered_version, /*persist_initial=*/false));
  // Repair a missing, corrupt, or stale manifest so it names the recovered
  // version again. Best-effort: the segments alone are already sufficient
  // for recovery.
  if (!recovery.report.manifest_valid ||
      recovery.report.manifest_version !=
          recovery.report.recovered_version) {
    try {
      store->writer_.write_manifest(recovery.report.recovered_version);
    } catch (const std::exception& e) {
      store->failures_.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> io(store->io_mutex_);
      store->last_error_ = e.what();
    }
  }
  return store;
}

template <typename K>
BasicDurableTableStore<K>::~BasicDurableTableStore() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (persist_thread_.joinable()) persist_thread_.join();
}

template <typename K>
IngestStats BasicDurableTableStore<K>::ingest(const Dataset& batch) {
  IngestStats stats = store_.ingest(batch);
  // current() rather than the exact published snapshot: if a concurrent
  // ingest already superseded it, persisting the newer one is strictly
  // better (each segment is self-contained).
  if (options_.async) {
    enqueue(store_.current());
  } else {
    requested_.fetch_add(1, std::memory_order_relaxed);
    persist_one(store_.current());
  }
  return stats;
}

template <typename K>
void BasicDurableTableStore<K>::enqueue(Ptr snapshot) {
  requested_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (pending_ && pending_->version() >= snapshot->version()) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      return;  // the mailbox already covers this request
    }
    if (pending_) coalesced_.fetch_add(1, std::memory_order_relaxed);
    pending_ = std::move(snapshot);
  }
  work_cv_.notify_one();
}

template <typename K>
void BasicDurableTableStore<K>::persist_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || pending_ != nullptr; });
    if (!pending_) break;  // stop requested and the mailbox is drained
    const Ptr snapshot = std::move(pending_);
    pending_ = nullptr;
    busy_ = true;
    lock.unlock();
    persist_one(snapshot);
    lock.lock();
    busy_ = false;
    done_cv_.notify_all();
  }
}

template <typename K>
void BasicDurableTableStore<K>::persist_one(const Ptr& snapshot) noexcept {
  const std::lock_guard<std::mutex> io(io_mutex_);
  const std::uint64_t version = snapshot->version();
  if (version <= last_durable_.load(std::memory_order_relaxed)) {
    return;  // a newer (or this) version is already durable
  }
  try {
    writer_.write_segment(*snapshot);
  } catch (const std::exception& e) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    last_error_ = e.what();
    return;
  }
  // The segment rename made the snapshot recoverable; durability is reached
  // here, before the manifest — which only buys the next recovery its fast
  // path, so its failure is counted but does not retract durability.
  last_durable_.store(version, std::memory_order_release);
  persisted_.fetch_add(1, std::memory_order_relaxed);
  try {
    writer_.write_manifest(version);
    writer_.prune();
  } catch (const std::exception& e) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    last_error_ = e.what();
  }
}

template <typename K>
bool BasicDurableTableStore<K>::flush() {
  const Ptr snapshot = store_.current();
  const std::uint64_t target = snapshot->version();
  if (last_durable_version() >= target) return true;
  if (!options_.async) {
    persist_one(snapshot);
    return last_durable_version() >= target;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if ((!pending_ || pending_->version() < target) &&
      last_durable_.load(std::memory_order_relaxed) < target) {
    requested_.fetch_add(1, std::memory_order_relaxed);
    if (pending_) coalesced_.fetch_add(1, std::memory_order_relaxed);
    pending_ = snapshot;
    work_cv_.notify_one();
  }
  done_cv_.wait(lock, [this] { return !busy_ && pending_ == nullptr; });
  return last_durable_version() >= target;
}

template <typename K>
PersistStats BasicDurableTableStore<K>::persist_stats() const {
  PersistStats out;
  out.requested = requested_.load(std::memory_order_relaxed);
  out.persisted = persisted_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.last_durable_version = last_durable_.load(std::memory_order_acquire);
  {
    const std::lock_guard<std::mutex> io(io_mutex_);
    out.last_error = last_error_;
  }
  return out;
}

template class BasicDurableTableStore<Key>;
template class BasicDurableTableStore<WideKey>;

}  // namespace wfbn::serve::persist
