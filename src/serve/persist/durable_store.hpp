// DurableTableStore: a restartable TableStore.
//
// Wraps BasicTableStore with the persistence layer so that:
//
//  - every published snapshot becomes durable *asynchronously*: ingest()
//    publishes through the store's wait-free cell exactly as before, then
//    hands the new snapshot to a background persist thread through a
//    single-slot coalescing mailbox. Readers and the publish path never wait
//    on the disk; the store holds at most two snapshots for durability (one
//    being written, one pending) — bounded lag by construction. When
//    publishes outrun the disk, intermediate versions are skipped (each
//    segment is a complete self-contained snapshot, so durability jumps
//    straight to the newest).
//  - reopening a directory recovers the newest fully-valid snapshot
//    (snapshot_reader.hpp) and resumes the version sequence from it.
//
// Persist failures (full disk, injected faults) are counted and retryable —
// the serving side keeps publishing; flush() re-enqueues the current version
// and reports whether it became durable. A persist failure never unpublishes
// a snapshot: durability lags, it does not veto.
//
// Synchronous mode (options.async = false) persists inline in ingest() —
// for tests and benchmarks that want deterministic timing; the wait-free
// *read* path is still never involved.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/persist/snapshot_reader.hpp"
#include "serve/persist/snapshot_writer.hpp"
#include "serve/table_store.hpp"

namespace wfbn::serve::persist {

struct DurableOptions {
  WriterOptions writer;
  WaitFreeBuilderOptions ingest;
  bool async = true;  ///< false: persist inline in ingest() (tests/benches)
};

/// Counters describing the durability side. Snapshot-consistent reads are
/// not needed; each field is independently monotonic.
struct PersistStats {
  std::uint64_t requested = 0;   ///< snapshots handed to the persist side
  std::uint64_t persisted = 0;   ///< segments durably published
  std::uint64_t coalesced = 0;   ///< superseded in the mailbox before writing
  std::uint64_t failures = 0;    ///< persist attempts that threw
  std::uint64_t last_durable_version = 0;
  std::string last_error;        ///< what() of the most recent failure
};

template <typename K>
class BasicDurableTableStore {
 public:
  using Store = BasicTableStore<K>;
  using Table = typename Store::Table;
  using Ptr = typename Store::Ptr;

  /// Fresh store on `dir`: publishes `initial` as version 1 and persists it
  /// synchronously before returning (a durable store must be recoverable
  /// from its first instant). Throws on persist failure.
  BasicDurableTableStore(std::filesystem::path dir, Table initial,
                         DurableOptions options = {});

  /// Reopens a store directory: recovers the newest fully-valid snapshot,
  /// repairs the manifest if it was stale or invalid, removes crash orphans,
  /// and resumes the version sequence. Returns nullptr when nothing is
  /// recoverable (empty/missing directory, all segments corrupt) — the
  /// caller decides whether that means "start fresh" or "refuse to serve".
  /// `report`, when non-null, receives the full recovery trace either way.
  static std::unique_ptr<BasicDurableTableStore> open(
      std::filesystem::path dir, DurableOptions options = {},
      RecoveryReport* report = nullptr);

  /// Drains the mailbox (final pending snapshot included), then stops the
  /// persist thread. Does not retry earlier failures.
  ~BasicDurableTableStore();

  BasicDurableTableStore(const BasicDurableTableStore&) = delete;
  BasicDurableTableStore& operator=(const BasicDurableTableStore&) = delete;

  /// Wait-free snapshot pin — exactly TableStore::current().
  [[nodiscard]] Ptr current() const noexcept { return store_.current(); }
  [[nodiscard]] std::uint64_t version() const noexcept {
    return store_.version();
  }

  /// Publishes the next version through the wait-free path, then enqueues it
  /// for persistence (async) or persists inline (sync). Throws exactly what
  /// TableStore::ingest throws; an inline persist failure in sync mode is
  /// counted, not thrown — durability lags, serving continues.
  IngestStats ingest(const Dataset& batch);

  /// Makes the currently served version durable, retrying a failed persist
  /// if necessary. Returns true when last_durable_version() caught up to the
  /// version observed at entry; false when the persist attempt failed (the
  /// call may simply be retried).
  bool flush();

  [[nodiscard]] std::uint64_t last_durable_version() const noexcept {
    return last_durable_.load(std::memory_order_acquire);
  }
  [[nodiscard]] PersistStats persist_stats() const;
  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return writer_.directory();
  }

  /// The wrapped store, for callers wiring a ServeEngine on top.
  [[nodiscard]] Store& store() noexcept { return store_; }

 private:
  BasicDurableTableStore(std::filesystem::path dir, Table initial,
                         DurableOptions options, std::uint64_t initial_version,
                         bool persist_initial);

  void enqueue(Ptr snapshot);
  void persist_loop();
  /// One persist attempt; updates counters, never throws.
  void persist_one(const Ptr& snapshot) noexcept;

  Store store_;
  BasicSnapshotWriter<K> writer_;
  DurableOptions options_;

  std::mutex mutex_;                  ///< guards the mailbox + worker state
  std::condition_variable work_cv_;   ///< persist thread wakeup
  std::condition_variable done_cv_;   ///< flush()/destructor wakeup
  Ptr pending_;                       ///< single-slot coalescing mailbox
  bool busy_ = false;                 ///< a persist attempt is in flight
  bool stop_ = false;

  /// Serializes persist_one (sync-mode callers race) and guards last_error_;
  /// mutable so persist_stats() can copy the error out of a const store.
  mutable std::mutex io_mutex_;

  std::atomic<std::uint64_t> last_durable_{0};
  std::atomic<std::uint64_t> requested_{0};
  std::atomic<std::uint64_t> persisted_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::string last_error_;  ///< guarded by io_mutex_

  std::thread persist_thread_;  ///< last member: joins before the rest dies
};

extern template class BasicDurableTableStore<Key>;
extern template class BasicDurableTableStore<WideKey>;

using DurableTableStore = BasicDurableTableStore<Key>;
using WideDurableTableStore = BasicDurableTableStore<WideKey>;

}  // namespace wfbn::serve::persist
