// On-disk format of the snapshot durability layer (serve/persist/).
//
// A store directory holds one *segment* file per persisted snapshot version
// plus a MANIFEST naming the last durably published version:
//
//   store/
//     segment-00000000000000000001.wfs
//     segment-00000000000000000002.wfs
//     MANIFEST
//
// Every file is published atomically: bytes are written to a `<name>.tmp`
// sibling, fsynced, renamed over the final name, and the directory is
// fsynced — so a reader never observes a half-written segment under its
// final name. A crash mid-write leaves only a `*.tmp` orphan, which recovery
// ignores and reopening removes.
//
// Segment layout (native byte order, packed, no alignment padding):
//
//   magic            4 bytes  "WFSS"
//   format           u32      kFormatVersion
//   width            u32      1 = narrow (64-bit keys), 2 = wide (two-word)
//   flags            u32      bit 0: per-partition section checksums present
//   snapshot_version u64
//   sample_count     u64
//   variable_count   u32
//   cardinalities    u32 × variable_count
//   scheme           u32      PartitionScheme as integer
//   reserved         u32      zero
//   partition_count  u64
//   state_space      u64
//   header_checksum  u64      FNV-1a of every preceding byte (always present)
//
// followed by one *section* per partition, in partition order:
//
//   entry_count      u64
//   entries          entry_count × (key words, count u64)
//   section_checksum u64      FNV-1a of the section's preceding bytes
//                             (only when flags bit 0 is set)
//
// The manifest is a fast-path hint, not the source of truth:
//
//   magic            4 bytes  "WFSM"
//   format           u32
//   width            u32
//   last_durable     u64
//   checksum         u64      FNV-1a of every preceding byte
//
// Recovery trusts the manifest only after its checksum and the named
// segment both validate; otherwise it falls back to scanning segments
// newest-first (see snapshot_reader.hpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "data/binary_io.hpp"
#include "table/key_codec.hpp"
#include "table/wide_key_codec.hpp"

namespace wfbn::serve::persist {

inline constexpr char kSegmentMagic[4] = {'W', 'F', 'S', 'S'};
inline constexpr char kManifestMagic[4] = {'W', 'F', 'S', 'M'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kFlagSectionChecksums = 1u << 0;
inline constexpr const char* kManifestName = "MANIFEST";
inline constexpr const char* kTempSuffix = ".tmp";

/// How each key width serializes its entries. The width code in the header
/// makes cross-width confusion (opening a wide store as narrow) a typed
/// DataError instead of garbage keys.
template <typename K>
struct KeyIo;

template <>
struct KeyIo<Key> {
  static constexpr std::uint32_t kWidthCode = 1;
  static constexpr std::size_t kEntryBytes = 16;  // key u64 + count u64
  static void put(std::vector<std::uint8_t>& buffer, Key key) {
    bio::put_pod(buffer, key);
  }
  static Key get(bio::BufferReader& reader) { return reader.get<Key>(); }
};

template <>
struct KeyIo<WideKey> {
  static constexpr std::uint32_t kWidthCode = 2;
  static constexpr std::size_t kEntryBytes = 24;  // lo u64 + hi u64 + count u64
  static void put(std::vector<std::uint8_t>& buffer, WideKey key) {
    bio::put_pod(buffer, key.lo);
    bio::put_pod(buffer, key.hi);
  }
  static WideKey get(bio::BufferReader& reader) {
    WideKey key;
    key.lo = reader.get<std::uint64_t>();
    key.hi = reader.get<std::uint64_t>();
    return key;
  }
};

/// "segment-<20-digit zero-padded version>.wfs" — fixed width so a plain
/// lexicographic directory listing is also a version ordering.
inline std::string segment_name(std::uint64_t version) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "segment-%020llu.wfs",
                static_cast<unsigned long long>(version));
  return buffer;
}

/// Parses a segment file name back into its version. Returns false for
/// anything that is not exactly a segment name (manifest, temps, strays).
inline bool parse_segment_name(const std::string& name,
                               std::uint64_t* version) {
  constexpr std::size_t kDigits = 20;
  const std::string prefix = "segment-";
  const std::string suffix = ".wfs";
  if (name.size() != prefix.size() + kDigits + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kDigits; ++i) {
    const char c = name[prefix.size() + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *version = value;
  return true;
}

}  // namespace wfbn::serve::persist
