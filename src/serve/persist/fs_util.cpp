#include "serve/persist/fs_util.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "serve/persist/format.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

#if defined(_WIN32)
#error "serve/persist requires a POSIX platform (open/fsync/rename)"
#endif

#include <fcntl.h>
#include <unistd.h>

namespace wfbn::serve::persist {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::filesystem::path& path) {
  throw DataError(what + " " + path.string() + ": " + std::strerror(errno));
}

/// Closes the fd on scope exit unless release()d first (the success path
/// closes explicitly so the close error is checkable).
class FdGuard {
 public:
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::filesystem::path& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write failed for", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

void fsync_directory(const std::filesystem::path& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) throw_errno("cannot open directory for fsync", dir);
  FdGuard guard(dfd);
  if (::fsync(dfd) != 0) throw_errno("directory fsync failed for", dir);
}

void write_file_atomic(const std::filesystem::path& dir,
                       const std::string& name,
                       std::span<const std::uint8_t> bytes, bool do_fsync) {
  std::filesystem::create_directories(dir);
  const std::filesystem::path temp_path = dir / (name + kTempSuffix);
  const std::filesystem::path final_path = dir / name;

  WFBN_FAULT_POINT(fault::Point::kPersistOpen);
  const int fd = ::open(temp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("cannot create", temp_path);
  {
    FdGuard guard(fd);
    // An injected fault from here on abandons the temp file exactly as a
    // power cut would: the guard closes the fd, the orphan stays on disk,
    // and the final name still holds the previous complete version.
    WFBN_FAULT_POINT(fault::Point::kPersistWrite);
    write_all(fd, bytes.data(), bytes.size(), temp_path);
    if (do_fsync) {
      WFBN_FAULT_POINT(fault::Point::kPersistFsync);
      if (::fsync(fd) != 0) throw_errno("fsync failed for", temp_path);
    }
    if (::close(guard.release()) != 0) throw_errno("close failed for", temp_path);
  }

  WFBN_FAULT_POINT(fault::Point::kPersistRename);
  if (::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    throw_errno("rename failed for", final_path);
  }
  if (do_fsync) {
    // Second hit of persist.fsync per atomic write: a crash here models the
    // window where the rename happened in memory but the directory entry was
    // not yet durable. The file is visible either way, so recovery treats
    // both sides of this window identically.
    WFBN_FAULT_POINT(fault::Point::kPersistFsync);
    fsync_directory(dir);
  }
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DataError("cannot open for reading: " + path.string());
  std::vector<std::uint8_t> bytes;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) throw DataError("cannot size: " + path.string());
  in.seekg(0, std::ios::beg);
  bytes.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) throw DataError("read failed: " + path.string());
  return bytes;
}

std::size_t remove_stale_temps(const std::filesystem::path& dir) noexcept {
  std::size_t removed = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() > std::strlen(kTempSuffix) &&
        name.compare(name.size() - std::strlen(kTempSuffix),
                     std::strlen(kTempSuffix), kTempSuffix) == 0) {
      if (std::filesystem::remove(entry.path(), ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace wfbn::serve::persist
