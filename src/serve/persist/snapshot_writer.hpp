// SnapshotWriter: serializes a published snapshot into a per-version segment
// file and records the new durable frontier in the manifest.
//
// write() is the full durable-publish sequence:
//
//   1. serialize the snapshot (schema + per-partition count sections, each
//      FNV-1a checksummed) into one buffer;
//   2. publish it as segment-<version>.wfs via write-to-temp + fsync +
//      atomic-rename (fs_util.hpp) — after this step the snapshot is
//      recoverable even if everything later fails;
//   3. update the MANIFEST (persist.manifest fires first) through the same
//      atomic path;
//   4. prune segments older than options.keep_segments (best-effort).
//
// The writer holds no reference to the store and runs entirely off the
// serving threads: callers (BasicDurableTableStore's persist thread, tests,
// benchmarks) pass in the immutable snapshot they pinned. A throw from any
// step leaves the directory recoverable — the invariant the crash-point
// sweep in tests/test_persist.cpp enforces at every persist fault point.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "serve/snapshot.hpp"

namespace wfbn::serve::persist {

struct WriterOptions {
  bool section_checksums = true;  ///< per-partition FNV-1a trailers
  bool fsync = true;   ///< false skips fsyncs (benchmarks only — not durable)
  std::size_t keep_segments = 4;  ///< newest segments retained by prune()
};

template <typename K>
class BasicSnapshotWriter {
 public:
  using Snapshot = BasicSnapshot<K>;

  explicit BasicSnapshotWriter(std::filesystem::path dir,
                               WriterOptions options = {});

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return dir_;
  }
  [[nodiscard]] const WriterOptions& options() const noexcept {
    return options_;
  }

  /// Serializes `snapshot` into the segment byte layout (format.hpp).
  [[nodiscard]] static std::vector<std::uint8_t> serialize(
      const Snapshot& snapshot, bool section_checksums);

  /// Steps 1+2: atomically publishes segment-<version>.wfs. After a normal
  /// return the snapshot is durable and recoverable by directory scan even
  /// without a manifest.
  void write_segment(const Snapshot& snapshot);

  /// Step 3: atomically points the manifest at `version`. Fires
  /// persist.manifest, then the usual persist.open/write/fsync/rename
  /// sequence of the inner atomic write.
  void write_manifest(std::uint64_t version);

  /// Step 4: removes segments beyond the options.keep_segments newest.
  /// Best-effort and never throws — retention is an optimization, not a
  /// correctness property.
  std::size_t prune() noexcept;

  /// The full durable-publish sequence (segment, manifest, prune).
  void write(const Snapshot& snapshot);

 private:
  std::filesystem::path dir_;
  WriterOptions options_;
};

extern template class BasicSnapshotWriter<Key>;
extern template class BasicSnapshotWriter<WideKey>;

using SnapshotWriter = BasicSnapshotWriter<Key>;
using WideSnapshotWriter = BasicSnapshotWriter<WideKey>;

}  // namespace wfbn::serve::persist
