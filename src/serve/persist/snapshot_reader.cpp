#include "serve/persist/snapshot_reader.hpp"

#include <algorithm>
#include <utility>

#include "data/binary_io.hpp"
#include "serve/persist/format.hpp"
#include "serve/persist/fs_util.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace wfbn::serve::persist {

namespace {

/// Every recovery-time checksum comparison routes through here so the
/// recover.checksum point can force any single one to report corruption
/// (non-throwing: a "mismatch" is a degradation into fallback, not an error).
bool checksum_matches(std::uint64_t expected, std::uint64_t actual) noexcept {
  if (fault::enabled() &&
      fault::should_fail(fault::Point::kRecoverChecksum)) [[unlikely]] {
    return false;
  }
  return expected == actual;
}

/// A sanity cap on partition counts: segments are written by this library,
/// whose builders never exceed core counts by orders of magnitude, so a
/// multi-million partition count is corruption that slipped past the
/// checksum, not a real table. Rejecting it bounds the reader's allocation.
constexpr std::uint64_t kMaxPartitions = 1u << 20;

struct SegmentEntry {
  std::uint64_t version;
  std::filesystem::path path;
};

std::vector<SegmentEntry> list_segments(const std::filesystem::path& dir) {
  std::vector<SegmentEntry> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    std::uint64_t version = 0;
    if (parse_segment_name(entry.path().filename().string(), &version)) {
      out.push_back({version, entry.path()});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.version > b.version;
  });
  return out;
}

struct ManifestInfo {
  bool valid = false;
  std::uint64_t version = 0;
};

template <typename K>
ManifestInfo read_manifest(const std::filesystem::path& dir) {
  const std::filesystem::path path = dir / kManifestName;
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_file(path);
  } catch (const DataError&) {
    return {};
  }
  try {
    bio::BufferReader reader(bytes.data(), bytes.size(), "manifest");
    const std::uint8_t* magic = reader.get_span(4);
    if (!std::equal(magic, magic + 4, kManifestMagic)) return {};
    if (reader.get<std::uint32_t>() != kFormatVersion) return {};
    if (reader.get<std::uint32_t>() != KeyIo<K>::kWidthCode) return {};
    const auto version = reader.get<std::uint64_t>();
    const std::size_t checksummed = static_cast<std::size_t>(
        reader.cursor() - bytes.data());
    const auto expected = reader.get<std::uint64_t>();
    if (!checksum_matches(expected, fnv1a_bytes(bytes.data(), checksummed))) {
      return {};
    }
    if (reader.remaining() != 0) return {};
    if (version == 0) return {};
    return {true, version};
  } catch (const DataError&) {
    return {};
  }
}

}  // namespace

template <typename K>
SegmentData<K> parse_segment(const std::vector<std::uint8_t>& bytes) {
  using Traits = KeyTraits<K>;
  bio::BufferReader reader(bytes.data(), bytes.size(), "snapshot segment");

  const std::uint8_t* magic = reader.get_span(4);
  if (!std::equal(magic, magic + 4, kSegmentMagic)) {
    throw DataError("not a snapshot segment (bad magic)");
  }
  const auto format = reader.get<std::uint32_t>();
  if (format != kFormatVersion) {
    throw DataError("unsupported segment format " + std::to_string(format));
  }
  const auto width = reader.get<std::uint32_t>();
  if (width != KeyIo<K>::kWidthCode) {
    throw DataError("segment key width " + std::to_string(width) +
                    " does not match store key width " +
                    std::to_string(KeyIo<K>::kWidthCode));
  }
  const auto flags = reader.get<std::uint32_t>();
  const auto version = reader.get<std::uint64_t>();
  if (version == 0) throw DataError("segment claims version 0");
  const auto samples = reader.get<std::uint64_t>();
  const auto variable_count = reader.get<std::uint32_t>();
  if (variable_count == 0) throw DataError("segment has zero variables");
  std::vector<std::uint32_t> cards(variable_count);
  for (auto& r : cards) r = reader.get<std::uint32_t>();
  const auto scheme_raw = reader.get<std::uint32_t>();
  if (scheme_raw > static_cast<std::uint32_t>(PartitionScheme::kRange)) {
    throw DataError("segment has unknown partition scheme " +
                    std::to_string(scheme_raw));
  }
  const auto scheme = static_cast<PartitionScheme>(scheme_raw);
  if (!Traits::supports(scheme)) {
    throw DataError("partition scheme unsupported at this key width");
  }
  (void)reader.get<std::uint32_t>();  // reserved
  const auto partition_count = reader.get<std::uint64_t>();
  if (partition_count == 0 || partition_count > kMaxPartitions) {
    throw DataError("segment partition count out of range: " +
                    std::to_string(partition_count));
  }
  const auto state_space = reader.get<std::uint64_t>();
  const std::size_t header_bytes =
      static_cast<std::size_t>(reader.cursor() - bytes.data());
  const auto header_checksum = reader.get<std::uint64_t>();
  if (!checksum_matches(header_checksum,
                        fnv1a_bytes(bytes.data(), header_bytes))) {
    throw DataError("segment header checksum mismatch");
  }

  // The codec constructor re-validates the cardinalities (each >= 1, joint
  // space within the width's bound) — corrupted schema bytes that survive
  // the checksum still become a typed error here.
  typename Traits::Codec codec = Traits::make_codec(cards);
  BasicPartitionedTable<K> partitions(
      static_cast<std::size_t>(partition_count), state_space, scheme);

  for (std::uint64_t p = 0; p < partition_count; ++p) {
    const std::uint8_t* section_start = reader.cursor();
    const auto entry_count = reader.get<std::uint64_t>();
    // Anti-allocation-bomb: a corrupt count larger than the bytes that could
    // possibly back it is rejected before reserve() amplifies it.
    if (entry_count > reader.remaining() / KeyIo<K>::kEntryBytes) {
      throw DataError("truncated snapshot segment (partition " +
                      std::to_string(p) + " claims " +
                      std::to_string(entry_count) + " entries)");
    }
    auto& part = partitions.partition(static_cast<std::size_t>(p));
    part.reserve(static_cast<std::size_t>(entry_count));
    for (std::uint64_t i = 0; i < entry_count; ++i) {
      const K key = KeyIo<K>::get(reader);
      const auto count = reader.get<std::uint64_t>();
      if (count == 0) {
        throw DataError("segment entry with zero count in partition " +
                        std::to_string(p));
      }
      if (!Traits::key_in_range(codec, key)) {
        throw DataError("segment key out of state-space range in partition " +
                        std::to_string(p));
      }
      part.increment(key, count);
    }
    if ((flags & kFlagSectionChecksums) != 0) {
      const std::size_t section_bytes =
          static_cast<std::size_t>(reader.cursor() - section_start);
      const auto section_checksum = reader.get<std::uint64_t>();
      if (!checksum_matches(section_checksum,
                            fnv1a_bytes(section_start, section_bytes))) {
        throw DataError("section checksum mismatch in partition " +
                        std::to_string(p));
      }
    }
  }
  if (reader.remaining() != 0) {
    throw DataError("trailing bytes after snapshot segment");
  }

  BasicPotentialTable<K> table(std::move(codec), std::move(partitions),
                               samples);
  if (table.total_count() != samples) {
    throw DataError("segment count sum disagrees with recorded sample count");
  }
  return SegmentData<K>{std::move(table), version};
}

template <typename K>
SegmentData<K> read_segment(const std::filesystem::path& path) {
  return parse_segment<K>(read_file(path));
}

template <typename K>
RecoveryResult<K> recover_store_dir(const std::filesystem::path& dir) {
  RecoveryResult<K> out;

  auto try_segment = [&](std::uint64_t version,
                         const std::filesystem::path& path) -> bool {
    ++out.report.segments_scanned;
    try {
      SegmentData<K> data = read_segment<K>(path);
      if (data.version != version) {
        throw DataError("segment file name version " + std::to_string(version) +
                        " disagrees with header version " +
                        std::to_string(data.version));
      }
      out.table.emplace(std::move(data.table));
      out.report.recovered_version = version;
      return true;
    } catch (const DataError& e) {
      out.report.rejected.push_back({version, e.what()});
      return false;
    }
  };

  const ManifestInfo manifest = read_manifest<K>(dir);
  out.report.manifest_valid = manifest.valid;
  out.report.manifest_version = manifest.version;

  // Newest-first over whatever segments exist. The newest valid segment wins
  // even when the manifest lags it: durability is reached at the segment
  // rename, and a crash before the subsequent manifest update must not roll
  // the store back. The scan equally covers a missing / corrupt manifest and
  // a torn newest segment (rejected by checksum, fall back one version).
  const std::vector<SegmentEntry> segments = list_segments(dir);
  if (manifest.valid &&
      std::none_of(segments.begin(), segments.end(),
                   [&](const SegmentEntry& seg) {
                     return seg.version == manifest.version;
                   })) {
    out.report.rejected.push_back(
        {manifest.version, "manifest names a missing segment"});
  }
  for (const SegmentEntry& seg : segments) {
    if (try_segment(seg.version, seg.path)) return out;
  }
  return out;  // nothing recoverable: fresh start
}

template SegmentData<Key> read_segment<Key>(const std::filesystem::path&);
template SegmentData<WideKey> read_segment<WideKey>(
    const std::filesystem::path&);
template SegmentData<Key> parse_segment<Key>(const std::vector<std::uint8_t>&);
template SegmentData<WideKey> parse_segment<WideKey>(
    const std::vector<std::uint8_t>&);
template RecoveryResult<Key> recover_store_dir<Key>(
    const std::filesystem::path&);
template RecoveryResult<WideKey> recover_store_dir<WideKey>(
    const std::filesystem::path&);

}  // namespace wfbn::serve::persist
