// Sharded result cache for served query answers.
//
// Keys are flat word vectors packed by ServeEngine — [version, kind, query
// payload] — so an answer computed against snapshot version v can never be
// served for any other version: a publish changes the version word, and every
// post-publish lookup misses until recomputed. invalidate_before() then
// reclaims the superseded entries (called by ServeEngine::ingest after each
// publish; a reader that races the invalidation and inserts one more stale
// entry only wastes a map slot until the next publish — it can never be
// looked up again).
//
// Sharding bounds contention: a lookup locks exactly one shard mutex chosen
// by the key hash, so concurrent readers serialize only on hash-colliding
// shards, never globally. The expensive part of a query (the table sweep)
// stays entirely outside any lock.
//
// Failure semantics (docs/SERVING.md): insertion is best-effort. An injected
// kServeCache fault (or any future allocation-failure policy) degrades by
// skipping the insert — the computed answer is still returned to the caller,
// and correctness never depends on an insert landing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace wfbn::serve {

/// Flat packed cache key. words()[0] must be the snapshot version (the
/// invalidation sweep relies on it); the remaining words are an arbitrary
/// self-delimiting encoding of the query. Hash is FNV-1a, precomputed once.
class CacheKey {
 public:
  CacheKey() = default;
  explicit CacheKey(std::vector<std::uint64_t> words);

  [[nodiscard]] std::uint64_t version() const noexcept {
    return words_.empty() ? 0 : words_[0];
  }
  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  [[nodiscard]] bool operator==(const CacheKey& other) const noexcept {
    return words_ == other.words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t hash_ = 0;
};

/// Monotonic counters, snapshotted by stats(). hits/misses count lookups;
/// dropped_inserts counts best-effort insertions skipped by a fault or a
/// version race; invalidated/evicted count reclaimed entries.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t dropped_inserts = 0;
  std::uint64_t invalidated_entries = 0;
  std::uint64_t evicted_entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class ResultCache {
 public:
  /// `shards` independent mutex+map cells (rounded up to at least 1);
  /// `max_entries_per_shard` caps each cell — a full shard first drops
  /// entries of superseded versions, then (still full) clears wholesale.
  ResultCache(std::size_t shards, std::size_t max_entries_per_shard);

  /// The cached answer for `key`, or nullopt. Locks one shard.
  [[nodiscard]] std::optional<std::vector<double>> lookup(const CacheKey& key);

  /// Best-effort insert (see failure semantics above). Locks one shard.
  void insert(const CacheKey& key, const std::vector<double>& values);

  /// Drops every entry whose version is < `version`; returns how many.
  std::size_t invalidate_before(std::uint64_t version);

  [[nodiscard]] CacheStats stats() const noexcept;

  /// Live entries across all shards (O(shards)).
  [[nodiscard]] std::size_t entry_count() const;

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& key) const noexcept {
      return static_cast<std::size_t>(key.hash());
    }
  };
  /// One lock + map per shard, each on its own cache line so that hot
  /// neighboring shards don't false-share.
  struct alignas(64) Shard {
    std::mutex mutex;
    std::unordered_map<CacheKey, std::vector<double>, KeyHash> map;
  };

  [[nodiscard]] Shard& shard_of(const CacheKey& key) noexcept {
    // The low hash bits pick the bucket inside the shard's map; mix with the
    // high bits for the shard index so the two choices stay independent.
    return *shards_[(key.hash() >> 32) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t max_entries_per_shard_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> dropped_inserts_{0};
  std::atomic<std::uint64_t> invalidated_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace wfbn::serve
