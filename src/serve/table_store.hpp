// TableStore: the versioned snapshot store at the heart of the serving layer.
//
// The store extends the paper's wait-free, single-writer philosophy from
// construction time to serving time. The reader side is a wait-free snapshot
// pin (serve/snapshot_cell.hpp) — readers are never blocked by an in-progress
// ingest, never observe a torn table, and keep their pinned version alive for
// as long as their query runs. The writer side folds an incoming observation batch into
// a *shadow copy* of the current snapshot with WaitFreeBuilder::append_shadow
// (reusing append()'s staged, strong-exception-guarantee kernel) and only
// then publishes the copy as version v+1 with one atomic swap. A failed
// ingest — bad batch, worker throw, injected fault — discards the shadow and
// leaves the served version untouched and retryable.
//
// Concurrency contract:
//  - current()/version(): safe from any thread, wait-free, O(1).
//  - ingest(): safe from any thread; concurrent ingestors are serialized by a
//    writer mutex that readers never touch.
//
// A template over the key type: TableStore serves narrow tables,
// WideTableStore serves two-word-key tables, through the identical
// publish/pin machinery. The Policy parameter threads the atomics backend
// (concurrent/atomics_policy.hpp) through the publish path — the snapshot
// cell and the publish counter — so the same publish/pin source that serves
// production traffic is what the wfcheck model checker interleaves.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "concurrent/atomics_policy.hpp"
#include "core/wait_free_builder.hpp"
#include "data/dataset.hpp"
#include "serve/snapshot.hpp"
#include "serve/snapshot_cell.hpp"

namespace wfbn::serve {

/// What one successful ingest()/publish did.
struct IngestStats {
  std::uint64_t published_version = 0;
  std::uint64_t batch_rows = 0;
  double shadow_seconds = 0.0;  ///< deep copy + wait-free fold into the shadow
  double total_seconds = 0.0;   ///< shadow + publish (and writer-lock wait)
};

template <typename K, typename Policy = RealAtomics>
class BasicTableStore {
 public:
  using Table = BasicPotentialTable<K>;
  using Ptr = BasicSnapshotPtr<K>;

  /// Takes ownership of `initial` and publishes it as `initial_version`
  /// (defaults to 1 for a fresh store; recovery passes the restored durable
  /// version so ingestion resumes the version sequence instead of reissuing
  /// version numbers that already name different snapshots on disk).
  /// `ingest_options` configure the builder the ingestion path uses (worker
  /// count, pinning, pipeline batch — see WaitFreeBuilderOptions).
  /// Throws PreconditionError when `initial_version` is 0.
  explicit BasicTableStore(Table initial,
                           WaitFreeBuilderOptions ingest_options = {},
                           std::uint64_t initial_version = 1);

  /// The currently served snapshot. Wait-free; never returns null.
  [[nodiscard]] Ptr current() const noexcept { return current_.load(); }

  /// Version of the currently served snapshot.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return current()->version();
  }

  /// Folds `batch` into a shadow copy of the current snapshot and publishes
  /// it as the next version. Throws (DataError on a mismatched batch,
  /// InjectedFault under test schedules, whatever the fold propagates)
  /// WITHOUT changing the served snapshot; the call may simply be retried.
  IngestStats ingest(const Dataset& batch);

  /// Snapshots published so far, including the initial one. Monotonic;
  /// equals the current version unless a publish is in flight.
  [[nodiscard]] std::uint64_t published_count() const noexcept {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  BasicSnapshotCell<K, Policy> current_;
  // wfbn-lint: allow(policy-purity) writer-side only; wfcheck models the reader/writer interplay via current_
  std::mutex ingest_mutex_;              ///< serializes writers only
  BasicWaitFreeBuilder<K> builder_;      ///< guarded by ingest_mutex_
  typename Policy::template Atomic<std::uint64_t> publishes_{1};
};

extern template class BasicTableStore<Key>;
extern template class BasicTableStore<WideKey>;

using TableStore = BasicTableStore<Key>;
using WideTableStore = BasicTableStore<WideKey>;

}  // namespace wfbn::serve
