// The unit of publication in the serving layer: an immutable, versioned
// potential table.
//
// A Snapshot is created once (by TableStore's constructor or its ingestion
// path), published through the wait-free cell in serve/snapshot_cell.hpp,
// and never mutated again. Readers pin whatever version the publish hands
// them for the duration of one query — the shared_ptr keeps superseded versions alive until their last
// in-flight reader drops out, so a publish never invalidates memory a
// concurrent query is sweeping. The version number is what the result cache
// keys on (see serve/result_cache.hpp): answers computed against version v
// can never be served for version v+1.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "table/potential_table.hpp"

namespace wfbn::serve {

class Snapshot {
 public:
  Snapshot(PotentialTable table, std::uint64_t version)
      : table_(std::move(table)), version_(version) {}

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  [[nodiscard]] const PotentialTable& table() const noexcept { return table_; }

  /// 1-based publication counter; the initial table is version 1.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  PotentialTable table_;
  std::uint64_t version_;
};

/// How readers hold a snapshot: shared ownership, immutable payload.
using SnapshotPtr = std::shared_ptr<const Snapshot>;

}  // namespace wfbn::serve
