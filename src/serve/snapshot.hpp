// The unit of publication in the serving layer: an immutable, versioned
// potential table.
//
// A Snapshot is created once (by TableStore's constructor or its ingestion
// path), published through the wait-free cell in serve/snapshot_cell.hpp,
// and never mutated again. Readers pin whatever version the publish hands
// them for the duration of one query — the shared_ptr keeps superseded versions alive until their last
// in-flight reader drops out, so a publish never invalidates memory a
// concurrent query is sweeping. The version number is what the result cache
// keys on (see serve/result_cache.hpp): answers computed against version v
// can never be served for version v+1.
//
// A template over the key type: the serving layer publishes narrow and wide
// tables through the same machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "table/potential_table.hpp"

namespace wfbn::serve {

template <typename K>
class BasicSnapshot {
 public:
  using Table = BasicPotentialTable<K>;

  BasicSnapshot(Table table, std::uint64_t version)
      : table_(std::move(table)), version_(version) {}

  BasicSnapshot(const BasicSnapshot&) = delete;
  BasicSnapshot& operator=(const BasicSnapshot&) = delete;

  [[nodiscard]] const Table& table() const noexcept { return table_; }

  /// 1-based publication counter; the initial table is version 1.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  Table table_;
  std::uint64_t version_;
};

/// How readers hold a snapshot: shared ownership, immutable payload.
template <typename K>
using BasicSnapshotPtr = std::shared_ptr<const BasicSnapshot<K>>;

using Snapshot = BasicSnapshot<Key>;
using SnapshotPtr = BasicSnapshotPtr<Key>;
using WideSnapshot = BasicSnapshot<WideKey>;
using WideSnapshotPtr = BasicSnapshotPtr<WideKey>;

}  // namespace wfbn::serve
