#include "core/marginalizer.hpp"

#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/timer.hpp"

namespace wfbn {

template <typename K>
BasicMarginalizer<K>::BasicMarginalizer(std::size_t threads)
    : threads_(threads) {
  WFBN_EXPECT(threads >= 1, "marginalizer needs at least one thread");
}

template <typename K>
MarginalTable BasicMarginalizer<K>::marginalize(
    const Table& table, std::span<const std::size_t> variables) const {
  ThreadPool pool(threads_);
  return marginalize(table, variables, pool);
}

template <typename K>
MarginalTable BasicMarginalizer<K>::marginalize(
    const Table& table, std::span<const std::size_t> variables,
    ThreadPool& pool) const {
  const typename Traits::Projector projector(table.codec(), variables);
  const std::size_t workers = pool.size();
  const std::size_t parts = table.partitions().partition_count();
  worker_stats_.assign(workers, MarginalizeWorkerStats{});

  // One private partial table per worker (Algorithm 3 lines 5–14).
  std::vector<MarginalTable> partials(
      workers, MarginalTable(projector.variables(), projector.cardinalities()));

  // Workers write only their private partials, so a throw anywhere in the
  // sweep (including an injected fault) leaves the input table untouched and
  // no output escapes — marginalize() has the strong guarantee for free.
  pool.run([&](std::size_t w) {
    Timer timer;
    MarginalizeWorkerStats& ws = worker_stats_[w];
    MarginalTable& partial = partials[w];
    const auto [lo, hi] = ThreadPool::block_range(parts, workers, w);
    for (std::size_t p = lo; p < hi; ++p) {
      WFBN_FAULT_POINT(fault::Point::kMarginalizeSweep);
      table.partitions().partition(p).for_each([&](K key, std::uint64_t c) {
        partial.add(projector.project(key), c);
        ++ws.entries_visited;
      });
    }
    ws.seconds = timer.seconds();
  });

  // Merge step (Algorithm 3 line 16): marginal tables are tiny, so a
  // sequential cell-wise sum is cheaper than a parallel reduction tree.
  MarginalTable out = std::move(partials[0]);
  for (std::size_t w = 1; w < workers; ++w) out.merge(partials[w]);
  return out;
}

template class BasicMarginalizer<Key>;
template class BasicMarginalizer<WideKey>;

MarginalTable wide_marginalize(const WidePotentialTable& table,
                               std::span<const std::size_t> variables,
                               std::size_t threads) {
  return WideMarginalizer(threads).marginalize(table, variables);
}

}  // namespace wfbn
