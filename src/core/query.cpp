#include "core/query.hpp"

#include <algorithm>
#include <optional>

#include "util/error.hpp"

namespace wfbn {

template <typename K>
BasicQueryEngine<K>::BasicQueryEngine(const Table& table, std::size_t threads)
    : table_(&table), pool_(nullptr), threads_(threads) {
  WFBN_EXPECT(threads >= 1, "query engine needs at least one thread");
}

template <typename K>
BasicQueryEngine<K>::BasicQueryEngine(const Table& table, ThreadPool& pool)
    : table_(&table), pool_(&pool), threads_(pool.size()) {}

template <typename K>
MarginalTable BasicQueryEngine<K>::filtered_marginal(
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) const {
  const typename Traits::Codec& codec = table_->codec();
  for (const Evidence& e : evidence) {
    WFBN_EXPECT(e.variable < codec.variable_count(), "evidence variable out of range");
    WFBN_EXPECT(e.state < codec.cardinality(e.variable), "evidence state out of range");
    WFBN_EXPECT(std::find(variables.begin(), variables.end(), e.variable) ==
                    variables.end(),
                "evidence variables must be disjoint from the query set");
  }

  const typename Traits::Projector projector(codec, variables);
  // Precompute the decode recipe + expected state per evidence term for the
  // sweep (the VarLeg comes from the trait, so the filter works at any key
  // width).
  struct Filter {
    typename Traits::VarLeg leg;
    std::uint64_t state;
  };
  std::vector<Filter> filters;
  filters.reserve(evidence.size());
  for (const Evidence& e : evidence) {
    filters.push_back(Filter{Traits::leg_of(codec, e.variable), e.state});
  }

  const std::size_t parts = table_->partitions().partition_count();
  const auto sweep_range = [&](std::size_t lo, std::size_t hi,
                               MarginalTable& partial) {
    for (std::size_t p = lo; p < hi; ++p) {
      table_->partitions().partition(p).for_each([&](K key, std::uint64_t c) {
        for (const Filter& f : filters) {
          if (Traits::decode_leg(f.leg, key) != f.state) return;
        }
        partial.add(projector.project(key), c);
      });
    }
  };

  // Inline evaluation: the serving hot path. One full sweep on the calling
  // thread, no pool, no partial-table merge.
  if (pool_ == nullptr && threads_ == 1) {
    MarginalTable out(projector.variables(), projector.cardinalities());
    sweep_range(0, parts, out);
    return out;
  }

  std::optional<ThreadPool> owned;
  ThreadPool* pool = pool_;
  if (pool == nullptr) {
    owned.emplace(threads_);
    pool = &*owned;
  }
  std::vector<MarginalTable> partials(
      pool->size(), MarginalTable(projector.variables(), projector.cardinalities()));

  pool->run([&](std::size_t w) {
    const auto [lo, hi] = ThreadPool::block_range(parts, pool->size(), w);
    sweep_range(lo, hi, partials[w]);
  });

  MarginalTable out = std::move(partials[0]);
  for (std::size_t w = 1; w < partials.size(); ++w) out.merge(partials[w]);
  return out;
}

template <typename K>
std::vector<double> BasicQueryEngine<K>::marginal(
    std::span<const std::size_t> variables) const {
  return conditional(variables, {});
}

template <typename K>
std::vector<double> BasicQueryEngine<K>::conditional(
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) const {
  const MarginalTable counts = filtered_marginal(variables, evidence);
  const std::uint64_t total = counts.total();
  if (total == 0) {
    throw DataError("evidence has zero support in the training data");
  }
  std::vector<double> out(counts.cell_count());
  for (std::uint64_t cell = 0; cell < counts.cell_count(); ++cell) {
    out[cell] =
        static_cast<double>(counts.count_at(cell)) / static_cast<double>(total);
  }
  return out;
}

template <typename K>
double BasicQueryEngine<K>::evidence_probability(
    std::span<const Evidence> evidence) const {
  WFBN_EXPECT(!evidence.empty(), "evidence must be non-empty");
  // Count matching rows by marginalizing the first evidence variable under
  // the remaining filters, then selecting its observed state.
  const std::size_t vars[] = {evidence.front().variable};
  const MarginalTable counts =
      filtered_marginal(vars, evidence.subspan(1));
  const std::uint64_t matching = counts.count_at(evidence.front().state);
  return static_cast<double>(matching) /
         static_cast<double>(table_->sample_count());
}

template <typename K>
typename BasicQueryEngine<K>::MapResult BasicQueryEngine<K>::most_probable(
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) const {
  const std::vector<double> distribution = conditional(variables, evidence);
  const auto best = std::max_element(distribution.begin(), distribution.end());
  std::uint64_t cell =
      static_cast<std::uint64_t>(best - distribution.begin());

  MapResult result;
  result.probability = *best;
  result.states.reserve(variables.size());
  for (const std::size_t v : variables) {
    const std::uint32_t r = table_->codec().cardinality(v);
    result.states.push_back(static_cast<State>(cell % r));
    cell /= r;
  }
  return result;
}

template class BasicQueryEngine<Key>;
template class BasicQueryEngine<WideKey>;

}  // namespace wfbn
