#include "core/query.hpp"

#include <algorithm>
#include <optional>

#include "util/error.hpp"

namespace wfbn {

QueryEngine::QueryEngine(const PotentialTable& table, std::size_t threads)
    : table_(&table), pool_(nullptr), threads_(threads) {
  WFBN_EXPECT(threads >= 1, "query engine needs at least one thread");
}

QueryEngine::QueryEngine(const PotentialTable& table, ThreadPool& pool)
    : table_(&table), pool_(&pool), threads_(pool.size()) {}

MarginalTable QueryEngine::filtered_marginal(
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) const {
  const KeyCodec& codec = table_->codec();
  for (const Evidence& e : evidence) {
    WFBN_EXPECT(e.variable < codec.variable_count(), "evidence variable out of range");
    WFBN_EXPECT(e.state < codec.cardinality(e.variable), "evidence state out of range");
    WFBN_EXPECT(std::find(variables.begin(), variables.end(), e.variable) ==
                    variables.end(),
                "evidence variables must be disjoint from the query set");
  }

  const KeyProjector projector(codec, variables);
  // Precompute (stride, cardinality, state) per evidence term for the sweep.
  struct Filter {
    Key stride;
    std::uint64_t cardinality;
    std::uint64_t state;
  };
  std::vector<Filter> filters;
  filters.reserve(evidence.size());
  for (const Evidence& e : evidence) {
    filters.push_back(Filter{codec.stride(e.variable),
                             codec.cardinality(e.variable), e.state});
  }

  const std::size_t parts = table_->partitions().partition_count();
  const auto sweep_range = [&](std::size_t lo, std::size_t hi,
                               MarginalTable& partial) {
    for (std::size_t p = lo; p < hi; ++p) {
      table_->partitions().partition(p).for_each([&](Key key, std::uint64_t c) {
        for (const Filter& f : filters) {
          if ((key / f.stride) % f.cardinality != f.state) return;
        }
        partial.add(projector.project(key), c);
      });
    }
  };

  // Inline evaluation: the serving hot path. One full sweep on the calling
  // thread, no pool, no partial-table merge.
  if (pool_ == nullptr && threads_ == 1) {
    MarginalTable out(projector.variables(), projector.cardinalities());
    sweep_range(0, parts, out);
    return out;
  }

  std::optional<ThreadPool> owned;
  ThreadPool* pool = pool_;
  if (pool == nullptr) {
    owned.emplace(threads_);
    pool = &*owned;
  }
  std::vector<MarginalTable> partials(
      pool->size(), MarginalTable(projector.variables(), projector.cardinalities()));

  pool->run([&](std::size_t w) {
    const auto [lo, hi] = ThreadPool::block_range(parts, pool->size(), w);
    sweep_range(lo, hi, partials[w]);
  });

  MarginalTable out = std::move(partials[0]);
  for (std::size_t w = 1; w < partials.size(); ++w) out.merge(partials[w]);
  return out;
}

std::vector<double> QueryEngine::marginal(
    std::span<const std::size_t> variables) const {
  return conditional(variables, {});
}

std::vector<double> QueryEngine::conditional(
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) const {
  const MarginalTable counts = filtered_marginal(variables, evidence);
  const std::uint64_t total = counts.total();
  if (total == 0) {
    throw DataError("evidence has zero support in the training data");
  }
  std::vector<double> out(counts.cell_count());
  for (std::uint64_t cell = 0; cell < counts.cell_count(); ++cell) {
    out[cell] =
        static_cast<double>(counts.count_at(cell)) / static_cast<double>(total);
  }
  return out;
}

double QueryEngine::evidence_probability(
    std::span<const Evidence> evidence) const {
  WFBN_EXPECT(!evidence.empty(), "evidence must be non-empty");
  // Count matching rows by marginalizing the first evidence variable under
  // the remaining filters, then selecting its observed state.
  const std::size_t vars[] = {evidence.front().variable};
  const MarginalTable counts =
      filtered_marginal(vars, evidence.subspan(1));
  const std::uint64_t matching = counts.count_at(evidence.front().state);
  return static_cast<double>(matching) /
         static_cast<double>(table_->sample_count());
}

QueryEngine::MapResult QueryEngine::most_probable(
    std::span<const std::size_t> variables,
    std::span<const Evidence> evidence) const {
  const std::vector<double> distribution = conditional(variables, evidence);
  const auto best = std::max_element(distribution.begin(), distribution.end());
  std::uint64_t cell =
      static_cast<std::uint64_t>(best - distribution.begin());

  MapResult result;
  result.probability = *best;
  result.states.reserve(variables.size());
  for (const std::size_t v : variables) {
    const std::uint32_t r = table_->codec().cardinality(v);
    result.states.push_back(static_cast<State>(cell % r));
    cell /= r;
  }
  return result;
}

}  // namespace wfbn
