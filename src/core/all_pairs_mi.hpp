// All-pairs mutual information (paper Algorithm 4): the statistics pass of
// the drafting phase. For every pair (i, j) the pair marginal P(x_i, x_j) is
// built from the potential table, and I(X_i;X_j) is evaluated from it (the
// single-variable marginals are derived from the pair table — Eq. 1's three
// marginalizations collapse into one, as §IV-C describes).
//
// Three scheduling strategies (DESIGN.md ablation ABL-MI):
//  - kPairParallel   pairs are block-distributed over the workers; each
//                    worker sweeps the whole table per pair (Algorithm 4's
//                    round-robin pair scheduling).
//  - kEntryParallel  pairs run one at a time; each marginalization is
//                    data-parallel over table partitions (Algorithm 3 inside
//                    Algorithm 4).
//  - kFused          one parallel sweep of the table; each worker decodes a
//                    key once and updates all n(n−1)/2 private pair tables,
//                    which are then tree-merged. Fewest table passes.
//
// A template over the key type; the pair-parallel strategy decodes single
// variables through KeyTraits' VarLeg recipe, so every strategy works at
// both key widths.
#pragma once

#include <cstdint>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

/// Symmetric n×n matrix of pair statistics with a zero diagonal.
class MiMatrix {
 public:
  explicit MiMatrix(std::size_t n) : n_(n), cells_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return cells_[i * n_ + j];
  }
  void set(std::size_t i, std::size_t j, double value) {
    cells_[i * n_ + j] = value;
    cells_[j * n_ + i] = value;
  }

  /// Pairs with MI above `threshold`, sorted by descending MI — the candidate
  /// edge list the drafting phase consumes.
  struct ScoredPair {
    std::size_t i, j;
    double mi;
  };
  [[nodiscard]] std::vector<ScoredPair> pairs_above(double threshold) const;

 private:
  std::size_t n_;
  std::vector<double> cells_;
};

enum class AllPairsStrategy { kPairParallel, kEntryParallel, kFused };

struct AllPairsOptions {
  std::size_t threads = 1;
  AllPairsStrategy strategy = AllPairsStrategy::kPairParallel;
};

struct AllPairsStats {
  double total_seconds = 0.0;
  std::uint64_t pair_count = 0;
  /// Per-worker busy time; max over workers is the simulated-makespan input.
  std::vector<double> worker_seconds;
  std::vector<std::uint64_t> worker_entries_visited;
};

template <typename K>
class BasicAllPairsMi {
 public:
  using Traits = KeyTraits<K>;
  using Table = BasicPotentialTable<K>;

  explicit BasicAllPairsMi(AllPairsOptions options = {});

  /// MI of every unordered variable pair of `table`.
  [[nodiscard]] MiMatrix compute(const Table& table);
  [[nodiscard]] MiMatrix compute(const Table& table, ThreadPool& pool);

  [[nodiscard]] const AllPairsStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const AllPairsOptions& options() const noexcept { return options_; }

 private:
  MiMatrix compute_pair_parallel(const Table& table, ThreadPool& pool);
  MiMatrix compute_entry_parallel(const Table& table, ThreadPool& pool);
  MiMatrix compute_fused(const Table& table, ThreadPool& pool);

  AllPairsOptions options_;
  AllPairsStats stats_;
};

extern template class BasicAllPairsMi<Key>;
extern template class BasicAllPairsMi<WideKey>;

using AllPairsMi = BasicAllPairsMi<Key>;
using WideAllPairsMi = BasicAllPairsMi<WideKey>;

/// Historical free-function spelling of the wide all-pairs pass (fused
/// single-sweep schedule, the right default for n = 100-scale tables).
[[nodiscard]] MiMatrix wide_all_pairs_mi(const WidePotentialTable& table,
                                         std::size_t threads = 1);

}  // namespace wfbn
