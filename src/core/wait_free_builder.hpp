// The wait-free table-construction primitive (paper §IV-B, Algorithms 1–2).
//
// Key-space ownership is split across P cores. Stage 1: each core scans its
// block of the training data, encodes each row (Eq. 3), updates its own
// hashtable for keys it owns and pushes foreign keys onto the SPSC queue
// addressed to the owner. One barrier. Stage 2: each core drains the queues
// addressed to it into its own table. Every memory word has exactly one
// writer per stage, so no locks and no retries: both stages are wait-free,
// and the only synchronization is the single barrier crossing.
//
// Two variants:
//  - phased (the paper): barrier between the stages;
//  - pipelined (paper §VI future work): consumers drain their inbound queues
//    while producers are still running, removing the barrier at the cost of
//    concurrent SPSC traffic.
//
// The builder is a template over the key type (KeyTraits): WaitFreeBuilder
// produces narrow (64-bit key) tables, WideWaitFreeBuilder two-word tables
// for joint spaces up to 2^126. Both instantiations share every line of the
// kernel — including the incremental append() with its strong exception
// guarantee, the shadow-copy serving hook, degradation accounting, the stall
// watchdog, and all named fault points.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "data/dataset.hpp"
#include "table/partitioned_table.hpp"
#include "table/potential_table.hpp"
#include "util/simd.hpp"

namespace wfbn {

struct WaitFreeBuilderOptions {
  std::size_t threads = 1;
  PartitionScheme scheme = PartitionScheme::kModulo;
  /// Overlap stage 2 with stage 1 (no barrier). See class comment.
  bool pipelined = false;
  /// Pin worker p to core p when the OS allows it. A refused pin degrades
  /// (unpinned worker, counted in BuildStats::pin_failures) instead of
  /// failing the build.
  bool pin_threads = false;
  /// Pre-size per-partition hashtables; 0 derives an estimate from m.
  std::size_t expected_distinct_keys = 0;
  /// Rows a pipelined producer processes between drain attempts.
  std::size_t pipeline_batch = 4096;
  /// Stage-1 write-combining: keys staged per destination worker before the
  /// router flushes them into the SPSC fabric with one bulk publish
  /// (SpscQueue::push_block). 1 reproduces the pre-block behavior of one
  /// release store per key. Buffers are always flushed at stage/batch
  /// boundaries — see docs/ALGORITHMS.md ("Block routing fast path").
  std::size_t route_buffer_keys = 64;
  /// Stage-2 drain lookahead: while resolving a drained key, software-
  /// prefetch the probe slot of the key this many positions ahead in the
  /// consumed chunk span. 0 disables the hint.
  std::size_t prefetch_distance = 4;
  /// Rows encoded per strip in stage 1 before any routing, so the codec's
  /// mixed-radix multiply chain pipelines instead of alternating with
  /// table/queue traffic. 1 reproduces the row-at-a-time behavior.
  std::size_t encode_block_rows = 32;
  /// Kernel dispatch for the stage-1 encode strips: kAuto resolves to the
  /// best level the host supports (util/simd.hpp — AVX2 SoA tiles on capable
  /// x86, the scalar reference loop otherwise); kScalar forces the reference
  /// loop; kAvx2 asks for the vector tiles and silently degrades when the
  /// host lacks them. Every level is bit-identical (oracle-gated). The
  /// effective level of the last build is reported in BuildStats::simd_level.
  simd::Policy simd = simd::Policy::kAuto;
  /// Stage-2 probe parallelism: with >= 2, drained spans are folded with
  /// OpenHashTable::increment_block_batched using this many concurrent probe
  /// cursors (hash a group, prefetch every home slot, advance round-robin),
  /// overlapping the probe cache misses. 0 or 1 keeps the in-order drain —
  /// increment_block behind a DrainStream, whose prefetch window (of
  /// prefetch_distance) now carries across consume spans. Either path
  /// produces identical tables; fault-injection runs always drain scalar.
  std::size_t probe_cursors = 16;
  /// Back each partition's entry array with transparent 2 MB pages once it
  /// reaches one huge page (fewer TLB walks on larger-than-cache tables).
  /// Best-effort: refusal degrades to normal pages and is reported in
  /// BuildStats::huge_page_fallbacks, never an error.
  bool huge_pages = false;
  /// Stall watchdog for the pipelined variant: if no worker makes progress
  /// (rows scanned + keys drained) for this long while the drain phase is
  /// still waiting on producers, the build aborts with a StallError carrying
  /// per-worker progress counters instead of spinning forever. 0 disables.
  double stall_timeout_seconds = 0.0;
};

/// Per-worker instrumentation. The counts feed the multicore scaling
/// simulator (src/sim): they are exactly the per-core work terms of the
/// paper's O(m·n/P) analysis.
struct WorkerStats {
  std::uint64_t rows_encoded = 0;    ///< stage-1 rows this worker scanned
  std::uint64_t local_updates = 0;   ///< stage-1 updates into its own table
  std::uint64_t foreign_pushes = 0;  ///< stage-1 keys routed to other owners
  std::uint64_t stage2_pops = 0;     ///< stage-2 keys drained into its table
  std::uint64_t route_flushes = 0;   ///< write-combining buffer flushes issued
  std::uint64_t bulk_pops = 0;       ///< published chunk spans consumed whole
  double stage1_seconds = 0.0;
  double stage2_seconds = 0.0;
};

struct BuildStats {
  std::vector<WorkerStats> workers;
  double total_seconds = 0.0;
  /// Barrier crossing cost: the max over workers of the time spent inside
  /// arrive_and_wait (the slowest worker's wait dominates the makespan).
  double barrier_seconds = 0.0;

  /// Requested vs. effective parallelism: the two differ when thread spawn
  /// failed mid-construction and the build degraded to fewer workers (see
  /// ThreadPool's DegradationReport). pin_failures counts workers that asked
  /// for a core pin and ran unpinned instead.
  std::size_t requested_workers = 0;
  std::size_t effective_workers = 0;
  std::size_t pin_failures = 0;

  /// Effective encode dispatch level of the build (options.simd resolved
  /// against the host; forced and env downgrades included).
  simd::Level simd_level = simd::Level::kScalar;
  /// Partition tables whose entry array ended huge-page-advised vs. those
  /// that requested huge backing for an eligible allocation and were refused
  /// (kernel refusal or the table.huge_page fault point). Partitions smaller
  /// than one huge page count in neither.
  std::size_t huge_page_tables = 0;
  std::size_t huge_page_fallbacks = 0;

  [[nodiscard]] bool degraded() const noexcept {
    return effective_workers < requested_workers || pin_failures > 0;
  }

  [[nodiscard]] std::uint64_t total_foreign_pushes() const noexcept;
  [[nodiscard]] std::uint64_t total_local_updates() const noexcept;
  /// Routing efficiency counters of the block fast path: how many bulk
  /// flushes stage 1 issued and how many whole chunk spans stage 2 consumed.
  /// foreign_pushes / flushes ≈ keys per release store; stage2_pops /
  /// bulk_pops ≈ keys per acquire load.
  [[nodiscard]] std::uint64_t total_route_flushes() const noexcept;
  [[nodiscard]] std::uint64_t total_bulk_pops() const noexcept;
  /// max_p(stage1_p) + max_p(stage2_p): the makespan a P-core machine would
  /// observe if each worker ran on its own core.
  [[nodiscard]] double critical_path_seconds() const noexcept;
};

template <typename K>
class BasicWaitFreeBuilder {
 public:
  using Traits = KeyTraits<K>;
  using Codec = typename Traits::Codec;
  using Table = BasicPotentialTable<K>;

  explicit BasicWaitFreeBuilder(WaitFreeBuilderOptions options = {});

  /// Builds the potential table of `data` with options().threads workers on
  /// an internally managed pool.
  [[nodiscard]] Table build(const Dataset& data);

  /// Same, reusing an existing pool (pool.size() overrides options().threads).
  [[nodiscard]] Table build(const Dataset& data, ThreadPool& pool);

  /// Incremental update: folds additional observations into an existing
  /// table with the same two-stage wait-free procedure (training data often
  /// arrives in batches). Preconditions (checked): the dataset's
  /// cardinalities match the table's codec and the table has not been
  /// rebalance()d (ownership must still hold). Throws
  /// DataError/PreconditionError on violation.
  ///
  /// Strong exception-safety guarantee: the batch is staged into scratch
  /// partitions and committed only after the full two-stage kernel succeeded
  /// (with the commit's destination capacity reserved up front, so the merge
  /// itself cannot fail). If anything throws mid-append — a worker kernel, a
  /// queue allocation, an injected fault — the table is bit-identical to its
  /// pre-call state, including its sample count.
  void append(const Dataset& data, Table& table);

  /// Shadow-copy update — the publication hook of the serving layer
  /// (serve::TableStore): deep-copies `base`, folds `data` into the copy with
  /// append()'s staged two-stage kernel, and returns the copy. `base` itself
  /// is never written, so concurrent readers may keep sweeping it for the
  /// whole duration of the fold; the caller decides when (and whether) to
  /// publish the result. Same preconditions as append(); a throw discards the
  /// shadow, making the strong guarantee trivial.
  [[nodiscard]] Table append_shadow(const Dataset& data, const Table& base);

  /// Instrumentation from the most recent build().
  [[nodiscard]] const BuildStats& stats() const noexcept { return stats_; }

  [[nodiscard]] const WaitFreeBuilderOptions& options() const noexcept {
    return options_;
  }

 private:
  Table build_phased(const Dataset& data, ThreadPool& pool);
  Table build_pipelined(const Dataset& data, ThreadPool& pool);
  /// The two-stage kernel over an existing partitioned table (used by both
  /// build_phased and append). Refreshes stats_ except total_seconds. The
  /// pool may hold fewer workers than the table has partitions (a degraded
  /// pool): partitions are then block-assigned to workers, preserving the
  /// one-writer-per-partition invariant at reduced parallelism.
  void run_phased(const Dataset& data, const Codec& codec,
                  BasicPartitionedTable<K>& table, ThreadPool& pool);
  [[nodiscard]] std::size_t expected_entries_per_partition(
      const Dataset& data, const Codec& codec, std::size_t threads) const;

  WaitFreeBuilderOptions options_;
  BuildStats stats_;
};

extern template class BasicWaitFreeBuilder<Key>;
extern template class BasicWaitFreeBuilder<WideKey>;

using WaitFreeBuilder = BasicWaitFreeBuilder<Key>;
using WideWaitFreeBuilder = BasicWaitFreeBuilder<WideKey>;

/// The wide builder historically had its own slimmer options struct; it now
/// accepts the full option set (pipelining, pinning, watchdog, ...).
using WideBuilderOptions = WaitFreeBuilderOptions;

}  // namespace wfbn
