// Probability queries over a potential table: normalized marginals,
// conditionals given evidence, and MAP states — the "use the table you just
// built" layer. The paper's footnote 2 observes that counts are normalized
// lazily at marginalization time; this module is where that happens.
//
// Evidence filtering runs as one data-parallel sweep over the table
// partitions (same access pattern as the marginalization primitive), so
// conditioning costs the same O(#entries/P) as a marginal.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "table/marginal_table.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

/// One observed variable.
struct Evidence {
  std::size_t variable;
  State state;
};

class QueryEngine {
 public:
  /// The engine borrows `table`; it must outlive the engine.
  QueryEngine(const PotentialTable& table, std::size_t threads = 1);

  /// Normalized marginal distribution P(V) as probabilities in the layout of
  /// MarginalTable::index_of over `variables`.
  [[nodiscard]] std::vector<double> marginal(
      std::span<const std::size_t> variables) const;

  /// Conditional distribution P(V | evidence). Throws DataError if the
  /// evidence has zero support in the data. Evidence variables must be
  /// disjoint from `variables`.
  [[nodiscard]] std::vector<double> conditional(
      std::span<const std::size_t> variables,
      std::span<const Evidence> evidence) const;

  /// P(evidence): fraction of observations consistent with the evidence.
  [[nodiscard]] double evidence_probability(
      std::span<const Evidence> evidence) const;

  /// Most probable joint state of `variables` (optionally given evidence),
  /// with its probability. Ties break toward the lower cell index.
  struct MapResult {
    std::vector<State> states;
    double probability = 0.0;
  };
  [[nodiscard]] MapResult most_probable(
      std::span<const std::size_t> variables,
      std::span<const Evidence> evidence = {}) const;

 private:
  /// Count table of `variables` restricted to rows matching `evidence`.
  [[nodiscard]] MarginalTable filtered_marginal(
      std::span<const std::size_t> variables,
      std::span<const Evidence> evidence) const;

  const PotentialTable& table_;
  std::size_t threads_;
};

}  // namespace wfbn
