// Probability queries over a potential table: normalized marginals,
// conditionals given evidence, and MAP states — the "use the table you just
// built" layer. The paper's footnote 2 observes that counts are normalized
// lazily at marginalization time; this module is where that happens.
//
// Evidence filtering runs as one data-parallel sweep over the table
// partitions (same access pattern as the marginalization primitive), so
// conditioning costs the same O(#entries/P) as a marginal.
//
// Engines are cheap, stateless views: construction is O(1) and evaluation
// either runs inline on the calling thread (threads == 1 — no pool is ever
// spawned) or on a caller-provided ThreadPool. That is what lets the serving
// layer (src/serve) construct a fresh engine per query over whatever snapshot
// it just pinned, with per-query cost going entirely to the table sweep.
//
// A template over the key type: evidence decoding goes through KeyTraits'
// VarLeg recipe, so QueryEngine (narrow) and WideQueryEngine answer the same
// query set at either key width.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "table/marginal_table.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

/// One observed variable.
struct Evidence {
  std::size_t variable;
  State state;
};

template <typename K>
class BasicQueryEngine {
 public:
  using Traits = KeyTraits<K>;
  using Table = BasicPotentialTable<K>;

  /// The engine borrows `table`; it must outlive the engine. With
  /// threads == 1 every query evaluates inline on the calling thread; with
  /// threads > 1 each query spawns a transient pool (prefer the pool
  /// constructor when issuing many queries).
  explicit BasicQueryEngine(const Table& table, std::size_t threads = 1);

  /// Serving constructor: sweeps run on `pool` (borrowed, not owned), so
  /// repeated queries reuse the same workers instead of spawning threads.
  /// Both `table` and `pool` must outlive the engine.
  BasicQueryEngine(const Table& table, ThreadPool& pool);

  /// Normalized marginal distribution P(V) as probabilities in the layout of
  /// MarginalTable::index_of over `variables`.
  [[nodiscard]] std::vector<double> marginal(
      std::span<const std::size_t> variables) const;

  /// Conditional distribution P(V | evidence). Throws DataError if the
  /// evidence has zero support in the data. Evidence variables must be
  /// disjoint from `variables`.
  [[nodiscard]] std::vector<double> conditional(
      std::span<const std::size_t> variables,
      std::span<const Evidence> evidence) const;

  /// P(evidence): fraction of observations consistent with the evidence.
  [[nodiscard]] double evidence_probability(
      std::span<const Evidence> evidence) const;

  /// Most probable joint state of `variables` (optionally given evidence),
  /// with its probability. Ties break toward the lower cell index.
  struct MapResult {
    std::vector<State> states;
    double probability = 0.0;
  };
  [[nodiscard]] MapResult most_probable(
      std::span<const std::size_t> variables,
      std::span<const Evidence> evidence = {}) const;

  [[nodiscard]] const Table& table() const noexcept { return *table_; }

 private:
  /// Count table of `variables` restricted to rows matching `evidence`.
  [[nodiscard]] MarginalTable filtered_marginal(
      std::span<const std::size_t> variables,
      std::span<const Evidence> evidence) const;

  const Table* table_;
  ThreadPool* pool_;  ///< borrowed evaluation pool; nullptr = owned-by-query
  std::size_t threads_;
};

extern template class BasicQueryEngine<Key>;
extern template class BasicQueryEngine<WideKey>;

using QueryEngine = BasicQueryEngine<Key>;
using WideQueryEngine = BasicQueryEngine<WideKey>;

}  // namespace wfbn
