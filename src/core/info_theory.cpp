#include "core/info_theory.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace wfbn {

double entropy(const MarginalTable& table) {
  const double m = static_cast<double>(table.total());
  if (m == 0.0) return 0.0;
  double h = 0.0;
  for (const std::uint64_t c : table.raw_counts()) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / m;
    h -= p * std::log(p);
  }
  return h;
}

double mutual_information(const MarginalTable& joint_xy) {
  WFBN_EXPECT(joint_xy.variables().size() == 2,
              "mutual_information expects a pair table");
  const std::size_t x = joint_xy.variables()[0];
  const std::size_t y = joint_xy.variables()[1];
  // I(X;Y) = H(X) + H(Y) − H(X,Y); marginals derived from the pair table.
  const std::size_t keep_x[] = {x};
  const std::size_t keep_y[] = {y};
  const double h_x = entropy(joint_xy.sum_out_to(keep_x));
  const double h_y = entropy(joint_xy.sum_out_to(keep_y));
  const double h_xy = entropy(joint_xy);
  return std::max(0.0, h_x + h_y - h_xy);
}

double conditional_mutual_information(const MarginalTable& joint,
                                      std::size_t x, std::size_t y) {
  const auto& vars = joint.variables();
  WFBN_EXPECT(vars.size() >= 2, "joint table must contain x, y");
  WFBN_EXPECT(std::find(vars.begin(), vars.end(), x) != vars.end(),
              "x not in joint table");
  WFBN_EXPECT(std::find(vars.begin(), vars.end(), y) != vars.end(),
              "y not in joint table");
  WFBN_EXPECT(x != y, "x and y must differ");

  if (vars.size() == 2) return mutual_information(joint.sum_out_to(vars));

  // Z = table variables minus {x, y}.
  std::vector<std::size_t> z;
  for (const std::size_t v : vars) {
    if (v != x && v != y) z.push_back(v);
  }
  std::vector<std::size_t> xz = z;
  xz.push_back(x);
  std::vector<std::size_t> yz = z;
  yz.push_back(y);

  // I(X;Y|Z) = H(X,Z) + H(Y,Z) − H(X,Y,Z) − H(Z).
  const double h_xz = entropy(joint.sum_out_to(xz));
  const double h_yz = entropy(joint.sum_out_to(yz));
  const double h_xyz = entropy(joint);
  const double h_z = entropy(joint.sum_out_to(z));
  return std::max(0.0, h_xz + h_yz - h_xyz - h_z);
}

GTestResult g_test(const MarginalTable& joint, std::size_t x, std::size_t y) {
  GTestResult result;
  const double m = static_cast<double>(joint.total());
  result.g = 2.0 * m * conditional_mutual_information(joint, x, y);

  std::uint64_t dof = 1;
  std::uint32_t r_x = 0;
  std::uint32_t r_y = 0;
  for (std::size_t i = 0; i < joint.variables().size(); ++i) {
    const std::size_t v = joint.variables()[i];
    const std::uint32_t r = joint.cardinalities()[i];
    if (v == x) {
      r_x = r;
    } else if (v == y) {
      r_y = r;
    } else {
      dof *= r;
    }
  }
  WFBN_EXPECT(r_x > 0 && r_y > 0, "x or y missing from joint table");
  dof *= static_cast<std::uint64_t>(std::max(1u, r_x - 1)) *
         static_cast<std::uint64_t>(std::max(1u, r_y - 1));
  result.dof = dof;
  result.p_value = chi_squared_sf(result.g, static_cast<double>(dof));
  return result;
}

namespace {

// Regularized lower incomplete gamma by its power series; converges fast for
// x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 1000; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Regularized upper incomplete gamma by Lentz's continued fraction; converges
// fast for x >= a + 1.
double gamma_q_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  WFBN_EXPECT(a > 0.0, "gamma shape must be positive");
  WFBN_EXPECT(x >= 0.0, "gamma argument must be non-negative");
  if (x == 0.0) return 0.0;
  return (x < a + 1.0) ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double regularized_gamma_q(double a, double x) {
  WFBN_EXPECT(a > 0.0, "gamma shape must be positive");
  WFBN_EXPECT(x >= 0.0, "gamma argument must be non-negative");
  if (x == 0.0) return 1.0;
  return (x < a + 1.0) ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double chi_squared_sf(double x, double dof) {
  WFBN_EXPECT(dof > 0.0, "chi-squared needs dof > 0");
  if (x <= 0.0) return 1.0;
  return regularized_gamma_q(dof / 2.0, x / 2.0);
}

}  // namespace wfbn
