#include "core/wait_free_builder.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <optional>
#include <utility>

#include "concurrent/affinity.hpp"
#include "concurrent/barrier.hpp"
#include "concurrent/retire_gate.hpp"
#include "concurrent/spsc_queue.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/timer.hpp"

namespace wfbn {

namespace {

/// P×P queue fabric; cell (src, dst) carries keys produced by worker src for
/// owner dst. Diagonal cells are never used (own keys go straight into the
/// local table) but are allocated to keep indexing branch-free.
template <typename K>
class QueueFabric {
 public:
  using Queue = SpscQueue<K>;

  explicit QueueFabric(std::size_t workers) : workers_(workers) {
    cells_.reserve(workers * workers);
    for (std::size_t i = 0; i < workers * workers; ++i) {
      cells_.push_back(std::make_unique<Queue>());
    }
  }

  Queue& at(std::size_t src, std::size_t dst) {
    return *cells_[src * workers_ + dst];
  }

 private:
  std::size_t workers_;
  std::vector<std::unique_ptr<Queue>> cells_;
};

/// Per-worker software write-combining router (stage 1): a small staging
/// buffer per destination worker; a full buffer is flushed into the SPSC
/// fabric with one bulk publish (SpscQueue::push_block) instead of one
/// release store per key. The caller flushes the remainder at stage/batch
/// boundaries (flush_all, ascending destination order). With
/// buffer_keys == 1 every route() flushes immediately, which is exactly the
/// pre-block scalar behavior.
template <typename K>
class KeyRouter {
 public:
  KeyRouter(QueueFabric<K>& queues, std::size_t src, std::size_t workers,
            std::size_t buffer_keys)
      : queues_(queues),
        src_(src),
        capacity_(buffer_keys),
        staging_(workers * buffer_keys),
        fill_(workers, 0) {}

  /// Stages `key` for `dst`; flushes that destination's buffer when full.
  /// Returns the number of flushes performed (0 or 1).
  std::uint64_t route(std::size_t dst, K key) {
    K* buffer = staging_.data() + dst * capacity_;
    buffer[fill_[dst]++] = key;
    if (fill_[dst] == capacity_) {
      queues_.at(src_, dst).push_block(buffer, capacity_);
      fill_[dst] = 0;
      return 1;
    }
    return 0;
  }

  /// Flushes every destination with staged keys, ascending dst order.
  /// Returns the number of (non-empty) flushes performed.
  std::uint64_t flush_all() {
    std::uint64_t flushes = 0;
    for (std::size_t dst = 0; dst < fill_.size(); ++dst) {
      if (fill_[dst] == 0) continue;
      queues_.at(src_, dst).push_block(staging_.data() + dst * capacity_,
                                       fill_[dst]);
      fill_[dst] = 0;
      ++flushes;
    }
    return flushes;
  }

 private:
  QueueFabric<K>& queues_;
  std::size_t src_;
  std::size_t capacity_;
  std::vector<K> staging_;
  std::vector<std::size_t> fill_;
};

/// Which worker writes each partition. With workers == partitions this is the
/// identity map (the paper's one-core-per-hashtable configuration); with a
/// degraded pool each worker owns a contiguous block of partitions, which
/// preserves the one-writer-per-memory-word invariant at reduced parallelism.
std::vector<std::size_t> partition_owners(std::size_t parts,
                                          std::size_t workers) {
  std::vector<std::size_t> owner(parts);
  for (std::size_t w = 0; w < workers; ++w) {
    const auto [lo, hi] = ThreadPool::block_range(parts, workers, w);
    for (std::size_t p = lo; p < hi; ++p) owner[p] = w;
  }
  return owner;
}

/// Per-worker progress counter on its own cache line (the stall watchdog sums
/// these; sharing a line would make every bump a coherence miss).
struct alignas(64) ProgressCell {
  std::atomic<std::uint64_t> value{0};
};

/// Tallies the partitions' huge-page outcomes into the build stats. Read
/// after the kernel: grows re-allocate, so only the final backing matters.
template <typename K>
void collect_page_backing(const BasicPartitionedTable<K>& table,
                          BuildStats& stats) {
  stats.huge_page_tables = 0;
  stats.huge_page_fallbacks = 0;
  for (std::size_t p = 0; p < table.partition_count(); ++p) {
    switch (table.partition(p).backing()) {
      case PageBacking::kHugeAdvised:
        ++stats.huge_page_tables;
        break;
      case PageBacking::kHugeFallback:
        ++stats.huge_page_fallbacks;
        break;
      case PageBacking::kHeap:
        break;
    }
  }
}

}  // namespace

std::uint64_t BuildStats::total_foreign_pushes() const noexcept {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.foreign_pushes;
  return total;
}

std::uint64_t BuildStats::total_local_updates() const noexcept {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.local_updates;
  return total;
}

std::uint64_t BuildStats::total_route_flushes() const noexcept {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.route_flushes;
  return total;
}

std::uint64_t BuildStats::total_bulk_pops() const noexcept {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.bulk_pops;
  return total;
}

double BuildStats::critical_path_seconds() const noexcept {
  double stage1 = 0.0;
  double stage2 = 0.0;
  for (const WorkerStats& w : workers) {
    stage1 = std::max(stage1, w.stage1_seconds);
    stage2 = std::max(stage2, w.stage2_seconds);
  }
  return stage1 + stage2;
}

template <typename K>
BasicWaitFreeBuilder<K>::BasicWaitFreeBuilder(WaitFreeBuilderOptions options)
    : options_(options) {
  WFBN_EXPECT(options_.threads >= 1, "builder needs at least one thread");
  WFBN_EXPECT(options_.pipeline_batch >= 1, "pipeline batch must be >= 1");
  WFBN_EXPECT(options_.route_buffer_keys >= 1,
              "route buffer must hold at least one key");
  WFBN_EXPECT(options_.encode_block_rows >= 1,
              "encode block must hold at least one row");
  WFBN_EXPECT(options_.stall_timeout_seconds >= 0.0,
              "stall timeout cannot be negative");
}

template <typename K>
std::size_t BasicWaitFreeBuilder<K>::expected_entries_per_partition(
    const Dataset& data, const Codec& codec, std::size_t threads) const {
  if (options_.expected_distinct_keys != 0) {
    return options_.expected_distinct_keys / threads + 1;
  }
  // Distinct keys are bounded by both m and the state space; for sparse data
  // (the paper's regime) m dominates. A quarter of the bound is a reasonable
  // starting size — the tables grow geometrically if it is exceeded.
  const std::uint64_t bound = std::min<std::uint64_t>(
      data.sample_count(), Traits::state_space_bound(codec));
  return static_cast<std::size_t>(bound / threads / 4 + 16);
}

template <typename K>
BasicPotentialTable<K> BasicWaitFreeBuilder<K>::build(const Dataset& data) {
  ThreadPool pool(options_.threads);
  return build(data, pool);
}

template <typename K>
BasicPotentialTable<K> BasicWaitFreeBuilder<K>::build(const Dataset& data,
                                                      ThreadPool& pool) {
  WFBN_EXPECT(data.sample_count() > 0, "cannot build a table from no data");
  return options_.pipelined ? build_pipelined(data, pool)
                            : build_phased(data, pool);
}

template <typename K>
void BasicWaitFreeBuilder<K>::append(const Dataset& data, Table& table) {
  WFBN_EXPECT(data.sample_count() > 0, "cannot append an empty batch");
  if (data.cardinalities() != table.codec().cardinalities()) {
    throw DataError("batch cardinalities do not match the table's codec");
  }
  if (table.partitions().rebalanced()) {
    throw DataError(
        "table was rebalanced — construction-time ownership no longer holds, "
        "rebuild instead of appending");
  }
  const std::size_t parts = table.partitions().partition_count();
  Timer total_timer;
  // A degraded pool (spawn failures) yields fewer workers than partitions;
  // run_phased block-assigns partitions to whatever workers exist.
  ThreadPool pool(parts);

  // Stage the batch into scratch partitions with the same ownership geometry
  // (same P, scheme, and state space, so owner_of agrees with the table).
  // Any failure up to and including the kernel leaves `table` untouched.
  BasicPartitionedTable<K> scratch(
      parts, table.partitions().state_space(), table.partitions().scheme(),
      expected_entries_per_partition(data, table.codec(), parts),
      options_.huge_pages);
  run_phased(data, table.codec(), scratch, pool);

  WFBN_FAULT_POINT(fault::Point::kAppendCommit);

  // Commit. Reserving destination capacity first means the merge increments
  // below can never reallocate: after this loop the fold cannot fail, which
  // is what upgrades append() to the strong guarantee.
  for (std::size_t p = 0; p < parts; ++p) {
    BasicOpenHashTable<K>& dst = table.partitions().partition(p);
    dst.reserve(dst.size() + scratch.partition(p).size());
  }
  pool.run([&](std::size_t w) {
    const auto [lo, hi] = ThreadPool::block_range(parts, pool.size(), w);
    for (std::size_t p = lo; p < hi; ++p) {
      table.partitions().partition(p).merge_from(scratch.partition(p));
    }
  });
  stats_.total_seconds = total_timer.seconds();
  table.record_additional_samples(data.sample_count());
}

template <typename K>
BasicPotentialTable<K> BasicWaitFreeBuilder<K>::append_shadow(
    const Dataset& data, const Table& base) {
  Table shadow = base;
  append(data, shadow);
  return shadow;
}

template <typename K>
BasicPotentialTable<K> BasicWaitFreeBuilder<K>::build_phased(
    const Dataset& data, ThreadPool& pool) {
  const std::size_t P = pool.size();
  const Codec codec = Traits::make_codec(data.cardinalities());
  BasicPartitionedTable<K> table(
      P, Traits::state_space_bound(codec), options_.scheme,
      expected_entries_per_partition(data, codec, P), options_.huge_pages);
  Timer total_timer;
  run_phased(data, codec, table, pool);
  stats_.total_seconds = total_timer.seconds();
  return Table(codec, std::move(table),
               static_cast<std::uint64_t>(data.sample_count()));
}

template <typename K>
void BasicWaitFreeBuilder<K>::run_phased(const Dataset& data,
                                         const Codec& codec,
                                         BasicPartitionedTable<K>& table,
                                         ThreadPool& pool) {
  const std::size_t W = pool.size();
  const std::size_t parts = table.partition_count();
  QueueFabric<K> queues(W);
  SpinBarrier barrier(W);
  stats_ = BuildStats{};
  stats_.workers.assign(W, WorkerStats{});
  stats_.requested_workers = pool.degradation().requested_threads;
  stats_.effective_workers = W;
  const std::vector<std::size_t> part_owner = partition_owners(parts, W);
  std::atomic<std::size_t> pin_failures{0};
  std::vector<double> barrier_waits(W, 0.0);

  const std::size_t m = data.sample_count();
  const std::size_t strip = options_.encode_block_rows;
  const std::size_t prefetch = options_.prefetch_distance;
  const std::size_t cursors = options_.probe_cursors;
  // Resolved once per build: the whole kernel runs one dispatch level, and
  // the effective level (after host/env/forced downgrades) is reported.
  const simd::Level level = simd::resolve(options_.simd);
  stats_.simd_level = level;
  const std::uint64_t space = table.state_space();
  const PartitionScheme scheme = table.scheme();

  pool.run([&](std::size_t w) {
    if (options_.pin_threads && !pin_current_thread(w)) {
      pin_failures.fetch_add(1, std::memory_order_relaxed);
    }
    WorkerStats& ws = stats_.workers[w];
    const auto [my_lo, my_hi] = ThreadPool::block_range(parts, W, w);
    // Hoisted once per kernel so the disabled case costs a register test per
    // row instead of an atomic load (schedules are armed before the build).
    const bool inject = fault::enabled();

    // ---- Stage 1 (Algorithm 1): scan my block, route keys by ownership.
    // Rows are encoded in strips (the codec's multiply chain pipelines) and
    // foreign keys go through the write-combining router; the router is
    // fully flushed before the barrier so stage-2 emptiness stays final.
    // A throw here is caught and re-raised only after the barrier: every
    // worker must cross it exactly once or the others would spin forever.
    std::exception_ptr stage1_error;
    Timer stage_timer;
    KeyRouter<K> router(queues, w, W, options_.route_buffer_keys);
    std::vector<K> keys(strip);
    std::vector<std::size_t> owners(strip);
    try {
      const auto [lo, hi] = ThreadPool::block_range(m, W, w);
      for (std::size_t i = lo; i < hi;) {
        const std::size_t count = std::min(strip, hi - i);
        if (inject) {
          // Scalar fallback keeps the once-per-row fault-point semantics the
          // injection sweeps rely on.
          for (std::size_t r = 0; r < count; ++r) {
            fault::fire(fault::Point::kStage1Row);
            keys[r] = codec.encode(data.row(i + r));
            ++ws.rows_encoded;
          }
        } else {
          codec.encode_block(data.row(i).data(), count, keys.data(), level);
          ws.rows_encoded += count;
        }
        // Destinations for the whole strip before any route-buffer traffic
        // (one pipelined hash/divide pass instead of per-key detours).
        Traits::owner_block(keys.data(), count, parts, space, scheme,
                            owners.data());
        for (std::size_t r = 0; r < count; ++r) {
          const K key = keys[r];
          const std::size_t q = owners[r];
          const std::size_t dst = part_owner[q];
          if (dst == w) {
            table.partition(q).increment(key);
            ++ws.local_updates;
          } else {
            ws.route_flushes += router.route(dst, key);
            ++ws.foreign_pushes;
          }
        }
        i += count;
      }
      ws.route_flushes += router.flush_all();
      if (inject) fault::fire(fault::Point::kBarrier);
    } catch (...) {
      stage1_error = std::current_exception();
    }
    ws.stage1_seconds = stage_timer.seconds();

    // ---- The single synchronization step between the stages.
    Timer barrier_timer;
    barrier.arrive_and_wait();
    barrier_waits[w] = barrier_timer.seconds();
    if (stage1_error) std::rethrow_exception(stage1_error);

    // ---- Stage 2 (Algorithm 2): drain queues addressed to me, one whole
    // published chunk span per acquire load, batch-folding each span with
    // probe prefetching. After a throw there is no further synchronization,
    // so exceptions propagate directly (the pool collects the first one).
    stage_timer.reset();
    if (my_lo < my_hi) {
      BasicOpenHashTable<K>* sole =
          (my_hi - my_lo == 1) ? &table.partition(my_lo) : nullptr;
      // Multi-cursor probing when asked for (>= 2 cursors); otherwise the
      // in-order drain behind a DrainStream, so the prefetch window carries
      // across consume spans instead of collapsing at every span tail.
      const bool batched = !inject && sole != nullptr && cursors >= 2;
      std::optional<typename BasicOpenHashTable<K>::DrainStream> stream;
      if (!inject && sole != nullptr && !batched) {
        stream.emplace(*sole, prefetch);
      }
      for (std::size_t src = 0; src < W; ++src) {
        if (src == w) continue;
        SpscQueue<K>& queue = queues.at(src, w);
        ws.stage2_pops += queue.consume([&](const K* span, std::size_t count) {
          ++ws.bulk_pops;
          if (inject) {
            // Scalar fallback keeps the once-per-drained-key fault-point
            // semantics the injection sweeps rely on.
            for (std::size_t k = 0; k < count; ++k) {
              fault::fire(fault::Point::kStage2Drain);
              if (sole != nullptr) {
                sole->increment(span[k]);
              } else {
                table.partition(table.owner_of(span[k])).increment(span[k]);
              }
            }
          } else if (batched) {
            sole->increment_block_batched(span, count, cursors);
          } else if (stream) {
            stream->feed(span, count);
          } else {
            for (std::size_t k = 0; k < count; ++k) {
              table.partition(table.owner_of(span[k])).increment(span[k]);
            }
          }
        });
      }
      if (stream) stream->finish();
    }
    ws.stage2_seconds = stage_timer.seconds();
  });

  stats_.pin_failures = pin_failures.load(std::memory_order_relaxed);
  // The slowest worker's wait bounds what the barrier costs the makespan.
  stats_.barrier_seconds =
      *std::max_element(barrier_waits.begin(), barrier_waits.end());
  collect_page_backing(table, stats_);
}

template <typename K>
BasicPotentialTable<K> BasicWaitFreeBuilder<K>::build_pipelined(
    const Dataset& data, ThreadPool& pool) {
  const std::size_t P = pool.size();
  const Codec codec = Traits::make_codec(data.cardinalities());
  BasicPartitionedTable<K> table(
      P, Traits::state_space_bound(codec), options_.scheme,
      expected_entries_per_partition(data, codec, P), options_.huge_pages);
  QueueFabric<K> queues(P);
  stats_ = BuildStats{};
  stats_.workers.assign(P, WorkerStats{});
  stats_.requested_workers = pool.degradation().requested_threads;
  stats_.effective_workers = P;
  const simd::Level level = simd::resolve(options_.simd);
  stats_.simd_level = level;
  const std::uint64_t space = table.state_space();
  const PartitionScheme scheme = table.scheme();
  const std::size_t cursors = options_.probe_cursors;
  std::atomic<std::size_t> pin_failures{0};
  // Producer retirement + early wind-down (worker exception or watchdog
  // stall). The gate's memory-order contract is model-checked in wfcheck's
  // model_builder_retire harness.
  RetireGate gate(P);
  std::atomic<bool> stalled{false};
  // Captured by the watchdog at detection time: by the time run() returns and
  // we build the StallError, a transiently wedged producer may have finished,
  // so reading producers_done afterwards would under-report the culprits.
  std::atomic<std::size_t> stalled_unfinished{0};
  std::vector<ProgressCell> progress(P);

  const std::size_t m = data.sample_count();
  const std::size_t batch = options_.pipeline_batch;
  const std::size_t strip = options_.encode_block_rows;
  const std::size_t prefetch = options_.prefetch_distance;
  const double stall_timeout = options_.stall_timeout_seconds;
  const bool watchdog = stall_timeout > 0.0;
  Timer total_timer;

  pool.run([&](std::size_t p) {
    if (options_.pin_threads && !pin_current_thread(p)) {
      pin_failures.fetch_add(1, std::memory_order_relaxed);
    }
    WorkerStats& ws = stats_.workers[p];
    BasicOpenHashTable<K>& mine = table.partition(p);
    const bool inject = fault::enabled();
    Timer stage_timer;

    // Same drain dispatch as the phased stage 2; the DrainStream is
    // especially at home here, carrying the prefetch window across the many
    // small interleaved drain passes. Its carried tail is flushed before the
    // final-sweep exit below, so the full-drain invariant still holds.
    const bool batched = !inject && cursors >= 2;
    typename BasicOpenHashTable<K>::DrainStream stream(
        mine, (inject || batched) ? 0 : prefetch);
    auto drain_once = [&] {
      if (inject) fault::fire(fault::Point::kPipelineDrain);
      for (std::size_t src = 0; src < P; ++src) {
        if (src == p) continue;
        SpscQueue<K>& queue = queues.at(src, p);
        const std::size_t drained =
            queue.consume([&](const K* span, std::size_t count) {
              ++ws.bulk_pops;
              if (inject) {
                mine.increment_block(span, count, prefetch);
              } else if (batched) {
                mine.increment_block_batched(span, count, cursors);
              } else {
                stream.feed(span, count);
              }
            });
        ws.stage2_pops += drained;
        if (watchdog && drained != 0) {
          progress[p].value.fetch_add(drained, std::memory_order_relaxed);
        }
      }
    };

    // The whole kernel is exception-robust: a throw anywhere marks the build
    // aborted and keeps the producers_done accounting truthful, so no other
    // worker can spin forever waiting on this one.
    bool counted_done = false;
    try {
      // Interleave producing batches with draining inbound keys. The router
      // is flushed after every batch, so the consumers' drain interleave
      // (and the stall watchdog's progress accounting) observe the same
      // cadence as the scalar path — at most one batch of keys is ever
      // staged privately.
      KeyRouter<K> router(queues, p, P, options_.route_buffer_keys);
      std::vector<K> keys(strip);
      std::vector<std::size_t> owners(strip);
      const auto [lo, hi] = ThreadPool::block_range(m, P, p);
      std::size_t i = lo;
      while (i < hi && !gate.aborted()) {
        const std::size_t stop = std::min(hi, i + batch);
        while (i < stop) {
          const std::size_t count = std::min(strip, stop - i);
          if (inject) {
            for (std::size_t r = 0; r < count; ++r) {
              fault::fire(fault::Point::kStage1Row);
              keys[r] = codec.encode(data.row(i + r));
              ++ws.rows_encoded;
            }
          } else {
            codec.encode_block(data.row(i).data(), count, keys.data(), level);
            ws.rows_encoded += count;
          }
          Traits::owner_block(keys.data(), count, P, space, scheme,
                              owners.data());
          for (std::size_t r = 0; r < count; ++r) {
            const K key = keys[r];
            const std::size_t owner = owners[r];
            if (owner == p) {
              mine.increment(key);
              ++ws.local_updates;
            } else {
              ws.route_flushes += router.route(owner, key);
              ++ws.foreign_pushes;
            }
          }
          if (watchdog) {
            progress[p].value.fetch_add(count, std::memory_order_relaxed);
          }
          i += count;
        }
        ws.route_flushes += router.flush_all();
        drain_once();
      }
      ws.stage1_seconds = stage_timer.seconds();
      gate.retire();
      counted_done = true;

      // Keep draining until every producer has finished, then one final pass:
      // after producers_done == P no queue can grow, so an empty sweep means
      // the fabric is fully drained. The watchdog clocks the time since the
      // global progress sum last moved; a wedged worker freezes its counter,
      // and once every healthy worker has gone idle the sum stops moving.
      stage_timer.reset();
      Timer stall_timer;
      std::uint64_t last_progress = 0;
      bool have_baseline = false;
      while (!gate.aborted() && !gate.all_retired()) {
        drain_once();
        if (watchdog) {
          std::uint64_t now = 0;
          for (const ProgressCell& cell : progress) {
            now += cell.value.load(std::memory_order_relaxed);
          }
          if (!have_baseline || now != last_progress) {
            last_progress = now;
            have_baseline = true;
            stall_timer.reset();
          } else if (stall_timer.seconds() > stall_timeout) {
            stalled_unfinished.store(P - gate.retired(),
                                     std::memory_order_relaxed);
            stalled.store(true, std::memory_order_release);
            gate.abort();
            break;
          }
        }
      }
      if (!gate.aborted()) drain_once();
      stream.finish();
      ws.stage2_seconds = stage_timer.seconds();
    } catch (...) {
      gate.abort_and_retire(counted_done);
      throw;
    }
  });

  stats_.pin_failures = pin_failures.load(std::memory_order_relaxed);
  stats_.total_seconds = total_timer.seconds();
  if (stalled.load(std::memory_order_acquire)) {
    std::vector<std::uint64_t> snapshot;
    snapshot.reserve(P);
    for (const ProgressCell& cell : progress) {
      snapshot.push_back(cell.value.load(std::memory_order_relaxed));
    }
    throw StallError(
        "pipelined build stalled: no worker progress for " +
            std::to_string(stall_timeout) + "s with " +
            std::to_string(stalled_unfinished.load(std::memory_order_relaxed)) +
            " producer(s) unfinished",
        std::move(snapshot));
  }
  collect_page_backing(table, stats_);
  return Table(codec, std::move(table), static_cast<std::uint64_t>(m));
}

template class BasicWaitFreeBuilder<Key>;
template class BasicWaitFreeBuilder<WideKey>;

}  // namespace wfbn
