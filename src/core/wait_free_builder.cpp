#include "core/wait_free_builder.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "concurrent/affinity.hpp"
#include "concurrent/barrier.hpp"
#include "concurrent/spsc_queue.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wfbn {

namespace {

using KeyQueue = SpscQueue<Key>;

/// P×P queue fabric; cell (src, dst) carries keys produced by worker src for
/// owner dst. Diagonal cells are never used (own keys go straight into the
/// local table) but are allocated to keep indexing branch-free.
class QueueFabric {
 public:
  explicit QueueFabric(std::size_t workers) : workers_(workers) {
    cells_.reserve(workers * workers);
    for (std::size_t i = 0; i < workers * workers; ++i) {
      cells_.push_back(std::make_unique<KeyQueue>());
    }
  }

  KeyQueue& at(std::size_t src, std::size_t dst) {
    return *cells_[src * workers_ + dst];
  }

 private:
  std::size_t workers_;
  std::vector<std::unique_ptr<KeyQueue>> cells_;
};

}  // namespace

std::uint64_t BuildStats::total_foreign_pushes() const noexcept {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.foreign_pushes;
  return total;
}

std::uint64_t BuildStats::total_local_updates() const noexcept {
  std::uint64_t total = 0;
  for (const WorkerStats& w : workers) total += w.local_updates;
  return total;
}

double BuildStats::critical_path_seconds() const noexcept {
  double stage1 = 0.0;
  double stage2 = 0.0;
  for (const WorkerStats& w : workers) {
    stage1 = std::max(stage1, w.stage1_seconds);
    stage2 = std::max(stage2, w.stage2_seconds);
  }
  return stage1 + stage2;
}

WaitFreeBuilder::WaitFreeBuilder(WaitFreeBuilderOptions options)
    : options_(options) {
  WFBN_EXPECT(options_.threads >= 1, "builder needs at least one thread");
  WFBN_EXPECT(options_.pipeline_batch >= 1, "pipeline batch must be >= 1");
}

std::size_t WaitFreeBuilder::expected_entries_per_partition(
    const Dataset& data, std::size_t threads) const {
  if (options_.expected_distinct_keys != 0) {
    return options_.expected_distinct_keys / threads + 1;
  }
  // Distinct keys are bounded by both m and the state space; for sparse data
  // (the paper's regime) m dominates. A quarter of the bound is a reasonable
  // starting size — the tables grow geometrically if it is exceeded.
  const std::uint64_t bound = std::min<std::uint64_t>(
      data.sample_count(), data.codec().state_space_size());
  return static_cast<std::size_t>(bound / threads / 4 + 16);
}

PotentialTable WaitFreeBuilder::build(const Dataset& data) {
  ThreadPool pool(options_.threads);
  return build(data, pool);
}

PotentialTable WaitFreeBuilder::build(const Dataset& data, ThreadPool& pool) {
  WFBN_EXPECT(data.sample_count() > 0, "cannot build a table from no data");
  return options_.pipelined ? build_pipelined(data, pool)
                            : build_phased(data, pool);
}

void WaitFreeBuilder::append(const Dataset& data, PotentialTable& table) {
  WFBN_EXPECT(data.sample_count() > 0, "cannot append an empty batch");
  if (data.cardinalities() != table.codec().cardinalities()) {
    throw DataError("batch cardinalities do not match the table's codec");
  }
  if (table.partitions().rebalanced()) {
    throw DataError(
        "table was rebalanced — construction-time ownership no longer holds, "
        "rebuild instead of appending");
  }
  ThreadPool pool(table.partitions().partition_count());
  Timer total_timer;
  run_phased(data, table.codec(), table.partitions(), pool);
  stats_.total_seconds = total_timer.seconds();
  table.record_additional_samples(data.sample_count());
}

PotentialTable WaitFreeBuilder::build_phased(const Dataset& data,
                                             ThreadPool& pool) {
  const std::size_t P = pool.size();
  const KeyCodec codec = data.codec();
  PartitionedTable table(P, codec.state_space_size(), options_.scheme,
                         expected_entries_per_partition(data, P));
  Timer total_timer;
  run_phased(data, codec, table, pool);
  stats_.total_seconds = total_timer.seconds();
  return PotentialTable(codec, std::move(table),
                        static_cast<std::uint64_t>(data.sample_count()));
}

void WaitFreeBuilder::run_phased(const Dataset& data, const KeyCodec& codec,
                                 PartitionedTable& table, ThreadPool& pool) {
  const std::size_t P = pool.size();
  QueueFabric queues(P);
  SpinBarrier barrier(P);
  stats_ = BuildStats{};
  stats_.workers.assign(P, WorkerStats{});

  const std::size_t m = data.sample_count();

  pool.run([&](std::size_t p) {
    if (options_.pin_threads) pin_current_thread(p);
    WorkerStats& ws = stats_.workers[p];
    OpenHashTable& mine = table.partition(p);

    // ---- Stage 1 (Algorithm 1): scan my block, route keys by ownership.
    Timer stage_timer;
    const auto [lo, hi] = ThreadPool::block_range(m, P, p);
    for (std::size_t i = lo; i < hi; ++i) {
      const Key key = codec.encode(data.row(i));
      ++ws.rows_encoded;
      const std::size_t owner = table.owner_of(key);
      if (owner == p) {
        mine.increment(key);
        ++ws.local_updates;
      } else {
        queues.at(p, owner).push(key);
        ++ws.foreign_pushes;
      }
    }
    ws.stage1_seconds = stage_timer.seconds();

    // ---- The single synchronization step between the stages.
    Timer barrier_timer;
    barrier.arrive_and_wait();
    if (p == 0) stats_.barrier_seconds = barrier_timer.seconds();

    // ---- Stage 2 (Algorithm 2): drain queues addressed to me.
    stage_timer.reset();
    Key key = 0;
    for (std::size_t src = 0; src < P; ++src) {
      if (src == p) continue;
      KeyQueue& queue = queues.at(src, p);
      while (queue.try_pop(key)) {
        mine.increment(key);
        ++ws.stage2_pops;
      }
    }
    ws.stage2_seconds = stage_timer.seconds();
  });
}

PotentialTable WaitFreeBuilder::build_pipelined(const Dataset& data,
                                                ThreadPool& pool) {
  const std::size_t P = pool.size();
  const KeyCodec codec = data.codec();
  PartitionedTable table(P, codec.state_space_size(), options_.scheme,
                         expected_entries_per_partition(data, P));
  QueueFabric queues(P);
  stats_ = BuildStats{};
  stats_.workers.assign(P, WorkerStats{});
  std::atomic<std::size_t> producers_done{0};

  const std::size_t m = data.sample_count();
  const std::size_t batch = options_.pipeline_batch;
  Timer total_timer;

  pool.run([&](std::size_t p) {
    if (options_.pin_threads) pin_current_thread(p);
    WorkerStats& ws = stats_.workers[p];
    OpenHashTable& mine = table.partition(p);
    Timer stage_timer;

    auto drain_once = [&] {
      Key key = 0;
      for (std::size_t src = 0; src < P; ++src) {
        if (src == p) continue;
        KeyQueue& queue = queues.at(src, p);
        while (queue.try_pop(key)) {
          mine.increment(key);
          ++ws.stage2_pops;
        }
      }
    };

    // Interleave producing batches with draining inbound keys.
    const auto [lo, hi] = ThreadPool::block_range(m, P, p);
    std::size_t i = lo;
    while (i < hi) {
      const std::size_t stop = std::min(hi, i + batch);
      for (; i < stop; ++i) {
        const Key key = codec.encode(data.row(i));
        ++ws.rows_encoded;
        const std::size_t owner = table.owner_of(key);
        if (owner == p) {
          mine.increment(key);
          ++ws.local_updates;
        } else {
          queues.at(p, owner).push(key);
          ++ws.foreign_pushes;
        }
      }
      drain_once();
    }
    ws.stage1_seconds = stage_timer.seconds();
    producers_done.fetch_add(1, std::memory_order_acq_rel);

    // Keep draining until every producer has finished, then one final pass:
    // after producers_done == P no queue can grow, so an empty sweep means
    // the fabric is fully drained.
    stage_timer.reset();
    while (producers_done.load(std::memory_order_acquire) < P) {
      drain_once();
    }
    drain_once();
    ws.stage2_seconds = stage_timer.seconds();
  });

  stats_.total_seconds = total_timer.seconds();
  return PotentialTable(codec, std::move(table),
                        static_cast<std::uint64_t>(m));
}

}  // namespace wfbn
