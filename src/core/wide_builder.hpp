// Wide-key wait-free table construction + marginalization + all-pairs MI:
// the same two-stage primitive as core/wait_free_builder.hpp, operating on
// 128-bit keys so that networks beyond the 2^63 joint-state-space limit
// (e.g. 100 binary or 60 ternary variables) get the identical wait-free
// treatment. Ownership is hash-based: owner(key) = wide_key_hash(key) % P.
#pragma once

#include <cstdint>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "core/all_pairs_mi.hpp"
#include "data/dataset.hpp"
#include "table/marginal_table.hpp"
#include "table/wide_key_codec.hpp"
#include "table/wide_open_hash_table.hpp"

namespace wfbn {

/// Wide-key potential table: codec + P single-writer hashtables + m.
class WidePotentialTable {
 public:
  WidePotentialTable(WideKeyCodec codec, std::vector<WideOpenHashTable> parts,
                     std::uint64_t samples)
      : codec_(std::move(codec)), parts_(std::move(parts)), samples_(samples) {}

  [[nodiscard]] const WideKeyCodec& codec() const noexcept { return codec_; }
  [[nodiscard]] std::size_t partition_count() const noexcept {
    return parts_.size();
  }
  [[nodiscard]] const WideOpenHashTable& partition(std::size_t p) const {
    return parts_[p];
  }
  [[nodiscard]] std::uint64_t sample_count() const noexcept { return samples_; }

  [[nodiscard]] std::size_t distinct_keys() const noexcept {
    std::size_t total = 0;
    for (const auto& t : parts_) total += t.size();
    return total;
  }
  [[nodiscard]] std::uint64_t total_count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& t : parts_) total += t.total_count();
    return total;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& t : parts_) t.for_each(fn);
  }

 private:
  WideKeyCodec codec_;
  std::vector<WideOpenHashTable> parts_;
  std::uint64_t samples_;
};

struct WideBuilderOptions {
  std::size_t threads = 1;
  std::size_t expected_distinct_keys = 0;
};

class WideWaitFreeBuilder {
 public:
  explicit WideWaitFreeBuilder(WideBuilderOptions options = {});

  /// Two-stage wait-free construction over wide keys.
  [[nodiscard]] WidePotentialTable build(const Dataset& data);

 private:
  WideBuilderOptions options_;
};

/// Parallel marginalization over a wide table (Algorithm 3, wide keys).
[[nodiscard]] MarginalTable wide_marginalize(const WidePotentialTable& table,
                                             std::span<const std::size_t> variables,
                                             std::size_t threads = 1);

/// All-pairs MI over a wide table (fused single-sweep schedule).
[[nodiscard]] MiMatrix wide_all_pairs_mi(const WidePotentialTable& table,
                                         std::size_t threads = 1);

}  // namespace wfbn
