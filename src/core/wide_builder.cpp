#include "core/wide_builder.hpp"

#include <algorithm>

#include "concurrent/barrier.hpp"
#include "concurrent/spsc_queue.hpp"
#include "core/info_theory.hpp"
#include "util/error.hpp"

namespace wfbn {

WideWaitFreeBuilder::WideWaitFreeBuilder(WideBuilderOptions options)
    : options_(options) {
  WFBN_EXPECT(options_.threads >= 1, "builder needs at least one thread");
}

WidePotentialTable WideWaitFreeBuilder::build(const Dataset& data) {
  WFBN_EXPECT(data.sample_count() > 0, "cannot build a table from no data");
  const std::size_t P = options_.threads;
  const WideKeyCodec codec(data.cardinalities());
  const std::size_t m = data.sample_count();

  const std::size_t expected =
      options_.expected_distinct_keys != 0
          ? options_.expected_distinct_keys / P + 1
          : m / P / 4 + 16;
  std::vector<WideOpenHashTable> parts;
  parts.reserve(P);
  for (std::size_t p = 0; p < P; ++p) parts.emplace_back(expected);

  // P×P SPSC fabric; cell (src, dst) carries keys from src to owner dst.
  std::vector<std::unique_ptr<SpscQueue<WideKey>>> queues;
  queues.reserve(P * P);
  for (std::size_t i = 0; i < P * P; ++i) {
    queues.push_back(std::make_unique<SpscQueue<WideKey>>());
  }
  SpinBarrier barrier(P);

  ThreadPool pool(P);
  pool.run([&](std::size_t p) {
    WideOpenHashTable& mine = parts[p];
    // Stage 1.
    const auto [lo, hi] = ThreadPool::block_range(m, P, p);
    for (std::size_t i = lo; i < hi; ++i) {
      const WideKey key = codec.encode(data.row(i));
      const std::size_t owner =
          static_cast<std::size_t>(wide_key_hash(key) % P);
      if (owner == p) {
        mine.increment(key);
      } else {
        queues[p * P + owner]->push(key);
      }
    }
    barrier.arrive_and_wait();
    // Stage 2.
    WideKey key;
    for (std::size_t src = 0; src < P; ++src) {
      if (src == p) continue;
      while (queues[src * P + p]->try_pop(key)) mine.increment(key);
    }
  });

  return WidePotentialTable(codec, std::move(parts),
                            static_cast<std::uint64_t>(m));
}

MarginalTable wide_marginalize(const WidePotentialTable& table,
                               std::span<const std::size_t> variables,
                               std::size_t threads) {
  WFBN_EXPECT(threads >= 1, "need at least one thread");
  const WideKeyProjector projector(table.codec(), variables);
  const std::size_t parts = table.partition_count();
  ThreadPool pool(threads);
  std::vector<MarginalTable> partials(
      pool.size(), MarginalTable(projector.variables(), projector.cardinalities()));
  pool.run([&](std::size_t w) {
    MarginalTable& partial = partials[w];
    const auto [lo, hi] = ThreadPool::block_range(parts, pool.size(), w);
    for (std::size_t p = lo; p < hi; ++p) {
      table.partition(p).for_each([&](WideKey key, std::uint64_t c) {
        partial.add(projector.project(key), c);
      });
    }
  });
  MarginalTable out = std::move(partials[0]);
  for (std::size_t w = 1; w < partials.size(); ++w) out.merge(partials[w]);
  return out;
}

MiMatrix wide_all_pairs_mi(const WidePotentialTable& table, std::size_t threads) {
  WFBN_EXPECT(threads >= 1, "need at least one thread");
  const WideKeyCodec& codec = table.codec();
  const std::size_t n = codec.variable_count();
  WFBN_EXPECT(n >= 2, "all-pairs MI needs at least two variables");

  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  std::vector<std::size_t> offsets(pairs.size() + 1, 0);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    offsets[k + 1] = offsets[k] + static_cast<std::size_t>(
                                      codec.cardinality(pairs[k].first)) *
                                      codec.cardinality(pairs[k].second);
  }

  ThreadPool pool(threads);
  const std::size_t parts = table.partition_count();
  std::vector<std::vector<std::uint64_t>> worker_counts(
      pool.size(), std::vector<std::uint64_t>(offsets.back(), 0));
  pool.run([&](std::size_t w) {
    std::vector<std::uint64_t>& counts = worker_counts[w];
    std::vector<State> states(n);
    const auto [lo, hi] = ThreadPool::block_range(parts, pool.size(), w);
    for (std::size_t p = lo; p < hi; ++p) {
      table.partition(p).for_each([&](WideKey key, std::uint64_t c) {
        codec.decode_all(key, states);
        for (std::size_t k = 0; k < pairs.size(); ++k) {
          const auto [i, j] = pairs[k];
          counts[offsets[k] + states[i] +
                 static_cast<std::size_t>(codec.cardinality(i)) * states[j]] += c;
        }
      });
    }
  });

  std::vector<std::uint64_t>& merged = worker_counts[0];
  for (std::size_t w = 1; w < worker_counts.size(); ++w) {
    for (std::size_t c = 0; c < merged.size(); ++c) merged[c] += worker_counts[w][c];
  }

  MiMatrix out(n);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto [i, j] = pairs[k];
    MarginalTable joint({i, j}, {codec.cardinality(i), codec.cardinality(j)});
    const std::size_t cells =
        static_cast<std::size_t>(codec.cardinality(i)) * codec.cardinality(j);
    for (std::size_t c = 0; c < cells; ++c) {
      joint.add(c, merged[offsets[k] + c]);
    }
    out.set(i, j, mutual_information(joint));
  }
  return out;
}

}  // namespace wfbn
