#include "core/all_pairs_mi.hpp"

#include <algorithm>
#include <cmath>

#include "core/info_theory.hpp"
#include "core/marginalizer.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/timer.hpp"

namespace wfbn {

std::vector<MiMatrix::ScoredPair> MiMatrix::pairs_above(double threshold) const {
  std::vector<ScoredPair> out;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double mi = at(i, j);
      if (mi > threshold) out.push_back(ScoredPair{i, j, mi});
    }
  }
  std::sort(out.begin(), out.end(), [](const ScoredPair& a, const ScoredPair& b) {
    if (a.mi != b.mi) return a.mi > b.mi;
    return std::tie(a.i, a.j) < std::tie(b.i, b.j);
  });
  return out;
}

namespace {

/// Unordered pairs (i, j), i < j, in a flat deterministic order.
std::vector<std::pair<std::size_t, std::size_t>> enumerate_pairs(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  return pairs;
}

/// MI from a dense pair count table laid out as cell = s_i + r_i * s_j.
double mi_from_pair_counts(const std::uint64_t* counts, std::uint32_t r_i,
                           std::uint32_t r_j) {
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(r_i) * r_j; ++c) {
    total += counts[c];
  }
  if (total == 0) return 0.0;
  const double m = static_cast<double>(total);

  // Derive the single-variable marginals from the pair table (paper §IV-C).
  std::vector<std::uint64_t> row(r_i, 0);
  std::vector<std::uint64_t> col(r_j, 0);
  for (std::uint32_t b = 0; b < r_j; ++b) {
    for (std::uint32_t a = 0; a < r_i; ++a) {
      const std::uint64_t c = counts[a + static_cast<std::size_t>(r_i) * b];
      row[a] += c;
      col[b] += c;
    }
  }
  double mi = 0.0;
  for (std::uint32_t b = 0; b < r_j; ++b) {
    if (col[b] == 0) continue;
    for (std::uint32_t a = 0; a < r_i; ++a) {
      const std::uint64_t c = counts[a + static_cast<std::size_t>(r_i) * b];
      if (c == 0 || row[a] == 0) continue;
      const double p_ab = static_cast<double>(c) / m;
      const double p_a = static_cast<double>(row[a]) / m;
      const double p_b = static_cast<double>(col[b]) / m;
      mi += p_ab * std::log(p_ab / (p_a * p_b));
    }
  }
  return std::max(0.0, mi);
}

}  // namespace

template <typename K>
BasicAllPairsMi<K>::BasicAllPairsMi(AllPairsOptions options)
    : options_(options) {
  WFBN_EXPECT(options_.threads >= 1, "need at least one thread");
}

template <typename K>
MiMatrix BasicAllPairsMi<K>::compute(const Table& table) {
  ThreadPool pool(options_.threads);
  return compute(table, pool);
}

template <typename K>
MiMatrix BasicAllPairsMi<K>::compute(const Table& table, ThreadPool& pool) {
  const std::size_t n = table.codec().variable_count();
  WFBN_EXPECT(n >= 2, "all-pairs MI needs at least two variables");
  stats_ = AllPairsStats{};
  stats_.pair_count = n * (n - 1) / 2;
  stats_.worker_seconds.assign(pool.size(), 0.0);
  stats_.worker_entries_visited.assign(pool.size(), 0);

  Timer timer;
  MiMatrix out(n);
  switch (options_.strategy) {
    case AllPairsStrategy::kPairParallel:
      out = compute_pair_parallel(table, pool);
      break;
    case AllPairsStrategy::kEntryParallel:
      out = compute_entry_parallel(table, pool);
      break;
    case AllPairsStrategy::kFused:
      out = compute_fused(table, pool);
      break;
  }
  stats_.total_seconds = timer.seconds();
  return out;
}

template <typename K>
MiMatrix BasicAllPairsMi<K>::compute_pair_parallel(const Table& table,
                                                   ThreadPool& pool) {
  const typename Traits::Codec& codec = table.codec();
  const std::size_t n = codec.variable_count();
  const auto pairs = enumerate_pairs(n);
  MiMatrix out(n);

  pool.parallel_for(0, pairs.size(), [&](std::size_t w, std::size_t lo,
                                         std::size_t hi) {
    Timer timer;
    std::uint64_t visited = 0;
    for (std::size_t k = lo; k < hi; ++k) {
      WFBN_FAULT_POINT(fault::Point::kMiSweep);
      const auto [i, j] = pairs[k];
      const std::uint32_t r_i = codec.cardinality(i);
      const std::uint32_t r_j = codec.cardinality(j);
      // Decode-of-interest recipes (Eq. 4) from the trait: the sweep never
      // decodes more than the two variables of the pair.
      const typename Traits::VarLeg leg_i = Traits::leg_of(codec, i);
      const typename Traits::VarLeg leg_j = Traits::leg_of(codec, j);
      std::vector<std::uint64_t> counts(static_cast<std::size_t>(r_i) * r_j, 0);
      table.partitions().for_each([&](K key, std::uint64_t c) {
        const auto a = static_cast<std::size_t>(Traits::decode_leg(leg_i, key));
        const auto b = static_cast<std::size_t>(Traits::decode_leg(leg_j, key));
        counts[a + static_cast<std::size_t>(r_i) * b] += c;
        ++visited;
      });
      out.set(i, j, mi_from_pair_counts(counts.data(), r_i, r_j));
    }
    stats_.worker_seconds[w] = timer.seconds();
    stats_.worker_entries_visited[w] = visited;
  });
  return out;
}

template <typename K>
MiMatrix BasicAllPairsMi<K>::compute_entry_parallel(const Table& table,
                                                    ThreadPool& pool) {
  const std::size_t n = table.codec().variable_count();
  const auto pairs = enumerate_pairs(n);
  MiMatrix out(n);
  const BasicMarginalizer<K> marginalizer(pool.size());

  for (const auto& [i, j] : pairs) {
    const std::size_t vars[] = {i, j};
    const MarginalTable joint = marginalizer.marginalize(table, vars, pool);
    out.set(i, j, mutual_information(joint));
    const auto& ws = marginalizer.worker_stats();
    for (std::size_t w = 0; w < ws.size(); ++w) {
      stats_.worker_seconds[w] += ws[w].seconds;
      stats_.worker_entries_visited[w] += ws[w].entries_visited;
    }
  }
  return out;
}

template <typename K>
MiMatrix BasicAllPairsMi<K>::compute_fused(const Table& table,
                                           ThreadPool& pool) {
  const typename Traits::Codec& codec = table.codec();
  const std::size_t n = codec.variable_count();
  const auto pairs = enumerate_pairs(n);
  const std::size_t parts = table.partitions().partition_count();

  // Flat per-worker buffer holding all pair tables back to back.
  std::vector<std::size_t> offsets(pairs.size() + 1, 0);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto [i, j] = pairs[k];
    offsets[k + 1] = offsets[k] + static_cast<std::size_t>(codec.cardinality(i)) *
                                      codec.cardinality(j);
  }
  std::vector<std::vector<std::uint64_t>> worker_counts(
      pool.size(), std::vector<std::uint64_t>(offsets.back(), 0));

  // Decode-of-interest recipes (Eq. 4) for every variable, hoisted out of
  // the sweep. decode_leg extracts each variable independently of the others
  // ((key / stride) % r), so the n extractions per key pipeline instead of
  // forming decode_all's chain of dependent divisions.
  std::vector<typename Traits::VarLeg> legs;
  legs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) legs.push_back(Traits::leg_of(codec, v));

  pool.run([&](std::size_t w) {
    Timer timer;
    std::uint64_t visited = 0;
    std::vector<std::uint64_t>& counts = worker_counts[w];
    std::vector<State> states(n);
    const auto [lo, hi] = ThreadPool::block_range(parts, pool.size(), w);
    for (std::size_t p = lo; p < hi; ++p) {
      WFBN_FAULT_POINT(fault::Point::kMiSweep);
      table.partitions().partition(p).for_each([&](K key, std::uint64_t c) {
        for (std::size_t v = 0; v < n; ++v) {
          states[v] = static_cast<State>(Traits::decode_leg(legs[v], key));
        }
        ++visited;
        for (std::size_t k = 0; k < pairs.size(); ++k) {
          const auto [i, j] = pairs[k];
          counts[offsets[k] + states[i] +
                 static_cast<std::size_t>(codec.cardinality(i)) * states[j]] += c;
        }
      });
    }
    stats_.worker_seconds[w] = timer.seconds();
    stats_.worker_entries_visited[w] = visited;
  });

  // Merge worker buffers into worker 0's, the pool splitting the cell range:
  // each worker folds a disjoint block of cells across all buffers, so the
  // merge parallelizes without any two workers writing the same word.
  std::vector<std::uint64_t>& merged = worker_counts[0];
  pool.parallel_for(0, merged.size(),
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t w = 1; w < worker_counts.size(); ++w) {
                        const std::vector<std::uint64_t>& src = worker_counts[w];
                        for (std::size_t c = lo; c < hi; ++c) {
                          merged[c] += src[c];
                        }
                      }
                    });
  MiMatrix out(n);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto [i, j] = pairs[k];
    out.set(i, j, mi_from_pair_counts(merged.data() + offsets[k],
                                      codec.cardinality(i), codec.cardinality(j)));
  }
  return out;
}

template class BasicAllPairsMi<Key>;
template class BasicAllPairsMi<WideKey>;

MiMatrix wide_all_pairs_mi(const WidePotentialTable& table,
                           std::size_t threads) {
  AllPairsOptions options;
  options.threads = threads;
  options.strategy = AllPairsStrategy::kFused;
  return WideAllPairsMi(options).compute(table);
}

}  // namespace wfbn
