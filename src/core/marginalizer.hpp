// The parallel marginalization primitive (paper §IV-C, Algorithm 3).
//
// Each worker sweeps the keys of the table partitions assigned to it, decodes
// only the variables of interest via a precomputed projector (Eq. 4 per kept
// variable — never the whole state string), and accumulates a private partial
// marginal table; partials are merged at the end. Workers touch disjoint
// table partitions, so the sweep is embarrassingly parallel and
// cache-friendly — the data-parallelism claim of the paper.
//
// A template over the key type: Marginalizer sweeps narrow tables,
// WideMarginalizer two-word tables, through the same kernel (the projector
// type comes from KeyTraits).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "table/marginal_table.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

/// Per-worker instrumentation of the last marginalize() call; feeds the
/// scaling simulator (entries visited == the per-core work term of the
/// paper's O(m·n/P) bound).
struct MarginalizeWorkerStats {
  std::uint64_t entries_visited = 0;
  double seconds = 0.0;
};

template <typename K>
class BasicMarginalizer {
 public:
  using Traits = KeyTraits<K>;
  using Table = BasicPotentialTable<K>;

  explicit BasicMarginalizer(std::size_t threads = 1);

  /// Marginal count table of `variables` (order defines the output layout).
  /// Runs on an internal pool of options threads.
  [[nodiscard]] MarginalTable marginalize(
      const Table& table, std::span<const std::size_t> variables) const;

  /// Same, reusing an existing pool. Partitions are block-assigned to the
  /// pool's workers; with pool.size() == partition_count this is exactly
  /// Algorithm 3's one-core-per-hashtable mapping.
  [[nodiscard]] MarginalTable marginalize(const Table& table,
                                          std::span<const std::size_t> variables,
                                          ThreadPool& pool) const;

  [[nodiscard]] const std::vector<MarginalizeWorkerStats>& worker_stats()
      const noexcept {
    return worker_stats_;
  }

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

 private:
  std::size_t threads_;
  mutable std::vector<MarginalizeWorkerStats> worker_stats_;
};

extern template class BasicMarginalizer<Key>;
extern template class BasicMarginalizer<WideKey>;

using Marginalizer = BasicMarginalizer<Key>;
using WideMarginalizer = BasicMarginalizer<WideKey>;

/// Historical free-function spelling of the wide-table marginalization.
[[nodiscard]] MarginalTable wide_marginalize(const WidePotentialTable& table,
                                             std::span<const std::size_t> variables,
                                             std::size_t threads = 1);

}  // namespace wfbn
