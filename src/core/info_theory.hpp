// Information-theoretic statistics tests over marginal count tables —
// the quantities of paper §II-C (Definitions 2 and 3) plus the G-test
// significance machinery Cheng et al.'s algorithm uses in practice.
//
// All entropies/informations are in nats (natural log). Zero counts
// contribute zero (lim p→0 of p·log p), matching the usual convention.
#pragma once

#include <cstdint>
#include <span>

#include "table/marginal_table.hpp"

namespace wfbn {

/// Shannon entropy H of the joint distribution a count table represents.
[[nodiscard]] double entropy(const MarginalTable& table);

/// Mutual information I(X;Y) (Eq. 1) from a joint count table whose variable
/// set is exactly {x, y}. The single-variable marginals are derived from the
/// pair table (the paper's optimization: one marginalization per pair).
[[nodiscard]] double mutual_information(const MarginalTable& joint_xy);

/// Conditional mutual information I(X;Y|Z) (Eq. 2) from a joint count table
/// over {x, y} ∪ Z. `x` and `y` are global variable ids present in the
/// table; every other table variable is treated as part of Z. With an empty
/// Z this reduces to mutual_information (Eq. 1), as the paper notes.
[[nodiscard]] double conditional_mutual_information(const MarginalTable& joint,
                                                    std::size_t x, std::size_t y);

/// G-test of (conditional) independence: G = 2·m·I(X;Y|Z) with
/// dof = (r_x−1)(r_y−1)·Π r_z. Large G ⇒ dependence.
struct GTestResult {
  double g = 0.0;
  std::uint64_t dof = 0;
  double p_value = 1.0;  ///< P(χ²_dof ≥ g)
};

[[nodiscard]] GTestResult g_test(const MarginalTable& joint, std::size_t x,
                                 std::size_t y);

/// Survival function of the chi-squared distribution with `dof` degrees of
/// freedom: P(X >= x). Implemented via the regularized incomplete gamma
/// function (series + continued fraction), accurate to ~1e-12.
[[nodiscard]] double chi_squared_sf(double x, double dof);

/// Regularized lower incomplete gamma P(a, x); Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_p(double a, double x);
[[nodiscard]] double regularized_gamma_q(double a, double x);

}  // namespace wfbn
