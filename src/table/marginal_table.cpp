#include "table/marginal_table.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace wfbn {

MarginalTable::MarginalTable(std::vector<std::size_t> variables,
                             std::vector<std::uint32_t> cardinalities)
    : variables_(std::move(variables)), cardinalities_(std::move(cardinalities)) {
  WFBN_EXPECT(!variables_.empty(), "marginal table needs at least one variable");
  WFBN_EXPECT(variables_.size() == cardinalities_.size(),
              "variables/cardinalities shape mismatch");
  std::uint64_t cells = 1;
  for (const std::uint32_t r : cardinalities_) {
    WFBN_EXPECT(r >= 1, "cardinality must be >= 1");
    cells *= r;
    WFBN_EXPECT(cells <= (1ULL << 30), "marginal table too large to be dense");
  }
  counts_.assign(static_cast<std::size_t>(cells), 0);
}

std::uint64_t MarginalTable::index_of(std::span<const State> states) const {
  WFBN_EXPECT(states.size() == variables_.size(), "state string shape mismatch");
  std::uint64_t index = 0;
  std::uint64_t stride = 1;
  for (std::size_t i = 0; i < states.size(); ++i) {
    WFBN_EXPECT(states[i] < cardinalities_[i], "state out of range");
    index += static_cast<std::uint64_t>(states[i]) * stride;
    stride *= cardinalities_[i];
  }
  return index;
}

std::uint64_t MarginalTable::total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

double MarginalTable::probability(std::uint64_t cell) const {
  const std::uint64_t m = total();
  if (m == 0) return 0.0;
  return static_cast<double>(counts_[cell]) / static_cast<double>(m);
}

void MarginalTable::merge(const MarginalTable& other) {
  WFBN_EXPECT(variables_ == other.variables_ &&
                  cardinalities_ == other.cardinalities_,
              "cannot merge marginal tables of different shape");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

MarginalTable MarginalTable::sum_out_to(std::span<const std::size_t> keep) const {
  // Build the output shape in `keep` order and a per-kept-variable
  // (in_stride, cardinality, out_stride) projection, then sweep all cells.
  std::vector<std::size_t> out_vars(keep.begin(), keep.end());
  std::vector<std::uint32_t> out_cards;
  struct Leg {
    std::uint64_t in_stride;
    std::uint64_t cardinality;
    std::uint64_t out_stride;
  };
  std::vector<Leg> legs;
  out_cards.reserve(keep.size());
  legs.reserve(keep.size());
  std::uint64_t out_stride = 1;
  for (const std::size_t v : keep) {
    const auto it = std::find(variables_.begin(), variables_.end(), v);
    WFBN_EXPECT(it != variables_.end(),
                "sum_out_to keeps a variable not present in the table");
    const std::size_t pos = static_cast<std::size_t>(it - variables_.begin());
    std::uint64_t in_stride = 1;
    for (std::size_t i = 0; i < pos; ++i) in_stride *= cardinalities_[i];
    legs.push_back(Leg{in_stride, cardinalities_[pos], out_stride});
    out_cards.push_back(cardinalities_[pos]);
    out_stride *= cardinalities_[pos];
  }
  MarginalTable out(std::move(out_vars), std::move(out_cards));
  for (std::size_t cell = 0; cell < counts_.size(); ++cell) {
    if (counts_[cell] == 0) continue;
    std::uint64_t out_cell = 0;
    for (const Leg& leg : legs) {
      out_cell += ((cell / leg.in_stride) % leg.cardinality) * leg.out_stride;
    }
    out.counts_[out_cell] += counts_[cell];
  }
  return out;
}

}  // namespace wfbn
