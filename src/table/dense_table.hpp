// Dense array-backed count table for small joint state spaces.
//
// Paper §IV-A: when the key space is small (or the data is not sparse in it),
// an array indexed directly by the key beats a hashtable. The builders accept
// either representation through the same increment/for_each surface.
#pragma once

#include <cstdint>
#include <vector>

#include "table/key_codec.hpp"
#include "util/error.hpp"

namespace wfbn {

class DenseTable {
 public:
  /// Allocates `state_space` zero counts. Throws PreconditionError when the
  /// space is too large to materialize densely (guard against accidental
  /// r^n blowups; use the hashtable representation instead).
  explicit DenseTable(std::uint64_t state_space) {
    WFBN_EXPECT(state_space > 0, "empty state space");
    WFBN_EXPECT(state_space <= (1ULL << 32),
                "state space too large for a dense table — use OpenHashTable");
    counts_.assign(static_cast<std::size_t>(state_space), 0);
  }

  void increment(Key key, std::uint64_t delta = 1) {
    counts_[static_cast<std::size_t>(key)] += delta;
  }

  [[nodiscard]] std::uint64_t count(Key key) const {
    return counts_[static_cast<std::size_t>(key)];
  }

  /// Number of distinct observed keys (non-zero cells).
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const std::uint64_t c : counts_) n += (c != 0);
    return n;
  }

  [[nodiscard]] std::uint64_t state_space() const noexcept { return counts_.size(); }

  [[nodiscard]] std::uint64_t total_count() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts_) total += c;
    return total;
  }

  /// Visits every non-zero (key, count) pair in key order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t key = 0; key < counts_.size(); ++key) {
      if (counts_[key] != 0) fn(static_cast<Key>(key), counts_[key]);
    }
  }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace wfbn
