// Dense marginal count table over a (small) subset of variables — the output
// of the marginalization primitive (paper Algorithm 3) and the input of the
// statistics tests (mutual information, conditional MI, G-test).
//
// Marginal tables are tiny (r^|V| cells for the pair/triple subsets the
// learning algorithm asks for), so they are always dense, and per-core
// partial tables are merged by plain cell-wise addition.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "table/key_codec.hpp"

namespace wfbn {

class MarginalTable {
 public:
  /// An all-zero table over `variables` (global variable indices, in the
  /// layout order produced by KeyProjector) with the given cardinalities.
  MarginalTable(std::vector<std::size_t> variables,
                std::vector<std::uint32_t> cardinalities);

  [[nodiscard]] const std::vector<std::size_t>& variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cardinalities() const noexcept {
    return cardinalities_;
  }
  [[nodiscard]] std::size_t cell_count() const noexcept { return counts_.size(); }

  /// Row-major (first variable fastest) cell index of a joint state.
  [[nodiscard]] std::uint64_t index_of(std::span<const State> states) const;

  void add(std::uint64_t cell, std::uint64_t delta) { counts_[cell] += delta; }

  [[nodiscard]] std::uint64_t count_at(std::uint64_t cell) const {
    return counts_[cell];
  }
  [[nodiscard]] std::uint64_t count_of(std::span<const State> states) const {
    return counts_[index_of(states)];
  }

  /// Sum of all cells (the number of represented observations).
  [[nodiscard]] std::uint64_t total() const noexcept;

  /// P(cell) = count/total; 0 when the table is empty.
  [[nodiscard]] double probability(std::uint64_t cell) const;

  /// Cell-wise addition; the merge step of Algorithm 3. Throws on shape
  /// mismatch.
  void merge(const MarginalTable& other);

  /// Marginalizes further: sums out every variable NOT in `keep` (indices
  /// into this table's variable list order are global variable ids).
  /// The paper's optimization for Eq. 1: P(x) and P(y) are derived from
  /// P(x,y) instead of re-scanning the potential table.
  [[nodiscard]] MarginalTable sum_out_to(std::span<const std::size_t> keep) const;

  [[nodiscard]] const std::vector<std::uint64_t>& raw_counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::size_t> variables_;
  std::vector<std::uint32_t> cardinalities_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace wfbn
