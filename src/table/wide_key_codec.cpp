#include "table/wide_key_codec.hpp"

#include <string>
#include <unordered_set>
#include <utility>

#include "table/simd_kernels.hpp"
#include "util/error.hpp"

namespace wfbn {

namespace {
constexpr std::uint64_t kWordLimit = 1ULL << 63;
}

WideKeyCodec::WideKeyCodec(std::vector<std::uint32_t> cardinalities)
    : cardinalities_(std::move(cardinalities)) {
  WFBN_EXPECT(!cardinalities_.empty(), "codec needs at least one variable");
  words_.reserve(cardinalities_.size());
  strides_.reserve(cardinalities_.size());
  for (const std::uint32_t r : cardinalities_) {
    if (r == 0) throw DataError("variable cardinality must be >= 1");
    // First-fit into the lo word, spilling to hi.
    // A word may hold up to 2^63 joint states (all keys then stay <= 2^63−1,
    // clear of the all-ones hashtable sentinel).
    unsigned word = 2;
    for (unsigned w = 0; w < 2; ++w) {
      if (extents_[w] <= kWordLimit / r) {
        word = w;
        break;
      }
    }
    if (word == 2) {
      throw DataError(
          "joint state space exceeds 2^126 — even wide keys cannot encode it");
    }
    words_.push_back(word);
    strides_.push_back(extents_[word]);
    extents_[word] *= r;
  }
}

WideKeyCodec WideKeyCodec::uniform(std::size_t n, std::uint32_t r) {
  return WideKeyCodec(std::vector<std::uint32_t>(n, r));
}

WideKey WideKeyCodec::encode(std::span<const State> states) const noexcept {
  WideKey key;
  const std::size_t n = cardinalities_.size();
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t term = static_cast<std::uint64_t>(states[j]) * strides_[j];
    if (words_[j] == 0) {
      key.lo += term;
    } else {
      key.hi += term;
    }
  }
  return key;
}

WideKey WideKeyCodec::encode_checked(std::span<const State> states) const {
  if (states.size() != cardinalities_.size()) {
    throw DataError("state string length " + std::to_string(states.size()) +
                    " does not match variable count " +
                    std::to_string(cardinalities_.size()));
  }
  for (std::size_t j = 0; j < states.size(); ++j) {
    if (states[j] >= cardinalities_[j]) {
      throw DataError("state " + std::to_string(states[j]) + " of variable " +
                      std::to_string(j) + " exceeds cardinality " +
                      std::to_string(cardinalities_[j]));
    }
  }
  return encode(states);
}

void WideKeyCodec::encode_block(const State* rows, std::size_t row_count,
                                WideKey* out,
                                simd::Level level) const noexcept {
  const std::size_t n = cardinalities_.size();
  if (level == simd::Level::kScalar) {
    for (std::size_t i = 0; i < row_count; ++i) {
      const State* row = rows + i * n;
      WideKey key;
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint64_t term =
            static_cast<std::uint64_t>(row[j]) * strides_[j];
        if (words_[j] == 0) {
          key.lo += term;
        } else {
          key.hi += term;
        }
      }
      out[i] = key;
    }
    return;
  }
  const std::uint64_t* strides = strides_.data();
  const unsigned* words = words_.data();
  std::size_t i = 0;
#ifdef WFBN_AVX2_KERNELS
  for (; i + simd_detail::kRowTile <= row_count; i += simd_detail::kRowTile) {
    simd_detail::encode_tile_avx2_wide(rows + i * n, n, strides, words,
                                       out + i);
  }
#else
  for (; i + simd_detail::kRowTile <= row_count; i += simd_detail::kRowTile) {
    simd_detail::encode_tile_lanes_wide(rows + i * n, n, strides, words,
                                        simd_detail::kRowTile, out + i);
  }
#endif
  if (i < row_count) {
    simd_detail::encode_tile_lanes_wide(rows + i * n, n, strides, words,
                                        row_count - i, out + i);
  }
}

void WideKeyCodec::decode_all(WideKey key, std::span<State> out) const noexcept {
  for (std::size_t j = 0; j < cardinalities_.size(); ++j) {
    out[j] = decode(key, j);
  }
}

WideKeyProjector::WideKeyProjector(const WideKeyCodec& codec,
                                   std::span<const std::size_t> variables) {
  WFBN_EXPECT(!variables.empty(), "projection needs at least one variable");
  std::unordered_set<std::size_t> seen;
  legs_.reserve(variables.size());
  variables_.assign(variables.begin(), variables.end());
  cardinalities_.reserve(variables.size());
  for (const std::size_t v : variables) {
    WFBN_EXPECT(v < codec.variable_count(), "projection variable out of range");
    WFBN_EXPECT(seen.insert(v).second, "duplicate projection variable");
    const std::uint64_t r = codec.cardinality(v);
    legs_.push_back(Leg{codec.word_of(v), codec.stride(v), r, range_});
    cardinalities_.push_back(codec.cardinality(v));
    range_ *= r;
    WFBN_EXPECT(range_ <= (1ULL << 30), "marginal table too large to be dense");
  }
}

}  // namespace wfbn
