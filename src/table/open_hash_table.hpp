// Single-writer open-addressing count table: key -> uint64 occurrence count.
//
// This is each core's private hashtable in the partitioned potential-table
// representation. Because the wait-free construction primitive guarantees
// exclusive ownership (core p is the only writer of table p in both stages),
// the table needs no synchronization at all — which is precisely where the
// primitive's speedup over shared concurrent maps comes from.
//
// The table is a template over the key type; KeyTraits<K> supplies the empty
// sentinel and the slot hash, so the narrow (64-bit) and wide (two-word)
// widths share one implementation. Linear probing; grows at 0.7 load factor.
// Only insert/increment, lookup and iteration are supported (count tables
// never erase), and the single-writer invariant lets the running total of all
// counts be cached, making total_count() O(1).
//
// Three ingestion paths trade code simplicity against memory-level
// parallelism; all three produce the identical key -> count mapping (the
// builders' oracle tests pin this at every combination):
//
//   increment()               one key, dependent probe chain
//   increment_block()         in-order strip with rolling software prefetch
//                             (plus DrainStream to carry the prefetch window
//                             across consecutive strips)
//   increment_block_batched() out-of-order multi-cursor probing: hash a whole
//                             group up front, issue every home-slot prefetch,
//                             then advance the probes round-robin so the
//                             misses overlap instead of serializing
//
// Storage is a PageArray<Entry>, optionally huge-page-backed (2 MB pages cut
// TLB walks on the paper's larger-than-cache tables); see util/huge_page.hpp.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "table/key_traits.hpp"
#include "util/error.hpp"
#include "util/huge_page.hpp"

namespace wfbn {

template <typename K>
class BasicOpenHashTable {
 public:
  using Traits = KeyTraits<K>;

  static constexpr K kEmptyKey = Traits::empty_key();

  /// Probe cursors advanced concurrently by increment_block_batched(); also
  /// the group size hashed and prefetched per wave.
  static constexpr std::size_t kMaxProbeCursors = 64;

  /// With `huge_pages`, the entry array asks the kernel for transparent 2 MB
  /// backing once it reaches one huge page; refusal degrades silently to
  /// normal pages (see backing()).
  explicit BasicOpenHashTable(std::size_t expected_entries = 16,
                              bool huge_pages = false)
      : huge_pages_(huge_pages) {
    rehash_for(expected_entries);
  }

  /// Adds `delta` to `key`'s count (inserting the key if new).
  /// Precondition: key != kEmptyKey (guaranteed by the codecs' word bounds).
  void increment(K key, std::uint64_t delta = 1) {
    total_ += delta;
    std::size_t index = slot_of(key);
    for (;;) {
      Entry& entry = entries_[index];
      if (entry.key == key) {
        entry.count += delta;
        return;
      }
      if (entry.key == kEmptyKey) {
        entry.key = key;
        entry.count = delta;
        if (++size_ * 10 > capacity() * 7) grow();
        return;
      }
      index = (index + 1) & mask_;
    }
  }

  /// Folds a whole block of keys (count 1 each), in order — equivalent to
  /// calling increment() per key. With `prefetch_distance` > 0 the home slot
  /// of the key that many positions ahead is software-prefetched while the
  /// current key resolves, hiding the dependent-probe latency of the
  /// builders' stage-2 drain (the table is far larger than cache on the
  /// paper's workloads, so nearly every probe misses without the hint).
  /// The first `prefetch_distance` home slots are primed before the loop, so
  /// every key in the block gets its hint; for a prefetch window that spans
  /// consecutive blocks (the builders' consume spans), use DrainStream.
  void increment_block(const K* keys, std::size_t count,
                       std::size_t prefetch_distance = 0) {
    if (prefetch_distance == 0) {
      for (std::size_t i = 0; i < count; ++i) increment(keys[i]);
      return;
    }
    const std::size_t head = std::min(prefetch_distance, count);
    for (std::size_t i = 0; i < head; ++i) prefetch(keys[i]);
    for (std::size_t i = 0; i < count; ++i) {
      if (i + prefetch_distance < count) prefetch(keys[i + prefetch_distance]);
      increment(keys[i]);
    }
  }

  /// Multi-cursor variant of increment_block(): hashes a group of up to
  /// `cursors` keys at once (KeyTraits::slot_hash_block), issues every home
  /// slot prefetch for the group while the previous group resolves, then
  /// advances the group's probe cursors round-robin with a bounded per-visit
  /// probe budget — so a group's cache misses are all in flight together
  /// instead of serializing one dependent chain per key. Keys resolve out of
  /// order within a group, which can change the physical slot a colliding
  /// key lands in, but never the key -> count content (what snapshots,
  /// digests and the oracle compare). A mid-group grow() is handled by
  /// restarting the unresolved cursors from their new home slots.
  void increment_block_batched(const K* keys, std::size_t count,
                               std::size_t cursors = 16) {
    if (cursors < 2) {
      increment_block(keys, count);
      return;
    }
    const std::size_t group = std::min(cursors, kMaxProbeCursors);
    // Double-buffered hashes: prefetch wave k while wave k-1 resolves. The
    // buffers hold pre-mask hashes, not slots, so a grow() between the
    // prefetch and the resolve only stales the (harmless) hint, never the
    // probe start.
    std::size_t hash_buf[2][kMaxProbeCursors];
    const K* prev_keys = nullptr;
    std::size_t prev_count = 0;
    unsigned buf = 0;
    for (std::size_t base = 0; base < count; base += group) {
      const std::size_t g = std::min(group, count - base);
      std::size_t* hashes = hash_buf[buf];
      Traits::slot_hash_block(keys + base, g, hashes);
      for (std::size_t i = 0; i < g; ++i) prefetch_slot(hashes[i] & mask_);
      if (prev_count != 0) resolve_group(prev_keys, hash_buf[buf ^ 1], prev_count);
      prev_keys = keys + base;
      prev_count = g;
      buf ^= 1;
    }
    if (prev_count != 0) resolve_group(prev_keys, hash_buf[buf ^ 1], prev_count);
  }

  /// Hints the cache that `key`'s home slot is about to be probed. Purely
  /// advisory: a stale hint (e.g. after an intervening grow()) costs nothing.
  void prefetch(K key) const noexcept { prefetch_slot(slot_of(key)); }

  /// Order-preserving streaming wrapper over increment() that carries the
  /// software-prefetch window across feed() calls. increment_block()'s hint
  /// window necessarily ends at the block boundary: the last
  /// `prefetch_distance` keys of each block are probed with their prefetch
  /// issued zero-to-few keys ahead. When a drain processes many consecutive
  /// consume spans against the same table, DrainStream keeps a FIFO ring of
  /// the most recent `prefetch_distance` keys — each arriving key is
  /// prefetched immediately and incremented only after `prefetch_distance`
  /// further keys arrive, so every increment (including span tails) runs a
  /// full window behind its hint. Keys resolve in exact arrival order;
  /// finish() flushes the carried tail.
  class DrainStream {
   public:
    DrainStream(BasicOpenHashTable& table, std::size_t prefetch_distance)
        : table_(&table),
          distance_(prefetch_distance),
          ring_(prefetch_distance) {}

    void feed(const K* keys, std::size_t count) {
      if (distance_ == 0) {
        table_->increment_block(keys, count);
        return;
      }
      for (std::size_t i = 0; i < count; ++i) {
        table_->prefetch(keys[i]);
        if (fill_ == distance_) {
          table_->increment(ring_[head_]);
          ring_[head_] = keys[i];
          head_ = head_ + 1 == distance_ ? 0 : head_ + 1;
        } else {
          std::size_t tail = head_ + fill_;
          if (tail >= distance_) tail -= distance_;
          ring_[tail] = keys[i];
          ++fill_;
        }
      }
    }

    /// Drains the carried keys. Call at end-of-stream — and before any read
    /// of the table that must observe everything fed so far.
    void finish() {
      while (fill_ != 0) {
        table_->increment(ring_[head_]);
        head_ = head_ + 1 == distance_ ? 0 : head_ + 1;
        --fill_;
      }
    }

    [[nodiscard]] std::size_t carried() const noexcept { return fill_; }

   private:
    BasicOpenHashTable* table_;
    std::size_t distance_;
    std::vector<K> ring_;
    std::size_t head_ = 0;
    std::size_t fill_ = 0;
  };

  /// Occurrence count of `key`; 0 when absent.
  [[nodiscard]] std::uint64_t count(K key) const noexcept {
    std::size_t index = slot_of(key);
    for (;;) {
      const Entry& entry = entries_[index];
      if (entry.key == key) return entry.count;
      if (entry.key == kEmptyKey) return 0;
      index = (index + 1) & mask_;
    }
  }

  [[nodiscard]] bool contains(K key) const noexcept { return count(key) != 0; }

  /// Number of distinct keys.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return entries_.size(); }

  /// Sum of all counts (number of represented observations). O(1): the total
  /// is maintained on every increment — legal because each table has exactly
  /// one writer.
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }

  /// How the entry array is currently backed (kHugeAdvised only when huge
  /// pages were requested at construction AND the kernel accepted the advice
  /// for the current allocation).
  [[nodiscard]] PageBacking backing() const noexcept {
    return entries_.backing();
  }
  [[nodiscard]] bool huge_pages_requested() const noexcept {
    return huge_pages_;
  }

  /// Visits every (key, count) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (!(e.key == kEmptyKey)) fn(e.key, e.count);
    }
  }

  /// Moves all entries of `other` into this table, leaving `other` empty.
  void merge_from(BasicOpenHashTable& other) {
    other.for_each([this](K key, std::uint64_t c) { increment(key, c); });
    other.clear();
  }

  void clear() noexcept {
    for (Entry& e : entries_) e = Entry{};
    size_ = 0;
    total_ = 0;
  }

  /// Pre-sizes the table for `expected_entries` distinct keys.
  void reserve(std::size_t expected_entries) {
    if (expected_entries * 10 > capacity() * 7) {
      rehash_for(expected_entries);
    }
  }

 private:
  struct Entry {
    K key = kEmptyKey;
    std::uint64_t count = 0;
  };

  /// Probes per cursor visit before increment_block_batched() rotates to the
  /// next unresolved cursor (and prefetches where this one left off).
  static constexpr int kProbeBudget = 4;

  [[nodiscard]] std::size_t slot_of(K key) const noexcept {
    return Traits::slot_hash(key) & mask_;
  }

  void prefetch_slot(std::size_t index) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(entries_.data() + index, /*rw=*/1, /*locality=*/3);
#else
    (void)index;
#endif
  }

  /// Resolves one prefetched group of increment_block_batched(): round-robin
  /// over the unresolved cursors, each advancing at most kProbeBudget slots
  /// per visit. Every cursor's probe walk is the same deterministic linear
  /// scan increment() would run, so duplicates within a group are safe: the
  /// first of them to resolve inserts the key, the others find it on their
  /// own walk (slots are never vacated).
  void resolve_group(const K* gkeys, const std::size_t* hashes,
                     std::size_t g) {
    std::size_t idx[kMaxProbeCursors];
    for (std::size_t i = 0; i < g; ++i) idx[i] = hashes[i] & mask_;
    std::uint64_t pending =
        g == 64 ? ~0ULL : (std::uint64_t{1} << g) - 1;
    while (pending != 0) {
      std::uint64_t scan = pending;
      while (scan != 0) {
        const unsigned c = static_cast<unsigned>(std::countr_zero(scan));
        scan &= scan - 1;
        for (int b = 0; b < kProbeBudget; ++b) {
          Entry& entry = entries_[idx[c]];
          if (entry.key == gkeys[c]) {
            entry.count += 1;
            ++total_;
            pending &= ~(std::uint64_t{1} << c);
            break;
          }
          if (entry.key == kEmptyKey) {
            entry.key = gkeys[c];
            entry.count = 1;
            ++total_;
            pending &= ~(std::uint64_t{1} << c);
            if (++size_ * 10 > capacity() * 7) {
              grow();
              // Every entry moved; restart the unresolved cursors from their
              // new home slots (linear-probe lookups are home-anchored).
              for (std::uint64_t rest = pending; rest != 0; rest &= rest - 1) {
                const unsigned d =
                    static_cast<unsigned>(std::countr_zero(rest));
                idx[d] = hashes[d] & mask_;
              }
            }
            break;
          }
          idx[c] = (idx[c] + 1) & mask_;
          if (b + 1 == kProbeBudget) prefetch_slot(idx[c]);
        }
      }
    }
  }

  void rehash_for(std::size_t expected_entries) {
    // Capacity at >= 10/7 of the population keeps the load factor under 0.7.
    const std::size_t wanted =
        std::bit_ceil(std::max<std::size_t>(expected_entries * 10 / 7 + 1, 16));
    PageArray<Entry> old =
        std::exchange(entries_, PageArray<Entry>(wanted, huge_pages_));
    mask_ = wanted - 1;
    size_ = 0;
    total_ = 0;  // reinsertion below rebuilds it
    for (const Entry& e : old) {
      if (!(e.key == kEmptyKey)) increment(e.key, e.count);
    }
  }

  void grow() { rehash_for(size_ * 2); }

  PageArray<Entry> entries_;
  bool huge_pages_ = false;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

using OpenHashTable = BasicOpenHashTable<Key>;
using WideOpenHashTable = BasicOpenHashTable<WideKey>;

}  // namespace wfbn
