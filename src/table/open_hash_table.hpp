// Single-writer open-addressing count table: key -> uint64 occurrence count.
//
// This is each core's private hashtable in the partitioned potential-table
// representation. Because the wait-free construction primitive guarantees
// exclusive ownership (core p is the only writer of table p in both stages),
// the table needs no synchronization at all — which is precisely where the
// primitive's speedup over shared concurrent maps comes from.
//
// The table is a template over the key type; KeyTraits<K> supplies the empty
// sentinel and the slot hash, so the narrow (64-bit) and wide (two-word)
// widths share one implementation. Linear probing; grows at 0.7 load factor.
// Only insert/increment, lookup and iteration are supported (count tables
// never erase), and the single-writer invariant lets the running total of all
// counts be cached, making total_count() O(1).
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "table/key_traits.hpp"
#include "util/error.hpp"

namespace wfbn {

template <typename K>
class BasicOpenHashTable {
 public:
  using Traits = KeyTraits<K>;

  static constexpr K kEmptyKey = Traits::empty_key();

  explicit BasicOpenHashTable(std::size_t expected_entries = 16) {
    rehash_for(expected_entries);
  }

  /// Adds `delta` to `key`'s count (inserting the key if new).
  /// Precondition: key != kEmptyKey (guaranteed by the codecs' word bounds).
  void increment(K key, std::uint64_t delta = 1) {
    total_ += delta;
    std::size_t index = slot_of(key);
    for (;;) {
      Entry& entry = entries_[index];
      if (entry.key == key) {
        entry.count += delta;
        return;
      }
      if (entry.key == kEmptyKey) {
        entry.key = key;
        entry.count = delta;
        if (++size_ * 10 > capacity() * 7) grow();
        return;
      }
      index = (index + 1) & mask_;
    }
  }

  /// Folds a whole block of keys (count 1 each), in order — equivalent to
  /// calling increment() per key. With `prefetch_distance` > 0 the home slot
  /// of the key that many positions ahead is software-prefetched while the
  /// current key resolves, hiding the dependent-probe latency of the
  /// builders' stage-2 drain (the table is far larger than cache on the
  /// paper's workloads, so nearly every probe misses without the hint).
  void increment_block(const K* keys, std::size_t count,
                       std::size_t prefetch_distance = 0) {
    if (prefetch_distance == 0) {
      for (std::size_t i = 0; i < count; ++i) increment(keys[i]);
      return;
    }
    const std::size_t fence =
        count > prefetch_distance ? count - prefetch_distance : 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (i < fence) prefetch(keys[i + prefetch_distance]);
      increment(keys[i]);
    }
  }

  /// Hints the cache that `key`'s home slot is about to be probed. Purely
  /// advisory: a stale hint (e.g. after an intervening grow()) costs nothing.
  void prefetch(K key) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(entries_.data() + slot_of(key), /*rw=*/1, /*locality=*/3);
#else
    (void)key;
#endif
  }

  /// Occurrence count of `key`; 0 when absent.
  [[nodiscard]] std::uint64_t count(K key) const noexcept {
    std::size_t index = slot_of(key);
    for (;;) {
      const Entry& entry = entries_[index];
      if (entry.key == key) return entry.count;
      if (entry.key == kEmptyKey) return 0;
      index = (index + 1) & mask_;
    }
  }

  [[nodiscard]] bool contains(K key) const noexcept { return count(key) != 0; }

  /// Number of distinct keys.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return entries_.size(); }

  /// Sum of all counts (number of represented observations). O(1): the total
  /// is maintained on every increment — legal because each table has exactly
  /// one writer.
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }

  /// Visits every (key, count) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (!(e.key == kEmptyKey)) fn(e.key, e.count);
    }
  }

  /// Moves all entries of `other` into this table, leaving `other` empty.
  void merge_from(BasicOpenHashTable& other) {
    other.for_each([this](K key, std::uint64_t c) { increment(key, c); });
    other.clear();
  }

  void clear() noexcept {
    for (Entry& e : entries_) e = Entry{};
    size_ = 0;
    total_ = 0;
  }

  /// Pre-sizes the table for `expected_entries` distinct keys.
  void reserve(std::size_t expected_entries) {
    if (expected_entries * 10 > capacity() * 7) {
      rehash_for(expected_entries);
    }
  }

 private:
  struct Entry {
    K key = kEmptyKey;
    std::uint64_t count = 0;
  };

  [[nodiscard]] std::size_t slot_of(K key) const noexcept {
    return Traits::slot_hash(key) & mask_;
  }

  void rehash_for(std::size_t expected_entries) {
    // Capacity at >= 10/7 of the population keeps the load factor under 0.7.
    const std::size_t wanted =
        std::bit_ceil(std::max<std::size_t>(expected_entries * 10 / 7 + 1, 16));
    std::vector<Entry> old = std::exchange(entries_, std::vector<Entry>(wanted));
    mask_ = wanted - 1;
    size_ = 0;
    total_ = 0;  // reinsertion below rebuilds it
    for (const Entry& e : old) {
      if (!(e.key == kEmptyKey)) increment(e.key, e.count);
    }
  }

  void grow() { rehash_for(size_ * 2); }

  std::vector<Entry> entries_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

using OpenHashTable = BasicOpenHashTable<Key>;
using WideOpenHashTable = BasicOpenHashTable<WideKey>;

}  // namespace wfbn
