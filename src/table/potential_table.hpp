// The potential table: the joint occurrence-count representation of a
// training dataset (paper §IV-A), i.e. the codec plus the P partitioned
// hashtables plus the sample count.
//
// This is the object the construction primitives produce and the
// marginalization primitive consumes. It intentionally exposes its
// partitioned table: the primitives are data-parallel over the partitions.
// A template over the key type — PotentialTable (64-bit keys, joint spaces
// up to 2^63) and WidePotentialTable (two-word keys, up to 2^126) are the
// same class instantiated over KeyTraits.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "table/key_traits.hpp"
#include "table/marginal_table.hpp"
#include "table/partitioned_table.hpp"

namespace wfbn {

template <typename K>
class BasicPotentialTable {
 public:
  using Traits = KeyTraits<K>;
  using Codec = typename Traits::Codec;
  using Partitions = BasicPartitionedTable<K>;

  BasicPotentialTable(Codec codec, Partitions partitions,
                      std::uint64_t sample_count);

  [[nodiscard]] const Codec& codec() const noexcept { return codec_; }
  [[nodiscard]] const Partitions& partitions() const noexcept {
    return partitions_;
  }
  [[nodiscard]] Partitions& partitions() noexcept { return partitions_; }

  /// Number of observations the table represents (m).
  [[nodiscard]] std::uint64_t sample_count() const noexcept { return samples_; }

  /// Bumps the sample count after an incremental batch was folded into the
  /// partitions (WaitFreeBuilder::append is the only intended caller).
  void record_additional_samples(std::uint64_t count) noexcept {
    samples_ += count;
  }

  /// Number of distinct observed state strings. O(P).
  [[nodiscard]] std::size_t distinct_keys() const noexcept {
    return partitions_.size();
  }

  /// Total observation count across partitions. O(P) via the per-table cached
  /// totals; equals sample_count() on a consistent table.
  [[nodiscard]] std::uint64_t total_count() const noexcept {
    return partitions_.total_count();
  }

  /// Partition access shorthands (the data-parallel primitives sweep these).
  [[nodiscard]] std::size_t partition_count() const noexcept {
    return partitions_.partition_count();
  }
  [[nodiscard]] const BasicOpenHashTable<K>& partition(std::size_t p) const {
    return partitions_.partition(p);
  }

  /// Visits all (key, count) pairs across all partitions (single-threaded).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    partitions_.for_each(std::forward<Fn>(fn));
  }

  /// Occurrence count of a full state string.
  [[nodiscard]] std::uint64_t count_of(std::span<const State> states) const;

  /// Sequential reference marginalization (the O(#entries · |V|) sweep of
  /// Algorithm 3 run on one core). The parallel version lives in
  /// core/marginalizer.hpp; tests compare the two.
  [[nodiscard]] MarginalTable marginalize_sequential(
      std::span<const std::size_t> variables) const;

  /// Internal consistency checks (counts sum to m; keys within state space).
  /// Used by tests and debug assertions; O(#entries).
  [[nodiscard]] bool validate() const;

 private:
  Codec codec_;
  Partitions partitions_;
  std::uint64_t samples_;
};

extern template class BasicPotentialTable<Key>;
extern template class BasicPotentialTable<WideKey>;

using PotentialTable = BasicPotentialTable<Key>;
using WidePotentialTable = BasicPotentialTable<WideKey>;

}  // namespace wfbn
