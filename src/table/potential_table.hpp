// The potential table: the joint occurrence-count representation of a
// training dataset (paper §IV-A), i.e. the codec plus the P partitioned
// hashtables plus the sample count.
//
// This is the object the construction primitives produce and the
// marginalization primitive consumes. It intentionally exposes its
// PartitionedTable: the primitives are data-parallel over the partitions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "table/key_codec.hpp"
#include "table/marginal_table.hpp"
#include "table/partitioned_table.hpp"

namespace wfbn {

class PotentialTable {
 public:
  PotentialTable(KeyCodec codec, PartitionedTable partitions,
                 std::uint64_t sample_count);

  [[nodiscard]] const KeyCodec& codec() const noexcept { return codec_; }
  [[nodiscard]] const PartitionedTable& partitions() const noexcept {
    return partitions_;
  }
  [[nodiscard]] PartitionedTable& partitions() noexcept { return partitions_; }

  /// Number of observations the table represents (m).
  [[nodiscard]] std::uint64_t sample_count() const noexcept { return samples_; }

  /// Bumps the sample count after an incremental batch was folded into the
  /// partitions (WaitFreeBuilder::append is the only intended caller).
  void record_additional_samples(std::uint64_t count) noexcept {
    samples_ += count;
  }

  /// Number of distinct observed state strings.
  [[nodiscard]] std::size_t distinct_keys() const noexcept {
    return partitions_.size();
  }

  /// Occurrence count of a full state string.
  [[nodiscard]] std::uint64_t count_of(std::span<const State> states) const;

  /// Sequential reference marginalization (the O(#entries · |V|) sweep of
  /// Algorithm 3 run on one core). The parallel version lives in
  /// core/marginalizer.hpp; tests compare the two.
  [[nodiscard]] MarginalTable marginalize_sequential(
      std::span<const std::size_t> variables) const;

  /// Internal consistency checks (counts sum to m; keys within state space).
  /// Used by tests and debug assertions; O(#entries).
  [[nodiscard]] bool validate() const;

 private:
  KeyCodec codec_;
  PartitionedTable partitions_;
  std::uint64_t samples_;
};

}  // namespace wfbn
