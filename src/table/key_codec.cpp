#include "table/key_codec.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_set>
#include <utility>

#include "table/simd_kernels.hpp"
#include "util/error.hpp"

namespace wfbn {

namespace {
// Keys must stay below 2^63 so that (a) the hashtables' all-ones empty
// sentinel can never collide with a real key and (b) signed conversions in
// downstream tooling stay safe.
constexpr Key kMaxStateSpace = 1ULL << 63;
}  // namespace

KeyCodec::KeyCodec(std::vector<std::uint32_t> cardinalities)
    : cardinalities_(std::move(cardinalities)) {
  WFBN_EXPECT(!cardinalities_.empty(), "codec needs at least one variable");
  strides_.reserve(cardinalities_.size());
  for (const std::uint32_t r : cardinalities_) {
    if (r == 0) throw DataError("variable cardinality must be >= 1");
    strides_.push_back(total_states_);
    if (total_states_ > kMaxStateSpace / r) {
      throw DataError(
          "joint state space exceeds 2^63 — use fewer variables or smaller "
          "cardinalities (n=" +
          std::to_string(cardinalities_.size()) + ")");
    }
    total_states_ *= r;
  }
}

KeyCodec KeyCodec::uniform(std::size_t n, std::uint32_t r) {
  return KeyCodec(std::vector<std::uint32_t>(n, r));
}

Key KeyCodec::encode(std::span<const State> states) const noexcept {
  Key key = 0;
  const std::size_t n = strides_.size();
  for (std::size_t j = 0; j < n; ++j) {
    key += static_cast<Key>(states[j]) * strides_[j];
  }
  return key;
}

void KeyCodec::encode_block(const State* rows, std::size_t row_count, Key* out,
                            simd::Level level) const noexcept {
  const std::size_t n = strides_.size();
  if (level == simd::Level::kScalar) {
    // The reference kernel: row-major scan, one mixed-radix chain per row.
    for (std::size_t i = 0; i < row_count; ++i) {
      const State* row = rows + i * n;
      Key key = 0;
      for (std::size_t j = 0; j < n; ++j) {
        key += static_cast<Key>(row[j]) * strides_[j];
      }
      out[i] = key;
    }
    return;
  }
  // Vectorized path (level from simd::resolve(), so the AVX2 tiles only run
  // on hosts that support them): full SoA tiles, portable-lane remainder.
  const std::uint64_t* strides = strides_.data();
  std::size_t i = 0;
#ifdef WFBN_AVX2_KERNELS
  for (; i + simd_detail::kRowTile <= row_count; i += simd_detail::kRowTile) {
    simd_detail::encode_tile_avx2(rows + i * n, n, strides, out + i);
  }
#else
  for (; i + simd_detail::kRowTile <= row_count; i += simd_detail::kRowTile) {
    simd_detail::encode_tile_lanes(rows + i * n, n, strides,
                                   simd_detail::kRowTile, out + i);
  }
#endif
  if (i < row_count) {
    simd_detail::encode_tile_lanes(rows + i * n, n, strides, row_count - i,
                                   out + i);
  }
}

Key KeyCodec::encode_checked(std::span<const State> states) const {
  if (states.size() != cardinalities_.size()) {
    throw DataError("state string length " + std::to_string(states.size()) +
                    " does not match variable count " +
                    std::to_string(cardinalities_.size()));
  }
  for (std::size_t j = 0; j < states.size(); ++j) {
    if (states[j] >= cardinalities_[j]) {
      throw DataError("state " + std::to_string(states[j]) + " of variable " +
                      std::to_string(j) + " exceeds cardinality " +
                      std::to_string(cardinalities_[j]));
    }
  }
  return encode(states);
}

void KeyCodec::decode_all(Key key, std::span<State> out) const noexcept {
  const std::size_t n = cardinalities_.size();
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = static_cast<State>(key % cardinalities_[j]);
    key /= cardinalities_[j];
  }
}

KeyProjector::KeyProjector(const KeyCodec& codec,
                           std::span<const std::size_t> variables) {
  WFBN_EXPECT(!variables.empty(), "projection needs at least one variable");
  std::unordered_set<std::size_t> seen;
  legs_.reserve(variables.size());
  variables_.assign(variables.begin(), variables.end());
  cardinalities_.reserve(variables.size());
  for (const std::size_t v : variables) {
    WFBN_EXPECT(v < codec.variable_count(), "projection variable out of range");
    WFBN_EXPECT(seen.insert(v).second, "duplicate projection variable");
    const std::uint64_t r = codec.cardinality(v);
    legs_.push_back(Leg{codec.stride(v), r, range_});
    cardinalities_.push_back(codec.cardinality(v));
    range_ *= r;
  }
}

}  // namespace wfbn
