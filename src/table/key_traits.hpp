// KeyTraits: the one place where the narrow (64-bit) and wide (two-word,
// 2^126) key representations differ.
//
// Every layer above the codec — the open-addressing count tables, the
// partitioned table, the wait-free builder, the marginalization / MI / query
// sweeps, and the serving stack — is a template over the key type K and asks
// KeyTraits<K> for the handful of operations that depend on the width:
//
//   Codec / Projector   the Eq. 3/4 encode/decode machinery for K
//   empty_key()         the hashtable's reserved empty-slot sentinel
//   slot_hash()         hash for open-addressing slot selection
//   supports()/owner()  which partition schemes exist and who owns a key
//   state_space_bound() joint-state-space size, saturated to uint64
//   key_in_range()      validity check for PotentialTable::validate()
//   VarLeg / leg_of()   decode-of-interest: the (stride, cardinality[, word])
//                       recipe for extracting one variable from a key without
//                       decoding the whole state string (Eq. 4)
//
// Adding a third key width means specializing this struct — nothing else.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "table/key_codec.hpp"
#include "table/wide_key_codec.hpp"

namespace wfbn {

/// How encoded keys map to owning partitions.
enum class PartitionScheme {
  kModulo,  ///< owner = key % P (paper Algorithm 1, line 9)
  kRange,   ///< owner = floor(key * P / state_space) — contiguous key ranges
            ///< (narrow keys only: wide keys have no usable total order)
};

template <typename K>
struct KeyTraits;

template <>
struct KeyTraits<Key> {
  using Codec = KeyCodec;
  using Projector = KeyProjector;

  static constexpr const char* kWidthName = "narrow";

  static constexpr Key empty_key() noexcept { return ~0ULL; }

  /// Fibonacci hashing; the high bits carry the mix, so the caller's mask
  /// lands on well-scrambled bits.
  static constexpr std::size_t slot_hash(Key key) noexcept {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 24);
  }

  /// slot_hash over a whole strip: out[i] = slot_hash(keys[i]). Hashing a
  /// strip before any table memory is touched keeps the multiply chain
  /// pipelined (and auto-vectorizable) instead of interleaving it with
  /// dependent probe loads — the batched-probe and router fast paths.
  static void slot_hash_block(const Key* keys, std::size_t count,
                              std::size_t* out) noexcept {
    for (std::size_t i = 0; i < count; ++i) out[i] = slot_hash(keys[i]);
  }

  static constexpr bool supports(PartitionScheme) noexcept { return true; }

  static std::size_t owner(Key key, std::size_t partitions,
                           std::uint64_t state_space,
                           PartitionScheme scheme) noexcept {
    if (scheme == PartitionScheme::kModulo) {
      return static_cast<std::size_t>(key % partitions);
    }
    // Range partitioning via 128-bit multiply avoids a per-key division by a
    // runtime state-space value.
    return static_cast<std::size_t>(
        (static_cast<__uint128_t>(key) * partitions) / state_space);
  }

  /// owner() over a whole strip: out[i] = owner(keys[i], ...). Hoists the
  /// scheme branch out of the per-key loop so stage 1 can compute a block's
  /// destinations before touching any route buffer.
  static void owner_block(const Key* keys, std::size_t count,
                          std::size_t partitions, std::uint64_t state_space,
                          PartitionScheme scheme, std::size_t* out) noexcept {
    if (scheme == PartitionScheme::kModulo) {
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = static_cast<std::size_t>(keys[i] % partitions);
      }
      return;
    }
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = static_cast<std::size_t>(
          (static_cast<__uint128_t>(keys[i]) * partitions) / state_space);
    }
  }

  static Codec make_codec(const std::vector<std::uint32_t>& cardinalities) {
    return Codec(cardinalities);
  }

  static std::uint64_t state_space_bound(const Codec& codec) noexcept {
    return codec.state_space_size();
  }

  static bool key_in_range(const Codec& codec, Key key) noexcept {
    return key < codec.state_space_size();
  }

  /// Decode-of-interest recipe for one variable (Eq. 4).
  struct VarLeg {
    std::uint64_t stride;
    std::uint64_t cardinality;
  };
  static VarLeg leg_of(const Codec& codec, std::size_t j) {
    return VarLeg{codec.stride(j), codec.cardinality(j)};
  }
  static std::uint64_t decode_leg(const VarLeg& leg, Key key) noexcept {
    return (key / leg.stride) % leg.cardinality;
  }
};

template <>
struct KeyTraits<WideKey> {
  using Codec = WideKeyCodec;
  using Projector = WideKeyProjector;

  static constexpr const char* kWidthName = "wide";

  /// All-ones in both words — unreachable because each encoded word stays
  /// below 2^63.
  static constexpr WideKey empty_key() noexcept {
    return WideKey{~0ULL, ~0ULL};
  }

  static constexpr std::size_t slot_hash(WideKey key) noexcept {
    return static_cast<std::size_t>(wide_key_hash(key));
  }

  /// Batched slot_hash; see KeyTraits<Key>::slot_hash_block.
  static void slot_hash_block(const WideKey* keys, std::size_t count,
                              std::size_t* out) noexcept {
    for (std::size_t i = 0; i < count; ++i) out[i] = slot_hash(keys[i]);
  }

  /// Wide keys have no usable total order over the joint space, so
  /// contiguous-range ownership is not defined for them.
  static constexpr bool supports(PartitionScheme scheme) noexcept {
    return scheme == PartitionScheme::kModulo;
  }

  static std::size_t owner(WideKey key, std::size_t partitions,
                           std::uint64_t /*state_space*/,
                           PartitionScheme /*scheme*/) noexcept {
    return static_cast<std::size_t>(wide_key_hash(key) % partitions);
  }

  /// Batched owner: one hash pass over the strip, then the modulo. See
  /// KeyTraits<Key>::owner_block.
  static void owner_block(const WideKey* keys, std::size_t count,
                          std::size_t partitions,
                          std::uint64_t /*state_space*/,
                          PartitionScheme /*scheme*/,
                          std::size_t* out) noexcept {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = static_cast<std::size_t>(wide_key_hash(keys[i]) % partitions);
    }
  }

  static Codec make_codec(const std::vector<std::uint32_t>& cardinalities) {
    return Codec(cardinalities);
  }

  /// The wide joint space can exceed 2^64; saturate. Consumers only use the
  /// bound via min(m, bound), where m always wins in the saturated case.
  static std::uint64_t state_space_bound(const Codec& codec) noexcept {
    const std::uint64_t lo = codec.word_extent(0);
    const std::uint64_t hi = codec.word_extent(1);
    if (hi > 1 && lo > std::numeric_limits<std::uint64_t>::max() / hi) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    return lo * hi;
  }

  static bool key_in_range(const Codec& codec, WideKey key) noexcept {
    return key.lo < codec.word_extent(0) && key.hi < codec.word_extent(1);
  }

  struct VarLeg {
    unsigned word;  ///< 0 = lo, 1 = hi
    std::uint64_t stride;
    std::uint64_t cardinality;
  };
  static VarLeg leg_of(const Codec& codec, std::size_t j) {
    return VarLeg{codec.word_of(j), codec.stride(j), codec.cardinality(j)};
  }
  static std::uint64_t decode_leg(const VarLeg& leg, WideKey key) noexcept {
    const std::uint64_t word = leg.word == 0 ? key.lo : key.hi;
    return (word / leg.stride) % leg.cardinality;
  }
};

}  // namespace wfbn
