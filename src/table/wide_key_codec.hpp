// Wide (two-word) key codec: lifts the 64-bit limit of the paper's encoding
// (Eq. 3 requires ∏ r_j to fit one integer, capping e.g. binary networks at
// 63 variables). Variables are packed greedily into two 63-bit mixed-radix
// words, supporting joint state spaces up to 2^126 — enough for every
// repository network and the papers' n=50..100+ regimes at any cardinality.
//
// A WideKey is an ordered pair (lo, hi); each variable lives entirely in one
// word, so single-variable decoding (Eq. 4) stays O(1) and the
// marginalization projector works unchanged per word.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "table/key_codec.hpp"

namespace wfbn {

struct WideKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  [[nodiscard]] bool operator==(const WideKey&) const = default;
};

/// Mixes both words; used for hashing and for partition ownership.
[[nodiscard]] constexpr std::uint64_t wide_key_hash(WideKey key) noexcept {
  std::uint64_t h = key.lo * 0x9E3779B97F4A7C15ULL;
  h ^= (key.hi + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  h *= 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 29);
}

class WideKeyCodec {
 public:
  /// Packs variables into the two words first-fit in index order. Throws
  /// DataError when the joint space exceeds 2^63 per word × 2 words.
  explicit WideKeyCodec(std::vector<std::uint32_t> cardinalities);

  static WideKeyCodec uniform(std::size_t n, std::uint32_t r);

  [[nodiscard]] std::size_t variable_count() const noexcept {
    return cardinalities_.size();
  }
  [[nodiscard]] std::uint32_t cardinality(std::size_t j) const {
    return cardinalities_[j];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cardinalities() const noexcept {
    return cardinalities_;
  }

  /// Which word (0 = lo, 1 = hi) variable j is packed into, and its stride
  /// within that word.
  [[nodiscard]] unsigned word_of(std::size_t j) const { return words_[j]; }
  [[nodiscard]] std::uint64_t stride(std::size_t j) const { return strides_[j]; }

  /// Joint state count packed into word w (1 when the word is unused). Every
  /// valid key satisfies lo < word_extent(0) and hi < word_extent(1).
  [[nodiscard]] std::uint64_t word_extent(unsigned w) const noexcept {
    return extents_[w];
  }

  [[nodiscard]] WideKey encode(std::span<const State> states) const noexcept;

  /// encode() with validation — throws DataError on a wrong-length state
  /// string or out-of-range states. Used on untrusted input paths.
  [[nodiscard]] WideKey encode_checked(std::span<const State> states) const;

  /// Encodes a contiguous row-major strip of `row_count` state strings into
  /// `out` (see KeyCodec::encode_block — same contract and dispatch levels,
  /// two-word keys: the SoA kernels keep one accumulator bank per word).
  void encode_block(const State* rows, std::size_t row_count, WideKey* out,
                    simd::Level level = simd::Level::kScalar) const noexcept;
  [[nodiscard]] State decode(WideKey key, std::size_t j) const noexcept {
    const std::uint64_t word = words_[j] == 0 ? key.lo : key.hi;
    return static_cast<State>((word / strides_[j]) % cardinalities_[j]);
  }
  void decode_all(WideKey key, std::span<State> out) const noexcept;

 private:
  std::vector<std::uint32_t> cardinalities_;
  std::vector<unsigned> words_;         // 0 = lo, 1 = hi
  std::vector<std::uint64_t> strides_;  // stride within the word
  std::uint64_t extents_[2] = {1, 1};   // joint state count per word
};

/// Projects wide keys onto a marginal-table index (Eq. 4 per kept variable).
class WideKeyProjector {
 public:
  WideKeyProjector(const WideKeyCodec& codec,
                   std::span<const std::size_t> variables);

  [[nodiscard]] std::uint64_t project(WideKey key) const noexcept {
    std::uint64_t out = 0;
    for (const Leg& leg : legs_) {
      const std::uint64_t word = leg.word == 0 ? key.lo : key.hi;
      out += ((word / leg.in_stride) % leg.cardinality) * leg.out_stride;
    }
    return out;
  }

  [[nodiscard]] std::uint64_t range_size() const noexcept { return range_; }
  [[nodiscard]] const std::vector<std::size_t>& variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cardinalities() const noexcept {
    return cardinalities_;
  }

 private:
  struct Leg {
    unsigned word;
    std::uint64_t in_stride;
    std::uint64_t cardinality;
    std::uint64_t out_stride;
  };
  std::vector<Leg> legs_;
  std::vector<std::size_t> variables_;
  std::vector<std::uint32_t> cardinalities_;
  std::uint64_t range_ = 1;
};

}  // namespace wfbn
