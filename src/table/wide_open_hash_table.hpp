// Compatibility forwarding header: the wide-key count table is the same
// BasicOpenHashTable template as the narrow one, instantiated over WideKey
// (KeyTraits<WideKey> supplies the all-ones sentinel and the two-word hash).
#pragma once

#include "table/open_hash_table.hpp"
