// Single-writer open-addressing count table over wide (128-bit) keys — the
// per-core table of the wide-key construction path. Mirrors OpenHashTable;
// the empty slot is marked by an all-ones key, which WideKeyCodec can never
// produce (each word stays below 2^63).
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "table/wide_key_codec.hpp"

namespace wfbn {

class WideOpenHashTable {
 public:
  static constexpr WideKey kEmptyKey{~0ULL, ~0ULL};

  explicit WideOpenHashTable(std::size_t expected_entries = 16) {
    rehash_for(expected_entries);
  }

  void increment(WideKey key, std::uint64_t delta = 1) {
    std::size_t index = slot_of(key);
    for (;;) {
      Entry& entry = entries_[index];
      if (entry.key == key) {
        entry.count += delta;
        return;
      }
      if (entry.key == kEmptyKey) {
        entry.key = key;
        entry.count = delta;
        if (++size_ * 10 > capacity() * 7) grow();
        return;
      }
      index = (index + 1) & mask_;
    }
  }

  [[nodiscard]] std::uint64_t count(WideKey key) const noexcept {
    std::size_t index = slot_of(key);
    for (;;) {
      const Entry& entry = entries_[index];
      if (entry.key == key) return entry.count;
      if (entry.key == kEmptyKey) return 0;
      index = (index + 1) & mask_;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return entries_.size(); }

  [[nodiscard]] std::uint64_t total_count() const noexcept {
    std::uint64_t total = 0;
    for (const Entry& e : entries_) {
      if (!(e.key == kEmptyKey)) total += e.count;
    }
    return total;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (!(e.key == kEmptyKey)) fn(e.key, e.count);
    }
  }

 private:
  struct Entry {
    WideKey key = kEmptyKey;
    std::uint64_t count = 0;
  };

  [[nodiscard]] std::size_t slot_of(WideKey key) const noexcept {
    return static_cast<std::size_t>(wide_key_hash(key)) & mask_;
  }

  void rehash_for(std::size_t expected_entries) {
    const std::size_t wanted =
        std::bit_ceil(std::max<std::size_t>(expected_entries * 10 / 7 + 1, 16));
    std::vector<Entry> old = std::exchange(entries_, std::vector<Entry>(wanted));
    mask_ = wanted - 1;
    size_ = 0;
    for (const Entry& e : old) {
      if (!(e.key == kEmptyKey)) increment(e.key, e.count);
    }
  }

  void grow() { rehash_for(size_ * 2); }

  std::vector<Entry> entries_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wfbn
