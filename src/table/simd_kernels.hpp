// Internal SoA-tile kernels for the mixed-radix encode hot path (Eq. 3),
// shared by KeyCodec and WideKeyCodec. Not part of the public API.
//
// Layout: a strip of rows is processed in tiles of kRowTile rows. Within a
// tile, variables are transposed kVarTile at a time into per-variable lanes
// (lanes[j][i] = state of row i, variable j — a [vars × rows] SoA block that
// always fits the L1 cache), and each lane is folded into per-row key
// accumulators with one multiply-add:
//
//     acc[i] += lane_j[i] * stride_j          for all i in the tile at once
//
// Neighboring rows are independent, so the lane loop has no carried
// dependency and vectorizes: the portable kernels are written so the
// compiler's auto-vectorizer can take them, and the AVX2 specializations
// (runtime-dispatched via simd::resolve(), compiled behind a function-level
// `target("avx2")` attribute so the rest of the binary stays baseline-ISA)
// process 4 rows per 256-bit vector.
//
// AVX2 has no 64×64-bit vector multiply, but none is needed: a state is a
// uint8, so with stride = hi·2³² + lo the term decomposes into two 32×32→64
// multiplies, s·lo + ((s·hi) << 32) — exact mod 2⁶⁴, and every encoded word
// stays below 2⁶³ by the codecs' construction-time bound. Most workloads
// (uniform r=2..8, n ≤ 32) have every stride below 2³², where the hi
// multiply is skipped entirely.
//
// Every kernel computes bit-identical keys to the scalar reference loop —
// integer addition is associative and commutative, so lane order cannot
// change the sum. The BlockRoutingOracle and codec tests pin this down at
// every dispatch level, both key widths, and remainder-strip row counts.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "table/wide_key_codec.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WFBN_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace wfbn::simd_detail {

inline constexpr std::size_t kRowTile = 32;  ///< rows (keys) per SoA tile
inline constexpr std::size_t kVarTile = 64;  ///< variables transposed per pass

/// Transposes variables [j0, j0+jn) of a [t × n] row-major sub-strip into
/// per-variable lanes: lanes[jj * kRowTile + i] = rows[i * n + j0 + jj].
/// Reads the strip sequentially; the strided byte stores land in an
/// L1-resident buffer (kVarTile * kRowTile = 2 KB).
inline void transpose_tile(const State* rows, std::size_t n, std::size_t j0,
                           std::size_t jn, std::size_t t,
                           State* lanes) noexcept {
  for (std::size_t i = 0; i < t; ++i) {
    const State* row = rows + i * n + j0;
    State* col = lanes + i;
    for (std::size_t jj = 0; jj < jn; ++jj) col[jj * kRowTile] = row[jj];
  }
}

/// Portable SoA tile: any t <= kRowTile (the remainder-strip kernel, and the
/// whole vectorized path on non-x86 builds). The i-loop is the
/// auto-vectorizable multiply-add across lanes.
inline void encode_tile_lanes(const State* rows, std::size_t n,
                              const std::uint64_t* strides, std::size_t t,
                              std::uint64_t* out) noexcept {
  std::uint64_t acc[kRowTile] = {};
  State lanes[kVarTile * kRowTile];
  for (std::size_t j0 = 0; j0 < n; j0 += kVarTile) {
    const std::size_t jn = std::min(kVarTile, n - j0);
    transpose_tile(rows, n, j0, jn, t, lanes);
    for (std::size_t jj = 0; jj < jn; ++jj) {
      const std::uint64_t s = strides[j0 + jj];
      const State* lane = lanes + jj * kRowTile;
      for (std::size_t i = 0; i < t; ++i) {
        acc[i] += static_cast<std::uint64_t>(lane[i]) * s;
      }
    }
  }
  for (std::size_t i = 0; i < t; ++i) out[i] = acc[i];
}

/// Portable SoA tile, two-word keys: one accumulator set per word, the
/// variable's word (codec packing) selecting the target set.
inline void encode_tile_lanes_wide(const State* rows, std::size_t n,
                                   const std::uint64_t* strides,
                                   const unsigned* words, std::size_t t,
                                   WideKey* out) noexcept {
  std::uint64_t acc_lo[kRowTile] = {};
  std::uint64_t acc_hi[kRowTile] = {};
  State lanes[kVarTile * kRowTile];
  for (std::size_t j0 = 0; j0 < n; j0 += kVarTile) {
    const std::size_t jn = std::min(kVarTile, n - j0);
    transpose_tile(rows, n, j0, jn, t, lanes);
    for (std::size_t jj = 0; jj < jn; ++jj) {
      const std::uint64_t s = strides[j0 + jj];
      const State* lane = lanes + jj * kRowTile;
      std::uint64_t* acc = words[j0 + jj] == 0 ? acc_lo : acc_hi;
      for (std::size_t i = 0; i < t; ++i) {
        acc[i] += static_cast<std::uint64_t>(lane[i]) * s;
      }
    }
  }
  for (std::size_t i = 0; i < t; ++i) out[i] = WideKey{acc_lo[i], acc_hi[i]};
}

#ifdef WFBN_AVX2_KERNELS

/// Zero-extends 4 lane bytes into the 4 uint64 lanes of a vector.
__attribute__((target("avx2"))) inline __m256i load4_lane_bytes(
    const State* p) noexcept {
  std::uint32_t quad;
  std::memcpy(&quad, p, sizeof quad);
  return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(quad)));
}

/// acc += lane * stride for 4 rows, stride split into 32-bit halves (see the
/// header comment for the exactness argument).
__attribute__((target("avx2"))) inline __m256i mul_add_stride(
    __m256i acc, __m256i lane4, std::uint64_t stride) noexcept {
  const auto lo = static_cast<std::uint32_t>(stride);
  const auto hi = static_cast<std::uint32_t>(stride >> 32);
  const __m256i vlo = _mm256_set1_epi64x(static_cast<long long>(lo));
  __m256i term = _mm256_mul_epu32(lane4, vlo);
  if (hi != 0) {
    const __m256i vhi = _mm256_set1_epi64x(static_cast<long long>(hi));
    term = _mm256_add_epi64(
        term, _mm256_slli_epi64(_mm256_mul_epu32(lane4, vhi), 32));
  }
  return _mm256_add_epi64(acc, term);
}

/// AVX2 SoA tile, full kRowTile rows: 8 vector accumulators of 4 keys each.
__attribute__((target("avx2"))) inline void encode_tile_avx2(
    const State* rows, std::size_t n, const std::uint64_t* strides,
    std::uint64_t* out) noexcept {
  constexpr std::size_t kVecs = kRowTile / 4;
  __m256i acc[kVecs];
  for (std::size_t v = 0; v < kVecs; ++v) acc[v] = _mm256_setzero_si256();
  State lanes[kVarTile * kRowTile];
  for (std::size_t j0 = 0; j0 < n; j0 += kVarTile) {
    const std::size_t jn = std::min(kVarTile, n - j0);
    transpose_tile(rows, n, j0, jn, kRowTile, lanes);
    for (std::size_t jj = 0; jj < jn; ++jj) {
      const std::uint64_t s = strides[j0 + jj];
      const State* lane = lanes + jj * kRowTile;
      for (std::size_t v = 0; v < kVecs; ++v) {
        acc[v] = mul_add_stride(acc[v], load4_lane_bytes(lane + v * 4), s);
      }
    }
  }
  for (std::size_t v = 0; v < kVecs; ++v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + v * 4), acc[v]);
  }
}

/// AVX2 SoA tile, two-word keys: two accumulator banks, interleaved into
/// (lo, hi) pairs at the end.
__attribute__((target("avx2"))) inline void encode_tile_avx2_wide(
    const State* rows, std::size_t n, const std::uint64_t* strides,
    const unsigned* words, WideKey* out) noexcept {
  constexpr std::size_t kVecs = kRowTile / 4;
  __m256i acc_lo[kVecs];
  __m256i acc_hi[kVecs];
  for (std::size_t v = 0; v < kVecs; ++v) {
    acc_lo[v] = _mm256_setzero_si256();
    acc_hi[v] = _mm256_setzero_si256();
  }
  State lanes[kVarTile * kRowTile];
  for (std::size_t j0 = 0; j0 < n; j0 += kVarTile) {
    const std::size_t jn = std::min(kVarTile, n - j0);
    transpose_tile(rows, n, j0, jn, kRowTile, lanes);
    for (std::size_t jj = 0; jj < jn; ++jj) {
      const std::uint64_t s = strides[j0 + jj];
      const State* lane = lanes + jj * kRowTile;
      __m256i* acc = words[j0 + jj] == 0 ? acc_lo : acc_hi;
      for (std::size_t v = 0; v < kVecs; ++v) {
        acc[v] = mul_add_stride(acc[v], load4_lane_bytes(lane + v * 4), s);
      }
    }
  }
  alignas(32) std::uint64_t lo[kRowTile];
  alignas(32) std::uint64_t hi[kRowTile];
  for (std::size_t v = 0; v < kVecs; ++v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lo + v * 4), acc_lo[v]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(hi + v * 4), acc_hi[v]);
  }
  for (std::size_t i = 0; i < kRowTile; ++i) out[i] = WideKey{lo[i], hi[i]};
}

#endif  // WFBN_AVX2_KERNELS

}  // namespace wfbn::simd_detail
