// Mixed-radix encoding between state strings and integer keys (paper §IV-A,
// Eq. 3/4).
//
// A state string (s_1, ..., s_n) with per-variable cardinalities r_j maps to
//   key = sum_j s_j * stride_j,   stride_1 = 1, stride_{j+1} = stride_j * r_j
// which generalizes the paper's uniform-r formula key = sum_j s_j * r^(j-1).
// Decoding a single variable is  s_j = (key / stride_j) % r_j  (Eq. 4) — the
// property the marginalization primitive exploits: recovering only the
// variables of interest costs O(|V|), not O(n).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/simd.hpp"

namespace wfbn {

using State = std::uint8_t;   ///< one observed variable state, 0 .. r_j - 1
using Key = std::uint64_t;    ///< encoded state string

class KeyCodec {
 public:
  /// Builds a codec for variables with the given cardinalities (each >= 1).
  /// Throws DataError if the joint state space exceeds 2^63 (keys must stay
  /// clear of the hashtables' reserved all-ones sentinel).
  explicit KeyCodec(std::vector<std::uint32_t> cardinalities);

  /// Codec for n variables of uniform cardinality r — the paper's setting.
  static KeyCodec uniform(std::size_t n, std::uint32_t r);

  [[nodiscard]] std::size_t variable_count() const noexcept {
    return cardinalities_.size();
  }
  [[nodiscard]] std::uint32_t cardinality(std::size_t j) const {
    return cardinalities_[j];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cardinalities() const noexcept {
    return cardinalities_;
  }
  [[nodiscard]] Key stride(std::size_t j) const { return strides_[j]; }

  /// Size of the joint state space, prod_j r_j (the paper's r^n).
  [[nodiscard]] Key state_space_size() const noexcept { return total_states_; }

  /// Eq. 3: encodes a full state string. Precondition (checked in debug
  /// builds): states.size() == variable_count() and states[j] < r_j.
  [[nodiscard]] Key encode(std::span<const State> states) const noexcept;

  /// Eq. 3 with validation — throws DataError on out-of-range states. Used on
  /// untrusted input paths (CSV ingestion).
  [[nodiscard]] Key encode_checked(std::span<const State> states) const;

  /// Eq. 3 over a contiguous row-major strip of `row_count` state strings
  /// (row_count * variable_count() states at `rows`), writing one key per
  /// row into `out`. Encoding a strip back to back keeps the mixed-radix
  /// multiply-add chain pipelined instead of alternating with hashtable and
  /// queue traffic — the stage-1 fast path of the wait-free builder.
  ///
  /// `level` selects the kernel (util/simd.hpp): kScalar is the row-major
  /// reference loop; kAvx2 transposes the strip into per-variable SoA lanes
  /// and runs the mixed-radix multiply-add across 4 rows per vector (with a
  /// portable lane-structured fallback on non-x86 builds). Every level
  /// computes bit-identical keys — callers resolve the level once per build
  /// via simd::resolve() and sweeps are oracle-gated against kScalar.
  void encode_block(const State* rows, std::size_t row_count, Key* out,
                    simd::Level level = simd::Level::kScalar) const noexcept;

  /// Eq. 4: decodes variable j from a key.
  [[nodiscard]] State decode(Key key, std::size_t j) const noexcept {
    return static_cast<State>((key / strides_[j]) % cardinalities_[j]);
  }

  /// Decodes the full state string into `out` (out.size() == variable_count()).
  void decode_all(Key key, std::span<State> out) const noexcept;

  [[nodiscard]] bool operator==(const KeyCodec& other) const noexcept {
    return cardinalities_ == other.cardinalities_;
  }

 private:
  std::vector<std::uint32_t> cardinalities_;
  std::vector<Key> strides_;
  Key total_states_ = 1;
};

/// Precomputed projection of full keys onto the sub-key of a variable subset
/// — the inner loop of the marginalization primitive. For subset V with
/// variables v_1 < ... < v_k (any order is accepted; order defines the
/// marginal table's layout):
///   project(key) = sum_i decode(key, v_i) * out_stride_i
class KeyProjector {
 public:
  /// Throws PreconditionError on duplicate or out-of-range variables.
  KeyProjector(const KeyCodec& codec, std::span<const std::size_t> variables);

  /// Index into the marginal table for this key. O(|V|).
  [[nodiscard]] std::uint64_t project(Key key) const noexcept {
    std::uint64_t out = 0;
    for (const Leg& leg : legs_) {
      out += ((key / leg.in_stride) % leg.cardinality) * leg.out_stride;
    }
    return out;
  }

  /// Joint state-space size of the subset (marginal table length).
  [[nodiscard]] std::uint64_t range_size() const noexcept { return range_; }

  [[nodiscard]] const std::vector<std::size_t>& variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cardinalities() const noexcept {
    return cardinalities_;
  }

 private:
  struct Leg {
    Key in_stride;
    std::uint64_t cardinality;
    std::uint64_t out_stride;
  };
  std::vector<Leg> legs_;
  std::vector<std::size_t> variables_;
  std::vector<std::uint32_t> cardinalities_;
  std::uint64_t range_ = 1;
};

}  // namespace wfbn
