#include "table/potential_table.hpp"

#include <utility>

#include "util/error.hpp"

namespace wfbn {

template <typename K>
BasicPotentialTable<K>::BasicPotentialTable(Codec codec, Partitions partitions,
                                            std::uint64_t sample_count)
    : codec_(std::move(codec)),
      partitions_(std::move(partitions)),
      samples_(sample_count) {}

template <typename K>
std::uint64_t BasicPotentialTable<K>::count_of(
    std::span<const State> states) const {
  const K key = codec_.encode_checked(states);
  return partitions_.count_anywhere(key);
}

template <typename K>
MarginalTable BasicPotentialTable<K>::marginalize_sequential(
    std::span<const std::size_t> variables) const {
  const typename Traits::Projector projector(codec_, variables);
  MarginalTable out(projector.variables(), projector.cardinalities());
  partitions_.for_each([&](K key, std::uint64_t count) {
    out.add(projector.project(key), count);
  });
  return out;
}

template <typename K>
bool BasicPotentialTable<K>::validate() const {
  if (partitions_.total_count() != samples_) return false;
  bool in_range = true;
  partitions_.for_each([&](K key, std::uint64_t count) {
    if (!Traits::key_in_range(codec_, key) || count == 0) in_range = false;
  });
  return in_range;
}

template class BasicPotentialTable<Key>;
template class BasicPotentialTable<WideKey>;

}  // namespace wfbn
