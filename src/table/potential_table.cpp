#include "table/potential_table.hpp"

#include <utility>

#include "util/error.hpp"

namespace wfbn {

PotentialTable::PotentialTable(KeyCodec codec, PartitionedTable partitions,
                               std::uint64_t sample_count)
    : codec_(std::move(codec)),
      partitions_(std::move(partitions)),
      samples_(sample_count) {}

std::uint64_t PotentialTable::count_of(std::span<const State> states) const {
  const Key key = codec_.encode_checked(states);
  return partitions_.count_anywhere(key);
}

MarginalTable PotentialTable::marginalize_sequential(
    std::span<const std::size_t> variables) const {
  const KeyProjector projector(codec_, variables);
  MarginalTable out(projector.variables(), projector.cardinalities());
  partitions_.for_each([&](Key key, std::uint64_t count) {
    out.add(projector.project(key), count);
  });
  return out;
}

bool PotentialTable::validate() const {
  if (partitions_.total_count() != samples_) return false;
  bool in_range = true;
  partitions_.for_each([&](Key key, std::uint64_t count) {
    if (key >= codec_.state_space_size() || count == 0) in_range = false;
  });
  return in_range;
}

}  // namespace wfbn
