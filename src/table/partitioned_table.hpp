// The paper's distributed potential-table representation: P single-writer
// hashtables, each owning a disjoint slice of the key space.
//
// Ownership during construction follows a partition function (paper Alg. 1
// uses key % P; contiguous-range ownership is provided as an ablation — see
// DESIGN.md §6.1). After construction the ownership invariant is only needed
// by further wait-free updates; marginalization treats the partitions as an
// arbitrary disjoint cover, which is why rebalance() (paper §IV-C) is legal.
//
// The table is a template over the key type: KeyTraits<K> supplies the
// ownership function (narrow keys support modulo and contiguous-range
// schemes; wide keys hash-partition and reject kRange at construction).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "table/key_traits.hpp"
#include "table/open_hash_table.hpp"

namespace wfbn {

template <typename K>
class BasicPartitionedTable {
 public:
  using Traits = KeyTraits<K>;
  using Table = BasicOpenHashTable<K>;

  /// `partitions` = P. `state_space` is the codec's joint state-space size
  /// (needed for range partitioning; saturated for wide keys — see
  /// KeyTraits::state_space_bound). `expected_entries_per_partition`
  /// pre-sizes each hashtable; with `huge_pages` each hashtable requests
  /// 2 MB transparent backing for its entry array (best-effort — see
  /// BasicOpenHashTable::backing()). Throws PreconditionError when the key
  /// width does not support `scheme`.
  BasicPartitionedTable(std::size_t partitions, std::uint64_t state_space,
                        PartitionScheme scheme = PartitionScheme::kModulo,
                        std::size_t expected_entries_per_partition = 16,
                        bool huge_pages = false);

  [[nodiscard]] std::size_t partition_count() const noexcept {
    return tables_.size();
  }

  /// Which partition owns `key` under the construction-time scheme.
  [[nodiscard]] std::size_t owner_of(K key) const noexcept {
    return Traits::owner(key, tables_.size(), state_space_, scheme_);
  }

  [[nodiscard]] PartitionScheme scheme() const noexcept { return scheme_; }
  [[nodiscard]] std::uint64_t state_space() const noexcept { return state_space_; }

  [[nodiscard]] Table& partition(std::size_t p) { return tables_[p]; }
  [[nodiscard]] const Table& partition(std::size_t p) const {
    return tables_[p];
  }

  /// Total distinct keys across partitions. O(P): per-partition populations
  /// are tracked by the tables themselves.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Total observation count across partitions (= m after construction).
  /// O(P): each table caches its running total under the single-writer
  /// invariant.
  [[nodiscard]] std::uint64_t total_count() const noexcept;

  /// Count of one key, routed via the ownership function. Only valid while
  /// the ownership invariant holds (i.e. before rebalance()).
  [[nodiscard]] std::uint64_t count(K key) const noexcept {
    return tables_[owner_of(key)].count(key);
  }

  /// Count of one key regardless of which partition holds it.
  [[nodiscard]] std::uint64_t count_anywhere(K key) const noexcept;

  /// Visits all (key, count) pairs across all partitions (single-threaded).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Table& t : tables_) t.for_each(fn);
  }

  /// True while every key is stored in the partition owner_of(key) names.
  [[nodiscard]] bool ownership_invariant_holds() const;

  /// Moves entries between partitions so that distinct-key populations differ
  /// by at most one (paper §IV-C: marginalization does not need the ownership
  /// invariant, so unbalanced tables may be rebalanced for better load
  /// balance). Returns the number of moved entries.
  std::size_t rebalance();

  /// True once rebalance() has run: the construction-time ownership function
  /// may no longer route keys to their partitions, so further wait-free
  /// updates (WaitFreeBuilder::append) are rejected.
  [[nodiscard]] bool rebalanced() const noexcept { return rebalanced_; }

  /// Largest / smallest partition populations — the load-imbalance measure
  /// driving the simulator's makespan.
  [[nodiscard]] std::pair<std::size_t, std::size_t> population_extremes() const;

 private:
  std::vector<Table> tables_;
  std::uint64_t state_space_;
  PartitionScheme scheme_;
  bool rebalanced_ = false;
};

extern template class BasicPartitionedTable<Key>;
extern template class BasicPartitionedTable<WideKey>;

using PartitionedTable = BasicPartitionedTable<Key>;
using WidePartitionedTable = BasicPartitionedTable<WideKey>;

}  // namespace wfbn
