// The paper's distributed potential-table representation: P single-writer
// hashtables, each owning a disjoint slice of the key space.
//
// Ownership during construction follows a partition function (paper Alg. 1
// uses key % P; contiguous-range ownership is provided as an ablation — see
// DESIGN.md §6.1). After construction the ownership invariant is only needed
// by further wait-free updates; marginalization treats the partitions as an
// arbitrary disjoint cover, which is why rebalance() (paper §IV-C) is legal.
#pragma once

#include <cstdint>
#include <vector>

#include "table/key_codec.hpp"
#include "table/open_hash_table.hpp"

namespace wfbn {

/// How encoded keys map to owning partitions.
enum class PartitionScheme {
  kModulo,  ///< owner = key % P (paper Algorithm 1, line 9)
  kRange,   ///< owner = floor(key * P / state_space) — contiguous key ranges
};

class PartitionedTable {
 public:
  /// `partitions` = P. `state_space` is the codec's joint state-space size
  /// (needed for range partitioning). `expected_entries_per_partition`
  /// pre-sizes each hashtable.
  PartitionedTable(std::size_t partitions, std::uint64_t state_space,
                   PartitionScheme scheme = PartitionScheme::kModulo,
                   std::size_t expected_entries_per_partition = 16);

  [[nodiscard]] std::size_t partition_count() const noexcept {
    return tables_.size();
  }

  /// Which partition owns `key` under the construction-time scheme.
  [[nodiscard]] std::size_t owner_of(Key key) const noexcept {
    if (scheme_ == PartitionScheme::kModulo) {
      return static_cast<std::size_t>(key % tables_.size());
    }
    // Range partitioning via 128-bit multiply avoids a per-key division by a
    // runtime state-space value.
    return static_cast<std::size_t>(
        (static_cast<__uint128_t>(key) * tables_.size()) / state_space_);
  }

  [[nodiscard]] PartitionScheme scheme() const noexcept { return scheme_; }
  [[nodiscard]] std::uint64_t state_space() const noexcept { return state_space_; }

  [[nodiscard]] OpenHashTable& partition(std::size_t p) { return tables_[p]; }
  [[nodiscard]] const OpenHashTable& partition(std::size_t p) const {
    return tables_[p];
  }

  /// Total distinct keys across partitions.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Total observation count across partitions (= m after construction).
  [[nodiscard]] std::uint64_t total_count() const noexcept;

  /// Count of one key, routed via the ownership function. Only valid while
  /// the ownership invariant holds (i.e. before rebalance()).
  [[nodiscard]] std::uint64_t count(Key key) const noexcept {
    return tables_[owner_of(key)].count(key);
  }

  /// Count of one key regardless of which partition holds it.
  [[nodiscard]] std::uint64_t count_anywhere(Key key) const noexcept;

  /// Visits all (key, count) pairs across all partitions (single-threaded).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const OpenHashTable& t : tables_) t.for_each(fn);
  }

  /// True while every key is stored in the partition owner_of(key) names.
  [[nodiscard]] bool ownership_invariant_holds() const;

  /// Moves entries between partitions so that distinct-key populations differ
  /// by at most one (paper §IV-C: marginalization does not need the ownership
  /// invariant, so unbalanced tables may be rebalanced for better load
  /// balance). Returns the number of moved entries.
  std::size_t rebalance();

  /// True once rebalance() has run: the construction-time ownership function
  /// may no longer route keys to their partitions, so further wait-free
  /// updates (WaitFreeBuilder::append) are rejected.
  [[nodiscard]] bool rebalanced() const noexcept { return rebalanced_; }

  /// Largest / smallest partition populations — the load-imbalance measure
  /// driving the simulator's makespan.
  [[nodiscard]] std::pair<std::size_t, std::size_t> population_extremes() const;

 private:
  std::vector<OpenHashTable> tables_;
  std::uint64_t state_space_;
  PartitionScheme scheme_;
  bool rebalanced_ = false;
};

}  // namespace wfbn
