#include "table/partitioned_table.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wfbn {

template <typename K>
BasicPartitionedTable<K>::BasicPartitionedTable(
    std::size_t partitions, std::uint64_t state_space, PartitionScheme scheme,
    std::size_t expected_entries_per_partition, bool huge_pages)
    : state_space_(state_space), scheme_(scheme) {
  WFBN_EXPECT(partitions >= 1, "need at least one partition");
  WFBN_EXPECT(state_space >= 1, "empty state space");
  WFBN_EXPECT(Traits::supports(scheme),
              "partition scheme unsupported for this key width");
  tables_.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    tables_.emplace_back(expected_entries_per_partition, huge_pages);
  }
}

template <typename K>
std::size_t BasicPartitionedTable<K>::size() const noexcept {
  std::size_t total = 0;
  for (const Table& t : tables_) total += t.size();
  return total;
}

template <typename K>
std::uint64_t BasicPartitionedTable<K>::total_count() const noexcept {
  std::uint64_t total = 0;
  for (const Table& t : tables_) total += t.total_count();
  return total;
}

template <typename K>
std::uint64_t BasicPartitionedTable<K>::count_anywhere(K key) const noexcept {
  std::uint64_t total = 0;
  for (const Table& t : tables_) total += t.count(key);
  return total;
}

template <typename K>
bool BasicPartitionedTable<K>::ownership_invariant_holds() const {
  for (std::size_t p = 0; p < tables_.size(); ++p) {
    bool ok = true;
    tables_[p].for_each([&](K key, std::uint64_t) {
      if (owner_of(key) != p) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

template <typename K>
std::size_t BasicPartitionedTable<K>::rebalance() {
  rebalanced_ = true;
  const std::size_t total = size();
  const std::size_t parts = tables_.size();
  // Target populations differing by at most one.
  std::vector<std::size_t> target(parts, total / parts);
  for (std::size_t p = 0; p < total % parts; ++p) ++target[p];

  // Collect surplus entries from overfull partitions...
  std::vector<std::pair<K, std::uint64_t>> surplus;
  for (std::size_t p = 0; p < parts; ++p) {
    Table& t = tables_[p];
    if (t.size() <= target[p]) continue;
    const std::size_t to_move = t.size() - target[p];
    Table kept(target[p]);
    std::size_t taken = 0;
    t.for_each([&](K key, std::uint64_t c) {
      if (taken < to_move) {
        surplus.emplace_back(key, c);
        ++taken;
      } else {
        kept.increment(key, c);
      }
    });
    t = std::move(kept);
  }

  // ...and refill the underfull ones.
  const std::size_t moved = surplus.size();
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < parts && cursor < surplus.size(); ++p) {
    while (tables_[p].size() < target[p] && cursor < surplus.size()) {
      tables_[p].increment(surplus[cursor].first, surplus[cursor].second);
      ++cursor;
    }
  }
  WFBN_EXPECT(cursor == surplus.size(), "rebalance lost entries");
  return moved;
}

template <typename K>
std::pair<std::size_t, std::size_t> BasicPartitionedTable<K>::population_extremes()
    const {
  std::size_t largest = 0;
  std::size_t smallest = tables_.empty() ? 0 : tables_[0].size();
  for (const Table& t : tables_) {
    largest = std::max(largest, t.size());
    smallest = std::min(smallest, t.size());
  }
  return {largest, smallest};
}

template class BasicPartitionedTable<Key>;
template class BasicPartitionedTable<WideKey>;

}  // namespace wfbn
