// Edge orientation shared by the constraint-based learners (Cheng and
// PC-stable): v-structure detection from recorded separating sets, Meek's
// rules 1–4 to propagate, then an acyclic low→high completion for edges the
// evidence leaves undecided.
//
// Width-independent by construction: orientation consumes only the skeleton
// and sepsets, never the potential table, so the key-trait-templated
// learners (narrow and wide) share this single implementation untouched.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "bn/dag.hpp"

namespace wfbn {

using SepsetMap =
    std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>;

/// Orients `skeleton` into a DAG:
///  1. colliders: non-adjacent (x, y) with common neighbor w ∉ sepset(x, y)
///     become x → w ← y;
///  2. Meek rule 1: a→b, b—c, a∦c          ⇒ b→c
///     Meek rule 2: a→b→c, a—c             ⇒ a→c
///     Meek rule 3: a—b, a—c, a—d, c→b, d→b, c∦d ⇒ a→b
///     Meek rule 4: a—b, a—c, a—d(optional), c→d? — implemented in the
///     standard d→c chain form: a—b, b—c(?), a—d, d→c, c→b ⇒ a→b;
///  3. undecided edges: low id → high id, flipped if that would close a cycle.
/// The sepset key is (min(x,y), max(x,y)); pairs missing from the map are
/// treated as separated by the empty set.
[[nodiscard]] Dag orient_skeleton(const UndirectedGraph& skeleton,
                                  const SepsetMap& sepsets);

}  // namespace wfbn
