// Bootstrap edge confidence (Friedman-style model averaging, the standard
// bnlearn workflow): learn the structure on `replicates` resampled datasets
// and report the fraction of replicates in which each edge appears. The
// per-replicate learns run the full wait-free phase-1 pipeline, so this is
// also a realistic heavy consumer of the primitives.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bn/dag.hpp"
#include "data/dataset.hpp"
#include "learn/cheng.hpp"
#include "util/rng.hpp"

namespace wfbn {

struct BootstrapOptions {
  std::size_t replicates = 20;
  std::uint64_t seed = 1;
  std::size_t threads = 1;  ///< threads inside each replicate's learner
};

struct BootstrapResult {
  std::size_t replicates = 0;
  /// confidence[i*n + j] = fraction of replicates whose learned skeleton
  /// contains the undirected edge {i, j} (symmetric, zero diagonal).
  std::vector<double> edge_confidence;
  std::size_t nodes = 0;

  [[nodiscard]] double confidence(std::size_t i, std::size_t j) const {
    return edge_confidence[i * nodes + j];
  }

  /// Edges with confidence >= threshold as an undirected consensus graph.
  [[nodiscard]] UndirectedGraph consensus(double threshold) const;
};

/// Resamples `data` with replacement (m rows each time) and invokes
/// `learn_skeleton` per replicate. The learner receives the resampled
/// dataset and must return the learned skeleton.
[[nodiscard]] BootstrapResult bootstrap_edges(
    const Dataset& data,
    const std::function<UndirectedGraph(const Dataset&)>& learn_skeleton,
    BootstrapOptions options = {});

/// Resampled copy of `data` (m rows drawn with replacement), deterministic
/// in `rng`.
[[nodiscard]] Dataset resample_with_replacement(const Dataset& data,
                                                Xoshiro256& rng);

/// Convenience: bootstrap_edges with a Cheng learner per replicate, at either
/// key width (narrow by default; bootstrap_cheng<WideKey> for wide tables).
/// Each replicate runs the learner's full parallel pipeline with
/// cheng.ci.threads workers.
template <typename K = Key>
[[nodiscard]] BootstrapResult bootstrap_cheng(const Dataset& data,
                                              ChengOptions cheng = {},
                                              BootstrapOptions options = {});

extern template BootstrapResult bootstrap_cheng<Key>(const Dataset&,
                                                     ChengOptions,
                                                     BootstrapOptions);
extern template BootstrapResult bootstrap_cheng<WideKey>(const Dataset&,
                                                         ChengOptions,
                                                         BootstrapOptions);

}  // namespace wfbn
