#include "learn/pc_stable.hpp"

#include <algorithm>
#include <functional>

#include "core/wait_free_builder.hpp"
#include "util/error.hpp"

namespace wfbn {

namespace {

/// Calls fn(subset) for every size-k subset of `pool`; stops early when fn
/// returns true. Returns whether fn ever returned true.
bool for_each_subset(const std::vector<std::size_t>& pool, std::size_t k,
                     const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  if (k > pool.size()) return false;
  if (k == 0) return fn({});  // the single empty subset
  std::vector<std::size_t> indices(k);
  for (std::size_t i = 0; i < k; ++i) indices[i] = i;
  std::vector<std::size_t> subset(k);
  for (;;) {
    for (std::size_t i = 0; i < k; ++i) subset[i] = pool[indices[i]];
    if (fn(subset)) return true;
    // Advance the combination (lexicographic).
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (indices[i] != i + pool.size() - k) break;
      if (i == 0) return false;
    }
    if (indices[i] == i + pool.size() - k) return false;
    ++indices[i];
    for (std::size_t j = i + 1; j < k; ++j) indices[j] = indices[j - 1] + 1;
  }
}

}  // namespace

PcStableLearner::PcStableLearner(PcStableOptions options) : options_(options) {}

PcStableResult PcStableLearner::learn(const Dataset& data) const {
  WaitFreeBuilderOptions builder_options;
  builder_options.threads = options_.ci.threads;
  WaitFreeBuilder builder(builder_options);
  return learn(builder.build(data));
}

PcStableResult PcStableLearner::learn(const PotentialTable& table) const {
  const std::size_t n = table.codec().variable_count();
  PcStableResult result{UndirectedGraph(n), Dag(n), {}, 0, 0};
  const CiTester tester(table, options_.ci);

  // Start from the complete graph.
  UndirectedGraph& graph = result.skeleton;
  for (NodeId x = 0; x < n; ++x) {
    for (NodeId y = x + 1; y < n; ++y) graph.add_edge(x, y);
  }

  for (std::size_t level = 0; level <= options_.max_level; ++level) {
    // Stable variant: freeze all adjacency sets at the start of the level.
    std::vector<std::vector<NodeId>> frozen_adjacency(n);
    bool any_candidate = false;
    for (NodeId v = 0; v < n; ++v) {
      frozen_adjacency[v] = graph.neighbors(v);
      std::sort(frozen_adjacency[v].begin(), frozen_adjacency[v].end());
      if (frozen_adjacency[v].size() > level) any_candidate = true;
    }
    if (!any_candidate) break;
    result.levels_run = level + 1;

    for (NodeId x = 0; x < n; ++x) {
      for (const NodeId y : frozen_adjacency[x]) {
        if (!graph.has_edge(x, y)) continue;  // removed earlier this level
        std::vector<std::size_t> pool;
        for (const NodeId w : frozen_adjacency[x]) {
          if (w != y) pool.push_back(w);
        }
        if (pool.size() < level) continue;
        const bool separated = for_each_subset(
            pool, level, [&](const std::vector<std::size_t>& z) {
              ++result.ci_tests;
              if (tester.test(x, y, z).independent) {
                graph.remove_edge(x, y);
                result.sepsets[{std::min<std::size_t>(x, y),
                                std::max<std::size_t>(x, y)}] = z;
                return true;
              }
              return false;
            });
        (void)separated;
      }
    }
  }

  if (options_.orient) {
    result.oriented = orient_skeleton(graph, result.sepsets);
  } else {
    Dag dag(n);
    for (const Edge& e : graph.edges()) dag.add_edge(e.from, e.to);
    result.oriented = std::move(dag);
  }
  return result;
}

}  // namespace wfbn
