#include "learn/pc_stable.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/wait_free_builder.hpp"
#include "util/error.hpp"

namespace wfbn {

namespace {

/// Calls fn(subset) for every size-k subset of `pool`; stops early when fn
/// returns true. Returns whether fn ever returned true.
bool for_each_subset(const std::vector<std::size_t>& pool, std::size_t k,
                     const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  if (k > pool.size()) return false;
  if (k == 0) return fn({});  // the single empty subset
  std::vector<std::size_t> indices(k);
  for (std::size_t i = 0; i < k; ++i) indices[i] = i;
  std::vector<std::size_t> subset(k);
  for (;;) {
    for (std::size_t i = 0; i < k; ++i) subset[i] = pool[indices[i]];
    if (fn(subset)) return true;
    // Advance the combination (lexicographic).
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (indices[i] != i + pool.size() - k) break;
      if (i == 0) return false;
    }
    if (indices[i] == i + pool.size() - k) return false;
    ++indices[i];
    for (std::size_t j = i + 1; j < k; ++j) indices[j] = indices[j - 1] + 1;
  }
}

/// One level work item: the full subset search for one ordered pair.
struct PairSearch {
  NodeId x = 0;
  NodeId y = 0;
  std::vector<std::size_t> pool;  ///< adj(x) \ {y}, frozen and sorted
};

struct SearchOutcome {
  bool separated = false;
  std::vector<std::size_t> sepset;
};

}  // namespace

template <typename K>
BasicPcStableLearner<K>::BasicPcStableLearner(PcStableOptions options)
    : options_(options) {}

template <typename K>
BasicPcStableLearner<K>::BasicPcStableLearner(PcStableOptions options,
                                              ThreadPool& pool)
    : BasicPcStableLearner(options) {
  pool_ = &pool;
}

template <typename K>
PcStableResult BasicPcStableLearner<K>::learn(const Dataset& data) const {
  if (pool_ != nullptr) {
    BasicWaitFreeBuilder<K> builder;
    return learn_with_pool(builder.build(data, *pool_), *pool_);
  }
  WaitFreeBuilderOptions builder_options;
  builder_options.threads = options_.ci.threads;
  BasicWaitFreeBuilder<K> builder(builder_options);
  ThreadPool pool(options_.ci.threads);
  return learn_with_pool(builder.build(data, pool), pool);
}

template <typename K>
PcStableResult BasicPcStableLearner<K>::learn(const Table& table) const {
  if (pool_ != nullptr) return learn_with_pool(table, *pool_);
  ThreadPool pool(options_.ci.threads);
  return learn_with_pool(table, pool);
}

template <typename K>
PcStableResult BasicPcStableLearner<K>::learn_with_pool(const Table& table,
                                                        ThreadPool& pool) const {
  const std::size_t n = table.codec().variable_count();
  PcStableResult result{UndirectedGraph(n), Dag(n), {}, 0, 0, CiScheduleStats{}};
  // Thread-safe tester configuration — see BasicChengLearner: sweeps stay
  // sequential per test, parallelism comes from pairs in flight.
  CiOptions ci = options_.ci;
  ci.threads = 1;
  const BasicCiTester<K> tester(table, ci);
  BasicCiScheduler<K> scheduler(pool);

  // Start from the complete graph.
  UndirectedGraph& graph = result.skeleton;
  for (NodeId x = 0; x < n; ++x) {
    for (NodeId y = x + 1; y < n; ++y) graph.add_edge(x, y);
  }

  for (std::size_t level = 0; level <= options_.max_level; ++level) {
    // Stable variant: freeze all adjacency sets at the start of the level.
    std::vector<std::vector<NodeId>> frozen_adjacency(n);
    bool any_candidate = false;
    for (NodeId v = 0; v < n; ++v) {
      frozen_adjacency[v] = graph.neighbors(v);
      std::sort(frozen_adjacency[v].begin(), frozen_adjacency[v].end());
      if (frozen_adjacency[v].size() > level) any_candidate = true;
    }
    if (!any_candidate) break;
    result.levels_run = level + 1;

    // The level's work items: every ordered adjacent pair, both directions
    // (their candidate pools differ). The sequential sweep used to skip the
    // second direction once the first removed the edge; with frozen
    // adjacency both directions are decision-equivalent, so testing both
    // keeps the same skeleton and sepsets while making every item
    // independent of its siblings.
    std::vector<PairSearch> searches;
    for (NodeId x = 0; x < n; ++x) {
      for (const NodeId y : frozen_adjacency[x]) {
        PairSearch search;
        search.x = x;
        search.y = y;
        for (const NodeId w : frozen_adjacency[x]) {
          if (w != y) search.pool.push_back(w);
        }
        if (search.pool.size() < level) continue;
        searches.push_back(std::move(search));
      }
    }

    std::vector<SearchOutcome> outcomes(searches.size());
    scheduler.for_each(searches.size(), [&](std::size_t i) {
      const PairSearch& search = searches[i];
      for_each_subset(search.pool, level,
                      [&](const std::vector<std::size_t>& z) {
                        if (tester.test(search.x, search.y, z).independent) {
                          outcomes[i].separated = true;
                          outcomes[i].sepset = z;
                          return true;
                        }
                        return false;
                      });
    });

    // Apply in canonical item order; the first direction that separated a
    // pair records its sepset (matching the sequential first-found-wins).
    for (std::size_t i = 0; i < searches.size(); ++i) {
      if (!outcomes[i].separated) continue;
      const NodeId x = searches[i].x;
      const NodeId y = searches[i].y;
      if (!graph.has_edge(x, y)) continue;  // the other direction got there
      graph.remove_edge(x, y);
      result.sepsets[{std::min<std::size_t>(x, y),
                      std::max<std::size_t>(x, y)}] =
          std::move(outcomes[i].sepset);
    }
  }

  if (options_.orient) {
    result.oriented = orient_skeleton(graph, result.sepsets);
  } else {
    Dag dag(n);
    for (const Edge& e : graph.edges()) dag.add_edge(e.from, e.to);
    result.oriented = std::move(dag);
  }
  result.ci_tests = tester.tests_performed();
  scheduler.absorb_cache_stats(tester);
  result.schedule = scheduler.stats();
  return result;
}

template class BasicPcStableLearner<Key>;
template class BasicPcStableLearner<WideKey>;

}  // namespace wfbn
