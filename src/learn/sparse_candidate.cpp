#include "learn/sparse_candidate.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wfbn {

std::vector<std::vector<std::size_t>> sparse_candidates(const MiMatrix& mi,
                                                        std::size_t k) {
  WFBN_EXPECT(k >= 1, "need at least one candidate per node");
  const std::size_t n = mi.size();
  std::vector<std::vector<std::size_t>> out(n);
  std::vector<std::pair<double, std::size_t>> scored;
  for (std::size_t v = 0; v < n; ++v) {
    scored.clear();
    for (std::size_t w = 0; w < n; ++w) {
      if (w != v && mi.at(v, w) > 0.0) scored.emplace_back(mi.at(v, w), w);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    const std::size_t take = std::min(k, scored.size());
    out[v].reserve(take);
    for (std::size_t i = 0; i < take; ++i) out[v].push_back(scored[i].second);
  }
  return out;
}

}  // namespace wfbn
