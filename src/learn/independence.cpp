#include "learn/independence.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wfbn {

CiTester::CiTester(const PotentialTable& table, CiOptions options)
    : table_(table), options_(options), marginalizer_(options.threads) {
  WFBN_EXPECT(options_.threads >= 1, "need at least one thread");
  WFBN_EXPECT(options_.mi_threshold >= 0.0, "MI threshold must be >= 0");
  WFBN_EXPECT(options_.alpha > 0.0 && options_.alpha < 1.0, "alpha in (0,1)");
}

CiDecision CiTester::test(std::size_t x, std::size_t y,
                          std::span<const std::size_t> z) const {
  WFBN_EXPECT(x != y, "x and y must differ");
  WFBN_EXPECT(std::find(z.begin(), z.end(), x) == z.end(), "x must not be in Z");
  WFBN_EXPECT(std::find(z.begin(), z.end(), y) == z.end(), "y must not be in Z");
  ++tests_;

  std::vector<std::size_t> joint_vars{x, y};
  joint_vars.insert(joint_vars.end(), z.begin(), z.end());
  const MarginalTable joint = marginalizer_.marginalize(table_, joint_vars);

  CiDecision decision;
  if (options_.method == CiMethod::kMiThreshold) {
    decision.statistic = conditional_mutual_information(joint, x, y);
    decision.independent = decision.statistic < options_.mi_threshold;
  } else {
    const GTestResult g = g_test(joint, x, y);
    decision.statistic = g.g;
    decision.p_value = g.p_value;
    decision.independent = g.p_value >= options_.alpha;
  }
  return decision;
}

double CiTester::pair_mi(std::size_t x, std::size_t y) const {
  const std::size_t vars[] = {x, y};
  return mutual_information(marginalizer_.marginalize(table_, vars));
}

}  // namespace wfbn
