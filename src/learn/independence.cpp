#include "learn/independence.hpp"

#include <algorithm>
#include <utility>

#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace wfbn {

// ---------------------------------------------------------------------------
// MarginalReuseCache

MarginalReuseCache::MarginalReuseCache(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

MarginalReuseCache::WordKey MarginalReuseCache::make_key(
    std::span<const std::size_t> vars, std::uint64_t version) {
  WordKey key;
  key.reserve(vars.size() + 1);
  key.push_back(version);
  for (std::size_t v : vars) key.push_back(static_cast<std::uint64_t>(v));
  return key;
}

std::size_t MarginalReuseCache::WordKeyHash::operator()(
    const WordKey& key) const noexcept {
  return static_cast<std::size_t>(
      fnv1a_words(std::span<const std::uint64_t>(key.data(), key.size())));
}

MarginalReuseCache::Shard& MarginalReuseCache::shard_of(
    const WordKey& key) const {
  const std::uint64_t h = avalanche64(WordKeyHash{}(key));
  return shards_[h % shards_.size()];
}

std::shared_ptr<const MarginalTable> MarginalReuseCache::find(
    std::span<const std::size_t> vars, std::uint64_t version) const {
  const WordKey key = make_key(vars, version);
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::shared_ptr<const MarginalTable> MarginalReuseCache::insert(
    std::span<const std::size_t> vars, std::uint64_t version,
    MarginalTable table) {
  WordKey key = make_key(vars, version);
  Shard& shard = shard_of(key);
  auto value = std::make_shared<const MarginalTable>(std::move(table));
  std::lock_guard<std::mutex> lock(shard.mutex);
  // First insert wins: a racing thread computed the identical table (exact
  // integer counts over the same canonical variable order), so callers may
  // end up with either pointer without any observable difference.
  auto [it, inserted] = shard.map.emplace(std::move(key), std::move(value));
  return it->second;
}

void MarginalReuseCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// decide_from_joint

CiDecision decide_from_joint(const MarginalTable& joint, std::size_t x,
                             std::size_t y, const CiOptions& options) {
  CiDecision decision;
  if (options.method == CiMethod::kMiThreshold) {
    decision.statistic = conditional_mutual_information(joint, x, y);
    decision.independent = decision.statistic < options.mi_threshold;
  } else {
    const GTestResult g = g_test(joint, x, y);
    decision.statistic = g.g;
    decision.p_value = g.p_value;
    decision.independent = g.p_value >= options.alpha;
  }
  return decision;
}

// ---------------------------------------------------------------------------
// BasicCiTester

template <typename K>
BasicCiTester<K>::BasicCiTester(const Table& table, CiOptions options)
    : table_(table), options_(options), marginalizer_(options.threads) {
  WFBN_EXPECT(options_.threads >= 1, "need at least one thread");
  WFBN_EXPECT(options_.mi_threshold >= 0.0, "MI threshold must be >= 0");
  WFBN_EXPECT(options_.alpha > 0.0 && options_.alpha < 1.0, "alpha in (0,1)");
  if (options_.reuse_marginals) {
    cache_ = std::make_shared<MarginalReuseCache>(options_.cache_shards);
  }
}

template <typename K>
BasicCiTester<K>::BasicCiTester(const Table& table, CiOptions options,
                                ThreadPool& pool)
    : BasicCiTester(table, options) {
  pool_ = &pool;
}

template <typename K>
MarginalTable BasicCiTester<K>::sweep_marginal(
    std::span<const std::size_t> vars) const {
  if (cache_) {
    // Cache-on path: always sweep sequentially on the calling thread, so the
    // tester is safe under concurrent test() calls (the per-instance
    // Marginalizer's worker_stats_ buffer is not) and scheduler workers never
    // nest thread pools. Parallelism comes from tests in flight.
    if (auto hit = cache_->find(vars, cache_version_)) return *hit;
    return *cache_->insert(vars, cache_version_,
                           table_.marginalize_sequential(vars));
  }
  if (pool_ != nullptr) return marginalizer_.marginalize(table_, vars, *pool_);
  if (options_.threads > 1) return marginalizer_.marginalize(table_, vars);
  return table_.marginalize_sequential(vars);
}

template <typename K>
CiDecision BasicCiTester<K>::test(std::size_t x, std::size_t y,
                                  std::span<const std::size_t> z) const {
  WFBN_EXPECT(x != y, "x and y must differ");
  WFBN_EXPECT(std::find(z.begin(), z.end(), x) == z.end(), "x must not be in Z");
  WFBN_EXPECT(std::find(z.begin(), z.end(), y) == z.end(), "y must not be in Z");
  if (options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed)) {
    throw OperationCancelled("structure learning cancelled during CI testing");
  }
  WFBN_FAULT_POINT(fault::Point::kLearnCiTest);
  tests_.fetch_add(1, std::memory_order_relaxed);

  // Canonical variable order: sorted({x, y} ∪ Z). The statistics only need
  // to know which table variables are x and y (everything else is Z), and a
  // canonical order makes the marginal — and hence the floating-point
  // statistic — bit-identical across cache hits, thread counts, and the
  // x/y vs y/x orientations of the same test.
  std::vector<std::size_t> joint_vars;
  joint_vars.reserve(z.size() + 2);
  joint_vars.push_back(x);
  joint_vars.push_back(y);
  joint_vars.insert(joint_vars.end(), z.begin(), z.end());
  std::sort(joint_vars.begin(), joint_vars.end());

  const MarginalTable joint = sweep_marginal(joint_vars);
  return decide_from_joint(joint, x, y, options_);
}

template <typename K>
double BasicCiTester<K>::pair_mi(std::size_t x, std::size_t y) const {
  if (options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed)) {
    throw OperationCancelled("structure learning cancelled during MI scoring");
  }
  const std::size_t vars[] = {std::min(x, y), std::max(x, y)};
  return mutual_information(sweep_marginal(vars));
}

template class BasicCiTester<Key>;
template class BasicCiTester<WideKey>;

}  // namespace wfbn
