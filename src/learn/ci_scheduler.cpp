#include "learn/ci_scheduler.hpp"

namespace wfbn {

template <typename K>
std::vector<CiDecision> BasicCiScheduler<K>::run(
    const Tester& tester, std::span<const CiTask> tasks) {
  std::vector<CiDecision> decisions(tasks.size());
  for_each(tasks.size(), [&](std::size_t i) {
    decisions[i] = tester.test(tasks[i].x, tasks[i].y, tasks[i].z);
  });
  return decisions;
}

template class BasicCiScheduler<Key>;
template class BasicCiScheduler<WideKey>;

}  // namespace wfbn
