// Conditional-independence testing on a potential table — the statistics
// tests of Cheng et al.'s algorithm (paper §II-C). A test marginalizes the
// potential table to {x, y} ∪ Z with the parallel marginalization primitive
// and then decides (in)dependence either by thresholding conditional mutual
// information (Cheng's criterion) or by a G-test p-value.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "core/info_theory.hpp"
#include "core/marginalizer.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

enum class CiMethod {
  kMiThreshold,  ///< dependent ⇔ I(X;Y|Z) ≥ ε (Cheng et al.)
  kGTest,        ///< dependent ⇔ G-test p-value < α
};

struct CiOptions {
  CiMethod method = CiMethod::kMiThreshold;
  double mi_threshold = 0.01;  ///< ε (nats) for kMiThreshold
  double alpha = 0.01;         ///< significance level for kGTest
  std::size_t threads = 1;
};

struct CiDecision {
  bool independent = false;
  double statistic = 0.0;  ///< I(X;Y|Z) in nats (kMiThreshold) or G (kGTest)
  double p_value = 1.0;    ///< 1.0 for kMiThreshold (not computed)
};

/// Stateless apart from configuration + the table it tests against; safe to
/// share across sequential phases. Counts tests for complexity reporting.
class CiTester {
 public:
  CiTester(const PotentialTable& table, CiOptions options);

  /// Tests X ⟂ Y | Z. Z may be empty (marginal independence, Eq. 1).
  [[nodiscard]] CiDecision test(std::size_t x, std::size_t y,
                                std::span<const std::size_t> z) const;

  /// Marginal mutual information I(X;Y) — drafting-phase scores.
  [[nodiscard]] double pair_mi(std::size_t x, std::size_t y) const;

  [[nodiscard]] std::uint64_t tests_performed() const noexcept { return tests_; }
  [[nodiscard]] const CiOptions& options() const noexcept { return options_; }
  [[nodiscard]] const PotentialTable& table() const noexcept { return table_; }

 private:
  const PotentialTable& table_;
  CiOptions options_;
  Marginalizer marginalizer_;
  mutable std::uint64_t tests_ = 0;
};

}  // namespace wfbn
