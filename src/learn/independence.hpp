// Conditional-independence testing on a potential table — the statistics
// tests of Cheng et al.'s algorithm (paper §II-C), templated over KeyTraits
// so the same tester runs at both key widths (state spaces to 2^126). A test
// marginalizes the potential table to the *canonical* (sorted) variable set
// {x, y} ∪ Z and then decides (in)dependence either by thresholding
// conditional mutual information (Cheng's criterion) or by a G-test p-value.
//
// Marginal reuse (Jiang et al., "Fast Parallel Bayesian Network Structure
// Learning"): within one learner level many tests share the same {x,y} ∪ Z
// set — both orientations of a pair, and the minimization probes of a
// cut-set. The tester therefore consults a sharded, version-keyed
// MarginalReuseCache keyed by the canonical variable set, so each distinct
// marginalization is swept once per level no matter how many tests (or
// worker threads) ask for it. Because marginal tables hold exact integer
// counts and the variable order is canonical, every path — cached or not,
// sequential or scheduled across a pool — produces bit-identical statistics.
//
// Thread safety: with the cache enabled (the default) test() marginalizes
// sequentially on the calling thread and is safe to call concurrently from
// any number of scheduler workers — parallelism comes from many tests in
// flight, not from inside one test. With the cache disabled the tester falls
// back to the legacy per-test parallel marginalization (borrowed pool if one
// was provided, else an internal Marginalizer with the deprecated `threads`
// knob) and must then be driven from one thread at a time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "core/info_theory.hpp"
#include "core/marginalizer.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

enum class CiMethod {
  kMiThreshold,  ///< dependent ⇔ I(X;Y|Z) ≥ ε (Cheng et al.)
  kGTest,        ///< dependent ⇔ G-test p-value < α
};

struct CiOptions {
  CiMethod method = CiMethod::kMiThreshold;
  double mi_threshold = 0.01;  ///< ε (nats) for kMiThreshold
  double alpha = 0.01;         ///< significance level for kGTest
  /// DEPRECATED alias: worker count for the learner-owned pool when no
  /// ThreadPool is borrowed (and for legacy per-test marginalization when
  /// reuse_marginals is off). New code should hand the learner a ThreadPool&
  /// instead — one pool per learn call, tests scheduled across it.
  std::size_t threads = 1;
  /// Share {x,y} ∪ Z marginalizations across tests through the sharded
  /// reuse cache. On/off is bit-identical; off only exists for measurement.
  bool reuse_marginals = true;
  std::size_t cache_shards = 16;
  /// Cooperative cancellation: polled at the top of every CI test; a set
  /// flag makes the tester throw OperationCancelled (learners surface it as
  /// a clean error, never a torn graph). Borrowed, may be null.
  const std::atomic<bool>* cancel = nullptr;
};

struct CiDecision {
  bool independent = false;
  double statistic = 0.0;  ///< I(X;Y|Z) in nats (kMiThreshold) or G (kGTest)
  double p_value = 1.0;    ///< 1.0 for kMiThreshold (not computed)
};

struct MarginalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Sharded version-keyed cache of joint marginal tables, keyed by the
/// canonical (sorted) variable set plus a version word — the same
/// version-first keying the serving ResultCache uses, so one cache instance
/// can safely span snapshot versions. Concurrent find/insert from any number
/// of threads; on an insert race the first stored table wins and every
/// caller receives the same shared pointer (the racing computations are
/// bit-identical, so nothing observable depends on the winner).
class MarginalReuseCache {
 public:
  explicit MarginalReuseCache(std::size_t shards = 16);

  /// The cached marginal over `vars` (must be sorted) or null.
  [[nodiscard]] std::shared_ptr<const MarginalTable> find(
      std::span<const std::size_t> vars, std::uint64_t version) const;

  /// Stores `table` under (vars, version) unless a racing insert got there
  /// first; returns the table that ended up cached.
  std::shared_ptr<const MarginalTable> insert(
      std::span<const std::size_t> vars, std::uint64_t version,
      MarginalTable table);

  void clear();

  [[nodiscard]] MarginalCacheStats stats() const noexcept {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

 private:
  using WordKey = std::vector<std::uint64_t>;  ///< word 0: version, then vars
  struct WordKeyHash {
    std::size_t operator()(const WordKey& key) const noexcept;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<WordKey, std::shared_ptr<const MarginalTable>,
                       WordKeyHash>
        map;
  };

  [[nodiscard]] static WordKey make_key(std::span<const std::size_t> vars,
                                        std::uint64_t version);
  [[nodiscard]] Shard& shard_of(const WordKey& key) const;

  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

/// Decides (in)dependence of x, y from their joint marginal with Z (every
/// other variable of `joint` is conditioning context). Shared by the tester
/// and anything that batches marginals itself.
[[nodiscard]] CiDecision decide_from_joint(const MarginalTable& joint,
                                           std::size_t x, std::size_t y,
                                           const CiOptions& options);

/// Stateless apart from configuration + the table it tests against; safe to
/// share across phases and (with the reuse cache enabled) across scheduler
/// workers. Counts tests for complexity reporting.
template <typename K>
class BasicCiTester {
 public:
  using Table = BasicPotentialTable<K>;

  BasicCiTester(const Table& table, CiOptions options);

  /// Borrowed-pool constructor (the BasicQueryEngine pattern): with the
  /// reuse cache off, per-test marginalizations run across `pool` instead of
  /// spawning threads per test. The pool must outlive the tester.
  BasicCiTester(const Table& table, CiOptions options, ThreadPool& pool);

  /// Tests X ⟂ Y | Z. Z may be empty (marginal independence, Eq. 1).
  [[nodiscard]] CiDecision test(std::size_t x, std::size_t y,
                                std::span<const std::size_t> z) const;

  /// Marginal mutual information I(X;Y) — drafting-phase scores.
  [[nodiscard]] double pair_mi(std::size_t x, std::size_t y) const;

  [[nodiscard]] std::uint64_t tests_performed() const noexcept {
    return tests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const CiOptions& options() const noexcept { return options_; }
  [[nodiscard]] const Table& table() const noexcept { return table_; }

  /// The reuse cache (null when options.reuse_marginals is off).
  [[nodiscard]] const MarginalReuseCache* cache() const noexcept {
    return cache_.get();
  }

  /// Version word for cache keys — set to the snapshot version when testing
  /// against a served snapshot so one cache can span versions. Default 0.
  void set_cache_version(std::uint64_t version) noexcept {
    cache_version_ = version;
  }

 private:
  [[nodiscard]] MarginalTable sweep_marginal(
      std::span<const std::size_t> vars) const;
  [[nodiscard]] CiDecision decide_canonical(std::size_t x, std::size_t y,
                                            std::span<const std::size_t> z) const;

  const Table& table_;
  CiOptions options_;
  BasicMarginalizer<K> marginalizer_;
  ThreadPool* pool_ = nullptr;  ///< borrowed; only the cache-off path uses it
  std::shared_ptr<MarginalReuseCache> cache_;
  std::uint64_t cache_version_ = 0;
  mutable std::atomic<std::uint64_t> tests_{0};
};

extern template class BasicCiTester<Key>;
extern template class BasicCiTester<WideKey>;

using CiTester = BasicCiTester<Key>;
using WideCiTester = BasicCiTester<WideKey>;

}  // namespace wfbn
