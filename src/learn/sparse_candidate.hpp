// Sparse-candidate parent selection (paper reference [9], Friedman et al.
// 1999): restrict each node's candidate parents to its top-k MI partners.
// The paper's related-work section positions the all-pairs MI primitive as
// exactly this kind of search-space pruner for score-based learners.
//
// Width-independent: operates on the MiMatrix alone, so both key widths of
// the templated learner layer share it without instantiation.
#pragma once

#include <vector>

#include "core/all_pairs_mi.hpp"

namespace wfbn {

/// candidates[v] = up to k nodes with the highest I(X_v; X_w), w ≠ v, MI > 0,
/// sorted by descending MI (ties: lower node id first).
[[nodiscard]] std::vector<std::vector<std::size_t>> sparse_candidates(
    const MiMatrix& mi, std::size_t k);

}  // namespace wfbn
