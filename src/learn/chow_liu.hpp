// Chow–Liu tree (paper reference [6]): the maximum-spanning-tree over
// pairwise mutual information — the classic consumer of an all-pairs MI
// matrix, included to show the primitives feeding a second learner.
#pragma once

#include "bn/dag.hpp"
#include "core/all_pairs_mi.hpp"

namespace wfbn {

struct ChowLiuResult {
  UndirectedGraph tree;  ///< the maximum-weight spanning tree/forest
  Dag rooted;            ///< tree rooted at `root` (edges point away from it)
  double total_mi = 0.0; ///< sum of MI over chosen edges
};

/// Builds the maximum-spanning tree of the MI matrix (Prim's algorithm).
/// Edges with MI <= min_mi are not used, so disconnected variables yield a
/// forest. `root` selects the orientation root for each component (the
/// component's lowest node id if `root` is outside the component).
[[nodiscard]] ChowLiuResult chow_liu_tree(const MiMatrix& mi, double min_mi = 0.0,
                                          NodeId root = 0);

}  // namespace wfbn
