// Chow–Liu tree (paper reference [6]): the maximum-spanning-tree over
// pairwise mutual information — the classic consumer of an all-pairs MI
// matrix, included to show the primitives feeding a second learner. The tree
// construction itself is width-independent (it only sees the MiMatrix);
// chow_liu_learn below is the key-trait-templated end-to-end entry that
// sweeps the MI matrix off a potential table first.
#pragma once

#include "bn/dag.hpp"
#include "concurrent/thread_pool.hpp"
#include "core/all_pairs_mi.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

struct ChowLiuResult {
  UndirectedGraph tree;  ///< the maximum-weight spanning tree/forest
  Dag rooted;            ///< tree rooted at `root` (edges point away from it)
  double total_mi = 0.0; ///< sum of MI over chosen edges
};

/// Builds the maximum-spanning tree of the MI matrix (Prim's algorithm).
/// Edges with MI <= min_mi are not used, so disconnected variables yield a
/// forest. `root` selects the orientation root for each component (the
/// component's lowest node id if `root` is outside the component).
[[nodiscard]] ChowLiuResult chow_liu_tree(const MiMatrix& mi, double min_mi = 0.0,
                                          NodeId root = 0);

/// End-to-end learn off a potential table: all-pairs MI (fused strategy) on
/// the borrowed pool, then the spanning tree. K is deduced from the table.
template <typename K>
[[nodiscard]] ChowLiuResult chow_liu_learn(const BasicPotentialTable<K>& table,
                                           ThreadPool& pool, double min_mi = 0.0,
                                           NodeId root = 0);

extern template ChowLiuResult chow_liu_learn<Key>(
    const BasicPotentialTable<Key>&, ThreadPool&, double, NodeId);
extern template ChowLiuResult chow_liu_learn<WideKey>(
    const BasicPotentialTable<WideKey>&, ThreadPool&, double, NodeId);

}  // namespace wfbn
