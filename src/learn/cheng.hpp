// Cheng et al. (2002) three-phase constraint-based structure learner —
// the algorithm whose first phase the paper's primitives initialize
// (paper §II-C), completed here with thickening, thinning, and v-structure
// orientation so the library learns full structures end to end. Templated
// over KeyTraits: ChengLearner runs on narrow (64-bit) tables,
// WideChengLearner on two-word tables, through one implementation.
//
// Phase 1, drafting: all-pairs MI via the wait-free table + marginalization
//   primitives; pairs above ε, in descending MI order, become draft edges
//   when their endpoints are not yet connected by any path; the rest are
//   deferred.
// Phase 2, thickening: every deferred pair is re-examined with a conditional
//   test given a heuristic cut-set; dependent pairs gain an edge.
// Phase 3, thinning: every edge whose endpoints stay connected without it is
//   re-tested given a (greedily minimized) cut-set; independent pairs lose
//   their edge.
// Orientation: v-structures from recorded separating sets, then Meek rules.
//
// Parallel CI scheduling: phases 2 and 3 batch their tests through a
// CiScheduler over a borrowed (or learner-owned) ThreadPool. Each batch is
// built from a *frozen* view of the graph — thickening tests all deferred
// pairs against the post-draft graph, each thinning round tests all edges
// against that round's snapshot — and the collected decisions are applied
// afterwards in canonical order (descending MI for additions, lexicographic
// edge order for removals, rounds repeated until none removes anything).
// Results are therefore bit-identical for every pool width, including P=1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bn/dag.hpp"
#include "concurrent/thread_pool.hpp"
#include "core/all_pairs_mi.hpp"
#include "data/dataset.hpp"
#include "learn/ci_scheduler.hpp"
#include "learn/independence.hpp"

namespace wfbn {

struct ChengOptions {
  CiOptions ci;  ///< threshold/alpha + cache/cancel knobs for all tests
  AllPairsStrategy all_pairs_strategy = AllPairsStrategy::kFused;
  /// Cut-sets are truncated to this size (keeps conditioning tables dense and
  /// counts statistically meaningful).
  std::size_t max_cutset_size = 6;
  /// Greedily drop cut-set members that are not needed for separation (the
  /// paper's reference algorithm minimizes cut-sets; costs extra CI tests).
  bool minimize_cutsets = true;
  bool orient = true;
};

struct PhaseTimings {
  double table_construction = 0.0;
  double drafting = 0.0;
  double thickening = 0.0;
  double thinning = 0.0;
  double orientation = 0.0;
};

struct ChengResult {
  UndirectedGraph skeleton;        ///< final phase-3 skeleton
  Dag oriented;                    ///< v-structures + Meek closure; remaining
                                   ///< edges oriented low→high node id
  MiMatrix mi;                     ///< phase-1 all-pairs MI
  std::size_t draft_edge_count = 0;
  std::size_t thickening_added = 0;
  std::size_t thinning_removed = 0;
  std::uint64_t ci_tests = 0;      ///< statistics tests beyond the MI matrix
  PhaseTimings timings;
  /// Separating sets found for non-adjacent pairs (key: (min,max)) — the
  /// evidence the orientation step consumes.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>> sepsets;
  /// CI scheduling telemetry: work items, batches, per-worker busy CPU time,
  /// critical path, reuse-cache hit rate.
  CiScheduleStats schedule;
};

template <typename K>
class BasicChengLearner {
 public:
  using Table = BasicPotentialTable<K>;

  explicit BasicChengLearner(ChengOptions options = {});

  /// Borrowed-pool constructor (the BasicQueryEngine pattern): drafting,
  /// thickening, and thinning all schedule their work across `pool`, which
  /// must outlive the learner. Without it the learner owns a pool of
  /// options.ci.threads workers per learn() call.
  BasicChengLearner(ChengOptions options, ThreadPool& pool);

  /// Learns from raw data: builds the potential table with the wait-free
  /// primitive on the same pool, then runs the three phases.
  [[nodiscard]] ChengResult learn(const Dataset& data) const;

  /// Learns from a pre-built potential table.
  [[nodiscard]] ChengResult learn(const Table& table) const;

  [[nodiscard]] const ChengOptions& options() const noexcept { return options_; }

 private:
  [[nodiscard]] ChengResult learn_with_pool(const Table& table,
                                            ThreadPool& pool) const;

  ChengOptions options_;
  ThreadPool* pool_ = nullptr;  ///< borrowed; null → own pool per learn()
};

extern template class BasicChengLearner<Key>;
extern template class BasicChengLearner<WideKey>;

using ChengLearner = BasicChengLearner<Key>;
using WideChengLearner = BasicChengLearner<WideKey>;

}  // namespace wfbn
