// Cheng et al. (2002) three-phase constraint-based structure learner —
// the algorithm whose first phase the paper's primitives initialize
// (paper §II-C), completed here with thickening, thinning, and v-structure
// orientation so the library learns full structures end to end.
//
// Phase 1, drafting: all-pairs MI via the wait-free table + marginalization
//   primitives; pairs above ε, in descending MI order, become draft edges
//   when their endpoints are not yet connected by any path; the rest are
//   deferred.
// Phase 2, thickening: every deferred pair is re-examined with a conditional
//   test given a heuristic cut-set; dependent pairs gain an edge.
// Phase 3, thinning: every edge whose endpoints stay connected without it is
//   re-tested given a (greedily minimized) cut-set; independent pairs lose
//   their edge.
// Orientation: v-structures from recorded separating sets, then Meek rules.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bn/dag.hpp"
#include "core/all_pairs_mi.hpp"
#include "data/dataset.hpp"
#include "learn/independence.hpp"

namespace wfbn {

struct ChengOptions {
  CiOptions ci;  ///< threshold/alpha + threads for all statistics tests
  AllPairsStrategy all_pairs_strategy = AllPairsStrategy::kFused;
  /// Cut-sets are truncated to this size (keeps conditioning tables dense and
  /// counts statistically meaningful).
  std::size_t max_cutset_size = 6;
  /// Greedily drop cut-set members that are not needed for separation (the
  /// paper's reference algorithm minimizes cut-sets; costs extra CI tests).
  bool minimize_cutsets = true;
  bool orient = true;
};

struct PhaseTimings {
  double table_construction = 0.0;
  double drafting = 0.0;
  double thickening = 0.0;
  double thinning = 0.0;
  double orientation = 0.0;
};

struct ChengResult {
  UndirectedGraph skeleton;        ///< final phase-3 skeleton
  Dag oriented;                    ///< v-structures + Meek closure; remaining
                                   ///< edges oriented low→high node id
  MiMatrix mi;                     ///< phase-1 all-pairs MI
  std::size_t draft_edge_count = 0;
  std::size_t thickening_added = 0;
  std::size_t thinning_removed = 0;
  std::uint64_t ci_tests = 0;      ///< statistics tests beyond the MI matrix
  PhaseTimings timings;
  /// Separating sets found for non-adjacent pairs (key: (min,max)) — the
  /// evidence the orientation step consumes.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>> sepsets;
};

class ChengLearner {
 public:
  explicit ChengLearner(ChengOptions options = {});

  /// Learns from raw data: builds the potential table with the wait-free
  /// primitive (options().ci.threads workers), then runs the three phases.
  [[nodiscard]] ChengResult learn(const Dataset& data) const;

  /// Learns from a pre-built potential table.
  [[nodiscard]] ChengResult learn(const PotentialTable& table) const;

  [[nodiscard]] const ChengOptions& options() const noexcept { return options_; }

 private:
  ChengOptions options_;
};

}  // namespace wfbn
