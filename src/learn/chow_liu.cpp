#include "learn/chow_liu.hpp"

#include <deque>
#include <limits>

#include "util/error.hpp"

namespace wfbn {

ChowLiuResult chow_liu_tree(const MiMatrix& mi, double min_mi, NodeId root) {
  const std::size_t n = mi.size();
  WFBN_EXPECT(n >= 1, "empty MI matrix");
  ChowLiuResult result{UndirectedGraph(n), Dag(n), 0.0};

  // Prim's algorithm per connected component (components arise when no
  // remaining cross edge exceeds min_mi).
  std::vector<bool> in_tree(n, false);
  std::vector<double> best_weight(n, -std::numeric_limits<double>::infinity());
  std::vector<NodeId> best_parent(n, n);

  for (NodeId start = 0; start < n; ++start) {
    if (in_tree[start]) continue;
    in_tree[start] = true;
    for (NodeId v = 0; v < n; ++v) {
      if (!in_tree[v] && mi.at(start, v) > best_weight[v]) {
        best_weight[v] = mi.at(start, v);
        best_parent[v] = start;
      }
    }
    for (;;) {
      NodeId pick = n;
      double pick_weight = min_mi;
      for (NodeId v = 0; v < n; ++v) {
        if (!in_tree[v] && best_weight[v] > pick_weight) {
          pick_weight = best_weight[v];
          pick = v;
        }
      }
      if (pick == n) break;  // nothing above min_mi attaches to this component
      in_tree[pick] = true;
      result.tree.add_edge(best_parent[pick], pick);
      result.total_mi += pick_weight;
      for (NodeId v = 0; v < n; ++v) {
        if (!in_tree[v] && mi.at(pick, v) > best_weight[v]) {
          best_weight[v] = mi.at(pick, v);
          best_parent[v] = pick;
        }
      }
    }
  }

  // Root each component (at `root` when it belongs to the component, else at
  // the component's smallest node) and point edges away from the root.
  std::vector<bool> visited(n, false);
  auto orient_from = [&](NodeId r) {
    std::deque<NodeId> frontier{r};
    visited[r] = true;
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      for (const NodeId w : result.tree.neighbors(v)) {
        if (!visited[w]) {
          visited[w] = true;
          result.rooted.add_edge(v, w);
          frontier.push_back(w);
        }
      }
    }
  };
  if (root < n) orient_from(root);
  for (NodeId v = 0; v < n; ++v) {
    if (!visited[v]) orient_from(v);
  }
  return result;
}

template <typename K>
ChowLiuResult chow_liu_learn(const BasicPotentialTable<K>& table,
                             ThreadPool& pool, double min_mi, NodeId root) {
  AllPairsOptions options;
  options.threads = pool.size();
  options.strategy = AllPairsStrategy::kFused;
  BasicAllPairsMi<K> all_pairs(options);
  return chow_liu_tree(all_pairs.compute(table, pool), min_mi, root);
}

template ChowLiuResult chow_liu_learn<Key>(const BasicPotentialTable<Key>&,
                                           ThreadPool&, double, NodeId);
template ChowLiuResult chow_liu_learn<WideKey>(
    const BasicPotentialTable<WideKey>&, ThreadPool&, double, NodeId);

}  // namespace wfbn
