#include "learn/cheng.hpp"

#include <algorithm>

#include "core/wait_free_builder.hpp"
#include "learn/orientation.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wfbn {

namespace {

using Pair = std::pair<std::size_t, std::size_t>;

Pair ordered(std::size_t a, std::size_t b) { return {std::min(a, b), std::max(a, b)}; }

/// Heuristic cut-set for (x, y) in `graph`: the smaller of the two endpoint
/// neighborhoods restricted to nodes lying on x–y paths (every true separator
/// must intersect those paths), truncated to `cap` members.
std::vector<std::size_t> candidate_cutset(const UndirectedGraph& graph,
                                          std::size_t x, std::size_t y,
                                          std::size_t cap) {
  const std::vector<NodeId> on_paths = graph.nodes_on_paths(x, y);
  auto neighborhood = [&](std::size_t v) {
    std::vector<std::size_t> out;
    for (const NodeId w : graph.neighbors(v)) {
      if (std::find(on_paths.begin(), on_paths.end(), w) != on_paths.end()) {
        out.push_back(w);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<std::size_t> n_x = neighborhood(x);
  std::vector<std::size_t> n_y = neighborhood(y);
  std::vector<std::size_t>& chosen = n_x.size() <= n_y.size() ? n_x : n_y;
  if (chosen.size() > cap) chosen.resize(cap);
  return chosen;
}

/// Greedy cut-set minimization: drop members whose removal keeps the pair
/// independent. Returns the reduced set (and reports the final decision).
std::vector<std::size_t> minimize_cutset(const CiTester& tester, std::size_t x,
                                         std::size_t y,
                                         std::vector<std::size_t> z) {
  bool changed = true;
  while (changed && z.size() > 1) {
    changed = false;
    for (std::size_t drop = 0; drop < z.size(); ++drop) {
      std::vector<std::size_t> reduced;
      reduced.reserve(z.size() - 1);
      for (std::size_t i = 0; i < z.size(); ++i) {
        if (i != drop) reduced.push_back(z[i]);
      }
      if (tester.test(x, y, reduced).independent) {
        z = std::move(reduced);
        changed = true;
        break;
      }
    }
  }
  return z;
}

}  // namespace

ChengLearner::ChengLearner(ChengOptions options) : options_(options) {
  WFBN_EXPECT(options_.max_cutset_size >= 1, "cut-set cap must be >= 1");
}

ChengResult ChengLearner::learn(const Dataset& data) const {
  Timer timer;
  WaitFreeBuilderOptions builder_options;
  builder_options.threads = options_.ci.threads;
  WaitFreeBuilder builder(builder_options);
  const PotentialTable table = builder.build(data);
  ChengResult result = learn(table);
  result.timings.table_construction = timer.seconds() - result.timings.drafting -
                                      result.timings.thickening -
                                      result.timings.thinning -
                                      result.timings.orientation;
  return result;
}

ChengResult ChengLearner::learn(const PotentialTable& table) const {
  const std::size_t n = table.codec().variable_count();
  ChengResult result{UndirectedGraph(n), Dag(n), MiMatrix(n), 0, 0, 0,
                     0, PhaseTimings{}, {}};
  CiTester tester(table, options_.ci);

  // ---------- Phase 1: drafting ----------
  Timer phase_timer;
  AllPairsOptions ap;
  ap.threads = options_.ci.threads;
  ap.strategy = options_.all_pairs_strategy;
  AllPairsMi all_pairs(ap);
  result.mi = all_pairs.compute(table);

  const double epsilon = options_.ci.method == CiMethod::kMiThreshold
                             ? options_.ci.mi_threshold
                             : 0.0;
  const auto scored = result.mi.pairs_above(epsilon);

  // Pairs below ε are marginally independent with empty separating set.
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = x + 1; y < n; ++y) {
      if (result.mi.at(x, y) <= epsilon) result.sepsets[ordered(x, y)] = {};
    }
  }

  UndirectedGraph& graph = result.skeleton;
  std::vector<MiMatrix::ScoredPair> deferred;
  for (const auto& pair : scored) {
    if (!graph.has_path(pair.i, pair.j)) {
      graph.add_edge(pair.i, pair.j);
    } else {
      deferred.push_back(pair);
    }
  }
  result.draft_edge_count = graph.edge_count();
  result.timings.drafting = phase_timer.seconds();

  // ---------- Phase 2: thickening ----------
  phase_timer.reset();
  for (const auto& pair : deferred) {
    std::vector<std::size_t> z =
        candidate_cutset(graph, pair.i, pair.j, options_.max_cutset_size);
    const CiDecision decision = tester.test(pair.i, pair.j, z);
    if (!decision.independent) {
      graph.add_edge(pair.i, pair.j);
      ++result.thickening_added;
    } else {
      if (options_.minimize_cutsets && z.size() > 1) {
        z = minimize_cutset(tester, pair.i, pair.j, std::move(z));
      }
      result.sepsets[ordered(pair.i, pair.j)] = z;
    }
  }
  result.timings.thickening = phase_timer.seconds();

  // ---------- Phase 3: thinning ----------
  phase_timer.reset();
  bool removed_any = true;
  while (removed_any) {
    removed_any = false;
    for (const Edge& e : graph.edges()) {
      graph.remove_edge(e.from, e.to);
      if (!graph.has_path(e.from, e.to)) {
        // The edge is the only connection — keep it (its MI cleared ε).
        graph.add_edge(e.from, e.to);
        continue;
      }
      std::vector<std::size_t> z =
          candidate_cutset(graph, e.from, e.to, options_.max_cutset_size);
      const CiDecision decision = tester.test(e.from, e.to, z);
      if (decision.independent) {
        ++result.thinning_removed;
        removed_any = true;
        if (options_.minimize_cutsets && z.size() > 1) {
          z = minimize_cutset(tester, e.from, e.to, std::move(z));
        }
        result.sepsets[ordered(e.from, e.to)] = z;
      } else {
        graph.add_edge(e.from, e.to);
      }
    }
  }
  result.timings.thinning = phase_timer.seconds();

  // ---------- Orientation ----------
  phase_timer.reset();
  if (options_.orient) {
    result.oriented = orient_skeleton(graph, result.sepsets);
  } else {
    // Unoriented fallback: low → high.
    Dag dag(n);
    for (const Edge& e : graph.edges()) dag.add_edge(e.from, e.to);
    result.oriented = std::move(dag);
  }
  result.timings.orientation = phase_timer.seconds();
  result.ci_tests = tester.tests_performed();
  return result;
}

}  // namespace wfbn
