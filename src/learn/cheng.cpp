#include "learn/cheng.hpp"

#include <algorithm>
#include <utility>

#include "core/wait_free_builder.hpp"
#include "learn/orientation.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wfbn {

namespace {

using Pair = std::pair<std::size_t, std::size_t>;

Pair ordered(std::size_t a, std::size_t b) { return {std::min(a, b), std::max(a, b)}; }

/// Heuristic cut-set for (x, y) in `graph`: the smaller of the two endpoint
/// neighborhoods restricted to nodes lying on x–y paths (every true separator
/// must intersect those paths), truncated to `cap` members.
std::vector<std::size_t> candidate_cutset(const UndirectedGraph& graph,
                                          std::size_t x, std::size_t y,
                                          std::size_t cap) {
  const std::vector<NodeId> on_paths = graph.nodes_on_paths(x, y);
  auto neighborhood = [&](std::size_t v) {
    std::vector<std::size_t> out;
    for (const NodeId w : graph.neighbors(v)) {
      if (std::find(on_paths.begin(), on_paths.end(), w) != on_paths.end()) {
        out.push_back(w);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<std::size_t> n_x = neighborhood(x);
  std::vector<std::size_t> n_y = neighborhood(y);
  std::vector<std::size_t>& chosen = n_x.size() <= n_y.size() ? n_x : n_y;
  if (chosen.size() > cap) chosen.resize(cap);
  return chosen;
}

/// Greedy cut-set minimization: drop members whose removal keeps the pair
/// independent. Returns the reduced set (and reports the final decision).
/// Deterministic given (x, y, z) — safe to run inside a scheduler work item.
template <typename K>
std::vector<std::size_t> minimize_cutset(const BasicCiTester<K>& tester,
                                         std::size_t x, std::size_t y,
                                         std::vector<std::size_t> z) {
  bool changed = true;
  while (changed && z.size() > 1) {
    changed = false;
    for (std::size_t drop = 0; drop < z.size(); ++drop) {
      std::vector<std::size_t> reduced;
      reduced.reserve(z.size() - 1);
      for (std::size_t i = 0; i < z.size(); ++i) {
        if (i != drop) reduced.push_back(z[i]);
      }
      if (tester.test(x, y, reduced).independent) {
        z = std::move(reduced);
        changed = true;
        break;
      }
    }
  }
  return z;
}

/// Outcome of one scheduled pair re-examination, collected per batch and
/// applied after the batch quiesces.
struct PairOutcome {
  bool connect = false;  ///< thickening: add the edge / thinning: keep it
  std::vector<std::size_t> sepset;
};

}  // namespace

template <typename K>
BasicChengLearner<K>::BasicChengLearner(ChengOptions options)
    : options_(options) {
  WFBN_EXPECT(options_.max_cutset_size >= 1, "cut-set cap must be >= 1");
}

template <typename K>
BasicChengLearner<K>::BasicChengLearner(ChengOptions options, ThreadPool& pool)
    : BasicChengLearner(options) {
  pool_ = &pool;
}

template <typename K>
ChengResult BasicChengLearner<K>::learn(const Dataset& data) const {
  Timer timer;
  ChengResult result = [&] {
    if (pool_ != nullptr) {
      BasicWaitFreeBuilder<K> builder;
      const Table table = builder.build(data, *pool_);
      return learn_with_pool(table, *pool_);
    }
    WaitFreeBuilderOptions builder_options;
    builder_options.threads = options_.ci.threads;
    BasicWaitFreeBuilder<K> builder(builder_options);
    ThreadPool pool(options_.ci.threads);
    const Table table = builder.build(data, pool);
    return learn_with_pool(table, pool);
  }();
  result.timings.table_construction = timer.seconds() - result.timings.drafting -
                                      result.timings.thickening -
                                      result.timings.thinning -
                                      result.timings.orientation;
  return result;
}

template <typename K>
ChengResult BasicChengLearner<K>::learn(const Table& table) const {
  if (pool_ != nullptr) return learn_with_pool(table, *pool_);
  ThreadPool pool(options_.ci.threads);
  return learn_with_pool(table, pool);
}

template <typename K>
ChengResult BasicChengLearner<K>::learn_with_pool(const Table& table,
                                                  ThreadPool& pool) const {
  const std::size_t n = table.codec().variable_count();
  ChengResult result{UndirectedGraph(n), Dag(n), MiMatrix(n), 0, 0, 0,
                     0, PhaseTimings{}, {}, CiScheduleStats{}};
  // The tester is shared by every scheduler worker, so it must take the
  // thread-safe sweep path: reuse cache on → sequential per-call sweeps
  // through the cache; cache off → threads forced to 1 so each test
  // marginalizes sequentially on its worker. Either way no pool is nested
  // inside a work item, and the statistics are bit-identical.
  CiOptions ci = options_.ci;
  ci.threads = 1;
  const BasicCiTester<K> tester(table, ci);
  BasicCiScheduler<K> scheduler(pool);

  // ---------- Phase 1: drafting ----------
  Timer phase_timer;
  AllPairsOptions ap;
  ap.threads = options_.ci.threads;
  ap.strategy = options_.all_pairs_strategy;
  BasicAllPairsMi<K> all_pairs(ap);
  result.mi = all_pairs.compute(table, pool);

  const double epsilon = options_.ci.method == CiMethod::kMiThreshold
                             ? options_.ci.mi_threshold
                             : 0.0;
  const auto scored = result.mi.pairs_above(epsilon);

  // Pairs below ε are marginally independent with empty separating set.
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = x + 1; y < n; ++y) {
      if (result.mi.at(x, y) <= epsilon) result.sepsets[ordered(x, y)] = {};
    }
  }

  UndirectedGraph& graph = result.skeleton;
  std::vector<MiMatrix::ScoredPair> deferred;
  for (const auto& pair : scored) {
    if (!graph.has_path(pair.i, pair.j)) {
      graph.add_edge(pair.i, pair.j);
    } else {
      deferred.push_back(pair);
    }
  }
  result.draft_edge_count = graph.edge_count();
  result.timings.drafting = phase_timer.seconds();

  // ---------- Phase 2: thickening ----------
  // Every deferred pair is re-examined against the *frozen* post-draft graph
  // (cut-sets included), then the additions are applied in descending-MI
  // order — the canonical order `deferred` already carries. Workers only
  // read `graph` and write their own outcome slot.
  phase_timer.reset();
  std::vector<PairOutcome> thicken(deferred.size());
  scheduler.for_each(deferred.size(), [&](std::size_t i) {
    const auto& pair = deferred[i];
    std::vector<std::size_t> z =
        candidate_cutset(graph, pair.i, pair.j, options_.max_cutset_size);
    if (!tester.test(pair.i, pair.j, z).independent) {
      thicken[i].connect = true;
      return;
    }
    if (options_.minimize_cutsets && z.size() > 1) {
      z = minimize_cutset(tester, pair.i, pair.j, std::move(z));
    }
    thicken[i].sepset = std::move(z);
  });
  for (std::size_t i = 0; i < deferred.size(); ++i) {
    if (thicken[i].connect) {
      graph.add_edge(deferred[i].i, deferred[i].j);
      ++result.thickening_added;
    } else {
      result.sepsets[ordered(deferred[i].i, deferred[i].j)] =
          std::move(thicken[i].sepset);
    }
  }
  result.timings.thickening = phase_timer.seconds();

  // ---------- Phase 3: thinning ----------
  // Rounds over a frozen edge snapshot: each work item probes one edge's
  // removal against the round's graph (private copy, so connectivity checks
  // and cut-sets never see a neighbor item's decision), removals are applied
  // in the snapshot's lexicographic order, and rounds repeat until one
  // removes nothing — the same fixpoint the sequential sweep reached.
  phase_timer.reset();
  bool removed_any = true;
  while (removed_any) {
    removed_any = false;
    const std::vector<Edge> edges = graph.edges();
    std::vector<PairOutcome> thin(edges.size());
    scheduler.for_each(edges.size(), [&](std::size_t i) {
      const Edge& e = edges[i];
      UndirectedGraph probe = graph;
      probe.remove_edge(e.from, e.to);
      if (!probe.has_path(e.from, e.to)) {
        // The edge is the only connection — keep it (its MI cleared ε).
        thin[i].connect = true;
        return;
      }
      std::vector<std::size_t> z =
          candidate_cutset(probe, e.from, e.to, options_.max_cutset_size);
      if (!tester.test(e.from, e.to, z).independent) {
        thin[i].connect = true;
        return;
      }
      if (options_.minimize_cutsets && z.size() > 1) {
        z = minimize_cutset(tester, e.from, e.to, std::move(z));
      }
      thin[i].sepset = std::move(z);
    });
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (thin[i].connect) continue;
      graph.remove_edge(edges[i].from, edges[i].to);
      ++result.thinning_removed;
      removed_any = true;
      result.sepsets[ordered(edges[i].from, edges[i].to)] =
          std::move(thin[i].sepset);
    }
  }
  result.timings.thinning = phase_timer.seconds();

  // ---------- Orientation ----------
  phase_timer.reset();
  if (options_.orient) {
    result.oriented = orient_skeleton(graph, result.sepsets);
  } else {
    // Unoriented fallback: low → high.
    Dag dag(n);
    for (const Edge& e : graph.edges()) dag.add_edge(e.from, e.to);
    result.oriented = std::move(dag);
  }
  result.timings.orientation = phase_timer.seconds();
  result.ci_tests = tester.tests_performed();
  scheduler.absorb_cache_stats(tester);
  result.schedule = scheduler.stats();
  return result;
}

template class BasicChengLearner<Key>;
template class BasicChengLearner<WideKey>;

}  // namespace wfbn
