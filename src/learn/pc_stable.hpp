// PC-stable skeleton learning (Spirtes et al., paper reference [22]; stable
// adjacency variant of Colombo & Maathuis) — a second constraint-based
// learner built on the same primitives, demonstrating that the wait-free
// table + marginalization layer serves the whole algorithm family, not just
// Cheng's drafting phase. Templated over KeyTraits: PcStableLearner for
// narrow (64-bit) tables, WidePcStableLearner for two-word tables.
//
// Level ℓ = 0, 1, 2, ...: for every adjacent pair (x, y), test x ⟂ y | Z for
// each size-ℓ subset Z of adj(x)\{y} (adjacency sets frozen per level — the
// "stable" part, making results order-independent); remove the edge when a
// separating set is found. Orientation reuses learn/orientation.hpp.
//
// Parallel CI scheduling: the stable variant is naturally batch-shaped —
// every level's pair searches depend only on the frozen adjacency sets, so
// they are scheduled as independent work items over a borrowed ThreadPool
// (one item = one ordered pair's whole subset search) and the collected
// removals/sepsets are applied afterwards in canonical pair order. Results
// are bit-identical for every pool width, including P=1.
#pragma once

#include <cstdint>

#include "bn/dag.hpp"
#include "concurrent/thread_pool.hpp"
#include "data/dataset.hpp"
#include "learn/ci_scheduler.hpp"
#include "learn/independence.hpp"
#include "learn/orientation.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

struct PcStableOptions {
  CiOptions ci;
  /// Largest conditioning-set size to try (caps both runtime and the size of
  /// the marginal tables the tests build).
  std::size_t max_level = 3;
  bool orient = true;
};

struct PcStableResult {
  UndirectedGraph skeleton;
  Dag oriented;
  SepsetMap sepsets;
  std::uint64_t ci_tests = 0;
  std::size_t levels_run = 0;
  /// CI scheduling telemetry (work items, batches, busy/critical-path CPU
  /// time, reuse-cache hit rate).
  CiScheduleStats schedule;
};

template <typename K>
class BasicPcStableLearner {
 public:
  using Table = BasicPotentialTable<K>;

  explicit BasicPcStableLearner(PcStableOptions options = {});

  /// Borrowed-pool constructor: every level's subset searches are scheduled
  /// across `pool`, which must outlive the learner. Without it the learner
  /// owns a pool of options.ci.threads workers per learn() call.
  BasicPcStableLearner(PcStableOptions options, ThreadPool& pool);

  /// Learns from raw data (builds the potential table with the wait-free
  /// primitive first) or from a pre-built table.
  [[nodiscard]] PcStableResult learn(const Dataset& data) const;
  [[nodiscard]] PcStableResult learn(const Table& table) const;

  [[nodiscard]] const PcStableOptions& options() const noexcept {
    return options_;
  }

 private:
  [[nodiscard]] PcStableResult learn_with_pool(const Table& table,
                                               ThreadPool& pool) const;

  PcStableOptions options_;
  ThreadPool* pool_ = nullptr;  ///< borrowed; null → own pool per learn()
};

extern template class BasicPcStableLearner<Key>;
extern template class BasicPcStableLearner<WideKey>;

using PcStableLearner = BasicPcStableLearner<Key>;
using WidePcStableLearner = BasicPcStableLearner<WideKey>;

}  // namespace wfbn
