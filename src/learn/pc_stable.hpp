// PC-stable skeleton learning (Spirtes et al., paper reference [22]; stable
// adjacency variant of Colombo & Maathuis) — a second constraint-based
// learner built on the same primitives, demonstrating that the wait-free
// table + marginalization layer serves the whole algorithm family, not just
// Cheng's drafting phase.
//
// Level ℓ = 0, 1, 2, ...: for every adjacent pair (x, y), test x ⟂ y | Z for
// each size-ℓ subset Z of adj(x)\{y} (adjacency sets frozen per level — the
// "stable" part, making results order-independent); remove the edge on the
// first separating set found. Orientation reuses learn/orientation.hpp.
#pragma once

#include <cstdint>

#include "bn/dag.hpp"
#include "data/dataset.hpp"
#include "learn/independence.hpp"
#include "learn/orientation.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

struct PcStableOptions {
  CiOptions ci;
  /// Largest conditioning-set size to try (caps both runtime and the size of
  /// the marginal tables the tests build).
  std::size_t max_level = 3;
  bool orient = true;
};

struct PcStableResult {
  UndirectedGraph skeleton;
  Dag oriented;
  SepsetMap sepsets;
  std::uint64_t ci_tests = 0;
  std::size_t levels_run = 0;
};

class PcStableLearner {
 public:
  explicit PcStableLearner(PcStableOptions options = {});

  /// Learns from raw data (builds the potential table with the wait-free
  /// primitive first) or from a pre-built table.
  [[nodiscard]] PcStableResult learn(const Dataset& data) const;
  [[nodiscard]] PcStableResult learn(const PotentialTable& table) const;

  [[nodiscard]] const PcStableOptions& options() const noexcept {
    return options_;
  }

 private:
  PcStableOptions options_;
};

}  // namespace wfbn
