// Parallel scheduling of conditional-independence tests (Jiang et al.,
// "Fast Parallel Bayesian Network Structure Learning"): instead of
// parallelizing *inside* one marginalization, a learner batches the
// independent CI tests of a phase or level into work items and spreads the
// items across a borrowed ThreadPool. Each work item runs one whole test —
// marginalization (sequential, through the tester's reuse cache) plus the
// statistic — so P tests are in flight at once and the per-level wall clock
// approaches max-over-workers instead of sum-over-tests.
//
// Determinism: work item i always computes decision slot i, whatever worker
// runs it and in whatever order items finish. Learners build their item
// lists from a *frozen* view of the graph and apply the collected decisions
// afterwards in canonical order, so results are bit-identical for every pool
// width — P=1 and P=8 produce the same skeleton, the same orientations, the
// same statistics.
//
// Failure atomicity: ThreadPool::run rethrows the first worker exception
// only after every worker finished its round, and scheduler statistics are
// committed only when a batch succeeds. A mid-batch throw (an injected
// learn.* fault, a cancellation, a data error) therefore surfaces to the
// learner *between* batches, where no graph mutation has happened yet — a
// failed learn is a clean error, never a torn graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "learn/independence.hpp"
#include "util/fault_injection.hpp"
#include "util/timer.hpp"

namespace wfbn {

/// One CI test to schedule: X ⟂ Y | Z?
struct CiTask {
  std::size_t x = 0;
  std::size_t y = 0;
  std::vector<std::size_t> z;
};

/// Accumulated over every batch a scheduler instance ran. Busy times are
/// per-thread CPU time (CLOCK_THREAD_CPUTIME_ID), so the critical path —
/// Σ over batches of the slowest worker's busy time — models the makespan of
/// a machine with one core per worker even when the host timeshares fewer
/// cores. Cache hit/miss totals are filled in by the owning learner from the
/// tester's reuse cache at the end of a learn() call.
struct CiScheduleStats {
  std::uint64_t work_items = 0;
  std::uint64_t batches = 0;
  double total_busy_seconds = 0.0;     ///< Σ_batches Σ_workers busy CPU
  double critical_path_seconds = 0.0;  ///< Σ_batches max_worker busy CPU
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Schedules batches of independent work items over a borrowed pool. The
/// pool must outlive the scheduler; one scheduler instance accumulates stats
/// across all its batches (one learner phase typically runs several).
///
/// Not itself thread-safe: one thread drives the scheduler, the pool's
/// workers execute the items.
template <typename K>
class BasicCiScheduler {
 public:
  using Tester = BasicCiTester<K>;

  explicit BasicCiScheduler(ThreadPool& pool) : pool_(&pool) {}

  /// Runs `fn(i)` for every i in [0, count) across the pool's workers with
  /// cyclic item assignment (worker w gets items w, w+P, w+2P, … — balanced
  /// when item costs vary smoothly with index, which CI levels do). `fn`
  /// must be safe to call concurrently for distinct i and must write only
  /// into slot i of any shared output. Rethrows the first item exception
  /// after the whole batch has quiesced; stats are untouched on failure.
  template <typename Fn>
  void for_each(std::size_t count, Fn&& fn) {
    if (count == 0) return;
    const std::size_t workers = pool_->size();
    std::vector<double> busy(workers, 0.0);
    pool_->run([&](std::size_t w) {
      const ThreadCpuTimer timer;
      for (std::size_t i = w; i < count; i += workers) {
        WFBN_FAULT_POINT(fault::Point::kLearnSchedule);
        fn(i);
      }
      busy[w] = timer.seconds();
    });
    stats_.work_items += count;
    stats_.batches += 1;
    double max_busy = 0.0;
    for (double b : busy) {
      stats_.total_busy_seconds += b;
      if (b > max_busy) max_busy = b;
    }
    stats_.critical_path_seconds += max_busy;
  }

  /// Schedules one CI test per task; decision i answers task i. The batch
  /// either completes fully or throws with no decisions delivered.
  [[nodiscard]] std::vector<CiDecision> run(const Tester& tester,
                                            std::span<const CiTask> tasks);

  [[nodiscard]] const CiScheduleStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ThreadPool& pool() const noexcept { return *pool_; }

  /// Copies the tester's reuse-cache totals into the accumulated stats —
  /// learners call this once when a learn() finishes.
  void absorb_cache_stats(const Tester& tester) noexcept {
    if (const MarginalReuseCache* cache = tester.cache()) {
      const MarginalCacheStats s = cache->stats();
      stats_.cache_hits = s.hits;
      stats_.cache_misses = s.misses;
    }
  }

 private:
  ThreadPool* pool_;
  CiScheduleStats stats_;
};

extern template class BasicCiScheduler<Key>;
extern template class BasicCiScheduler<WideKey>;

using CiScheduler = BasicCiScheduler<Key>;
using WideCiScheduler = BasicCiScheduler<WideKey>;

}  // namespace wfbn
