#include "learn/orientation.hpp"

#include <algorithm>

namespace wfbn {

Dag orient_skeleton(const UndirectedGraph& skeleton, const SepsetMap& sepsets) {
  const std::size_t n = skeleton.node_count();
  // directed[u][v]: u → v decided.
  std::vector<std::vector<bool>> directed(n, std::vector<bool>(n, false));
  auto is_oriented = [&](NodeId u, NodeId v) {
    return directed[u][v] || directed[v][u];
  };
  auto ordered = [](NodeId a, NodeId b) {
    return std::make_pair(std::min(a, b), std::max(a, b));
  };

  // ---- v-structures.
  for (NodeId x = 0; x < n; ++x) {
    for (NodeId y = x + 1; y < n; ++y) {
      if (skeleton.has_edge(x, y)) continue;
      const auto it = sepsets.find(ordered(x, y));
      const std::vector<std::size_t>* sep =
          it == sepsets.end() ? nullptr : &it->second;
      for (const NodeId w : skeleton.neighbors(x)) {
        if (!skeleton.has_edge(w, y)) continue;
        const bool in_sep =
            sep != nullptr && std::find(sep->begin(), sep->end(), w) != sep->end();
        if (!in_sep) {
          if (!directed[w][x]) directed[x][w] = true;
          if (!directed[w][y]) directed[y][w] = true;
        }
      }
    }
  }

  // ---- Meek rules 1–4 to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    auto orient = [&](NodeId u, NodeId v) {
      if (!is_oriented(u, v)) {
        directed[u][v] = true;
        changed = true;
      }
    };
    for (NodeId a = 0; a < n; ++a) {
      for (const NodeId b : skeleton.neighbors(a)) {
        if (directed[a][b]) {
          // Rule 1: a→b, b—c undecided, a and c non-adjacent ⇒ b→c.
          for (const NodeId c : skeleton.neighbors(b)) {
            if (c != a && !is_oriented(b, c) && !skeleton.has_edge(a, c)) {
              orient(b, c);
            }
          }
          // Rule 2: a→b→c with a—c undecided ⇒ a→c.
          for (const NodeId c : skeleton.neighbors(b)) {
            if (c != a && directed[b][c] && skeleton.has_edge(a, c)) {
              orient(a, c);
            }
          }
          continue;
        }
        if (is_oriented(a, b)) continue;
        // a—b undecided. Rule 3: c, d ∈ adj(a), c→b and d→b, c∦d ⇒ a→b.
        const auto& adj_a = skeleton.neighbors(a);
        for (std::size_t i = 0; i < adj_a.size(); ++i) {
          // c must point into b while its own link to a is still undecided.
          const NodeId c = adj_a[i];
          if (c == b || !directed[c][b] || is_oriented(a, c)) continue;
          for (std::size_t j = i + 1; j < adj_a.size(); ++j) {
            const NodeId d = adj_a[j];
            if (d == b || !directed[d][b] || is_oriented(a, d)) continue;
            if (!skeleton.has_edge(c, d)) {
              orient(a, b);
            }
          }
        }
        // Rule 4: d ∈ adj(a) with d→c, c→b, and a—c (any orientation state),
        // a and b adjacent (given), d and b non-adjacent ⇒ a→b.
        for (const NodeId d : adj_a) {
          if (d == b || is_oriented(a, d)) continue;
          for (const NodeId c : skeleton.neighbors(d)) {
            if (c == a || c == b) continue;
            if (directed[d][c] && directed[c][b] && skeleton.has_edge(a, c) &&
                !skeleton.has_edge(d, b)) {
              orient(a, b);
            }
          }
        }
      }
    }
  }

  // ---- Materialize as a DAG (conflicting collider evidence can make the
  // oriented relation cyclic on noisy data; add_edge rejects those, and the
  // reverse direction is used instead).
  Dag dag(n);
  for (const Edge& e : skeleton.edges()) {
    const NodeId u = e.from;
    const NodeId v = e.to;
    if (directed[u][v] && !directed[v][u]) {
      if (!dag.add_edge(u, v)) dag.add_edge(v, u);
    } else if (directed[v][u] && !directed[u][v]) {
      if (!dag.add_edge(v, u)) dag.add_edge(u, v);
    } else {
      if (!dag.add_edge(u, v)) dag.add_edge(v, u);
    }
  }
  return dag;
}

}  // namespace wfbn
