#include "learn/bootstrap.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace wfbn {

UndirectedGraph BootstrapResult::consensus(double threshold) const {
  UndirectedGraph graph(nodes);
  for (NodeId i = 0; i < nodes; ++i) {
    for (NodeId j = i + 1; j < nodes; ++j) {
      if (confidence(i, j) >= threshold) graph.add_edge(i, j);
    }
  }
  return graph;
}

Dataset resample_with_replacement(const Dataset& data, Xoshiro256& rng) {
  const std::size_t m = data.sample_count();
  Dataset out(m, data.cardinalities());
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t source = static_cast<std::size_t>(rng.bounded(m));
    const auto src_row = data.row(source);
    auto dst_row = out.row(i);
    std::copy(src_row.begin(), src_row.end(), dst_row.begin());
  }
  return out;
}

BootstrapResult bootstrap_edges(
    const Dataset& data,
    const std::function<UndirectedGraph(const Dataset&)>& learn_skeleton,
    BootstrapOptions options) {
  WFBN_EXPECT(options.replicates >= 1, "need at least one replicate");
  WFBN_EXPECT(static_cast<bool>(learn_skeleton), "learner must be callable");
  const std::size_t n = data.variable_count();

  BootstrapResult result;
  result.replicates = options.replicates;
  result.nodes = n;
  result.edge_confidence.assign(n * n, 0.0);

  Xoshiro256 rng(options.seed);
  for (std::size_t rep = 0; rep < options.replicates; ++rep) {
    const Dataset resampled = resample_with_replacement(data, rng);
    const UndirectedGraph skeleton = learn_skeleton(resampled);
    WFBN_EXPECT(skeleton.node_count() == n,
                "learner returned a skeleton over the wrong node set");
    for (const Edge& e : skeleton.edges()) {
      result.edge_confidence[e.from * n + e.to] += 1.0;
      result.edge_confidence[e.to * n + e.from] += 1.0;
    }
  }
  const double scale = 1.0 / static_cast<double>(options.replicates);
  for (double& c : result.edge_confidence) c *= scale;
  return result;
}

template <typename K>
BootstrapResult bootstrap_cheng(const Dataset& data, ChengOptions cheng,
                                BootstrapOptions options) {
  if (options.threads > 1 && cheng.ci.threads <= 1) {
    cheng.ci.threads = options.threads;
  }
  const BasicChengLearner<K> learner(cheng);
  return bootstrap_edges(
      data,
      [&](const Dataset& resampled) { return learner.learn(resampled).skeleton; },
      options);
}

template BootstrapResult bootstrap_cheng<Key>(const Dataset&, ChengOptions,
                                              BootstrapOptions);
template BootstrapResult bootstrap_cheng<WideKey>(const Dataset&, ChengOptions,
                                                  BootstrapOptions);

}  // namespace wfbn
