// Score-based structure learning — the *first* paradigm of paper §III
// (Chow–Liu [6], Cooper–Herskovits [7], Heckerman [12], Friedman's sparse
// candidate [9]): BIC-scored greedy hill climbing whose search space is
// pruned by the all-pairs-MI candidate-parent sets, exactly the use the
// paper's related-work section proposes for the primitives ("a parallel and
// efficient tool to help reduce the search space of other structure learning
// algorithms").
//
// The BIC score decomposes over families (node + parent set); family scores
// are computed by marginalizing the potential table with the parallel
// primitive and cached, so the climb never touches the raw data twice for
// the same family. Templated over KeyTraits like the rest of the learner
// layer: FamilyScorer / hill_climb work on narrow tables, the Wide aliases
// and explicit <WideKey> calls on two-word tables.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bn/dag.hpp"
#include "concurrent/thread_pool.hpp"
#include "core/all_pairs_mi.hpp"
#include "data/dataset.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

/// Decomposable family score: log-likelihood of X_v given its parents minus
/// the BIC complexity penalty (0.5 · log m · #free parameters).
template <typename K>
class BasicFamilyScorer {
 public:
  using Table = BasicPotentialTable<K>;

  /// Borrows `table`; it must outlive the scorer. `threads` parallelizes the
  /// marginalizations that produce the family counts.
  explicit BasicFamilyScorer(const Table& table, std::size_t threads = 1);

  /// Borrowed-pool constructor: family-count marginalizations run across
  /// `pool` (which must outlive the scorer) instead of per-call threads.
  BasicFamilyScorer(const Table& table, ThreadPool& pool);

  /// BIC score of the family (v | parents). Parents need not be sorted;
  /// results are cached under the sorted set.
  [[nodiscard]] double family_score(std::size_t v,
                                    std::vector<std::size_t> parents) const;

  /// Total BIC of a DAG = Σ_v family_score(v, parents(v)).
  [[nodiscard]] double total_score(const Dag& dag) const;

  [[nodiscard]] std::uint64_t families_evaluated() const noexcept {
    return evaluations_;
  }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return cache_hits_; }

 private:
  [[nodiscard]] MarginalTable sweep(std::span<const std::size_t> vars) const;

  const Table& table_;
  std::size_t threads_;
  ThreadPool* pool_ = nullptr;  ///< borrowed; null → per-call threads
  mutable std::map<std::pair<std::size_t, std::vector<std::size_t>>, double>
      cache_;
  mutable std::uint64_t evaluations_ = 0;
  mutable std::uint64_t cache_hits_ = 0;
};

extern template class BasicFamilyScorer<Key>;
extern template class BasicFamilyScorer<WideKey>;

using FamilyScorer = BasicFamilyScorer<Key>;
using WideFamilyScorer = BasicFamilyScorer<WideKey>;

struct HillClimbOptions {
  std::size_t threads = 1;
  /// Cap on parents per node (keeps family tables dense and counts honest).
  std::size_t max_parents = 3;
  /// Per-node candidate parents (e.g. from sparse_candidates()); empty means
  /// every other node is a candidate (the unpruned search of §III).
  std::vector<std::vector<std::size_t>> candidate_parents;
  /// Stop after this many accepted moves (safety valve; greedy search on
  /// decomposable scores terminates on its own).
  std::size_t max_moves = 1000;
};

struct HillClimbResult {
  Dag dag;
  double score = 0.0;
  std::size_t moves = 0;               ///< accepted add/remove/reverse moves
  std::uint64_t families_evaluated = 0;
  std::uint64_t cache_hits = 0;
};

/// Greedy hill climbing over add-edge / remove-edge / reverse-edge moves,
/// starting from the empty graph. K is deduced from the table.
template <typename K>
[[nodiscard]] HillClimbResult hill_climb(const BasicPotentialTable<K>& table,
                                         const HillClimbOptions& options = {});

/// Convenience: builds the table with the wait-free primitive, derives
/// candidate parents from all-pairs MI (top-k per node), then climbs.
/// Narrow by default; call hill_climb_sparse<WideKey>(...) for wide tables.
template <typename K = Key>
[[nodiscard]] HillClimbResult hill_climb_sparse(const Dataset& data,
                                                std::size_t candidates_per_node,
                                                HillClimbOptions options = {});

extern template HillClimbResult hill_climb<Key>(const BasicPotentialTable<Key>&,
                                                const HillClimbOptions&);
extern template HillClimbResult hill_climb<WideKey>(
    const BasicPotentialTable<WideKey>&, const HillClimbOptions&);
extern template HillClimbResult hill_climb_sparse<Key>(const Dataset&,
                                                       std::size_t,
                                                       HillClimbOptions);
extern template HillClimbResult hill_climb_sparse<WideKey>(const Dataset&,
                                                           std::size_t,
                                                           HillClimbOptions);

}  // namespace wfbn
