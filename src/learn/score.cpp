#include "learn/score.hpp"

#include <algorithm>
#include <cmath>

#include "core/marginalizer.hpp"
#include "core/wait_free_builder.hpp"
#include "learn/sparse_candidate.hpp"
#include "util/error.hpp"

namespace wfbn {

template <typename K>
BasicFamilyScorer<K>::BasicFamilyScorer(const Table& table, std::size_t threads)
    : table_(table), threads_(threads) {
  WFBN_EXPECT(threads >= 1, "scorer needs at least one thread");
}

template <typename K>
BasicFamilyScorer<K>::BasicFamilyScorer(const Table& table, ThreadPool& pool)
    : table_(table), threads_(pool.size()), pool_(&pool) {}

template <typename K>
MarginalTable BasicFamilyScorer<K>::sweep(
    std::span<const std::size_t> vars) const {
  const BasicMarginalizer<K> marginalizer(threads_);
  if (pool_ != nullptr) return marginalizer.marginalize(table_, vars, *pool_);
  return marginalizer.marginalize(table_, vars);
}

template <typename K>
double BasicFamilyScorer<K>::family_score(std::size_t v,
                                          std::vector<std::size_t> parents) const {
  WFBN_EXPECT(v < table_.codec().variable_count(), "node out of range");
  std::sort(parents.begin(), parents.end());
  WFBN_EXPECT(std::adjacent_find(parents.begin(), parents.end()) ==
                  parents.end(),
              "duplicate parents");
  WFBN_EXPECT(std::find(parents.begin(), parents.end(), v) == parents.end(),
              "node cannot parent itself");

  const auto key = std::make_pair(v, parents);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++evaluations_;

  const double m = static_cast<double>(table_.sample_count());
  const std::uint32_t r = table_.codec().cardinality(v);

  double log_likelihood = 0.0;
  std::uint64_t parent_configs = 1;
  if (parents.empty()) {
    const std::size_t vars[] = {v};
    const MarginalTable counts = sweep(vars);
    for (std::uint64_t cell = 0; cell < counts.cell_count(); ++cell) {
      const std::uint64_t c = counts.count_at(cell);
      if (c != 0) {
        log_likelihood +=
            static_cast<double>(c) * std::log(static_cast<double>(c) / m);
      }
    }
  } else {
    // Joint over (v, parents...): v is the first (fastest) variable, so the
    // parent configuration is cell / r.
    std::vector<std::size_t> vars{v};
    vars.insert(vars.end(), parents.begin(), parents.end());
    const MarginalTable joint = sweep(vars);
    parent_configs = joint.cell_count() / r;
    std::vector<std::uint64_t> config_totals(parent_configs, 0);
    for (std::uint64_t cell = 0; cell < joint.cell_count(); ++cell) {
      config_totals[cell / r] += joint.count_at(cell);
    }
    for (std::uint64_t cell = 0; cell < joint.cell_count(); ++cell) {
      const std::uint64_t c = joint.count_at(cell);
      if (c != 0) {
        log_likelihood += static_cast<double>(c) *
                          std::log(static_cast<double>(c) /
                                   static_cast<double>(config_totals[cell / r]));
      }
    }
  }

  const double parameters =
      static_cast<double>(parent_configs) * (static_cast<double>(r) - 1.0);
  const double score = log_likelihood - 0.5 * std::log(m) * parameters;
  cache_.emplace(key, score);
  return score;
}

template <typename K>
double BasicFamilyScorer<K>::total_score(const Dag& dag) const {
  WFBN_EXPECT(dag.node_count() == table_.codec().variable_count(),
              "DAG does not match the table's variables");
  double total = 0.0;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    total += family_score(v, dag.parents(v));
  }
  return total;
}

namespace {

/// One candidate move of the greedy search.
struct Move {
  enum Kind { kAdd, kRemove, kReverse } kind;
  NodeId from;
  NodeId to;
  double delta;
};

bool is_candidate(const HillClimbOptions& options, NodeId parent, NodeId child) {
  if (options.candidate_parents.empty()) return true;
  const auto& c = options.candidate_parents[child];
  return std::find(c.begin(), c.end(), parent) != c.end();
}

}  // namespace

template <typename K>
HillClimbResult hill_climb(const BasicPotentialTable<K>& table,
                           const HillClimbOptions& options) {
  const std::size_t n = table.codec().variable_count();
  WFBN_EXPECT(options.max_parents >= 1, "max_parents must be >= 1");
  WFBN_EXPECT(options.candidate_parents.empty() ||
                  options.candidate_parents.size() == n,
              "candidate_parents must have one entry per node");

  const BasicFamilyScorer<K> scorer(table, options.threads);
  HillClimbResult result{Dag(n), 0.0, 0, 0, 0};
  Dag& dag = result.dag;

  // Current family scores, refreshed incrementally.
  std::vector<double> family(n);
  for (NodeId v = 0; v < n; ++v) family[v] = scorer.family_score(v, {});

  auto with_parent = [&](NodeId child, NodeId parent) {
    std::vector<std::size_t> parents = dag.parents(child);
    parents.push_back(parent);
    return parents;
  };
  auto without_parent = [&](NodeId child, NodeId parent) {
    std::vector<std::size_t> parents = dag.parents(child);
    parents.erase(std::remove(parents.begin(), parents.end(), parent),
                  parents.end());
    return parents;
  };

  while (result.moves < options.max_moves) {
    std::optional<Move> best;
    auto consider = [&](Move move) {
      if (move.delta > 1e-9 && (!best || move.delta > best->delta)) {
        best = move;
      }
    };

    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u == v) continue;
        if (dag.has_edge(u, v)) {
          // Remove u → v.
          const double delta =
              scorer.family_score(v, without_parent(v, u)) - family[v];
          consider(Move{Move::kRemove, u, v, delta});
          // Reverse to v → u.
          if (dag.parents(u).size() < options.max_parents &&
              is_candidate(options, v, u)) {
            Dag probe = dag;
            probe.remove_edge(u, v);
            if (probe.add_edge(v, u)) {
              const double delta_rev =
                  (scorer.family_score(v, without_parent(v, u)) - family[v]) +
                  (scorer.family_score(u, with_parent(u, v)) - family[u]);
              consider(Move{Move::kReverse, u, v, delta_rev});
            }
          }
        } else if (dag.parents(v).size() < options.max_parents &&
                   is_candidate(options, u, v) && !dag.would_create_cycle(u, v)) {
          // Add u → v.
          const double delta =
              scorer.family_score(v, with_parent(v, u)) - family[v];
          consider(Move{Move::kAdd, u, v, delta});
        }
      }
    }
    if (!best) break;

    switch (best->kind) {
      case Move::kAdd:
        WFBN_EXPECT(dag.add_edge(best->from, best->to), "add move became invalid");
        family[best->to] = scorer.family_score(best->to, dag.parents(best->to));
        break;
      case Move::kRemove:
        dag.remove_edge(best->from, best->to);
        family[best->to] = scorer.family_score(best->to, dag.parents(best->to));
        break;
      case Move::kReverse:
        dag.remove_edge(best->from, best->to);
        WFBN_EXPECT(dag.add_edge(best->to, best->from),
                    "reverse move became invalid");
        family[best->to] = scorer.family_score(best->to, dag.parents(best->to));
        family[best->from] =
            scorer.family_score(best->from, dag.parents(best->from));
        break;
    }
    ++result.moves;
  }

  result.score = 0.0;
  for (NodeId v = 0; v < n; ++v) result.score += family[v];
  result.families_evaluated = scorer.families_evaluated();
  result.cache_hits = scorer.cache_hits();
  return result;
}

template <typename K>
HillClimbResult hill_climb_sparse(const Dataset& data,
                                  std::size_t candidates_per_node,
                                  HillClimbOptions options) {
  WaitFreeBuilderOptions builder_options;
  builder_options.threads = options.threads == 0 ? 1 : options.threads;
  BasicWaitFreeBuilder<K> builder(builder_options);
  const BasicPotentialTable<K> table = builder.build(data);

  AllPairsOptions mi_options;
  mi_options.threads = builder_options.threads;
  mi_options.strategy = AllPairsStrategy::kFused;
  BasicAllPairsMi<K> all_pairs(mi_options);
  const MiMatrix mi = all_pairs.compute(table);
  options.candidate_parents = sparse_candidates(mi, candidates_per_node);
  return hill_climb(table, options);
}

template class BasicFamilyScorer<Key>;
template class BasicFamilyScorer<WideKey>;

template HillClimbResult hill_climb<Key>(const BasicPotentialTable<Key>&,
                                         const HillClimbOptions&);
template HillClimbResult hill_climb<WideKey>(const BasicPotentialTable<WideKey>&,
                                             const HillClimbOptions&);
template HillClimbResult hill_climb_sparse<Key>(const Dataset&, std::size_t,
                                                HillClimbOptions);
template HillClimbResult hill_climb_sparse<WideKey>(const Dataset&, std::size_t,
                                                    HillClimbOptions);

}  // namespace wfbn
