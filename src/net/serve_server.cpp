#include "net/serve_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/socket_util.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace wfbn::net {

namespace {

/// Best-effort request id from a payload that failed to decode, so the
/// BAD_REQUEST answer can still be correlated by the client. The id is the
/// first field, so any payload with 8 bytes has one.
std::uint64_t scrape_request_id(std::span<const std::uint8_t> payload) {
  if (payload.size() < sizeof(std::uint64_t)) return 0;
  std::uint64_t id = 0;
  std::memcpy(&id, payload.data(), sizeof id);
  return id;
}

Opcode scrape_opcode(std::span<const std::uint8_t> payload) {
  if (payload.size() > sizeof(std::uint64_t) &&
      opcode_valid(payload[sizeof(std::uint64_t)])) {
    return static_cast<Opcode>(payload[sizeof(std::uint64_t)]);
  }
  return Opcode::kVersion;
}

}  // namespace

template <typename K>
struct BasicServeServer<K>::Impl {
  static constexpr KeyWidth kWidth =
      std::is_same_v<K, Key> ? KeyWidth::kNarrow : KeyWidth::kWide;

  struct WorkItem {
    std::uint64_t conn_id = 0;
    Request request;
  };
  using Queue = BoundedQueue<WorkItem>;

  struct Connection {
    UniqueFd fd;
    FrameDecoder decoder;
    std::vector<std::uint8_t> outbox;
    std::size_t outbox_sent = 0;
  };

  struct Outgoing {
    std::uint64_t conn_id = 0;
    std::vector<std::uint8_t> frame;
  };

  Impl(Engine& engine_in, ThreadPool& pool_in, ServerOptions options_in,
       Durable* durable_in)
      : engine(engine_in),
        pool(pool_in),
        options(std::move(options_in)),
        durable(durable_in),
        admission(options.admission) {}

  Engine& engine;
  ThreadPool& pool;
  ServerOptions options;
  Durable* durable;
  AdmissionController admission;

  UniqueFd listen_fd;
  UniqueFd wake_read;
  UniqueFd wake_write;
  std::uint16_t bound_port = 0;
  bool started = false;
  std::atomic<bool> running{false};

  std::thread event_thread;
  std::vector<std::thread> dispatchers;

  /// Event-loop-thread-private connection table.
  std::unordered_map<std::uint64_t, Connection> conns;
  std::uint64_t next_conn_id = 1;

  /// Dispatcher → event loop response mailbox.
  std::mutex out_mutex;
  std::vector<Outgoing> outgoing;

  /// Per-class queues (admission enabled) or one shared FIFO (disabled).
  std::array<std::unique_ptr<Queue>, kRequestClassCount> class_queues;
  std::unique_ptr<Queue> shared_queue;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> decoded{0};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched{0};

  // ---- lifecycle -------------------------------------------------------

  void start() {
    WFBN_EXPECT(!started, "server already started");
    std::uint16_t port = options.port;
    listen_fd = listen_tcp(options.bind_address, port);
    bound_port = port;
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      listen_fd.reset();
      throw NetError("pipe2()" + errno_string());
    }
    wake_read = UniqueFd(pipe_fds[0]);
    wake_write = UniqueFd(pipe_fds[1]);
    running.store(true, std::memory_order_release);
    if (options.admission.enabled) {
      for (std::size_t c = 0; c < kRequestClassCount; ++c) {
        class_queues[c] = std::make_unique<Queue>(
            options.admission.per_class[c].queue_capacity);
      }
      dispatchers.emplace_back([this] {
        interactive_loop(
            *class_queues[static_cast<std::size_t>(RequestClass::kInteractive)]);
      });
      dispatchers.emplace_back([this] {
        single_loop(
            *class_queues[static_cast<std::size_t>(RequestClass::kIngest)]);
      });
      dispatchers.emplace_back([this] {
        single_loop(
            *class_queues[static_cast<std::size_t>(RequestClass::kAdmin)]);
      });
    } else {
      // The naive baseline: one effectively-unbounded FIFO, one dispatcher,
      // strict arrival order. Ingest folds head-of-line block every query
      // behind them — which is what the overload sweep measures.
      shared_queue = std::make_unique<Queue>(std::size_t{1} << 20);
      dispatchers.emplace_back([this] { single_loop(*shared_queue); });
    }
    event_thread = std::thread([this] { event_loop(); });
    started = true;
  }

  void stop() {
    if (!started) return;
    running.store(false, std::memory_order_release);
    wake();
    event_thread.join();
    for (auto& q : class_queues) {
      if (q) q->close();
    }
    if (shared_queue) shared_queue->close();
    for (std::thread& t : dispatchers) t.join();
    dispatchers.clear();
    for (auto& q : class_queues) q.reset();
    shared_queue.reset();
    conns.clear();
    listen_fd.reset();
    wake_read.reset();
    wake_write.reset();
    started = false;
  }

  void wake() noexcept {
    if (!wake_write.valid()) return;
    const std::uint8_t byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_write.get(), &byte, 1);  // full pipe = wakeup pending
  }

  // ---- event loop ------------------------------------------------------

  void event_loop() {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> owner;  ///< conn id per pollfd; 0 = internal
    while (running.load(std::memory_order_acquire)) {
      fds.clear();
      owner.clear();
      fds.push_back({wake_read.get(), POLLIN, 0});
      owner.push_back(0);
      std::ptrdiff_t listen_index = -1;
      if (conns.size() < options.max_connections) {
        listen_index = static_cast<std::ptrdiff_t>(fds.size());
        fds.push_back({listen_fd.get(), POLLIN, 0});
        owner.push_back(0);
      }
      for (const auto& [id, conn] : conns) {
        short events = POLLIN;
        if (conn.outbox_sent < conn.outbox.size()) events |= POLLOUT;
        fds.push_back({conn.fd.get(), events, 0});
        owner.push_back(id);
      }
      const int ready = ::poll(fds.data(), fds.size(), 100);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;  // poll itself failing is unrecoverable; stop() cleans up
      }
      if (fds[0].revents & POLLIN) drain_wake_pipe();
      deliver_outgoing();
      if (listen_index >= 0 &&
          (fds[static_cast<std::size_t>(listen_index)].revents & POLLIN)) {
        accept_pending();
      }
      for (std::size_t i = 1; i < fds.size(); ++i) {
        const std::uint64_t id = owner[i];
        if (id == 0) continue;
        auto it = conns.find(id);
        if (it == conns.end()) continue;  // closed earlier this round
        if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
          close_conn(id, /*was_failure=*/false);
          continue;
        }
        if (fds[i].revents & POLLIN) handle_readable(id);
        it = conns.find(id);
        if (it != conns.end() && (fds[i].revents & POLLOUT)) {
          flush_writes(id);
        }
      }
    }
  }

  void drain_wake_pipe() noexcept {
    std::uint8_t sink[256];
    while (::read(wake_read.get(), sink, sizeof sink) > 0) {
    }
  }

  void deliver_outgoing() {
    std::vector<Outgoing> pending;
    {
      std::lock_guard<std::mutex> lock(out_mutex);
      pending.swap(outgoing);
    }
    for (Outgoing& out : pending) {
      auto it = conns.find(out.conn_id);
      if (it == conns.end()) continue;  // connection died; drop the response
      Connection& conn = it->second;
      conn.outbox.insert(conn.outbox.end(), out.frame.begin(),
                         out.frame.end());
      sent.fetch_add(1, std::memory_order_relaxed);
    }
    // Opportunistic flush so a response does not wait out the poll timeout.
    for (Outgoing& out : pending) {
      if (conns.count(out.conn_id) != 0) flush_writes(out.conn_id);
    }
  }

  void accept_pending() {
    while (conns.size() < options.max_connections) {
      const int raw =
          ::accept4(listen_fd.get(), nullptr, nullptr,
                    SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (raw < 0) return;  // EAGAIN and friends: nothing pending
      UniqueFd fd(raw);
      try {
        WFBN_FAULT_POINT(fault::Point::kNetAccept);
      } catch (const InjectedFault&) {
        // The accept is abandoned; the listener keeps serving.
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      Connection conn;
      conn.fd = std::move(fd);
      conn.decoder = FrameDecoder(options.max_frame_payload);
      conns.emplace(next_conn_id, std::move(conn));
      ++next_conn_id;
      accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void close_conn(std::uint64_t id, bool was_failure) {
    if (conns.erase(id) == 0) return;
    closed.fetch_add(1, std::memory_order_relaxed);
    if (was_failure) failed.fetch_add(1, std::memory_order_relaxed);
  }

  void handle_readable(std::uint64_t id) {
    Connection& conn = conns.at(id);
    try {
      while (true) {
        WFBN_FAULT_POINT(fault::Point::kNetRead);
        std::uint8_t buf[65536];
        const ssize_t n = ::read(conn.fd.get(), buf, sizeof buf);
        if (n > 0) {
          conn.decoder.feed(buf, static_cast<std::size_t>(n));
          if (static_cast<std::size_t>(n) < sizeof buf) break;
          continue;
        }
        if (n == 0) {  // orderly EOF
          close_conn(id, /*was_failure=*/false);
          return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        throw NetError("read()" + errno_string());
      }
    } catch (const std::exception&) {
      // Injected fault, socket failure, or a torn/corrupt frame (DataError
      // from the decoder, including a forced net.frame_checksum mismatch).
      // The stream is untrustworthy: this one connection dies, nothing else.
      close_conn(id, /*was_failure=*/true);
      return;
    }
    while (std::optional<DecodedFrame> frame = conn.decoder.next()) {
      if (frame->kind != FrameKind::kRequest) {
        close_conn(id, /*was_failure=*/true);
        return;
      }
      if (!handle_request_frame(id, *frame)) return;  // connection closed
    }
    flush_writes(id);
  }

  /// Returns false when the connection was closed.
  bool handle_request_frame(std::uint64_t id, const DecodedFrame& frame) {
    Request request;
    try {
      request = decode_request(frame.payload);
    } catch (const DataError& e) {
      // The frame was intact (checksum passed) but the payload is not a
      // valid request: answer BAD_REQUEST and keep the connection — frame
      // boundaries are still trustworthy.
      bad.fetch_add(1, std::memory_order_relaxed);
      Response response;
      response.id = scrape_request_id(frame.payload);
      response.opcode = scrape_opcode(frame.payload);
      response.status = Status::kBadRequest;
      response.error = e.what();
      respond_now(id, response);
      return true;
    }
    decoded.fetch_add(1, std::memory_order_relaxed);
    if (request.width != Impl::kWidth) {
      bad.fetch_add(1, std::memory_order_relaxed);
      Response response;
      response.id = request.id;
      response.opcode = request.opcode;
      response.status = Status::kBadRequest;
      response.error = std::string("server serves ") +
                       (Impl::kWidth == KeyWidth::kNarrow ? "narrow" : "wide") +
                       " keys; request asked for the other width";
      respond_now(id, response);
      return true;
    }
    const RequestClass cls = request.request_class();
    const AdmissionDecision decision =
        admission.admit(cls, monotonic_now_ns());
    if (!decision.admitted) {
      respond_overloaded(id, request, decision.retry_after_ms);
      return true;
    }
    Queue& queue = queue_for(cls);
    const std::uint64_t request_id = request.id;
    const Opcode opcode = request.opcode;
    if (!queue.try_push(WorkItem{id, std::move(request)})) {
      const std::uint16_t retry = admission.note_queue_full(cls);
      Request rejected;
      rejected.id = request_id;
      rejected.opcode = opcode;
      respond_overloaded(id, rejected, retry);
    }
    return true;
  }

  void respond_overloaded(std::uint64_t conn_id, const Request& request,
                          std::uint16_t retry_after_ms) {
    Response response;
    response.id = request.id;
    response.opcode = request.opcode;
    response.status = Status::kOverloaded;
    response.retry_after_ms = retry_after_ms;
    response.error = "overloaded";
    respond_now(conn_id, response);
  }

  /// Event-loop-thread response: straight into the outbox, no mailbox hop.
  void respond_now(std::uint64_t conn_id, const Response& response) {
    auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    append_frame(it->second.outbox, FrameKind::kResponse,
                 encode_response(response));
    sent.fetch_add(1, std::memory_order_relaxed);
  }

  void flush_writes(std::uint64_t id) {
    Connection& conn = conns.at(id);
    try {
      while (conn.outbox_sent < conn.outbox.size()) {
        WFBN_FAULT_POINT(fault::Point::kNetWrite);
        const ssize_t n =
            ::write(conn.fd.get(), conn.outbox.data() + conn.outbox_sent,
                    conn.outbox.size() - conn.outbox_sent);
        if (n > 0) {
          conn.outbox_sent += static_cast<std::size_t>(n);
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        throw NetError("write()" + errno_string());
      }
    } catch (const std::exception&) {
      close_conn(id, /*was_failure=*/true);
      return;
    }
    if (conn.outbox_sent == conn.outbox.size()) {
      conn.outbox.clear();
      conn.outbox_sent = 0;
    } else if (conn.outbox_sent > (64u << 10)) {
      conn.outbox.erase(conn.outbox.begin(),
                        conn.outbox.begin() +
                            static_cast<std::ptrdiff_t>(conn.outbox_sent));
      conn.outbox_sent = 0;
    }
  }

  Queue& queue_for(RequestClass cls) {
    if (shared_queue) return *shared_queue;
    return *class_queues[static_cast<std::size_t>(cls)];
  }

  // ---- dispatchers -----------------------------------------------------

  void post(std::uint64_t conn_id, const Response& response) {
    Outgoing out;
    out.conn_id = conn_id;
    out.frame = encode_frame(FrameKind::kResponse, encode_response(response));
    {
      std::lock_guard<std::mutex> lock(out_mutex);
      outgoing.push_back(std::move(out));
    }
    wake();
  }

  void interactive_loop(Queue& queue) {
    while (std::optional<WorkItem> first = queue.pop()) {
      std::vector<WorkItem> items;
      items.push_back(std::move(*first));
      while (items.size() < options.batch_max) {
        std::optional<WorkItem> more = queue.try_pop();
        if (!more) break;
        items.push_back(std::move(*more));
      }
      std::vector<serve::ServeQuery> queries;
      queries.reserve(items.size());
      for (const WorkItem& item : items) queries.push_back(item.request.query);
      const std::vector<serve::ServeResult> results =
          engine.serve_batch(queries, pool);
      batches.fetch_add(1, std::memory_order_relaxed);
      batched.fetch_add(items.size(), std::memory_order_relaxed);
      for (std::size_t i = 0; i < items.size(); ++i) {
        post(items[i].conn_id,
             make_query_response(items[i].request, results[i]));
      }
    }
  }

  /// Strict-FIFO dispatcher: the ingest and admin classes, and the whole
  /// shared queue when admission is disabled.
  void single_loop(Queue& queue) {
    while (std::optional<WorkItem> item = queue.pop()) {
      post(item->conn_id, handle_one(item->request));
    }
  }

  Response handle_one(const Request& request) {
    switch (class_of(request.opcode)) {
      case RequestClass::kInteractive: {
        serve::ServeResult result;
        try {
          result = engine.serve(request.query);
        } catch (const std::exception& e) {
          result.ok = false;
          result.error = e.what();
        }
        return make_query_response(request, result);
      }
      case RequestClass::kIngest:
        return handle_ingest(request);
      case RequestClass::kAdmin:
        return handle_admin(request);
    }
    Response response;
    response.id = request.id;
    response.opcode = request.opcode;
    response.status = Status::kBadRequest;
    response.error = "unroutable opcode";
    return response;
  }

  Response make_query_response(const Request& request,
                               const serve::ServeResult& result) {
    Response response;
    response.id = request.id;
    response.opcode = request.opcode;
    if (!result.ok) {
      response.status = Status::kError;
      response.error = result.error;
      return response;
    }
    response.version = result.version;
    response.cache_hit = result.cache_hit;
    response.values = result.values;
    return response;
  }

  Response handle_ingest(const Request& request) {
    Response response;
    response.id = request.id;
    response.opcode = Opcode::kIngest;
    try {
      const Dataset batch = request.ingest_dataset();
      const serve::IngestStats stats =
          durable ? durable->ingest(batch) : engine.ingest(batch);
      if (durable) engine.note_published(stats.published_version);
      response.published_version = stats.published_version;
      response.batch_rows = stats.batch_rows;
    } catch (const std::exception& e) {
      response.status = Status::kError;
      response.error = e.what();
    }
    return response;
  }

  Response handle_admin(const Request& request) {
    Response response;
    response.id = request.id;
    response.opcode = request.opcode;
    switch (request.opcode) {
      case Opcode::kVersion:
        response.served_version = engine.store().version();
        response.durable_version =
            durable ? durable->last_durable_version() : 0;
        break;
      case Opcode::kStats: {
        response.served_version = engine.store().version();
        const serve::CacheStats cache = engine.cache_stats();
        response.cache_hits = cache.hits;
        response.cache_misses = cache.misses;
        const AdmissionStats adm = admission.stats();
        response.admitted = adm.total_admitted();
        response.rejected = adm.total_rejected();
        break;
      }
      case Opcode::kFlush:
        try {
          response.flushed = durable ? durable->flush() : true;
        } catch (const std::exception& e) {
          response.status = Status::kError;
          response.error = e.what();
          break;
        }
        response.served_version = engine.store().version();
        response.durable_version =
            durable ? durable->last_durable_version() : 0;
        break;
      case Opcode::kLearn: {
        // The learn job runs right here on the admin dispatcher thread with
        // its own (clamped) pool — strict admin FIFO means one learn at a
        // time, bounded by admission's admin queue, while the interactive
        // dispatcher keeps answering queries from the snapshot unimpeded.
        try {
          serve::LearnRequest job = request.learn;
          job.threads = std::max<std::size_t>(
              1, std::min(job.threads, options.learn_max_threads));
          const serve::LearnedStructure learned = engine.learn_structure(job);
          response.version = learned.version;
          response.learn_nodes = learned.nodes;
          response.learn_ci_tests = learned.ci_tests;
          response.learn_seconds = learned.seconds;
          response.learn_skeleton = learned.skeleton_edges;
          response.learn_edges = learned.directed_edges;
        } catch (const std::exception& e) {
          response.status = Status::kError;
          response.error = e.what();
        }
        break;
      }
      default:
        response.status = Status::kBadRequest;
        response.error = "not an admin opcode";
        break;
    }
    return response;
  }
};

template <typename K>
BasicServeServer<K>::BasicServeServer(Engine& engine, ThreadPool& pool,
                                      ServerOptions options, Durable* durable)
    : impl_(std::make_unique<Impl>(engine, pool, std::move(options),
                                   durable)) {}

template <typename K>
BasicServeServer<K>::~BasicServeServer() {
  impl_->stop();
}

template <typename K>
void BasicServeServer<K>::start() {
  impl_->start();
}

template <typename K>
void BasicServeServer<K>::stop() {
  impl_->stop();
}

template <typename K>
std::uint16_t BasicServeServer<K>::port() const noexcept {
  return impl_->bound_port;
}

template <typename K>
ServerStats BasicServeServer<K>::stats() const {
  ServerStats out;
  out.connections_accepted = impl_->accepted.load(std::memory_order_relaxed);
  out.connections_closed = impl_->closed.load(std::memory_order_relaxed);
  out.connections_failed = impl_->failed.load(std::memory_order_relaxed);
  out.requests_decoded = impl_->decoded.load(std::memory_order_relaxed);
  out.responses_sent = impl_->sent.load(std::memory_order_relaxed);
  out.bad_requests = impl_->bad.load(std::memory_order_relaxed);
  out.batches_served = impl_->batches.load(std::memory_order_relaxed);
  out.batched_queries = impl_->batched.load(std::memory_order_relaxed);
  return out;
}

template <typename K>
AdmissionStats BasicServeServer<K>::admission_stats() const {
  return impl_->admission.stats();
}

template <typename K>
const ServerOptions& BasicServeServer<K>::options() const noexcept {
  return impl_->options;
}

template class BasicServeServer<Key>;
template class BasicServeServer<WideKey>;

}  // namespace wfbn::net
