// Length-prefixed binary framing for the network serving front end.
//
// Every message on the wire is one frame: a fixed 20-byte header followed by
// `payload_len` payload bytes. The header carries a magic word, a protocol
// version, the frame kind (request vs response), the payload length, and an
// FNV-1a checksum of the payload — so a receiver can (1) resynchronize-fail
// deterministically on garbage, (2) bound its allocation *before* buffering
// the payload, and (3) detect payload bit rot end-to-end. The typed layer on
// top of the payload bytes lives in wire.hpp; this header knows nothing
// about opcodes.
//
// FrameDecoder is incremental: feed() consumes whatever bytes a nonblocking
// socket produced (possibly a fraction of a header, possibly several frames)
// and complete frames become available via next(). Any protocol violation —
// bad magic, unknown version, oversized payload, checksum mismatch — throws
// DataError: framing errors are not recoverable mid-stream (the length
// prefix can no longer be trusted), so the caller closes that one
// connection. That is the blast-radius rule the server tests assert.
//
// Allocation-bomb guard: the decoder never reserves payload space until the
// header has been validated against `max_payload`, mirroring the persist
// layer's parse_segment discipline — a 4 GiB length field in a torn frame
// costs a DataError, not an allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace wfbn::net {

inline constexpr std::uint32_t kFrameMagic = 0x464E4657;  // "WFNF" LE
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Default payload ceiling (per frame). Large enough for a multi-million-row
/// ingest batch; small enough that a corrupted length field cannot ask the
/// decoder to buffer the address space.
inline constexpr std::size_t kMaxPayloadBytes = 64u << 20;

enum class FrameKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// The on-wire header, written field-by-field (native byte order, no padding
/// on the wire — the struct is only the in-memory view).
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint8_t version = kProtocolVersion;
  std::uint8_t kind = 0;
  std::uint16_t reserved = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a over the payload bytes
};
inline constexpr std::size_t kFrameHeaderBytes = 20;

/// One fully decoded frame.
struct DecodedFrame {
  FrameKind kind = FrameKind::kRequest;
  std::vector<std::uint8_t> payload;
};

/// Appends a complete frame (header + payload) for `payload` to `out`.
void append_frame(std::vector<std::uint8_t>& out, FrameKind kind,
                  std::span<const std::uint8_t> payload);

/// Convenience: one frame as a fresh buffer.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameKind kind, std::span<const std::uint8_t> payload);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Consumes `size` bytes of stream input. Complete frames queue up for
  /// next(). Throws DataError on any protocol violation; after a throw the
  /// decoder is poisoned (every further feed rethrows) — the stream has no
  /// trustworthy resynchronization point, close the connection.
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(std::span<const std::uint8_t> bytes) {
    feed(bytes.data(), bytes.size());
  }

  /// Oldest complete frame, or nullopt when none is pending.
  [[nodiscard]] std::optional<DecodedFrame> next();

  /// Total complete frames decoded since construction.
  [[nodiscard]] std::uint64_t frames_decoded() const noexcept {
    return frames_decoded_;
  }
  /// Bytes currently buffered toward an incomplete frame.
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  /// Validates the buffered header; throws DataError on violation.
  [[nodiscard]] FrameHeader parse_header() const;

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;   ///< partial header or partial payload
  std::vector<DecodedFrame> ready_;    ///< FIFO of complete frames
  std::size_t ready_head_ = 0;
  std::uint64_t frames_decoded_ = 0;
  bool have_header_ = false;
  FrameHeader header_;
  bool poisoned_ = false;
};

}  // namespace wfbn::net
