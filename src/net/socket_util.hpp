// Small POSIX socket helpers shared by ServeServer and ServeClient.
//
// Everything here is loopback/LAN plumbing: create-bind-listen, nonblocking
// toggles, timestamps for the admission token buckets, and the one error
// type socket failures surface as. Protocol-level failures (bad frames,
// malformed payloads) are DataError from the frame/wire layers; NetError
// means the *transport* failed — connect refused, peer reset, injected
// socket fault.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace wfbn::net {

/// Transport-level failure (connect/read/write/accept). Distinct from
/// DataError so callers can tell "the bytes were wrong" from "the socket
/// died".
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Monotonic nanoseconds for token buckets and latency measurement.
[[nodiscard]] std::uint64_t monotonic_now_ns() noexcept;

/// RAII file descriptor: closes on destruction, move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Creates a nonblocking TCP listener bound to `address:port` (port 0 =
/// ephemeral). Returns the fd and writes the actually-bound port back.
/// Throws NetError on any failure.
[[nodiscard]] UniqueFd listen_tcp(const std::string& address,
                                  std::uint16_t& port, int backlog = 128);

/// Blocking TCP connect to `address:port` with a receive/connect timeout
/// applied via SO_RCVTIMEO. Throws NetError on failure.
[[nodiscard]] UniqueFd connect_tcp(const std::string& address,
                                   std::uint16_t port, int timeout_ms);

/// errno as a readable suffix for NetError messages.
[[nodiscard]] std::string errno_string();

}  // namespace wfbn::net
