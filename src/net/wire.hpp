// Typed request/response payloads for the serving protocol.
//
// This is the layer above frame.hpp: a frame's payload bytes are one Request
// (client → server) or one Response (server → client). The layout is
// fixed-field native-endian, written with bio::put_pod and read back through
// bio::BufferReader, so a truncated or malformed payload surfaces as a typed
// DataError at the exact field that fell off the end — never as garbage in a
// ServeQuery.
//
// Request payload:
//   u64 request_id | u8 opcode | u8 width | u16 reserved | body
// Response payload:
//   u64 request_id | u8 opcode | u8 status | u16 retry_after_ms | body
//
// Bodies per opcode are tabulated in docs/NETWORKING.md. The width byte
// selects which engine (narrow 64-bit keys vs wide two-word keys) answers;
// query bodies are width-independent — variables are indices, not keys — so
// the same encoder serves both widths.
//
// Decoding is defensive in the same way parse_segment is: every count field
// is validated against the bytes actually present *before* any reserve, so a
// hostile "4 billion variables" request costs a DataError, not memory.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "serve/serve_engine.hpp"

namespace wfbn::net {

enum class Opcode : std::uint8_t {
  kMarginal = 1,     ///< P(V)
  kConditional = 2,  ///< P(V | evidence)
  kPairMi = 3,       ///< I(X_i; X_j)
  kIngest = 4,       ///< publish a batch as the next snapshot version
  kVersion = 5,      ///< admin: served + durable version numbers
  kStats = 6,        ///< admin: cache + admission counters
  kFlush = 7,        ///< admin: make the served version durable
  kLearn = 8,        ///< admin: learn a structure from the current snapshot
};

[[nodiscard]] const char* opcode_name(Opcode op) noexcept;
[[nodiscard]] bool opcode_valid(std::uint8_t raw) noexcept;

enum class KeyWidth : std::uint8_t {
  kNarrow = 0,  ///< 64-bit keys (Key)
  kWide = 1,    ///< two-word keys (WideKey)
};

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,       ///< the engine threw (e.g. zero-support evidence)
  kOverloaded = 2,  ///< admission control rejected; see retry_after_ms
  kBadRequest = 3,  ///< the request decoded but failed validation
};

[[nodiscard]] const char* status_name(Status status) noexcept;

/// Admission classes. Every opcode maps to exactly one class; the admission
/// layer queues and rate-limits per class so ingest pressure degrades ingest,
/// not interactive-query tail latency.
enum class RequestClass : std::uint8_t {
  kInteractive = 0,  ///< marginal / conditional / pair-MI
  kIngest = 1,       ///< ingest-batch
  kAdmin = 2,        ///< version / stats / flush / learn
};
inline constexpr std::size_t kRequestClassCount = 3;

[[nodiscard]] RequestClass class_of(Opcode op) noexcept;
[[nodiscard]] const char* class_name(RequestClass cls) noexcept;

/// One decoded request. Query fields are populated for the three query
/// opcodes, ingest fields for kIngest; admin opcodes carry no body.
struct Request {
  std::uint64_t id = 0;
  Opcode opcode = Opcode::kVersion;
  KeyWidth width = KeyWidth::kNarrow;

  serve::ServeQuery query;  ///< kMarginal / kConditional / kPairMi

  std::uint64_t ingest_samples = 0;                 ///< kIngest
  std::vector<std::uint32_t> ingest_cardinalities;  ///< kIngest
  std::vector<State> ingest_cells;                  ///< kIngest, row-major

  /// kLearn: the structure-learning job parameters. The cancel pointer is
  /// process-local and never crosses the wire (it decodes as null); the
  /// server installs its own token for jobs it may need to abandon.
  serve::LearnRequest learn;

  [[nodiscard]] RequestClass request_class() const noexcept {
    return class_of(opcode);
  }
  /// Materializes the ingest payload as a Dataset (validating ctor).
  [[nodiscard]] Dataset ingest_dataset() const;
};

/// One response. Which fields are meaningful depends on (opcode, status);
/// encode/decode round-trip exactly the meaningful set.
struct Response {
  std::uint64_t id = 0;
  Opcode opcode = Opcode::kVersion;
  Status status = Status::kOk;
  std::uint16_t retry_after_ms = 0;  ///< kOverloaded only
  std::string error;                 ///< kError / kBadRequest

  // Query results (kMarginal/kConditional/kPairMi, kOk).
  std::uint64_t version = 0;
  bool cache_hit = false;
  std::vector<double> values;

  // Ingest result (kIngest, kOk).
  std::uint64_t published_version = 0;
  std::uint64_t batch_rows = 0;

  // Admin results (kOk).
  std::uint64_t served_version = 0;    ///< kVersion / kFlush
  std::uint64_t durable_version = 0;   ///< kVersion / kFlush
  std::uint64_t cache_hits = 0;        ///< kStats
  std::uint64_t cache_misses = 0;      ///< kStats
  std::uint64_t admitted = 0;          ///< kStats
  std::uint64_t rejected = 0;          ///< kStats
  bool flushed = false;                ///< kFlush

  // Learn result (kLearn, kOk): the CPDAG stamped with the snapshot version
  // it was learned from (reusing `version` above). Skeleton pairs are
  // (min, max); directed pairs are (from, to) of the oriented DAG.
  std::uint64_t learn_nodes = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> learn_skeleton;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> learn_edges;
  std::uint64_t learn_ci_tests = 0;
  double learn_seconds = 0.0;
};

/// Serializes a request payload (frame it with FrameKind::kRequest).
[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& request);

/// Parses a request payload. Throws DataError on any malformation:
/// unknown opcode/width, truncated body, count fields that exceed the bytes
/// present, states above 255, trailing bytes.
[[nodiscard]] Request decode_request(std::span<const std::uint8_t> payload);

/// Serializes a response payload (frame it with FrameKind::kResponse).
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const Response& response);

/// Parses a response payload. Throws DataError on malformation.
[[nodiscard]] Response decode_response(std::span<const std::uint8_t> payload);

}  // namespace wfbn::net
