#include "net/frame.hpp"

#include <string>

#include "data/binary_io.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace wfbn::net {

void append_frame(std::vector<std::uint8_t>& out, FrameKind kind,
                  std::span<const std::uint8_t> payload) {
  WFBN_EXPECT(payload.size() <= 0xFFFFFFFFu, "frame payload exceeds u32");
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  bio::put_pod(out, kFrameMagic);
  bio::put_pod(out, kProtocolVersion);
  bio::put_pod(out, static_cast<std::uint8_t>(kind));
  bio::put_pod(out, std::uint16_t{0});
  bio::put_pod(out, static_cast<std::uint32_t>(payload.size()));
  bio::put_pod(out, fnv1a_bytes(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_frame(FrameKind kind,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  append_frame(out, kind, payload);
  return out;
}

FrameHeader FrameDecoder::parse_header() const {
  bio::BufferReader reader(buffer_.data(), kFrameHeaderBytes, "frame header");
  FrameHeader h;
  h.magic = reader.get<std::uint32_t>();
  h.version = reader.get<std::uint8_t>();
  h.kind = reader.get<std::uint8_t>();
  h.reserved = reader.get<std::uint16_t>();
  h.payload_len = reader.get<std::uint32_t>();
  h.checksum = reader.get<std::uint64_t>();
  if (h.magic != kFrameMagic) {
    throw DataError("frame: bad magic (stream desynchronized or not wfbn)");
  }
  if (h.version != kProtocolVersion) {
    throw DataError("frame: unsupported protocol version " +
                    std::to_string(int{h.version}));
  }
  if (h.kind != static_cast<std::uint8_t>(FrameKind::kRequest) &&
      h.kind != static_cast<std::uint8_t>(FrameKind::kResponse)) {
    throw DataError("frame: unknown frame kind " + std::to_string(int{h.kind}));
  }
  if (h.payload_len > max_payload_) {
    // The allocation-bomb guard: reject from the 20 header bytes alone,
    // before any payload-sized buffer exists.
    throw DataError("frame: payload length " + std::to_string(h.payload_len) +
                    " exceeds limit " + std::to_string(max_payload_));
  }
  return h;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned_) {
    throw DataError("frame: decoder poisoned by an earlier protocol error");
  }
  std::size_t offset = 0;
  try {
    while (offset < size) {
      if (!have_header_) {
        const std::size_t want = kFrameHeaderBytes - buffer_.size();
        const std::size_t take = std::min(want, size - offset);
        buffer_.insert(buffer_.end(), data + offset, data + offset + take);
        offset += take;
        if (buffer_.size() < kFrameHeaderBytes) return;
        header_ = parse_header();
        have_header_ = true;
        buffer_.clear();
        buffer_.reserve(header_.payload_len);  // validated <= max_payload_
      }
      const std::size_t want = header_.payload_len - buffer_.size();
      const std::size_t take = std::min(want, size - offset);
      buffer_.insert(buffer_.end(), data + offset, data + offset + take);
      offset += take;
      if (buffer_.size() < header_.payload_len) return;

      const std::uint64_t computed =
          fnv1a_bytes(buffer_.data(), buffer_.size());
      bool mismatch = computed != header_.checksum;
      if (fault::enabled() &&
          fault::should_fail(fault::Point::kNetFrameChecksum)) {
        mismatch = true;  // degradation flavor: the comparison "fails"
      }
      if (mismatch) {
        throw DataError("frame: payload checksum mismatch");
      }
      DecodedFrame frame;
      frame.kind = static_cast<FrameKind>(header_.kind);
      frame.payload = std::move(buffer_);
      ready_.push_back(std::move(frame));
      ++frames_decoded_;
      buffer_ = {};
      have_header_ = false;
    }
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

std::optional<DecodedFrame> FrameDecoder::next() {
  if (ready_head_ >= ready_.size()) return std::nullopt;
  DecodedFrame frame = std::move(ready_[ready_head_]);
  ++ready_head_;
  if (ready_head_ == ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
  }
  return frame;
}

}  // namespace wfbn::net
