#include "net/wire.hpp"

#include <cstring>

#include "data/binary_io.hpp"
#include "util/error.hpp"

namespace wfbn::net {

namespace {

/// Guards a count field against the bytes actually left in the payload:
/// a well-formed sender always has `count * elem_size` bytes following, so
/// anything larger is malformed — reject before reserving.
void expect_fits(std::uint64_t count, std::size_t elem_size,
                 const bio::BufferReader& reader, const char* what) {
  if (elem_size != 0 && count > reader.remaining() / elem_size) {
    throw DataError(std::string("wire: ") + what +
                    " count exceeds payload bytes");
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  WFBN_EXPECT(s.size() <= 0xFFFFFFFFu, "wire string exceeds u32");
  bio::put_pod(out, static_cast<std::uint32_t>(s.size()));
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(s.data());
  out.insert(out.end(), bytes, bytes + s.size());
}

std::string get_string(bio::BufferReader& reader) {
  const auto len = reader.get<std::uint32_t>();
  expect_fits(len, 1, reader, "string");
  const std::uint8_t* bytes = reader.get_span(len);
  return {reinterpret_cast<const char*>(bytes), len};
}

void put_variables(std::vector<std::uint8_t>& out,
                   const std::vector<std::size_t>& variables) {
  WFBN_EXPECT(variables.size() <= 0xFFFFFFFFu, "wire variable list");
  bio::put_pod(out, static_cast<std::uint32_t>(variables.size()));
  for (const std::size_t v : variables) {
    WFBN_EXPECT(v <= 0xFFFFFFFFu, "wire variable index exceeds u32");
    bio::put_pod(out, static_cast<std::uint32_t>(v));
  }
}

std::vector<std::size_t> get_variables(bio::BufferReader& reader) {
  const auto count = reader.get<std::uint32_t>();
  expect_fits(count, sizeof(std::uint32_t), reader, "variable");
  std::vector<std::size_t> variables;
  variables.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    variables.push_back(reader.get<std::uint32_t>());
  }
  return variables;
}

void expect_drained(const bio::BufferReader& reader, const char* what) {
  if (reader.remaining() != 0) {
    throw DataError(std::string("wire: trailing bytes after ") + what);
  }
}

void put_edge_list(
    std::vector<std::uint8_t>& out,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  WFBN_EXPECT(edges.size() <= 0xFFFFFFFFu, "wire edge list");
  bio::put_pod(out, static_cast<std::uint32_t>(edges.size()));
  for (const auto& [a, b] : edges) {
    bio::put_pod(out, a);
    bio::put_pod(out, b);
  }
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> get_edge_list(
    bio::BufferReader& reader, const char* what) {
  const auto count = reader.get<std::uint32_t>();
  expect_fits(count, 2 * sizeof(std::uint32_t), reader, what);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto a = reader.get<std::uint32_t>();
    const auto b = reader.get<std::uint32_t>();
    edges.emplace_back(a, b);
  }
  return edges;
}

/// The learn body caps a job's pool width: a wire request must not be able
/// to spawn an unbounded number of server threads.
constexpr std::uint32_t kMaxLearnThreads = 64;

}  // namespace

const char* opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::kMarginal: return "marginal";
    case Opcode::kConditional: return "conditional";
    case Opcode::kPairMi: return "pair_mi";
    case Opcode::kIngest: return "ingest";
    case Opcode::kVersion: return "version";
    case Opcode::kStats: return "stats";
    case Opcode::kFlush: return "flush";
    case Opcode::kLearn: return "learn";
  }
  return "unknown";
}

bool opcode_valid(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(Opcode::kMarginal) &&
         raw <= static_cast<std::uint8_t>(Opcode::kLearn);
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kError: return "ERROR";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kBadRequest: return "BAD_REQUEST";
  }
  return "unknown";
}

RequestClass class_of(Opcode op) noexcept {
  switch (op) {
    case Opcode::kMarginal:
    case Opcode::kConditional:
    case Opcode::kPairMi:
      return RequestClass::kInteractive;
    case Opcode::kIngest:
      return RequestClass::kIngest;
    case Opcode::kVersion:
    case Opcode::kStats:
    case Opcode::kFlush:
    case Opcode::kLearn:
      return RequestClass::kAdmin;
  }
  return RequestClass::kAdmin;
}

const char* class_name(RequestClass cls) noexcept {
  switch (cls) {
    case RequestClass::kInteractive: return "interactive";
    case RequestClass::kIngest: return "ingest";
    case RequestClass::kAdmin: return "admin";
  }
  return "unknown";
}

Dataset Request::ingest_dataset() const {
  return Dataset(static_cast<std::size_t>(ingest_samples),
                 ingest_cardinalities, ingest_cells);
}

std::vector<std::uint8_t> encode_request(const Request& request) {
  std::vector<std::uint8_t> out;
  bio::put_pod(out, request.id);
  bio::put_pod(out, static_cast<std::uint8_t>(request.opcode));
  bio::put_pod(out, static_cast<std::uint8_t>(request.width));
  bio::put_pod(out, std::uint16_t{0});
  switch (request.opcode) {
    case Opcode::kMarginal:
      put_variables(out, request.query.variables);
      break;
    case Opcode::kConditional: {
      put_variables(out, request.query.variables);
      WFBN_EXPECT(request.query.evidence.size() <= 0xFFFFFFFFu,
                  "wire evidence list");
      bio::put_pod(out,
                   static_cast<std::uint32_t>(request.query.evidence.size()));
      for (const Evidence& e : request.query.evidence) {
        WFBN_EXPECT(e.variable <= 0xFFFFFFFFu, "wire evidence variable");
        bio::put_pod(out, static_cast<std::uint32_t>(e.variable));
        bio::put_pod(out, e.state);
      }
      break;
    }
    case Opcode::kPairMi:
      WFBN_EXPECT(request.query.variables.size() == 2,
                  "pair-MI request needs exactly 2 variables");
      put_variables(out, request.query.variables);
      break;
    case Opcode::kIngest: {
      const std::uint64_t n = request.ingest_cardinalities.size();
      WFBN_EXPECT(request.ingest_cells.size() == request.ingest_samples * n,
                  "ingest cells must be samples * variables");
      bio::put_pod(out, request.ingest_samples);
      WFBN_EXPECT(n <= 0xFFFFFFFFu, "wire cardinality list");
      bio::put_pod(out, static_cast<std::uint32_t>(n));
      for (const std::uint32_t c : request.ingest_cardinalities) {
        bio::put_pod(out, c);
      }
      static_assert(sizeof(State) == 1);
      out.insert(out.end(), request.ingest_cells.begin(),
                 request.ingest_cells.end());
      break;
    }
    case Opcode::kLearn: {
      bio::put_pod(out, static_cast<std::uint8_t>(request.learn.algorithm));
      bio::put_pod(out, static_cast<std::uint8_t>(request.learn.method));
      bio::put_pod(out, std::uint16_t{0});
      bio::put_pod(out, request.learn.mi_threshold);
      bio::put_pod(out, request.learn.alpha);
      WFBN_EXPECT(request.learn.max_cutset_size <= 0xFFFFFFFFu,
                  "wire learn cut-set cap");
      bio::put_pod(out,
                   static_cast<std::uint32_t>(request.learn.max_cutset_size));
      WFBN_EXPECT(request.learn.max_level <= 0xFFFFFFFFu, "wire learn level");
      bio::put_pod(out, static_cast<std::uint32_t>(request.learn.max_level));
      WFBN_EXPECT(request.learn.threads >= 1 &&
                      request.learn.threads <= kMaxLearnThreads,
                  "learn threads must be in [1, 64]");
      bio::put_pod(out, static_cast<std::uint32_t>(request.learn.threads));
      break;
    }
    case Opcode::kVersion:
    case Opcode::kStats:
    case Opcode::kFlush:
      break;  // no body
  }
  return out;
}

Request decode_request(std::span<const std::uint8_t> payload) {
  bio::BufferReader reader(payload.data(), payload.size(), "request payload");
  Request request;
  request.id = reader.get<std::uint64_t>();
  const auto raw_opcode = reader.get<std::uint8_t>();
  if (!opcode_valid(raw_opcode)) {
    throw DataError("wire: unknown opcode " + std::to_string(int{raw_opcode}));
  }
  request.opcode = static_cast<Opcode>(raw_opcode);
  const auto raw_width = reader.get<std::uint8_t>();
  if (raw_width > static_cast<std::uint8_t>(KeyWidth::kWide)) {
    throw DataError("wire: unknown key width " +
                    std::to_string(int{raw_width}));
  }
  request.width = static_cast<KeyWidth>(raw_width);
  (void)reader.get<std::uint16_t>();  // reserved
  switch (request.opcode) {
    case Opcode::kMarginal:
      request.query.kind = serve::QueryKind::kMarginal;
      request.query.variables = get_variables(reader);
      break;
    case Opcode::kConditional: {
      request.query.kind = serve::QueryKind::kConditional;
      request.query.variables = get_variables(reader);
      const auto ev_count = reader.get<std::uint32_t>();
      expect_fits(ev_count, sizeof(std::uint32_t) + sizeof(State), reader,
                  "evidence");
      request.query.evidence.reserve(ev_count);
      for (std::uint32_t i = 0; i < ev_count; ++i) {
        Evidence e;
        e.variable = reader.get<std::uint32_t>();
        e.state = reader.get<State>();
        request.query.evidence.push_back(e);
      }
      break;
    }
    case Opcode::kPairMi:
      request.query.kind = serve::QueryKind::kPairMi;
      request.query.variables = get_variables(reader);
      if (request.query.variables.size() != 2) {
        throw DataError("wire: pair-MI request needs exactly 2 variables");
      }
      break;
    case Opcode::kIngest: {
      request.ingest_samples = reader.get<std::uint64_t>();
      const auto n = reader.get<std::uint32_t>();
      expect_fits(n, sizeof(std::uint32_t), reader, "cardinality");
      request.ingest_cardinalities.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        request.ingest_cardinalities.push_back(reader.get<std::uint32_t>());
      }
      const std::uint64_t cells = request.ingest_samples * n;
      if (n != 0 && request.ingest_samples > reader.remaining() / n) {
        throw DataError("wire: ingest cell count exceeds payload bytes");
      }
      static_assert(sizeof(State) == 1);
      const std::uint8_t* raw =
          reader.get_span(static_cast<std::size_t>(cells));
      request.ingest_cells.assign(raw, raw + cells);
      break;
    }
    case Opcode::kLearn: {
      const auto raw_algorithm = reader.get<std::uint8_t>();
      if (raw_algorithm >
          static_cast<std::uint8_t>(serve::LearnAlgorithm::kChowLiu)) {
        throw DataError("wire: unknown learn algorithm " +
                        std::to_string(int{raw_algorithm}));
      }
      request.learn.algorithm = static_cast<serve::LearnAlgorithm>(raw_algorithm);
      const auto raw_method = reader.get<std::uint8_t>();
      if (raw_method > static_cast<std::uint8_t>(CiMethod::kGTest)) {
        throw DataError("wire: unknown CI method " +
                        std::to_string(int{raw_method}));
      }
      request.learn.method = static_cast<CiMethod>(raw_method);
      (void)reader.get<std::uint16_t>();  // reserved
      request.learn.mi_threshold = reader.get<double>();
      request.learn.alpha = reader.get<double>();
      // Negated comparisons so NaN thresholds fail validation too.
      if (!(request.learn.mi_threshold >= 0.0)) {
        throw DataError("wire: learn MI threshold must be >= 0");
      }
      if (!(request.learn.alpha > 0.0 && request.learn.alpha < 1.0)) {
        throw DataError("wire: learn alpha must be in (0, 1)");
      }
      request.learn.max_cutset_size = reader.get<std::uint32_t>();
      if (request.learn.max_cutset_size == 0) {
        throw DataError("wire: learn cut-set cap must be >= 1");
      }
      request.learn.max_level = reader.get<std::uint32_t>();
      const auto threads = reader.get<std::uint32_t>();
      if (threads == 0 || threads > kMaxLearnThreads) {
        throw DataError("wire: learn threads must be in [1, 64]");
      }
      request.learn.threads = threads;
      request.learn.cancel = nullptr;  // never crosses the wire
      break;
    }
    case Opcode::kVersion:
    case Opcode::kStats:
    case Opcode::kFlush:
      break;
  }
  expect_drained(reader, opcode_name(request.opcode));
  return request;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  std::vector<std::uint8_t> out;
  bio::put_pod(out, response.id);
  bio::put_pod(out, static_cast<std::uint8_t>(response.opcode));
  bio::put_pod(out, static_cast<std::uint8_t>(response.status));
  bio::put_pod(out, response.retry_after_ms);
  if (response.status != Status::kOk) {
    put_string(out, response.error);
    return out;
  }
  switch (response.opcode) {
    case Opcode::kMarginal:
    case Opcode::kConditional:
    case Opcode::kPairMi: {
      bio::put_pod(out, response.version);
      bio::put_pod(out, static_cast<std::uint8_t>(response.cache_hit ? 1 : 0));
      WFBN_EXPECT(response.values.size() <= 0xFFFFFFFFu, "wire value list");
      bio::put_pod(out, static_cast<std::uint32_t>(response.values.size()));
      for (const double v : response.values) bio::put_pod(out, v);
      break;
    }
    case Opcode::kIngest:
      bio::put_pod(out, response.published_version);
      bio::put_pod(out, response.batch_rows);
      break;
    case Opcode::kVersion:
      bio::put_pod(out, response.served_version);
      bio::put_pod(out, response.durable_version);
      break;
    case Opcode::kStats:
      bio::put_pod(out, response.served_version);
      bio::put_pod(out, response.cache_hits);
      bio::put_pod(out, response.cache_misses);
      bio::put_pod(out, response.admitted);
      bio::put_pod(out, response.rejected);
      break;
    case Opcode::kFlush:
      bio::put_pod(out, static_cast<std::uint8_t>(response.flushed ? 1 : 0));
      bio::put_pod(out, response.served_version);
      bio::put_pod(out, response.durable_version);
      break;
    case Opcode::kLearn:
      bio::put_pod(out, response.version);
      bio::put_pod(out, static_cast<std::uint32_t>(response.learn_nodes));
      bio::put_pod(out, response.learn_ci_tests);
      bio::put_pod(out, response.learn_seconds);
      put_edge_list(out, response.learn_skeleton);
      put_edge_list(out, response.learn_edges);
      break;
  }
  return out;
}

Response decode_response(std::span<const std::uint8_t> payload) {
  bio::BufferReader reader(payload.data(), payload.size(), "response payload");
  Response response;
  response.id = reader.get<std::uint64_t>();
  const auto raw_opcode = reader.get<std::uint8_t>();
  if (!opcode_valid(raw_opcode)) {
    throw DataError("wire: unknown opcode " + std::to_string(int{raw_opcode}));
  }
  response.opcode = static_cast<Opcode>(raw_opcode);
  const auto raw_status = reader.get<std::uint8_t>();
  if (raw_status > static_cast<std::uint8_t>(Status::kBadRequest)) {
    throw DataError("wire: unknown status " + std::to_string(int{raw_status}));
  }
  response.status = static_cast<Status>(raw_status);
  response.retry_after_ms = reader.get<std::uint16_t>();
  if (response.status != Status::kOk) {
    response.error = get_string(reader);
    expect_drained(reader, "error response");
    return response;
  }
  switch (response.opcode) {
    case Opcode::kMarginal:
    case Opcode::kConditional:
    case Opcode::kPairMi: {
      response.version = reader.get<std::uint64_t>();
      response.cache_hit = reader.get<std::uint8_t>() != 0;
      const auto count = reader.get<std::uint32_t>();
      expect_fits(count, sizeof(double), reader, "value");
      response.values.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        response.values.push_back(reader.get<double>());
      }
      break;
    }
    case Opcode::kIngest:
      response.published_version = reader.get<std::uint64_t>();
      response.batch_rows = reader.get<std::uint64_t>();
      break;
    case Opcode::kVersion:
      response.served_version = reader.get<std::uint64_t>();
      response.durable_version = reader.get<std::uint64_t>();
      break;
    case Opcode::kStats:
      response.served_version = reader.get<std::uint64_t>();
      response.cache_hits = reader.get<std::uint64_t>();
      response.cache_misses = reader.get<std::uint64_t>();
      response.admitted = reader.get<std::uint64_t>();
      response.rejected = reader.get<std::uint64_t>();
      break;
    case Opcode::kFlush:
      response.flushed = reader.get<std::uint8_t>() != 0;
      response.served_version = reader.get<std::uint64_t>();
      response.durable_version = reader.get<std::uint64_t>();
      break;
    case Opcode::kLearn:
      response.version = reader.get<std::uint64_t>();
      response.learn_nodes = reader.get<std::uint32_t>();
      response.learn_ci_tests = reader.get<std::uint64_t>();
      response.learn_seconds = reader.get<double>();
      response.learn_skeleton = get_edge_list(reader, "skeleton edge");
      response.learn_edges = get_edge_list(reader, "directed edge");
      break;
  }
  expect_drained(reader, opcode_name(response.opcode));
  return response;
}

}  // namespace wfbn::net
