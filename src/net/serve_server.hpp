// ServeServer: the multi-client network front end over ServeEngine.
//
// One poll()-driven event-loop thread owns every socket: it accepts
// connections, feeds received bytes through per-connection FrameDecoders,
// decodes requests, runs them through the admission layer, and writes
// queued response frames back out — all nonblocking, so one slow client
// never stalls another. Engine work never happens on the event loop;
// admitted requests cross into dispatcher threads through the per-class
// bounded queues:
//
//   interactive — pops one query, drains up to batch_max-1 more without
//       blocking, and answers the whole batch with one
//       ServeEngine::serve_batch over the shared ThreadPool. Concurrent
//       arrivals coalesce into parallel sweeps exactly like the in-process
//       serving path.
//   ingest      — one batch at a time through the DurableTableStore when the
//       server has one (publish + async persistence), else directly through
//       ServeEngine::ingest. Either way the wait-free publish path is
//       untouched; after a durable-store publish the engine's cache is
//       invalidated via note_published().
//   admin       — version / stats / flush.
//
// With admission disabled (options.admission.enabled = false) the server
// degrades to the naive design: one shared FIFO and one dispatcher serving
// every class in arrival order. That baseline exists to be measured — the
// overload sweep in bench/serve_latency.cpp shows its interactive p99
// collapsing under ingest flood while the admission-controlled layout holds.
//
// Failure isolation (the blast-radius rule, tested per fault point): a torn
// or corrupt frame, a checksum mismatch, a failed read/write, or an injected
// net.* fault terminates exactly the affected connection. The listener, the
// dispatchers, and every other connection keep serving; responses for a dead
// connection are dropped on the floor.
#pragma once

#include <cstdint>
#include <memory>

#include "concurrent/thread_pool.hpp"
#include "net/admission.hpp"
#include "net/frame.hpp"
#include "net/wire.hpp"
#include "serve/persist/durable_store.hpp"
#include "serve/serve_engine.hpp"

namespace wfbn::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; port() reports the real one
  std::size_t max_connections = 256;
  std::size_t max_frame_payload = kMaxPayloadBytes;
  std::size_t batch_max = 64;  ///< queries coalesced per serve_batch call
  /// Cap on the pool width of one LEARN job. A wire request asks for
  /// learn.threads workers; the server clamps to this so an admin client can
  /// never crowd out the interactive dispatcher's pool — learn jobs run on
  /// their own bounded pool inside the admin dispatcher thread.
  std::size_t learn_max_threads = 4;
  AdmissionOptions admission;
};

/// Event-loop + dispatcher counters. Relaxed snapshots; each field is
/// independently monotonic.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;   ///< includes failed ones
  std::uint64_t connections_failed = 0;   ///< protocol/socket/injected faults
  std::uint64_t requests_decoded = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t bad_requests = 0;         ///< per-request BAD_REQUEST answers
  std::uint64_t batches_served = 0;       ///< serve_batch calls
  std::uint64_t batched_queries = 0;      ///< queries across those calls
};

template <typename K>
class BasicServeServer {
 public:
  using Engine = serve::BasicServeEngine<K>;
  using Durable = serve::persist::BasicDurableTableStore<K>;

  /// Borrows `engine` and `pool` (and `durable` when given); all must
  /// outlive the server. `pool` is used exclusively by the interactive
  /// dispatcher — do not run() it concurrently elsewhere while the server
  /// is started.
  BasicServeServer(Engine& engine, ThreadPool& pool,
                   ServerOptions options = {}, Durable* durable = nullptr);
  ~BasicServeServer();

  BasicServeServer(const BasicServeServer&) = delete;
  BasicServeServer& operator=(const BasicServeServer&) = delete;

  /// Binds, listens, and spawns the event loop + dispatchers. Throws
  /// NetError if the address cannot be bound.
  void start();

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; also called by the destructor.
  void stop();

  /// The bound port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept;

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] AdmissionStats admission_stats() const;
  [[nodiscard]] const ServerOptions& options() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

extern template class BasicServeServer<Key>;
extern template class BasicServeServer<WideKey>;

using ServeServer = BasicServeServer<Key>;
using WideServeServer = BasicServeServer<WideKey>;

}  // namespace wfbn::net
