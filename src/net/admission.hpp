// Per-class admission control for the serving front end.
//
// The server classifies every decoded request (wire.hpp: interactive-query
// vs ingest vs admin) and pushes it through this layer before any engine
// work happens. Three mechanisms compose:
//
//   1. BoundedQueue<T> — one per class. try_push fails immediately when the
//      class is at capacity; the server turns that into an explicit
//      OVERLOADED response with a retry-after hint instead of buffering
//      unboundedly or blocking the event loop. Bounded queues are what make
//      the interactive-latency guarantee structural: an interactive request
//      waits behind at most `queue_capacity` requests *of its own class*,
//      however hard ingest is flooding.
//
//   2. TokenBucket — deterministic rate limiting driven by an explicit
//      `now_ns` the caller supplies. No hidden clock: tests refill with a
//      fake clock and the bench with the real one, through the same code.
//
//   3. Injected rejection — the admission.reject fault point forces the
//      OVERLOADED path deterministically, so clients' retry handling is
//      testable without actually saturating a queue.
//
// When admission is disabled (AdmissionOptions::enabled = false) the
// controller admits everything; the server then degrades to one shared
// unbounded FIFO — the naive front end whose head-of-line blocking the
// overload sweep in bench/serve_latency.cpp measures against this layer.
#pragma once

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "net/wire.hpp"
#include "util/fault_injection.hpp"

namespace wfbn::net {

/// Deterministic token bucket. Capacity `burst`, refilled at `rate_per_sec`
/// from the timestamps the caller passes in; time never advances on its own.
/// rate_per_sec == 0 means unlimited (always admits).
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst, std::uint64_t now_ns = 0)
      : rate_(rate_per_sec),
        burst_(burst),
        tokens_(burst),
        last_refill_ns_(now_ns) {}

  /// Takes one token if available at `now_ns`. `now_ns` must be monotone
  /// non-decreasing across calls (a regressing clock is clamped).
  [[nodiscard]] bool try_acquire(std::uint64_t now_ns) noexcept {
    if (rate_ <= 0.0) return true;
    refill(now_ns);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Nanoseconds until one token will be available at the current fill level
  /// (0 when one is available now). The OVERLOADED retry-after hint.
  [[nodiscard]] std::uint64_t next_token_delay_ns() const noexcept {
    if (rate_ <= 0.0 || tokens_ >= 1.0) return 0;
    return static_cast<std::uint64_t>((1.0 - tokens_) / rate_ * 1e9);
  }

  [[nodiscard]] double tokens() const noexcept { return tokens_; }

 private:
  void refill(std::uint64_t now_ns) noexcept {
    if (now_ns <= last_refill_ns_) return;
    const double elapsed =
        static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_refill_ns_ = now_ns;
  }

  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_refill_ns_;
};

/// Mutex-based bounded MPMC queue for the admission control plane. This is
/// deliberately *not* the wait-free SPSC fabric: admission queues are the
/// slow path by design (they exist to say "no"), they need multi-producer
/// push from the event loop plus blocking multi-consumer pop for dispatcher
/// threads, and their capacity check must be exact, not advisory.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is full (the OVERLOADED path) or closed. Never
  /// blocks the caller.
  [[nodiscard]] bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed; nullopt only after
  /// close() with the queue drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop for batch coalescing: the dispatcher blocks on pop()
  /// for the first item, then drains up to batch_max-1 more via try_pop.
  [[nodiscard]] std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wakes every blocked pop(); queued items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

struct ClassPolicy {
  std::size_t queue_capacity = 256;
  double rate_per_sec = 0;  ///< 0 = no rate limit
  double burst = 0;         ///< bucket size; 0 = rate_per_sec (min 1)
};

struct AdmissionOptions {
  bool enabled = true;
  /// Indexed by RequestClass. Interactive gets a deep queue (latency bound
  /// comes from its own depth); ingest a shallow one (each item is heavy);
  /// admin a token trickle so stats polling cannot crowd out queries.
  std::array<ClassPolicy, kRequestClassCount> per_class = {{
      {.queue_capacity = 512, .rate_per_sec = 0, .burst = 0},   // interactive
      {.queue_capacity = 8, .rate_per_sec = 0, .burst = 0},     // ingest
      {.queue_capacity = 64, .rate_per_sec = 200, .burst = 32}, // admin
  }};
  /// Fallback retry-after for queue-full rejections (rate-limit rejections
  /// compute theirs from the bucket's refill arithmetic).
  std::uint16_t queue_full_retry_after_ms = 20;
};

enum class RejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull,
  kRateLimited,
  kInjected,  ///< admission.reject fault point fired
};

struct AdmissionDecision {
  bool admitted = true;
  RejectReason reason = RejectReason::kNone;
  std::uint16_t retry_after_ms = 0;
};

/// Per-class counters. Reads are relaxed snapshots — each field is
/// independently monotonic, which is all the stats opcode needs.
struct AdmissionStats {
  std::uint64_t admitted[kRequestClassCount] = {};
  std::uint64_t rejected_queue_full[kRequestClassCount] = {};
  std::uint64_t rejected_rate[kRequestClassCount] = {};
  std::uint64_t rejected_injected[kRequestClassCount] = {};

  [[nodiscard]] std::uint64_t total_admitted() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : admitted) sum += v;
    return sum;
  }
  [[nodiscard]] std::uint64_t total_rejected() const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
      sum += rejected_queue_full[c] + rejected_rate[c] + rejected_injected[c];
    }
    return sum;
  }
};

/// The rate-limiting half of admission: decides admit/reject per class from
/// the token buckets and the fault point. Queue-capacity rejection is
/// discovered at BoundedQueue::try_push; the server reports it back through
/// note_queue_full() so both rejection flavors land in one stats block.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// Rate-limit decision for one request at `now_ns`. Thread-safe.
  [[nodiscard]] AdmissionDecision admit(RequestClass cls,
                                        std::uint64_t now_ns);

  /// Records a queue-full rejection (decided by the caller's try_push) and
  /// returns the retry-after hint to send.
  std::uint16_t note_queue_full(RequestClass cls) noexcept;

  [[nodiscard]] AdmissionStats stats() const;
  [[nodiscard]] const AdmissionOptions& options() const noexcept {
    return options_;
  }

 private:
  AdmissionOptions options_;
  mutable std::mutex mutex_;  ///< guards buckets + counters
  std::array<TokenBucket, kRequestClassCount> buckets_;
  AdmissionStats stats_;
};

}  // namespace wfbn::net
