// ServeClient: the client half of the serving protocol.
//
// One client owns one TCP connection. Two usage styles:
//
//   call(request)        — send one request, block for its response. The
//                          simple RPC shape examples use.
//   send() / receive()   — pipelined: queue many requests onto the socket,
//                          then collect responses as they arrive. Responses
//                          come back in completion order, not send order —
//                          match them by Response::id. This is what the
//                          open-loop load generator uses to measure latency
//                          without one-request-at-a-time serialization.
//
// Failure model mirrors the server: a transport failure (including injected
// net.read/net.write faults) or a framing violation (bad magic, checksum
// mismatch) poisons the connection — the client throws (NetError for
// transport, DataError for protocol) and connected() goes false. Responses
// with Status != kOk are *not* exceptions: OVERLOADED and BAD_REQUEST are
// ordinary answers the caller inspects.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/frame.hpp"
#include "net/socket_util.hpp"
#include "net/wire.hpp"

namespace wfbn::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int timeout_ms = 5000;  ///< connect + default receive timeout
  std::size_t max_frame_payload = kMaxPayloadBytes;
};

class ServeClient {
 public:
  /// Connects immediately; throws NetError on failure.
  explicit ServeClient(ClientOptions options);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Writes one framed request to the socket (blocking). Throws NetError on
  /// transport failure; the connection is closed afterwards.
  void send(const Request& request);

  /// Next response frame. `timeout_ms` < 0 uses options.timeout_ms. Throws
  /// NetError on disconnect/timeout, DataError on a protocol violation.
  Response receive(int timeout_ms = -1);

  /// Polling receive: nullopt when no complete response arrives within
  /// `timeout_ms` (the connection stays usable — unlike receive(), a timeout
  /// is not an error). Transport/protocol failures still throw and close.
  /// This is what the open-loop load generator drains with between sends.
  std::optional<Response> try_receive(int timeout_ms = 0);

  /// send() + receive(): the synchronous RPC shape.
  Response call(const Request& request);

  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }
  void close() noexcept { fd_.reset(); }

  /// Requests already framed and sent minus responses received — the
  /// pipelining depth the load generator throttles on.
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }

 private:
  ClientOptions options_;
  UniqueFd fd_;
  FrameDecoder decoder_;
  std::size_t in_flight_ = 0;
};

}  // namespace wfbn::net
