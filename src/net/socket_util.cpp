#include "net/socket_util.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace wfbn::net {

std::uint64_t monotonic_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void UniqueFd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string errno_string() {
  return std::string(": ") + std::strerror(errno);
}

namespace {

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw NetError("invalid IPv4 address: " + address);
  }
  return addr;
}

}  // namespace

UniqueFd listen_tcp(const std::string& address, std::uint16_t& port,
                    int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw NetError("socket()" + errno_string());
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(address, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw NetError("bind(" + address + ":" + std::to_string(port) + ")" +
                   errno_string());
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw NetError("listen()" + errno_string());
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw NetError("getsockname()" + errno_string());
  }
  port = ntohs(bound.sin_port);
  return fd;
}

UniqueFd connect_tcp(const std::string& address, std::uint16_t port,
                     int timeout_ms) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw NetError("socket()" + errno_string());
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr = make_addr(address, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw NetError("connect(" + address + ":" + std::to_string(port) + ")" +
                   errno_string());
  }
  return fd;
}

}  // namespace wfbn::net
