#include "net/admission.hpp"

namespace wfbn::net {

namespace {

TokenBucket make_bucket(const ClassPolicy& policy) {
  const double burst =
      policy.burst > 0 ? policy.burst : std::max(policy.rate_per_sec, 1.0);
  return {policy.rate_per_sec, burst};
}

std::uint16_t clamp_retry_ms(std::uint64_t delay_ns) noexcept {
  const std::uint64_t ms = (delay_ns + 999'999) / 1'000'000;  // ceil
  return static_cast<std::uint16_t>(std::min<std::uint64_t>(ms, 0xFFFF));
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      buckets_{make_bucket(options.per_class[0]),
               make_bucket(options.per_class[1]),
               make_bucket(options.per_class[2])} {}

AdmissionDecision AdmissionController::admit(RequestClass cls,
                                             std::uint64_t now_ns) {
  const auto index = static_cast<std::size_t>(cls);
  std::lock_guard<std::mutex> lock(mutex_);
  if (fault::enabled() &&
      fault::should_fail(fault::Point::kAdmissionReject)) {
    ++stats_.rejected_injected[index];
    return {.admitted = false,
            .reason = RejectReason::kInjected,
            .retry_after_ms = options_.queue_full_retry_after_ms};
  }
  if (!options_.enabled) {
    ++stats_.admitted[index];
    return {};
  }
  TokenBucket& bucket = buckets_[index];
  if (!bucket.try_acquire(now_ns)) {
    ++stats_.rejected_rate[index];
    return {.admitted = false,
            .reason = RejectReason::kRateLimited,
            .retry_after_ms =
                std::max<std::uint16_t>(
                    1, clamp_retry_ms(bucket.next_token_delay_ns()))};
  }
  ++stats_.admitted[index];
  return {};
}

std::uint16_t AdmissionController::note_queue_full(RequestClass cls) noexcept {
  const auto index = static_cast<std::size_t>(cls);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.rejected_queue_full[index];
  // The admitted counter already counted this request when the rate check
  // passed; a queue-full discovery converts that admit into a rejection.
  if (stats_.admitted[index] > 0) --stats_.admitted[index];
  return options_.queue_full_retry_after_ms;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace wfbn::net
