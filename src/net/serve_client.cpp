#include "net/serve_client.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace wfbn::net {

ServeClient::ServeClient(ClientOptions options)
    : options_(std::move(options)),
      fd_(connect_tcp(options_.host, options_.port, options_.timeout_ms)),
      decoder_(options_.max_frame_payload) {}

ServeClient::~ServeClient() = default;

void ServeClient::send(const Request& request) {
  if (!fd_.valid()) throw NetError("send on a closed client");
  const std::vector<std::uint8_t> frame =
      encode_frame(FrameKind::kRequest, encode_request(request));
  std::size_t sent = 0;
  try {
    while (sent < frame.size()) {
      WFBN_FAULT_POINT(fault::Point::kNetWrite);
      const ssize_t n =
          ::write(fd_.get(), frame.data() + sent, frame.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      throw NetError("write()" + errno_string());
    }
  } catch (...) {
    fd_.reset();
    throw;
  }
  ++in_flight_;
}

std::optional<Response> ServeClient::try_receive(int timeout_ms) {
  try {
    while (true) {
      if (std::optional<DecodedFrame> frame = decoder_.next()) {
        if (frame->kind != FrameKind::kResponse) {
          throw DataError("client: server sent a non-response frame");
        }
        if (in_flight_ > 0) --in_flight_;
        return decode_response(frame->payload);
      }
      if (!fd_.valid()) throw NetError("receive on a closed client");
      pollfd pfd{fd_.get(), POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw NetError("poll()" + errno_string());
      }
      if (ready == 0) return std::nullopt;
      WFBN_FAULT_POINT(fault::Point::kNetRead);
      std::uint8_t buf[65536];
      const ssize_t n = ::read(fd_.get(), buf, sizeof buf);
      if (n > 0) {
        decoder_.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) throw NetError("server closed the connection");
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw NetError("read()" + errno_string());
    }
  } catch (...) {
    fd_.reset();
    throw;
  }
}

Response ServeClient::receive(int timeout_ms) {
  if (timeout_ms < 0) timeout_ms = options_.timeout_ms;
  std::optional<Response> response = try_receive(timeout_ms);
  if (!response.has_value()) {
    fd_.reset();
    throw NetError("receive timed out");
  }
  return *std::move(response);
}

Response ServeClient::call(const Request& request) {
  send(request);
  return receive();
}

}  // namespace wfbn::net
