// Atomics policy: the seam between production atomics and the wfcheck
// deterministic model checker (src/analysis/).
//
// The wait-free protocol classes (SpscQueue, SpinBarrier, the serve layer's
// snapshot cell) are templates over a Policy that supplies
//
//   Policy::Atomic<T>   — the atomic cell type (std::atomic<T> in production),
//   Policy::Data<T>     — a plain shared-but-non-atomic cell (exactly T in
//                         production; a race-checked cell under the model),
//   Policy::yield()     — what a spin loop does while it waits,
//   Policy::kSpinYieldThreshold — loop iterations before yield() kicks in.
//
// RealAtomics is the default everywhere and compiles to *identical* code as
// before the seam existed: Atomic<T> is std::atomic<T>, Data<T> is an alias
// for T itself (no wrapper object, no layout or codegen change), and yield()
// is std::this_thread::yield(). The model policy (analysis/model_atomic.hpp:
// ModelAtomics) routes every load/store/RMW — with its memory_order — through
// a cooperative scheduler that enumerates interleavings and simulates weak
// memory, so the same protocol source is what gets checked.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

namespace wfbn {

struct RealAtomics {
  template <typename T>
  using Atomic = std::atomic<T>;

  /// Shared non-atomic data published via a release/acquire edge on some
  /// Atomic. In production this is literally T: zero overhead, zero layout
  /// change. Under the model it is a happens-before-checked cell, which is
  /// how wfcheck turns a missing release edge into a reported data race.
  template <typename T>
  using Data = T;

  /// Spin iterations before a waiter starts yielding. The model policy sets
  /// this to 0 so its scheduler sees every wait immediately.
  static constexpr std::size_t kSpinYieldThreshold = 64;

  /// Whether this policy's atomic operations are non-throwing. Protocol
  /// methods declare noexcept(Policy::kNoexceptOps): with real atomics that
  /// is the unconditional noexcept they always had; under the model it is
  /// false, because the checker unwinds threads by throwing through the
  /// protocol code when it aborts an execution.
  static constexpr bool kNoexceptOps = true;

  static void yield() noexcept { std::this_thread::yield(); }
};

}  // namespace wfbn
