// RetireGate: the producer/consumer retirement protocol of the pipelined
// builder, extracted so the exact production source can run under the
// wfcheck model checker (tests/test_wfcheck.cpp: model_builder_retire).
//
// The protocol coordinates P symmetric workers, each of which first produces
// (routing keys into the queue fabric) and then keeps consuming until every
// peer has finished producing:
//
//   producer side   gate.retire() after its last flush — the acq_rel
//                   fetch_add publishes everything the producer wrote before
//                   retiring (its queue pushes, its stats) to whichever peer
//                   observes the count.
//   consumer side   while (!gate.aborted() && !gate.all_retired()) drain();
//                   the acquire load pairs with the release half of retire(),
//                   so once all_retired() is true no queue can grow and one
//                   final drain proves the fabric empty.
//   abort path      a worker that throws calls abort_and_retire(counted):
//                   the release store of the abort flag publishes whatever
//                   error state preceded it, and the conditional retire keeps
//                   the count truthful so no peer spins forever waiting on a
//                   producer that will never arrive.
//
// The gate is intentionally dumb: no blocking, no callbacks, two atomic
// cells. Its value is that the memory-order contract — which the builder's
// correctness quietly depends on — now has a name, a single definition, and
// an exhaustive model-checked proof with a mutation self-test guarding the
// release edge.
#pragma once

#include <atomic>
#include <cstddef>

#include "concurrent/atomics_policy.hpp"

namespace wfbn {

template <typename Policy = RealAtomics>
class BasicRetireGate {
 public:
  explicit BasicRetireGate(std::size_t producers) noexcept(Policy::kNoexceptOps)
      : producers_(producers) {}

  BasicRetireGate(const BasicRetireGate&) = delete;
  BasicRetireGate& operator=(const BasicRetireGate&) = delete;

  /// Marks one producer finished. The release half publishes every write the
  /// producer made before retiring to any thread that subsequently observes
  /// the incremented count via all_retired()/retired().
  // wfbn-lint: wait-free-begin
  void retire() noexcept(Policy::kNoexceptOps) {
    done_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// True once every producer has retired. Pairs with retire(): after this
  /// returns true, no retired producer's queue can grow, so one further
  /// empty drain sweep proves the fabric fully consumed.
  [[nodiscard]] bool all_retired() const noexcept(Policy::kNoexceptOps) {
    return done_.load(std::memory_order_acquire) >= producers_;
  }

  /// Producers retired so far (acquire; used by the stall watchdog to report
  /// how many were still unfinished at detection time).
  [[nodiscard]] std::size_t retired() const noexcept(Policy::kNoexceptOps) {
    return done_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t producers() const noexcept { return producers_; }

  /// Requests an early wind-down (worker exception, stall watchdog). The
  /// release store publishes whatever error state was written before it;
  /// producers poll aborted() and stop producing.
  void abort() noexcept(Policy::kNoexceptOps) {
    aborted_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool aborted() const noexcept(Policy::kNoexceptOps) {
    return aborted_.load(std::memory_order_acquire);
  }

  /// The exception path, in one call: abort the build and — unless this
  /// producer already retired — retire it, so the peers' wait loops
  /// terminate even though this producer never finished its range.
  void abort_and_retire(bool already_retired) noexcept(Policy::kNoexceptOps) {
    abort();
    if (!already_retired) retire();
  }
  // wfbn-lint: wait-free-end

 private:
  std::size_t producers_;
  typename Policy::template Atomic<std::size_t> done_{0};
  typename Policy::template Atomic<bool> aborted_{false};
};

using RetireGate = BasicRetireGate<RealAtomics>;

}  // namespace wfbn
