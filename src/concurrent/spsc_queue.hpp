// Unbounded wait-free single-producer/single-consumer queue of trivially
// copyable items, built as a linked list of fixed-size chunks.
//
// This is the queue fabric of the wait-free table-construction primitive:
// core p owns queue (p -> q) for every q != p. During stage 1 only core p
// pushes; during stage 2 only core q pops; the barrier between the stages
// gives the strict SPSC discipline. The queue is nevertheless correct under
// *concurrent* single-producer/single-consumer access (producer publishes a
// chunk's fill count with release stores, consumer reads with acquire loads),
// which is what the pipelined builder variant exercises.
//
// Progress: push() is wait-free except for chunk allocation (amortized one
// allocation per kChunkCapacity pushes); try_pop() is wait-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "util/fault_injection.hpp"

namespace wfbn {

template <typename T, std::size_t kChunkCapacity = 2048>
class SpscQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscQueue requires trivially copyable items");
  static_assert(kChunkCapacity >= 2, "chunk must hold at least two items");

 public:
  SpscQueue() {
    auto* chunk = new Chunk;
    head_chunk_ = chunk;
    tail_chunk_ = chunk;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    Chunk* chunk = head_chunk_;
    while (chunk != nullptr) {
      Chunk* next = chunk->next.load(std::memory_order_relaxed);
      delete chunk;
      chunk = next;
    }
  }

  /// Producer side. Never blocks; allocates a fresh chunk when the current
  /// one fills up. If the allocation throws (OOM or an injected fault), the
  /// queue is untouched: the item is not enqueued and both ends stay valid.
  void push(const T& item) {
    Chunk* chunk = tail_chunk_;
    const std::size_t fill = chunk->count.load(std::memory_order_relaxed);
    if (fill == kChunkCapacity) {
      WFBN_FAULT_POINT(fault::Point::kSpscChunkAlloc);
      auto* fresh = new Chunk;
      fresh->items[0] = item;
      fresh->count.store(1, std::memory_order_relaxed);
      // Publish the chunk before linking it so the consumer never observes a
      // linked chunk with an unpublished first element.
      chunk->next.store(fresh, std::memory_order_release);
      tail_chunk_ = fresh;
      ++pushed_;
      return;
    }
    chunk->items[fill] = item;
    chunk->count.store(fill + 1, std::memory_order_release);
    ++pushed_;
  }

  /// Consumer side. Returns false when no item is currently available (the
  /// producer may still push more later — emptiness is transient unless the
  /// producer is known to be done, e.g. after the construction barrier).
  bool try_pop(T& out) {
    Chunk* chunk = head_chunk_;
    const std::size_t available = chunk->count.load(std::memory_order_acquire);
    if (read_index_ < available) {
      out = chunk->items[read_index_++];
      return true;
    }
    if (read_index_ == kChunkCapacity) {
      Chunk* next = chunk->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        delete chunk;
        head_chunk_ = next;
        read_index_ = 0;
        return try_pop(out);
      }
    }
    return false;
  }

  /// Total number of items ever pushed. Producer-thread view; used by the
  /// builder instrumentation after the barrier.
  [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }

  /// True iff a try_pop() right now would fail. Consumer-thread view.
  [[nodiscard]] bool empty() const noexcept {
    Chunk* chunk = head_chunk_;
    if (read_index_ < chunk->count.load(std::memory_order_acquire)) return false;
    if (read_index_ == kChunkCapacity &&
        chunk->next.load(std::memory_order_acquire) != nullptr) {
      return false;
    }
    return true;
  }

  static constexpr std::size_t chunk_capacity() noexcept { return kChunkCapacity; }

 private:
  struct Chunk {
    T items[kChunkCapacity];
    std::atomic<std::size_t> count{0};  // published fill level (producer writes)
    std::atomic<Chunk*> next{nullptr};
  };

  // Producer-only and consumer-only state live on separate cache lines so the
  // pipelined builder variant does not induce false sharing between the ends.
  alignas(64) Chunk* tail_chunk_;
  std::uint64_t pushed_ = 0;
  alignas(64) Chunk* head_chunk_;
  std::size_t read_index_ = 0;
};

}  // namespace wfbn
