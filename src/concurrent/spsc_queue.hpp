// Unbounded wait-free single-producer/single-consumer queue of trivially
// copyable items, built as a linked list of fixed-size chunks.
//
// This is the queue fabric of the wait-free table-construction primitive:
// core p owns queue (p -> q) for every q != p. During stage 1 only core p
// pushes; during stage 2 only core q pops; the barrier between the stages
// gives the strict SPSC discipline. The queue is nevertheless correct under
// *concurrent* single-producer/single-consumer access (producer publishes a
// chunk's fill count with release stores, consumer reads with acquire loads),
// which is what the pipelined builder variant exercises.
//
// Two transfer granularities share the chunk representation:
//  - item-at-a-time: push() / try_pop(), one release/acquire pair per item;
//  - block transfer: push_block() copies a whole span and publishes one
//    release store per touched chunk, consume() hands the consumer every
//    currently published span with one acquire load per chunk. The builders'
//    write-combining routers use the block path; the per-item API remains for
//    callers without batching opportunities.
//
// Progress: all producer operations are wait-free except for chunk allocation
// (amortized one allocation per kChunkCapacity items); all consumer
// operations are wait-free.
//
// The Policy parameter (concurrent/atomics_policy.hpp) selects the atomics
// backend: RealAtomics (std::atomic, the default — identical codegen to a
// non-templated queue) or the wfcheck model policy, under which this exact
// source runs inside the deterministic concurrency checker.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "concurrent/atomics_policy.hpp"
#include "util/fault_injection.hpp"

namespace wfbn {

template <typename T, std::size_t kChunkCapacity = 2048,
          typename Policy = RealAtomics>
class SpscQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscQueue requires trivially copyable items");
  static_assert(kChunkCapacity >= 2, "chunk must hold at least two items");

  template <typename U>
  using Atomic = typename Policy::template Atomic<U>;
  template <typename U>
  using Data = typename Policy::template Data<U>;

 public:
  SpscQueue() {
    auto* chunk = new Chunk;
    head_chunk_ = chunk;
    tail_chunk_ = chunk;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    Chunk* chunk = head_chunk_;
    while (chunk != nullptr) {
      Chunk* next = chunk->next.load(std::memory_order_relaxed);
      delete chunk;
      chunk = next;
    }
  }

  /// Producer side. Never blocks; allocates a fresh chunk when the current
  /// one fills up. If the allocation throws (OOM or an injected fault), the
  /// queue is untouched: the item is not enqueued and both ends stay valid.
  // wfbn-lint: wait-free-begin
  void push(const T& item) {
    Chunk* chunk = tail_chunk_;
    const std::size_t fill = chunk->count.load(std::memory_order_relaxed);
    if (fill == kChunkCapacity) {
      WFBN_FAULT_POINT(fault::Point::kSpscChunkAlloc);
      // wfbn-lint: allow(wait-free-region) amortized refill: one allocation per kChunkCapacity pushes
      auto* fresh = new Chunk;
      fresh->items[0] = item;
      fresh->count.store(1, std::memory_order_relaxed);
      // Publish the chunk before linking it so the consumer never observes a
      // linked chunk with an unpublished first element.
      chunk->next.store(fresh, std::memory_order_release);
      tail_chunk_ = fresh;
      ++pushed_;
      return;
    }
    chunk->items[fill] = item;
    chunk->count.store(fill + 1, std::memory_order_release);
    ++pushed_;
  }
  // wfbn-lint: wait-free-end

  /// Bulk producer: copies `count` items from `items` and publishes one
  /// release store per touched chunk instead of one per item — the
  /// write-combining flush path of the builders. FIFO order is preserved
  /// relative to push(). Wait-free except for chunk allocation (amortized
  /// one per kChunkCapacity items). If an allocation throws mid-block (OOM
  /// or an injected fault), the prefix already published stays enqueued and
  /// both ends stay valid; the remainder of the block is not enqueued.
  // wfbn-lint: wait-free-begin
  void push_block(const T* items, std::size_t count) {
    Chunk* chunk = tail_chunk_;
    std::size_t fill = chunk->count.load(std::memory_order_relaxed);
    while (count != 0) {
      if (fill == kChunkCapacity) {
        WFBN_FAULT_POINT(fault::Point::kSpscChunkAlloc);
        // wfbn-lint: allow(wait-free-region) amortized refill: one allocation per kChunkCapacity items
        auto* fresh = new Chunk;
        const std::size_t take = std::min(count, kChunkCapacity);
        std::copy_n(items, take, fresh->items);
        fresh->count.store(take, std::memory_order_relaxed);
        // As in push(): fill first, then publish via the link, so a linked
        // chunk is never observed with unpublished leading elements.
        chunk->next.store(fresh, std::memory_order_release);
        tail_chunk_ = fresh;
        pushed_ += take;
        items += take;
        count -= take;
        chunk = fresh;
        fill = take;
        continue;
      }
      const std::size_t take = std::min(count, kChunkCapacity - fill);
      std::copy_n(items, take, chunk->items + fill);
      fill += take;
      chunk->count.store(fill, std::memory_order_release);
      pushed_ += take;
      items += take;
      count -= take;
    }
  }
  // wfbn-lint: wait-free-end

  /// Consumer side. Returns false when no item is currently available (the
  /// producer may still push more later — emptiness is transient unless the
  /// producer is known to be done, e.g. after the construction barrier).
  // wfbn-lint: wait-free-begin
  bool try_pop(T& out) {
    Chunk* chunk = head_chunk_;
    for (;;) {
      const std::size_t available = chunk->count.load(std::memory_order_acquire);
      if (read_index_ < available) {
        out = chunk->items[read_index_++];
        return true;
      }
      Chunk* next = next_of_exhausted(chunk, read_index_);
      if (next == nullptr) return false;
      delete chunk;
      head_chunk_ = next;
      read_index_ = 0;
      chunk = next;
    }
  }
  // wfbn-lint: wait-free-end

  /// Bulk consumer: hands every currently published span to
  /// fn(const Data<T>* items, std::size_t count) — with the default policy
  /// Data<T> is T itself — one call (and one acquire load)
  /// per contiguous span, at most one span per chunk — advancing and freeing
  /// chunks as they are exhausted. Returns the total number of items
  /// consumed; 0 means nothing was available right now (same transiency
  /// caveat as try_pop). The span is only marked consumed after fn returns:
  /// if fn throws, the items of the throwing call are redelivered on the
  /// next consume()/try_pop().
  // wfbn-lint: wait-free-begin
  template <typename Fn>
  std::size_t consume(Fn&& fn) {
    std::size_t total = 0;
    Chunk* chunk = head_chunk_;
    for (;;) {
      const std::size_t available = chunk->count.load(std::memory_order_acquire);
      if (read_index_ < available) {
        fn(chunk->items + read_index_, available - read_index_);
        total += available - read_index_;
        read_index_ = available;
        continue;  // re-load: the producer may have published more meanwhile
      }
      Chunk* next = next_of_exhausted(chunk, read_index_);
      if (next == nullptr) return total;
      delete chunk;
      head_chunk_ = next;
      read_index_ = 0;
      chunk = next;
    }
  }
  // wfbn-lint: wait-free-end

  /// Total number of items ever pushed. Producer-thread view; used by the
  /// builder instrumentation after the barrier.
  [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }

  /// True iff a try_pop() right now would fail. Consumer-thread view.
  // wfbn-lint: wait-free-begin
  [[nodiscard]] bool empty() const noexcept(Policy::kNoexceptOps) {
    Chunk* chunk = head_chunk_;
    std::size_t index = read_index_;
    for (;;) {
      if (index < chunk->count.load(std::memory_order_acquire)) return false;
      Chunk* next = next_of_exhausted(chunk, index);
      if (next == nullptr) return true;
      chunk = next;
      index = 0;
    }
  }
  // wfbn-lint: wait-free-end

  static constexpr std::size_t chunk_capacity() noexcept { return kChunkCapacity; }

 private:
  struct Chunk {
    Data<T> items[kChunkCapacity];
    Atomic<std::size_t> count{0};  // published fill level (producer writes)
    Atomic<Chunk*> next{nullptr};
  };

  /// The one chunk-advance rule, shared by try_pop/consume/empty: a chunk is
  /// exhausted only once the consumer has read all kChunkCapacity items, and
  /// its successor becomes visible through the producer's release-linked
  /// next pointer. Returns the successor, or nullptr when the chunk is not
  /// exhausted or no successor is linked yet.
  static Chunk* next_of_exhausted(Chunk* chunk, std::size_t read_index)
      noexcept(Policy::kNoexceptOps) {
    if (read_index != kChunkCapacity) return nullptr;
    return chunk->next.load(std::memory_order_acquire);
  }

  // Producer-only and consumer-only state live on separate cache lines so the
  // pipelined builder variant does not induce false sharing between the ends.
  alignas(64) Chunk* tail_chunk_;
  std::uint64_t pushed_ = 0;
  alignas(64) Chunk* head_chunk_;
  std::size_t read_index_ = 0;
};

}  // namespace wfbn
