#include "concurrent/affinity.hpp"

#include <thread>

#include "util/fault_injection.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace wfbn {

std::size_t hardware_cores() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_current_thread([[maybe_unused]] std::size_t index) noexcept {
  if (fault::enabled() && fault::should_fail(fault::Point::kPinThread)) {
    return false;  // injected pin refusal: callers must degrade, not throw
  }
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(index % hardware_cores(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  return false;
#endif
}

}  // namespace wfbn
