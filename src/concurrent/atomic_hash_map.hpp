// Lock-free (but not wait-free) shared count table: open addressing with CAS
// key claiming and fetch_add counting.
//
// This is the "no locks, but still one shared table" design point between the
// TBB-style locked map and the paper's wait-free partitioned design. It is
// lock-free — a stalled thread cannot block others — yet every update still
// targets shared cache lines, so it scales worse than the partitioned tables.
// The ablation benches compare all three.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace wfbn {

class AtomicHashMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ULL;

  /// Fixed capacity for `expected_entries` keys at <= 0.5 load factor; the
  /// table never rehashes (rehashing a concurrent open-addressing table would
  /// need either locks or epochs, both out of scope for a count table whose
  /// population is bounded by the dataset size).
  explicit AtomicHashMap(std::size_t expected_entries)
      : mask_(std::bit_ceil(std::max<std::size_t>(expected_entries * 2, 32)) - 1),
        slots_(mask_ + 1) {
    for (auto& slot : slots_) {
      slot.key.store(kEmptyKey, std::memory_order_relaxed);
      slot.count.store(0, std::memory_order_relaxed);
    }
  }

  AtomicHashMap(const AtomicHashMap&) = delete;
  AtomicHashMap& operator=(const AtomicHashMap&) = delete;

  /// Thread-safe: adds `delta` to `key`'s count, claiming a slot if absent.
  /// Precondition: key != kEmptyKey. Throws DataError if the table is full.
  void increment(std::uint64_t key, std::uint64_t delta = 1) {
    WFBN_EXPECT(key != kEmptyKey, "the all-ones key is reserved");
    std::size_t index = hash(key);
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      Slot& slot = slots_[index];
      std::uint64_t existing = slot.key.load(std::memory_order_acquire);
      if (existing == key) {
        slot.count.fetch_add(delta, std::memory_order_relaxed);
        return;
      }
      if (existing == kEmptyKey) {
        // Claim the slot; on race, fall through to re-examine the winner.
        if (slot.key.compare_exchange_strong(existing, key,
                                             std::memory_order_acq_rel)) {
          slot.count.fetch_add(delta, std::memory_order_relaxed);
          size_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (existing == key) {
          slot.count.fetch_add(delta, std::memory_order_relaxed);
          return;
        }
      }
      index = (index + 1) & mask_;
    }
    throw DataError("AtomicHashMap is full — size it for the key population");
  }

  /// Thread-safe point lookup; 0 when absent.
  [[nodiscard]] std::uint64_t count(std::uint64_t key) const {
    std::size_t index = hash(key);
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      const Slot& slot = slots_[index];
      const std::uint64_t existing = slot.key.load(std::memory_order_acquire);
      if (existing == key) return slot.count.load(std::memory_order_relaxed);
      if (existing == kEmptyKey) return 0;
      index = (index + 1) & mask_;
    }
    return 0;
  }

  /// Quiescent iteration (no concurrent writers). fn(key, count).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      const std::uint64_t key = slot.key.load(std::memory_order_relaxed);
      if (key != kEmptyKey) fn(key, slot.count.load(std::memory_order_relaxed));
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> key;
    std::atomic<std::uint64_t> count;
  };

  [[nodiscard]] std::size_t hash(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 17) & mask_;
  }

  const std::size_t mask_;
  std::vector<Slot> slots_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace wfbn
