// Fixed-size fork/join thread pool modeling the paper's PRAM-style execution:
// P persistent worker threads, each with a stable id in [0, P), executing the
// same kernel on disjoint index ranges.
//
// Unlike a task-stealing pool, workers here never migrate work — the
// wait-free builder's correctness depends on "core p owns hashtable p", so
// the pool exposes run(kernel) where kernel(p) is executed by worker p, plus
// a convenience parallel_for that block-partitions an index range.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wfbn {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). The calling thread does not participate;
  /// run() blocks it until the kernel completes everywhere.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Executes kernel(p) on worker p for every p in [0, size()). Blocks until
  /// all workers finish. If any kernel throws, the first exception is
  /// rethrown on the caller after all workers have finished the round.
  void run(const std::function<void(std::size_t)>& kernel);

  /// Block-partitions [begin, end) over the workers and calls
  /// body(worker, lo, hi) with each worker's contiguous subrange. Ranges of
  /// size < size() leave the tail workers with empty ranges.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// The contiguous block [lo, hi) that worker `p` of `parts` receives for an
  /// index range of `count` items (same partitioning the paper's Algorithm 1
  /// applies to the training data). Exposed for tests and the simulator.
  static std::pair<std::size_t, std::size_t> block_range(std::size_t count,
                                                         std::size_t parts,
                                                         std::size_t p) noexcept;

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable round_done_;
  const std::function<void(std::size_t)>* kernel_ = nullptr;
  std::uint64_t round_ = 0;       // incremented per run(); workers wait on it
  std::size_t remaining_ = 0;     // workers yet to finish the current round
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace wfbn
