// Fixed-size fork/join thread pool modeling the paper's PRAM-style execution:
// P persistent worker threads, each with a stable id in [0, P), executing the
// same kernel on disjoint index ranges.
//
// Unlike a task-stealing pool, workers here never migrate work — the
// wait-free builder's correctness depends on "core p owns hashtable p", so
// the pool exposes run(kernel) where kernel(p) is executed by worker p, plus
// a convenience parallel_for that block-partitions an index range.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wfbn {

/// What a component did when the environment refused a resource. Degradation
/// is the deliberate alternative to throwing for resources the algorithms can
/// run without: fewer workers still compute the exact same table, unpinned
/// workers are merely slower. Consumers surface the report (BuildStats) so
/// callers can tell requested from effective parallelism.
struct DegradationReport {
  std::size_t requested_threads = 0;  ///< what the caller asked for
  std::size_t spawned_threads = 0;    ///< what the OS actually granted
  std::size_t failed_spawns = 0;      ///< spawn attempts that failed
  std::size_t pin_failures = 0;       ///< workers left unpinned (filled by users)

  [[nodiscard]] bool degraded() const noexcept {
    return spawned_threads < requested_threads || pin_failures > 0;
  }
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). The calling thread does not participate;
  /// run() blocks it until the kernel completes everywhere.
  ///
  /// Spawn failures degrade instead of aborting: if the OS (or an injected
  /// fault) refuses a thread mid-construction, the pool keeps the workers it
  /// got and records the shortfall in degradation(). Only a pool that cannot
  /// spawn a single worker rethrows the spawn error.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Requested vs. actually spawned workers (see constructor).
  [[nodiscard]] const DegradationReport& degradation() const noexcept {
    return degradation_;
  }

  /// Executes kernel(p) on worker p for every p in [0, size()). Blocks until
  /// all workers finish. If any kernel throws, the first exception is
  /// rethrown on the caller after all workers have finished the round. The
  /// pool's round state (kernel slot, error slot, worker counters) is fully
  /// reset before the rethrow, so the pool stays usable for further run()s.
  void run(const std::function<void(std::size_t)>& kernel);

  /// Block-partitions [begin, end) over the workers and calls
  /// body(worker, lo, hi) with each worker's contiguous subrange. Ranges of
  /// size < size() leave the tail workers with empty ranges.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// The contiguous block [lo, hi) that worker `p` of `parts` receives for an
  /// index range of `count` items (same partitioning the paper's Algorithm 1
  /// applies to the training data). Exposed for tests and the simulator.
  static std::pair<std::size_t, std::size_t> block_range(std::size_t count,
                                                         std::size_t parts,
                                                         std::size_t p) noexcept;

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable round_done_;
  const std::function<void(std::size_t)>* kernel_ = nullptr;
  std::uint64_t round_ = 0;       // incremented per run(); workers wait on it
  std::size_t remaining_ = 0;     // workers yet to finish the current round
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
  DegradationReport degradation_;
};

}  // namespace wfbn
