// Lock-striped concurrent count map — the stand-in for the paper's Intel TBB
// concurrent_hash_map baseline.
//
// TBB's map takes a per-bucket lock on every accessor; we reproduce that
// contention signature with a chained hashtable whose buckets are guarded by
// a fixed set of stripe mutexes. Every increment acquires exactly one lock,
// so lock-acquisition counts (exposed for the scaling simulator) equal update
// counts, and conflicts grow with the number of writers — the behaviour the
// paper's Figures 3–4 show flattening past ~16 cores.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/error.hpp"

namespace wfbn {

class StripedHashMap {
 public:
  /// `expected_entries` sizes the bucket array (no rehashing afterwards —
  /// count tables know their key population up front). `stripes` is rounded
  /// up to a power of two.
  explicit StripedHashMap(std::size_t expected_entries, std::size_t stripes = 64)
      : bucket_mask_(std::bit_ceil(std::max<std::size_t>(expected_entries, 16)) - 1),
        stripe_mask_(std::bit_ceil(std::max<std::size_t>(stripes, 1)) - 1),
        buckets_(bucket_mask_ + 1),
        locks_(stripe_mask_ + 1) {}

  StripedHashMap(const StripedHashMap&) = delete;
  StripedHashMap& operator=(const StripedHashMap&) = delete;

  /// Thread-safe: adds `delta` to the count of `key`, inserting it if absent.
  void increment(std::uint64_t key, std::uint64_t delta = 1) {
    const std::size_t bucket = index_of(key);
    std::lock_guard lock(locks_[bucket & stripe_mask_].mutex);
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    for (Node* node = buckets_[bucket].get(); node != nullptr; node = node->next.get()) {
      if (node->key == key) {
        node->count += delta;
        return;
      }
    }
    auto fresh = std::make_unique<Node>();
    fresh->key = key;
    fresh->count = delta;
    fresh->next = std::move(buckets_[bucket]);
    buckets_[bucket] = std::move(fresh);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Thread-safe point lookup; 0 when absent.
  [[nodiscard]] std::uint64_t count(std::uint64_t key) const {
    const std::size_t bucket = index_of(key);
    std::lock_guard lock(locks_[bucket & stripe_mask_].mutex);
    for (const Node* node = buckets_[bucket].get(); node != nullptr;
         node = node->next.get()) {
      if (node->key == key) return node->count;
    }
    return 0;
  }

  /// Single-threaded iteration (post-construction). fn(key, count).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& head : buckets_) {
      for (const Node* node = head.get(); node != nullptr; node = node->next.get()) {
        fn(node->key, node->count);
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  /// Total lock acquisitions across all threads — input to the contention
  /// model in src/sim.
  [[nodiscard]] std::uint64_t lock_acquisitions() const noexcept {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t stripe_count() const noexcept { return locks_.size(); }

 private:
  struct Node {
    std::uint64_t key = 0;
    std::uint64_t count = 0;
    std::unique_ptr<Node> next;
  };
  struct alignas(64) Stripe {
    mutable std::mutex mutex;
  };

  [[nodiscard]] std::size_t index_of(std::uint64_t key) const noexcept {
    // Fibonacci hashing spreads consecutive keys (common for encoded state
    // strings) across buckets.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32) &
           bucket_mask_;
  }

  const std::size_t bucket_mask_;
  const std::size_t stripe_mask_;
  std::vector<std::unique_ptr<Node>> buckets_;
  mutable std::vector<Stripe> locks_;
  std::atomic<std::size_t> size_{0};
  mutable std::atomic<std::uint64_t> lock_acquisitions_{0};
};

}  // namespace wfbn
