#include "concurrent/thread_pool.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace wfbn {

ThreadPool::ThreadPool(std::size_t threads) {
  WFBN_EXPECT(threads >= 1, "thread pool needs at least one worker");
  degradation_.requested_threads = threads;
  workers_.reserve(threads);
  for (std::size_t id = 0; id < threads; ++id) {
    if (fault::enabled() &&
        fault::should_fail(fault::Point::kThreadSpawn)) {
      // Injected spawn failure: degrade exactly like a real one, except when
      // it would leave the pool empty (nothing to degrade to).
      ++degradation_.failed_spawns;
      if (workers_.empty()) {
        throw InjectedFault("injected fault at pool.spawn (first worker)");
      }
      break;
    }
    try {
      workers_.emplace_back([this, id] { worker_loop(id); });
    } catch (const std::system_error&) {
      // The OS refused a thread. Run degraded on what we have; rethrow only
      // if even the first worker could not start.
      ++degradation_.failed_spawns;
      if (workers_.empty()) throw;
      break;
    }
  }
  degradation_.spawned_threads = workers_.size();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& kernel) {
  std::unique_lock lock(mutex_);
  kernel_ = &kernel;
  first_error_ = nullptr;
  remaining_ = workers_.size();
  ++round_;
  work_ready_.notify_all();
  round_done_.wait(lock, [this] { return remaining_ == 0; });
  kernel_ = nullptr;
  // Move the error out before throwing so the pool's round state is pristine
  // for the next run() (and the exception object does not outlive the round).
  if (std::exception_ptr error = std::exchange(first_error_, nullptr)) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(std::size_t id) {
  std::uint64_t seen_round = 0;
  for (;;) {
    const std::function<void(std::size_t)>* kernel = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] { return shutting_down_ || round_ != seen_round; });
      if (shutting_down_ && round_ == seen_round) return;
      seen_round = round_;
      kernel = kernel_;
    }
    std::exception_ptr error;
    try {
      (*kernel)(id);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) round_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  WFBN_EXPECT(begin <= end, "parallel_for range is inverted");
  const std::size_t count = end - begin;
  run([&](std::size_t p) {
    const auto [lo, hi] = block_range(count, workers_.size(), p);
    if (lo < hi) body(p, begin + lo, begin + hi);
  });
}

std::pair<std::size_t, std::size_t> ThreadPool::block_range(
    std::size_t count, std::size_t parts, std::size_t p) noexcept {
  // Distribute the remainder over the first (count % parts) blocks so block
  // sizes differ by at most one — the "uniformly divided" assumption of the
  // paper's complexity analysis.
  const std::size_t base = count / parts;
  const std::size_t extra = count % parts;
  const std::size_t lo = p * base + std::min(p, extra);
  const std::size_t hi = lo + base + (p < extra ? 1 : 0);
  return {lo, hi};
}

}  // namespace wfbn
