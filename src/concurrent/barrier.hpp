// Sense-reversing centralized barrier.
//
// std::barrier exists in C++20, but the builders need (a) a barrier whose
// crossing we can instrument (the paper's single synchronization step between
// stage 1 and stage 2 is an explicit cost in the scaling model) and (b)
// spin-waiting, since the construction stages are short and the threads are
// pinned compute threads, not general tasks.
//
// The Policy parameter (concurrent/atomics_policy.hpp) selects the atomics
// backend: RealAtomics (the default, identical codegen to the pre-template
// barrier) or the wfcheck model policy, under which this exact source is
// exhaustively interleaved by the deterministic checker.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "concurrent/atomics_policy.hpp"
#include "util/error.hpp"

namespace wfbn {

template <typename Policy = RealAtomics>
class BasicSpinBarrier {
 public:
  explicit BasicSpinBarrier(std::size_t participants)
      : participants_(participants), remaining_(participants) {
    WFBN_EXPECT(participants > 0, "barrier needs at least one participant");
  }

  BasicSpinBarrier(const BasicSpinBarrier&) = delete;
  BasicSpinBarrier& operator=(const BasicSpinBarrier&) = delete;

  /// Blocks until all participants have arrived. Safe to reuse for any number
  /// of phases (sense reversal).
  // wfbn-lint: wait-free-begin
  void arrive_and_wait() noexcept(Policy::kNoexceptOps) {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reset the count and flip the sense, releasing everyone.
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      std::size_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        // Back off to yield after a short spin so the barrier also behaves
        // on oversubscribed machines (this repo's CI has 1 hardware core).
        if (++spins > Policy::kSpinYieldThreshold) Policy::yield();
      }
    }
  }
  // wfbn-lint: wait-free-end

  [[nodiscard]] std::size_t participants() const noexcept { return participants_; }

 private:
  template <typename U>
  using Atomic = typename Policy::template Atomic<U>;

  const std::size_t participants_;
  Atomic<std::size_t> remaining_;
  Atomic<bool> sense_{false};
};

using SpinBarrier = BasicSpinBarrier<RealAtomics>;

}  // namespace wfbn
