// Sense-reversing centralized barrier.
//
// std::barrier exists in C++20, but the builders need (a) a barrier whose
// crossing we can instrument (the paper's single synchronization step between
// stage 1 and stage 2 is an explicit cost in the scaling model) and (b)
// spin-waiting, since the construction stages are short and the threads are
// pinned compute threads, not general tasks.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/error.hpp"

namespace wfbn {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t participants)
      : participants_(participants), remaining_(participants) {
    WFBN_EXPECT(participants > 0, "barrier needs at least one participant");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all participants have arrived. Safe to reuse for any number
  /// of phases (sense reversal).
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reset the count and flip the sense, releasing everyone.
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      std::size_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        // Back off to yield after a short spin so the barrier also behaves
        // on oversubscribed machines (this repo's CI has 1 hardware core).
        if (++spins > 64) std::this_thread::yield();
      }
    }
  }

  [[nodiscard]] std::size_t participants() const noexcept { return participants_; }

 private:
  const std::size_t participants_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace wfbn
