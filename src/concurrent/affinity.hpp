// CPU-affinity helpers. The paper pins one software thread per hardware core
// (POSIX threads on a 32-core Opteron); on machines with fewer cores than
// requested threads, pinning is skipped gracefully so the library still runs
// (oversubscribed) everywhere.
#pragma once

#include <cstddef>

namespace wfbn {

/// Number of hardware execution contexts visible to this process.
[[nodiscard]] std::size_t hardware_cores() noexcept;

/// Pins the calling thread to core (index % hardware_cores()).
/// Returns true on success; false when pinning is unsupported or denied.
bool pin_current_thread(std::size_t index) noexcept;

}  // namespace wfbn
