// Multicore cost model — the substitution for the paper's 32-core AMD
// Opteron testbed (DESIGN.md §3). This container exposes a single hardware
// core, so wall-clock runs cannot show parallel speedup; instead we predict
// the makespan a P-core PRAM-style machine would observe, from
//
//   (a) exact per-core operation counts, measured by instrumenting the real
//       builders (the counts do not depend on how many physical cores ran
//       the workers), and
//   (b) per-operation costs calibrated by timing the library's own inner
//       loops on this host, and
//   (c) an explicit shared-state contention model for the lock-based
//       baselines — the one component that cannot be measured on one core.
//       Its two coefficients (cache-line transfer latency, coherence-storm
//       quadratic term) are stated constants, not fits to the paper's curves.
//
// Wait-free makespan:  T(P) = max_p S1_p + barrier(P) + max_p S2_p, with
//   S1_p = rows_p·n·t_enc + local_p·t_upd + foreign_p·t_push
//   S2_p = pops_p·(t_pop + t_upd)
// which is exactly the paper's O(m·n/P) analysis with constants attached.
//
// Lock-based makespan: every update acquires a lock word shared by P writers:
//   t_lock(P) = t_mutex + (P−1)/P·t_line + q·(P−1)²   (q = coherence term)
//   T(P) = (m/P)·(n·t_enc + t_upd + t_lock(P)) [+ saturation via stripes]
// producing the flattening-then-regressing curve the paper reports for TBB.
#pragma once

#include <cstdint>
#include <vector>

#include "core/wait_free_builder.hpp"

namespace wfbn {

struct MachineModel {
  // Calibrated on the host (seconds per operation).
  double t_encode_per_var = 1e-9;  ///< one mixed-radix multiply-add
  double t_update = 2e-8;          ///< private hashtable increment
  double t_push = 8e-9;            ///< SPSC enqueue
  double t_pop = 6e-9;             ///< SPSC dequeue
  double t_project_per_var = 3e-9; ///< one Eq.-4 leg in KeyProjector
  double t_entry_visit = 4e-9;     ///< hash iteration overhead per entry
  double t_mutex = 2e-8;           ///< uncontended lock/unlock round trip
  double t_barrier_per_core = 1.5e-7;

  // Modeled (cross-core effects unobservable on a single core; values are
  // typical published figures for multi-socket x86 — see DESIGN.md §3).
  double t_line_transfer = 6e-8;      ///< remote cache-line transfer
  double coherence_quadratic = 4e-10; ///< per (P−1)² per locked op

  /// Measures the calibrated entries by timing the library's own inner loops
  /// (encode, table update, queue push/pop, projection, mutex, barrier).
  /// `samples` trades calibration time for stability.
  static MachineModel calibrate(std::size_t samples = 200000,
                                std::uint64_t seed = 7);
};

/// One point of a predicted scaling curve.
struct ScalingPoint {
  std::size_t cores = 1;
  double seconds = 0.0;
  double speedup = 1.0;  ///< T(1)/T(P), filled by the curve builders
};

/// Predicted makespan of the wait-free construction from measured per-worker
/// counts (`stats` from a build with P workers) on a P-core machine.
[[nodiscard]] double predict_wait_free_seconds(const MachineModel& model,
                                               const BuildStats& stats,
                                               std::size_t variables);

/// Predicted makespan of a lock-per-update shared-table build (the TBB-like
/// baseline) with P cores, `stripes` lock stripes, m rows of n variables.
[[nodiscard]] double predict_locked_seconds(const MachineModel& model,
                                            std::uint64_t rows,
                                            std::size_t variables,
                                            std::size_t cores,
                                            std::size_t stripes);

/// Predicted makespan of a CAS-per-update shared-table build (atomic
/// baseline): no lock, but every update still transfers the slot's line.
[[nodiscard]] double predict_atomic_seconds(const MachineModel& model,
                                            std::uint64_t rows,
                                            std::size_t variables,
                                            std::size_t cores);

/// Predicted makespan of one parallel marginalization / all-pairs-MI sweep:
/// `per_core_entries[p]` hash entries visited by core p, each decoding
/// `projected_vars` variables; `sweeps` repetitions (e.g. number of pairs).
[[nodiscard]] double predict_sweep_seconds(const MachineModel& model,
                                           const std::vector<std::uint64_t>& per_core_entries,
                                           std::size_t projected_vars,
                                           double sweeps);

}  // namespace wfbn
