#include "sim/scaling_sim.hpp"

#include <utility>

#include "core/wait_free_builder.hpp"
#include "util/error.hpp"

namespace wfbn {

void fill_speedups(ScalingCurve& curve) {
  if (curve.points.empty()) return;
  const double base = curve.points.front().seconds;
  for (ScalingPoint& point : curve.points) {
    point.speedup = point.seconds > 0.0 ? base / point.seconds : 0.0;
  }
}

ScalingCurve ScalingSimulator::wait_free_construction(
    const Dataset& data, const std::vector<std::size_t>& cores,
    std::string label) const {
  WFBN_EXPECT(!cores.empty(), "need at least one core count");
  ScalingCurve curve{std::move(label), {}};
  for (const std::size_t p : cores) {
    WaitFreeBuilderOptions options;
    options.threads = p;
    WaitFreeBuilder builder(options);
    const PotentialTable table = builder.build(data);
    (void)table;
    const double seconds = predict_wait_free_seconds(
        model_, builder.stats(), data.variable_count());
    curve.points.push_back(ScalingPoint{p, seconds, 1.0});
  }
  fill_speedups(curve);
  return curve;
}

ScalingCurve ScalingSimulator::locked_construction(
    std::uint64_t rows, std::size_t variables,
    const std::vector<std::size_t>& cores, std::size_t stripes,
    std::string label) const {
  WFBN_EXPECT(!cores.empty(), "need at least one core count");
  ScalingCurve curve{std::move(label), {}};
  for (const std::size_t p : cores) {
    curve.points.push_back(ScalingPoint{
        p, predict_locked_seconds(model_, rows, variables, p, stripes), 1.0});
  }
  fill_speedups(curve);
  return curve;
}

ScalingCurve ScalingSimulator::atomic_construction(
    std::uint64_t rows, std::size_t variables,
    const std::vector<std::size_t>& cores, std::string label) const {
  WFBN_EXPECT(!cores.empty(), "need at least one core count");
  ScalingCurve curve{std::move(label), {}};
  for (const std::size_t p : cores) {
    curve.points.push_back(ScalingPoint{
        p, predict_atomic_seconds(model_, rows, variables, p), 1.0});
  }
  fill_speedups(curve);
  return curve;
}

ScalingCurve ScalingSimulator::all_pairs_mi(
    const Dataset& data, const std::vector<std::size_t>& cores,
    std::string label) const {
  WFBN_EXPECT(!cores.empty(), "need at least one core count");
  const std::size_t n = data.variable_count();
  const double pair_sweeps =
      static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  ScalingCurve curve{std::move(label), {}};
  for (const std::size_t p : cores) {
    WaitFreeBuilderOptions options;
    options.threads = p;
    WaitFreeBuilder builder(options);
    PotentialTable table = builder.build(data);
    // Algorithm 3 runs one core per partition; rebalance first, as §IV-C
    // prescribes for unbalanced tables.
    table.partitions().rebalance();
    std::vector<std::uint64_t> per_core_entries(p, 0);
    for (std::size_t part = 0; part < p; ++part) {
      per_core_entries[part] = table.partitions().partition(part).size();
    }
    const double seconds =
        predict_sweep_seconds(model_, per_core_entries, 2, pair_sweeps);
    curve.points.push_back(ScalingPoint{p, seconds, 1.0});
  }
  fill_speedups(curve);
  return curve;
}

}  // namespace wfbn
