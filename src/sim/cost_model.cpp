#include "sim/cost_model.hpp"

#include <algorithm>
#include <mutex>

#include "concurrent/barrier.hpp"
#include "concurrent/spsc_queue.hpp"
#include "data/generators.hpp"
#include "table/key_codec.hpp"
#include "table/open_hash_table.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wfbn {

namespace {

/// Keeps the optimizer from deleting calibration loops.
inline void keep_alive(std::uint64_t value) {
  asm volatile("" : : "r"(value) : "memory");
}

double time_per_op(std::uint64_t ops, double seconds) {
  return ops == 0 ? 0.0 : seconds / static_cast<double>(ops);
}

}  // namespace

MachineModel MachineModel::calibrate(std::size_t samples, std::uint64_t seed) {
  WFBN_EXPECT(samples >= 1000, "too few calibration samples for stable timing");
  MachineModel model;
  constexpr std::size_t kVars = 30;
  const Dataset data = generate_uniform(samples, kVars, 2, seed);
  const KeyCodec codec = data.codec();

  // --- encode: time the real Eq.-3 loop; cost is per variable.
  {
    Timer timer;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < samples; ++i) sink += codec.encode(data.row(i));
    keep_alive(sink);
    model.t_encode_per_var = time_per_op(samples * kVars, timer.seconds());
  }

  // --- private table update (includes amortized growth).
  std::vector<Key> keys(samples);
  for (std::size_t i = 0; i < samples; ++i) keys[i] = codec.encode(data.row(i));
  {
    OpenHashTable table(samples);
    Timer timer;
    for (const Key key : keys) table.increment(key);
    model.t_update = time_per_op(samples, timer.seconds());
    keep_alive(table.size());
  }

  // --- SPSC push then pop.
  {
    SpscQueue<Key> queue;
    Timer timer;
    for (const Key key : keys) queue.push(key);
    model.t_push = time_per_op(samples, timer.seconds());
    timer.reset();
    Key out = 0;
    std::uint64_t sink = 0;
    while (queue.try_pop(out)) sink += out;
    model.t_pop = time_per_op(samples, timer.seconds());
    keep_alive(sink);
  }

  // --- projection (two-variable marginal, the drafting-phase hot path).
  {
    const std::size_t vars[] = {3, 17};
    const KeyProjector projector(codec, vars);
    Timer timer;
    std::uint64_t sink = 0;
    for (const Key key : keys) sink += projector.project(key);
    keep_alive(sink);
    model.t_project_per_var = time_per_op(samples * 2, timer.seconds());
  }

  // --- hash iteration overhead per entry.
  {
    OpenHashTable table(samples);
    for (const Key key : keys) table.increment(key);
    Timer timer;
    std::uint64_t sink = 0;
    for (int rep = 0; rep < 4; ++rep) {
      table.for_each([&](Key key, std::uint64_t c) { sink += key + c; });
    }
    keep_alive(sink);
    model.t_entry_visit = time_per_op(4 * table.size(), timer.seconds());
  }

  // --- uncontended mutex round trip.
  {
    std::mutex mutex;
    std::uint64_t sink = 0;
    Timer timer;
    for (std::size_t i = 0; i < samples; ++i) {
      std::lock_guard lock(mutex);
      sink += i;
    }
    keep_alive(sink);
    model.t_mutex = time_per_op(samples, timer.seconds());
  }

  // --- barrier crossing (single participant; per-core slope is the
  // fetch_sub + release store path, which is what we can observe here).
  {
    SpinBarrier barrier(1);
    constexpr std::size_t kCrossings = 20000;
    Timer timer;
    for (std::size_t i = 0; i < kCrossings; ++i) barrier.arrive_and_wait();
    model.t_barrier_per_core = time_per_op(kCrossings, timer.seconds());
  }

  return model;
}

double predict_wait_free_seconds(const MachineModel& model,
                                 const BuildStats& stats,
                                 std::size_t variables) {
  WFBN_EXPECT(!stats.workers.empty(), "no worker stats — run a build first");
  double stage1 = 0.0;
  double stage2 = 0.0;
  for (const WorkerStats& w : stats.workers) {
    const double s1 =
        static_cast<double>(w.rows_encoded) * static_cast<double>(variables) *
            model.t_encode_per_var +
        static_cast<double>(w.local_updates) * model.t_update +
        static_cast<double>(w.foreign_pushes) * model.t_push;
    const double s2 =
        static_cast<double>(w.stage2_pops) * (model.t_pop + model.t_update);
    stage1 = std::max(stage1, s1);
    stage2 = std::max(stage2, s2);
  }
  const double barrier =
      model.t_barrier_per_core * static_cast<double>(stats.workers.size());
  return stage1 + barrier + stage2;
}

namespace {

/// Extra cost per locked/atomic update caused by cache coherence when P
/// writers share the structure: with probability (P−1)/P the line was last
/// touched by another core (one transfer), plus a quadratic storm term.
double coherence_penalty(const MachineModel& model, std::size_t cores) {
  if (cores <= 1) return 0.0;
  const double p = static_cast<double>(cores);
  return (p - 1.0) / p * model.t_line_transfer +
         model.coherence_quadratic * (p - 1.0) * (p - 1.0);
}

}  // namespace

double predict_locked_seconds(const MachineModel& model, std::uint64_t rows,
                              std::size_t variables, std::size_t cores,
                              std::size_t stripes) {
  WFBN_EXPECT(cores >= 1, "cores must be >= 1");
  WFBN_EXPECT(stripes >= 1, "stripes must be >= 1");
  const double m = static_cast<double>(rows);
  const double per_update =
      model.t_mutex + model.t_update + coherence_penalty(model, cores);
  const double per_row = static_cast<double>(variables) * model.t_encode_per_var +
                         per_update;
  const double parallel_time = m / static_cast<double>(cores) * per_row;

  // Stripe saturation: the critical sections of one stripe serialize. With
  // uniform keys each stripe carries m/stripes updates whose exclusive
  // section is (t_mutex + t_update + line transfer); the build can never
  // finish faster than the busiest stripe.
  const double per_stripe_updates = m / static_cast<double>(stripes);
  const double stripe_service =
      model.t_mutex + model.t_update +
      (cores > 1 ? model.t_line_transfer : 0.0);
  const double saturation_floor =
      cores > 1 ? per_stripe_updates * stripe_service : 0.0;
  return std::max(parallel_time, saturation_floor);
}

double predict_atomic_seconds(const MachineModel& model, std::uint64_t rows,
                              std::size_t variables, std::size_t cores) {
  WFBN_EXPECT(cores >= 1, "cores must be >= 1");
  const double m = static_cast<double>(rows);
  // CAS/fetch_add avoids the mutex round trip but still pays coherence.
  const double per_row = static_cast<double>(variables) * model.t_encode_per_var +
                         model.t_update + coherence_penalty(model, cores);
  return m / static_cast<double>(cores) * per_row;
}

double predict_sweep_seconds(const MachineModel& model,
                             const std::vector<std::uint64_t>& per_core_entries,
                             std::size_t projected_vars, double sweeps) {
  WFBN_EXPECT(!per_core_entries.empty(), "no per-core entry counts");
  double makespan = 0.0;
  for (const std::uint64_t entries : per_core_entries) {
    const double t =
        static_cast<double>(entries) *
        (model.t_entry_visit +
         static_cast<double>(projected_vars) * model.t_project_per_var);
    makespan = std::max(makespan, t);
  }
  return makespan * sweeps;
}

}  // namespace wfbn
