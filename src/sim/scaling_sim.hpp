// Scaling-curve generation: reproduces the paper's Figures 3–5 on hardware
// with fewer cores than the 32-core testbed. For each simulated core count P
// the real (instrumented) primitives are executed with P workers — the
// per-worker operation counts are exact regardless of physical parallelism —
// and the cost model turns those counts into the makespan a P-core machine
// would observe. Lock-based baselines are analytic (see cost_model.hpp).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "sim/cost_model.hpp"

namespace wfbn {

struct ScalingCurve {
  std::string label;
  std::vector<ScalingPoint> points;
};

/// Fills each point's speedup as points[0].seconds / point.seconds (so pass
/// cores lists starting at 1 to get paper-style speedup-vs-1-core).
void fill_speedups(ScalingCurve& curve);

class ScalingSimulator {
 public:
  explicit ScalingSimulator(MachineModel model) : model_(model) {}

  [[nodiscard]] const MachineModel& model() const noexcept { return model_; }

  /// Wait-free construction curve (Fig. 3/4 solid lines): runs the real
  /// builder with P workers per point, predicts from measured counts.
  [[nodiscard]] ScalingCurve wait_free_construction(
      const Dataset& data, const std::vector<std::size_t>& cores,
      std::string label = "wait-free") const;

  /// Lock-striped shared-table curve (Fig. 3/4 dashed lines, the TBB
  /// stand-in): analytic from (m, n, stripes).
  [[nodiscard]] ScalingCurve locked_construction(
      std::uint64_t rows, std::size_t variables,
      const std::vector<std::size_t>& cores, std::size_t stripes = 256,
      std::string label = "tbb-like") const;

  /// Atomic CAS shared-table curve (ablation).
  [[nodiscard]] ScalingCurve atomic_construction(
      std::uint64_t rows, std::size_t variables,
      const std::vector<std::size_t>& cores,
      std::string label = "atomic-cas") const;

  /// All-pairs MI curve (Fig. 5): builds the table with P partitions per
  /// point and predicts the pair sweeps from partition populations.
  [[nodiscard]] ScalingCurve all_pairs_mi(
      const Dataset& data, const std::vector<std::size_t>& cores,
      std::string label = "all-pairs-mi") const;

 private:
  MachineModel model_;
};

}  // namespace wfbn
