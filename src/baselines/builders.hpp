// Table-construction baselines behind one interface, so the benches and the
// scaling simulator can sweep implementations uniformly.
//
// Design points, from most to least shared state:
//  - kSequential   one thread, one private table (the speedup denominator);
//  - kGlobalLock   P threads, one table, one mutex (worst case);
//  - kStriped      P threads, lock-striped chained map — the Intel TBB
//                  concurrent_hash_map stand-in the paper benchmarks against;
//  - kAtomic       P threads, shared open-addressing table with CAS claiming
//                  and fetch_add counts (lock-free, still shared cache lines);
//  - kWaitFree     the paper's primitive (partitioned ownership, SPSC routing);
//  - kWaitFreePipelined  the no-barrier variant (paper §VI future work).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "data/dataset.hpp"
#include "table/potential_table.hpp"

namespace wfbn {

enum class BuilderKind {
  kSequential,
  kGlobalLock,
  kStriped,
  kAtomic,
  kWaitFree,
  kWaitFreePipelined,
};

[[nodiscard]] std::string_view builder_kind_name(BuilderKind kind);

struct BuilderOptions {
  std::size_t threads = 1;
  /// Lock stripes for kStriped (TBB uses per-bucket locks; more stripes =
  /// finer locking).
  std::size_t stripes = 256;
  /// Expected distinct keys; 0 derives min(m, state space).
  std::size_t expected_distinct_keys = 0;
  bool pin_threads = false;
};

struct BuilderRunStats {
  /// Wall-clock of the parallel construction region only (conversion of a
  /// shared map into the canonical PotentialTable is excluded — the paper
  /// times table construction, not representation shuffling).
  double build_seconds = 0.0;
  /// Per-worker busy time inside the region.
  std::vector<double> worker_seconds;
  /// Lock acquisitions (global-lock / striped builders; 0 otherwise). One of
  /// the contention-model inputs in src/sim.
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t updates = 0;
};

/// Interface every construction strategy implements.
class ITableBuilder {
 public:
  virtual ~ITableBuilder() = default;

  /// Builds the potential table of `data`. Implementations are reusable:
  /// each call starts from an empty table and refreshes stats().
  [[nodiscard]] virtual PotentialTable build(const Dataset& data) = 0;

  [[nodiscard]] virtual const BuilderRunStats& stats() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual BuilderKind kind() const noexcept = 0;
};

/// Factory over all builder kinds.
[[nodiscard]] std::unique_ptr<ITableBuilder> make_builder(BuilderKind kind,
                                                          BuilderOptions options);

}  // namespace wfbn
