#include "baselines/builders.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "concurrent/affinity.hpp"
#include "concurrent/atomic_hash_map.hpp"
#include "concurrent/striped_hash_map.hpp"
#include "concurrent/thread_pool.hpp"
#include "core/wait_free_builder.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wfbn {

std::string_view builder_kind_name(BuilderKind kind) {
  switch (kind) {
    case BuilderKind::kSequential: return "sequential";
    case BuilderKind::kGlobalLock: return "global-lock";
    case BuilderKind::kStriped: return "striped-lock(tbb-like)";
    case BuilderKind::kAtomic: return "atomic-cas";
    case BuilderKind::kWaitFree: return "wait-free";
    case BuilderKind::kWaitFreePipelined: return "wait-free-pipelined";
  }
  return "unknown";
}

namespace {

std::size_t expected_keys(const Dataset& data, const BuilderOptions& options) {
  if (options.expected_distinct_keys != 0) return options.expected_distinct_keys;
  return static_cast<std::size_t>(std::min<std::uint64_t>(
      data.sample_count(), data.codec().state_space_size()));
}

/// Wraps a fully built shared count map into the canonical single-partition
/// PotentialTable (outside the timed region).
template <typename Map>
PotentialTable wrap_as_potential(const Map& map, const KeyCodec& codec,
                                 std::uint64_t samples) {
  PartitionedTable table(1, codec.state_space_size(), PartitionScheme::kModulo,
                         map.size());
  map.for_each([&](Key key, std::uint64_t c) { table.partition(0).increment(key, c); });
  return PotentialTable(codec, std::move(table), samples);
}

class SequentialBuilder final : public ITableBuilder {
 public:
  explicit SequentialBuilder(BuilderOptions options) : options_(options) {}

  PotentialTable build(const Dataset& data) override {
    stats_ = BuilderRunStats{};
    stats_.worker_seconds.assign(1, 0.0);
    const KeyCodec codec = data.codec();
    PartitionedTable table(1, codec.state_space_size(), PartitionScheme::kModulo,
                           expected_keys(data, options_));
    OpenHashTable& map = table.partition(0);
    Timer timer;
    for (std::size_t i = 0; i < data.sample_count(); ++i) {
      map.increment(codec.encode(data.row(i)));
    }
    stats_.build_seconds = stats_.worker_seconds[0] = timer.seconds();
    stats_.updates = data.sample_count();
    return PotentialTable(codec, std::move(table), data.sample_count());
  }

  const BuilderRunStats& stats() const noexcept override { return stats_; }
  std::string_view name() const noexcept override {
    return builder_kind_name(kind());
  }
  BuilderKind kind() const noexcept override { return BuilderKind::kSequential; }

 private:
  BuilderOptions options_;
  BuilderRunStats stats_;
};

/// Shared scan skeleton for the shared-table baselines: block-partition the
/// rows, encode, and hand each key to `update(key)` on the worker's thread.
template <typename UpdateFn>
void scan_rows(const Dataset& data, const KeyCodec& codec, ThreadPool& pool,
               bool pin, std::vector<double>& worker_seconds,
               const UpdateFn& update) {
  const std::size_t m = data.sample_count();
  worker_seconds.assign(pool.size(), 0.0);
  pool.run([&](std::size_t p) {
    if (pin) pin_current_thread(p);
    Timer timer;
    const auto [lo, hi] = ThreadPool::block_range(m, pool.size(), p);
    for (std::size_t i = lo; i < hi; ++i) {
      update(codec.encode(data.row(i)));
    }
    worker_seconds[p] = timer.seconds();
  });
}

class GlobalLockBuilder final : public ITableBuilder {
 public:
  explicit GlobalLockBuilder(BuilderOptions options) : options_(options) {}

  PotentialTable build(const Dataset& data) override {
    stats_ = BuilderRunStats{};
    const KeyCodec codec = data.codec();
    OpenHashTable map(expected_keys(data, options_));
    std::mutex mutex;
    ThreadPool pool(options_.threads);
    Timer timer;
    scan_rows(data, codec, pool, options_.pin_threads, stats_.worker_seconds,
              [&](Key key) {
                std::lock_guard lock(mutex);
                map.increment(key);
              });
    stats_.build_seconds = timer.seconds();
    stats_.updates = data.sample_count();
    stats_.lock_acquisitions = data.sample_count();
    return wrap_as_potential(map, codec, data.sample_count());
  }

  const BuilderRunStats& stats() const noexcept override { return stats_; }
  std::string_view name() const noexcept override {
    return builder_kind_name(kind());
  }
  BuilderKind kind() const noexcept override { return BuilderKind::kGlobalLock; }

 private:
  BuilderOptions options_;
  BuilderRunStats stats_;
};

class StripedBuilder final : public ITableBuilder {
 public:
  explicit StripedBuilder(BuilderOptions options) : options_(options) {}

  PotentialTable build(const Dataset& data) override {
    stats_ = BuilderRunStats{};
    const KeyCodec codec = data.codec();
    StripedHashMap map(expected_keys(data, options_), options_.stripes);
    ThreadPool pool(options_.threads);
    Timer timer;
    scan_rows(data, codec, pool, options_.pin_threads, stats_.worker_seconds,
              [&](Key key) { map.increment(key); });
    stats_.build_seconds = timer.seconds();
    stats_.updates = data.sample_count();
    stats_.lock_acquisitions = map.lock_acquisitions();
    return wrap_as_potential(map, codec, data.sample_count());
  }

  const BuilderRunStats& stats() const noexcept override { return stats_; }
  std::string_view name() const noexcept override {
    return builder_kind_name(kind());
  }
  BuilderKind kind() const noexcept override { return BuilderKind::kStriped; }

 private:
  BuilderOptions options_;
  BuilderRunStats stats_;
};

class AtomicBuilder final : public ITableBuilder {
 public:
  explicit AtomicBuilder(BuilderOptions options) : options_(options) {}

  PotentialTable build(const Dataset& data) override {
    stats_ = BuilderRunStats{};
    const KeyCodec codec = data.codec();
    AtomicHashMap map(expected_keys(data, options_));
    ThreadPool pool(options_.threads);
    Timer timer;
    scan_rows(data, codec, pool, options_.pin_threads, stats_.worker_seconds,
              [&](Key key) { map.increment(key); });
    stats_.build_seconds = timer.seconds();
    stats_.updates = data.sample_count();
    return wrap_as_potential(map, codec, data.sample_count());
  }

  const BuilderRunStats& stats() const noexcept override { return stats_; }
  std::string_view name() const noexcept override {
    return builder_kind_name(kind());
  }
  BuilderKind kind() const noexcept override { return BuilderKind::kAtomic; }

 private:
  BuilderOptions options_;
  BuilderRunStats stats_;
};

class WaitFreeAdapter final : public ITableBuilder {
 public:
  WaitFreeAdapter(BuilderOptions options, bool pipelined)
      : pipelined_(pipelined) {
    WaitFreeBuilderOptions wf;
    wf.threads = options.threads;
    wf.pipelined = pipelined;
    wf.pin_threads = options.pin_threads;
    wf.expected_distinct_keys = options.expected_distinct_keys;
    builder_ = std::make_unique<WaitFreeBuilder>(wf);
  }

  PotentialTable build(const Dataset& data) override {
    PotentialTable table = builder_->build(data);
    const BuildStats& bs = builder_->stats();
    stats_ = BuilderRunStats{};
    stats_.build_seconds = bs.total_seconds;
    stats_.worker_seconds.reserve(bs.workers.size());
    for (const WorkerStats& w : bs.workers) {
      stats_.worker_seconds.push_back(w.stage1_seconds + w.stage2_seconds);
    }
    stats_.updates = data.sample_count();
    return table;
  }

  const BuilderRunStats& stats() const noexcept override { return stats_; }
  std::string_view name() const noexcept override {
    return builder_kind_name(kind());
  }
  BuilderKind kind() const noexcept override {
    return pipelined_ ? BuilderKind::kWaitFreePipelined : BuilderKind::kWaitFree;
  }

 private:
  bool pipelined_;
  std::unique_ptr<WaitFreeBuilder> builder_;
  BuilderRunStats stats_;
};

}  // namespace

std::unique_ptr<ITableBuilder> make_builder(BuilderKind kind,
                                            BuilderOptions options) {
  WFBN_EXPECT(options.threads >= 1, "builder needs at least one thread");
  switch (kind) {
    case BuilderKind::kSequential:
      return std::make_unique<SequentialBuilder>(options);
    case BuilderKind::kGlobalLock:
      return std::make_unique<GlobalLockBuilder>(options);
    case BuilderKind::kStriped:
      return std::make_unique<StripedBuilder>(options);
    case BuilderKind::kAtomic:
      return std::make_unique<AtomicBuilder>(options);
    case BuilderKind::kWaitFree:
      return std::make_unique<WaitFreeAdapter>(options, /*pipelined=*/false);
    case BuilderKind::kWaitFreePipelined:
      return std::make_unique<WaitFreeAdapter>(options, /*pipelined=*/true);
  }
  throw PreconditionError("unknown builder kind");
}

}  // namespace wfbn
