// Built-in benchmark networks (paper reference [1]: the Hebrew University
// Bayesian network repository). ASIA, CANCER and EARTHQUAKE ship with their
// canonical published CPTs; SURVEY, SACHS, CHILD and ALARM ship with the
// published structures and seeded Dirichlet CPTs (the repository's CPTs are
// large; for structure-learning experiments only the structure is the ground
// truth, and skewed random CPTs give detectable dependencies).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bn/network.hpp"

namespace wfbn {

enum class RepositoryNetwork {
  kAsia,        ///< 8 nodes, 8 edges  (Lauritzen & Spiegelhalter 1988)
  kCancer,      ///< 5 nodes, 4 edges  (Korb & Nicholson)
  kEarthquake,  ///< 5 nodes, 4 edges  (Pearl 1988)
  kSurvey,      ///< 6 nodes, 6 edges  (Scutari's survey network structure)
  kSachs,       ///< 11 nodes, 17 edges (Sachs et al. 2005 consensus network)
  kChild,       ///< 20 nodes, 25 edges (Spiegelhalter's CHILD network)
  kAlarm,       ///< 37 nodes, 46 edges (Beinlich et al. 1989)
};

/// Instantiates a repository network. `cpt_seed` parameterizes the Dirichlet
/// CPTs of the structure-only networks (ignored for networks with canonical
/// CPTs).
[[nodiscard]] BayesianNetwork load_network(RepositoryNetwork which,
                                           std::uint64_t cpt_seed = 42);

/// All repository entries, for parameterized tests.
[[nodiscard]] std::vector<RepositoryNetwork> all_repository_networks();

[[nodiscard]] std::string repository_network_name(RepositoryNetwork which);

}  // namespace wfbn
