#include "bn/metrics.hpp"

#include "util/error.hpp"

namespace wfbn {

SkeletonMetrics compare_skeletons(const UndirectedGraph& learned,
                                  const UndirectedGraph& truth) {
  WFBN_EXPECT(learned.node_count() == truth.node_count(),
              "skeletons must share a node set");
  SkeletonMetrics m;
  for (const Edge& e : learned.edges()) {
    if (truth.has_edge(e.from, e.to)) {
      ++m.true_positives;
    } else {
      ++m.false_positives;
    }
  }
  for (const Edge& e : truth.edges()) {
    if (!learned.has_edge(e.from, e.to)) ++m.false_negatives;
  }
  const auto tp = static_cast<double>(m.true_positives);
  const double denom_p = tp + static_cast<double>(m.false_positives);
  const double denom_r = tp + static_cast<double>(m.false_negatives);
  m.precision = denom_p > 0.0 ? tp / denom_p : 1.0;
  m.recall = denom_r > 0.0 ? tp / denom_r : 1.0;
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

std::size_t structural_hamming_distance(const Dag& learned, const Dag& truth) {
  WFBN_EXPECT(learned.node_count() == truth.node_count(),
              "DAGs must share a node set");
  std::size_t distance = 0;
  const std::size_t n = learned.node_count();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const bool l_uv = learned.has_edge(u, v);
      const bool l_vu = learned.has_edge(v, u);
      const bool t_uv = truth.has_edge(u, v);
      const bool t_vu = truth.has_edge(v, u);
      const bool l_any = l_uv || l_vu;
      const bool t_any = t_uv || t_vu;
      if (l_any != t_any) {
        ++distance;  // missing or extra adjacency
      } else if (l_any && (l_uv != t_uv)) {
        ++distance;  // present in both but reversed
      }
    }
  }
  return distance;
}

}  // namespace wfbn
