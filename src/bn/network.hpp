// A discrete Bayesian network: DAG + per-node cardinalities + CPTs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bn/cpt.hpp"
#include "bn/dag.hpp"
#include "util/rng.hpp"

namespace wfbn {

class BayesianNetwork {
 public:
  /// Network over `dag` with the given node cardinalities and uniform CPTs.
  /// Node names are optional (default "X0", "X1", ...).
  BayesianNetwork(Dag dag, std::vector<std::uint32_t> cardinalities,
                  std::vector<std::string> names = {});

  /// Fills every CPT with Dirichlet(alpha) draws, deterministically in `seed`.
  void randomize_cpts(std::uint64_t seed, double alpha = 0.5);

  /// Installs an explicit CPT for `node`. The CPT's parent cardinalities must
  /// match dag().parents(node) order. Throws DataError on shape mismatch.
  void set_cpt(NodeId node, Cpt cpt);

  [[nodiscard]] const Dag& dag() const noexcept { return dag_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return cardinalities_.size();
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cardinalities() const noexcept {
    return cardinalities_;
  }
  [[nodiscard]] std::uint32_t cardinality(NodeId v) const {
    return cardinalities_[v];
  }
  [[nodiscard]] const Cpt& cpt(NodeId v) const { return cpts_[v]; }
  [[nodiscard]] const std::string& name(NodeId v) const { return names_[v]; }
  [[nodiscard]] NodeId node_by_name(const std::string& name) const;

  /// Joint probability of a full assignment (states.size() == node_count()).
  [[nodiscard]] double joint_probability(std::span<const State> states) const;

  /// Average log-likelihood per sample of a dataset under this network.
  [[nodiscard]] double average_log_likelihood(const class Dataset& data) const;

  /// All CPTs normalized and shape-consistent with the DAG.
  [[nodiscard]] bool validate() const;

 private:
  [[nodiscard]] std::size_t parent_config_of(NodeId v,
                                             std::span<const State> states) const;

  Dag dag_;
  std::vector<std::uint32_t> cardinalities_;
  std::vector<Cpt> cpts_;
  std::vector<std::string> names_;
};

}  // namespace wfbn
