// Structure-recovery metrics: how close is a learned graph to the ground
// truth? Skeleton metrics compare undirected adjacency (the output of Cheng
// phases 1–3); SHD additionally counts orientation errors for directed
// comparisons.
#pragma once

#include <cstdint>

#include "bn/dag.hpp"

namespace wfbn {

struct SkeletonMetrics {
  std::size_t true_positives = 0;   ///< edges in both graphs
  std::size_t false_positives = 0;  ///< edges only in the learned graph
  std::size_t false_negatives = 0;  ///< edges only in the truth
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Compares two undirected skeletons over the same node set.
[[nodiscard]] SkeletonMetrics compare_skeletons(const UndirectedGraph& learned,
                                                const UndirectedGraph& truth);

/// Structural Hamming distance between two DAGs: missing edge, extra edge and
/// wrongly oriented edge each cost 1 (a reversed edge costs 1, not 2).
[[nodiscard]] std::size_t structural_hamming_distance(const Dag& learned,
                                                      const Dag& truth);

}  // namespace wfbn
