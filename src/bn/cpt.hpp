// Conditional probability tables P(X | parents(X)) for discrete variables.
//
// Layout: probabilities are stored per parent configuration, child state
// fastest: cell = state + cardinality * parent_config, where parent_config is
// the mixed-radix index of the parent states in parent-list order (first
// parent fastest) — the same convention as KeyCodec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "table/key_codec.hpp"
#include "util/rng.hpp"

namespace wfbn {

class Cpt {
 public:
  /// A CPT for a variable with `cardinality` states and parents of the given
  /// cardinalities, initialized to uniform distributions.
  Cpt(std::uint32_t cardinality, std::vector<std::uint32_t> parent_cardinalities);

  /// Builds from explicit probabilities (size = cardinality * #configs; each
  /// config's column must sum to 1 within 1e-6). Throws DataError otherwise.
  static Cpt from_probabilities(std::uint32_t cardinality,
                                std::vector<std::uint32_t> parent_cardinalities,
                                std::vector<double> probabilities);

  /// Random CPT: each parent configuration's distribution is drawn from a
  /// symmetric Dirichlet(alpha). Small alpha (e.g. 0.5) gives skewed,
  /// information-rich distributions — good for structure-recovery tests.
  static Cpt random(std::uint32_t cardinality,
                    std::vector<std::uint32_t> parent_cardinalities,
                    Xoshiro256& rng, double alpha = 0.5);

  [[nodiscard]] std::uint32_t cardinality() const noexcept { return cardinality_; }
  [[nodiscard]] const std::vector<std::uint32_t>& parent_cardinalities()
      const noexcept {
    return parent_cardinalities_;
  }
  [[nodiscard]] std::size_t config_count() const noexcept { return configs_; }

  /// Mixed-radix index of a parent-state assignment (first parent fastest).
  [[nodiscard]] std::size_t config_index(std::span<const State> parent_states) const;

  [[nodiscard]] double probability(State state, std::size_t parent_config) const {
    return table_[parent_config * cardinality_ + state];
  }

  /// Samples a state given the parent configuration.
  [[nodiscard]] State sample(std::size_t parent_config, Xoshiro256& rng) const;

  /// Every configuration's distribution sums to 1 (±1e-6) and is
  /// non-negative.
  [[nodiscard]] bool is_normalized() const noexcept;

  [[nodiscard]] const std::vector<double>& raw() const noexcept { return table_; }

 private:
  std::uint32_t cardinality_;
  std::vector<std::uint32_t> parent_cardinalities_;
  std::size_t configs_;
  std::vector<double> table_;
};

}  // namespace wfbn
