#include "bn/inference.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace wfbn {

Factor::Factor(std::vector<std::size_t> variables,
               std::vector<std::uint32_t> cardinalities)
    : variables_(std::move(variables)), cardinalities_(std::move(cardinalities)) {
  WFBN_EXPECT(variables_.size() == cardinalities_.size(),
              "factor shape mismatch");
  std::size_t cells = 1;
  for (const std::uint32_t r : cardinalities_) {
    WFBN_EXPECT(r >= 1, "cardinality must be >= 1");
    cells *= r;
    WFBN_EXPECT(cells <= (1u << 26), "factor too large — elimination blow-up");
  }
  values_.assign(cells, 0.0);
}

std::size_t Factor::position_of(std::size_t variable) const {
  const auto it = std::find(variables_.begin(), variables_.end(), variable);
  WFBN_EXPECT(it != variables_.end(), "variable not in factor scope");
  return static_cast<std::size_t>(it - variables_.begin());
}

Factor Factor::multiply(const Factor& other) const {
  // Result scope: this factor's variables, then other's new ones.
  std::vector<std::size_t> vars = variables_;
  std::vector<std::uint32_t> cards = cardinalities_;
  for (std::size_t i = 0; i < other.variables_.size(); ++i) {
    if (std::find(vars.begin(), vars.end(), other.variables_[i]) == vars.end()) {
      vars.push_back(other.variables_[i]);
      cards.push_back(other.cardinalities_[i]);
    }
  }
  Factor result(vars, cards);

  // Per result variable: its stride in each operand (0 when absent).
  const std::size_t k = vars.size();
  std::vector<std::size_t> stride_a(k, 0);
  std::vector<std::size_t> stride_b(k, 0);
  {
    std::size_t s = 1;
    for (std::size_t i = 0; i < variables_.size(); ++i) {
      const auto pos = static_cast<std::size_t>(
          std::find(vars.begin(), vars.end(), variables_[i]) - vars.begin());
      stride_a[pos] = s;
      s *= cardinalities_[i];
    }
    s = 1;
    for (std::size_t i = 0; i < other.variables_.size(); ++i) {
      const auto pos = static_cast<std::size_t>(
          std::find(vars.begin(), vars.end(), other.variables_[i]) - vars.begin());
      stride_b[pos] = s;
      s *= other.cardinalities_[i];
    }
  }

  // Odometer walk over the result cells.
  std::vector<std::uint32_t> assignment(k, 0);
  std::size_t index_a = 0;
  std::size_t index_b = 0;
  for (std::size_t cell = 0; cell < result.values_.size(); ++cell) {
    result.values_[cell] = values_[index_a] * other.values_[index_b];
    for (std::size_t d = 0; d < k; ++d) {
      if (++assignment[d] < result.cardinalities_[d]) {
        index_a += stride_a[d];
        index_b += stride_b[d];
        break;
      }
      assignment[d] = 0;
      index_a -= stride_a[d] * (result.cardinalities_[d] - 1);
      index_b -= stride_b[d] * (result.cardinalities_[d] - 1);
    }
  }
  return result;
}

Factor Factor::sum_out(std::size_t variable) const {
  const std::size_t pos = position_of(variable);
  std::vector<std::size_t> vars;
  std::vector<std::uint32_t> cards;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (i != pos) {
      vars.push_back(variables_[i]);
      cards.push_back(cardinalities_[i]);
    }
  }
  if (vars.empty()) {
    // Scalar result: keep a 1-cell factor over a dummy empty scope by
    // returning a factor with one pseudo-variable of cardinality 1.
    Factor scalar({}, {});
    scalar.values_.assign(1, total());
    return scalar;
  }
  Factor result(vars, cards);

  std::size_t inner_stride = 1;
  for (std::size_t i = 0; i < pos; ++i) inner_stride *= cardinalities_[i];
  const std::uint32_t r = cardinalities_[pos];
  const std::size_t outer_stride = inner_stride * r;

  for (std::size_t cell = 0; cell < values_.size(); ++cell) {
    const std::size_t inner = cell % inner_stride;
    const std::size_t outer = cell / outer_stride;
    const std::size_t target = outer * inner_stride + inner;
    result.values_[target] += values_[cell];
  }
  return result;
}

Factor Factor::restrict_to(std::size_t variable, State state) const {
  const std::size_t pos = position_of(variable);
  WFBN_EXPECT(state < cardinalities_[pos], "state out of range");
  std::vector<std::size_t> vars;
  std::vector<std::uint32_t> cards;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (i != pos) {
      vars.push_back(variables_[i]);
      cards.push_back(cardinalities_[i]);
    }
  }
  if (vars.empty()) {
    Factor scalar({}, {});
    scalar.values_.assign(1, values_[state]);
    return scalar;
  }
  Factor result(vars, cards);

  std::size_t inner_stride = 1;
  for (std::size_t i = 0; i < pos; ++i) inner_stride *= cardinalities_[i];
  const std::uint32_t r = cardinalities_[pos];
  for (std::size_t target = 0; target < result.values_.size(); ++target) {
    const std::size_t inner = target % inner_stride;
    const std::size_t outer = target / inner_stride;
    result.values_[target] =
        values_[outer * inner_stride * r + state * inner_stride + inner];
  }
  return result;
}

double Factor::total() const noexcept {
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum;
}

Factor cpt_factor(const BayesianNetwork& network, NodeId v) {
  std::vector<std::size_t> vars{v};
  std::vector<std::uint32_t> cards{network.cardinality(v)};
  for (const NodeId parent : network.dag().parents(v)) {
    vars.push_back(parent);
    cards.push_back(network.cardinality(parent));
  }
  Factor factor(vars, cards);
  // Cpt layout is state + r * parent_config with parents first-fastest in
  // parent order — exactly the factor's (v, parents...) layout.
  const Cpt& cpt = network.cpt(v);
  for (std::size_t cell = 0; cell < factor.cell_count(); ++cell) {
    factor.set_value(cell, cpt.raw()[cell]);
  }
  return factor;
}

std::vector<double> exact_posterior(const BayesianNetwork& network,
                                    std::span<const std::size_t> query,
                                    std::span<const Evidence> evidence) {
  WFBN_EXPECT(!query.empty(), "query set must be non-empty");
  const std::size_t n = network.node_count();
  std::set<std::size_t> keep(query.begin(), query.end());
  WFBN_EXPECT(keep.size() == query.size(), "duplicate query variables");
  for (const Evidence& e : evidence) {
    WFBN_EXPECT(e.variable < n, "evidence variable out of range");
    WFBN_EXPECT(keep.count(e.variable) == 0,
                "evidence must be disjoint from the query");
  }

  // CPT factors restricted to the evidence.
  std::vector<Factor> factors;
  factors.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    Factor f = cpt_factor(network, v);
    for (const Evidence& e : evidence) {
      if (std::find(f.variables().begin(), f.variables().end(), e.variable) !=
          f.variables().end()) {
        f = f.restrict_to(e.variable, e.state);
      }
    }
    factors.push_back(std::move(f));
  }

  // Eliminate every non-query, non-evidence variable, min-degree first.
  std::set<std::size_t> to_eliminate;
  for (std::size_t v = 0; v < n; ++v) {
    if (keep.count(v)) continue;
    bool is_evidence = false;
    for (const Evidence& e : evidence) {
      if (e.variable == v) is_evidence = true;
    }
    if (!is_evidence) to_eliminate.insert(v);
  }

  while (!to_eliminate.empty()) {
    // Min-degree heuristic: eliminate the variable whose combined factor has
    // the smallest scope.
    std::size_t best = *to_eliminate.begin();
    std::size_t best_scope = ~std::size_t{0};
    for (const std::size_t v : to_eliminate) {
      std::set<std::size_t> scope;
      for (const Factor& f : factors) {
        if (std::find(f.variables().begin(), f.variables().end(), v) !=
            f.variables().end()) {
          scope.insert(f.variables().begin(), f.variables().end());
        }
      }
      if (scope.size() < best_scope) {
        best_scope = scope.size();
        best = v;
      }
    }

    // Multiply all factors mentioning `best`, sum it out, put the result back.
    std::vector<Factor> remaining;
    Factor combined({}, {});
    combined.set_value(0, 1.0);
    bool found = false;
    for (Factor& f : factors) {
      if (std::find(f.variables().begin(), f.variables().end(), best) !=
          f.variables().end()) {
        combined = found ? combined.multiply(f) : std::move(f);
        found = true;
      } else {
        remaining.push_back(std::move(f));
      }
    }
    if (found) remaining.push_back(combined.sum_out(best));
    factors = std::move(remaining);
    to_eliminate.erase(best);
  }

  // Multiply what is left into one factor over the query variables.
  Factor joint({}, {});
  joint.set_value(0, 1.0);
  for (const Factor& f : factors) joint = joint.multiply(f);

  const double normalizer = joint.total();
  if (normalizer <= 0.0) {
    throw DataError("evidence has zero probability under the network");
  }

  // Reorder the joint's scope into the requested query order.
  std::vector<std::uint32_t> out_cards;
  out_cards.reserve(query.size());
  for (const std::size_t q : query) out_cards.push_back(network.cardinality(q));
  std::vector<double> out(joint.cell_count(), 0.0);
  WFBN_EXPECT(joint.variables().size() == query.size(),
              "elimination left an unexpected scope");

  // Strides of each query variable inside the joint factor.
  std::vector<std::size_t> joint_stride(query.size(), 0);
  {
    std::size_t s = 1;
    for (std::size_t i = 0; i < joint.variables().size(); ++i) {
      const auto pos = static_cast<std::size_t>(
          std::find(query.begin(), query.end(), joint.variables()[i]) -
          query.begin());
      joint_stride[pos] = s;
      s *= joint.cardinalities()[i];
    }
  }
  std::vector<std::uint32_t> assignment(query.size(), 0);
  for (std::size_t cell = 0; cell < out.size(); ++cell) {
    std::size_t joint_cell = 0;
    for (std::size_t d = 0; d < query.size(); ++d) {
      joint_cell += assignment[d] * joint_stride[d];
    }
    out[cell] = joint.value_at(joint_cell) / normalizer;
    for (std::size_t d = 0; d < query.size(); ++d) {
      if (++assignment[d] < out_cards[d]) break;
      assignment[d] = 0;
    }
  }
  return out;
}

double exact_evidence_probability(const BayesianNetwork& network,
                                  std::span<const Evidence> evidence) {
  WFBN_EXPECT(!evidence.empty(), "evidence must be non-empty");
  // Chain rule: P(e) = P(e_1) · P(e_2 | e_1) · ... — each term is an exact
  // single-variable posterior given the previously fixed evidence.
  double probability = 1.0;
  std::vector<Evidence> given;
  for (const Evidence& e : evidence) {
    const std::size_t q[] = {e.variable};
    const std::vector<double> p = exact_posterior(network, q, given);
    probability *= p[e.state];
    if (probability == 0.0) return 0.0;
    given.push_back(e);
  }
  return probability;
}

}  // namespace wfbn
