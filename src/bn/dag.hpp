// Graph substrate for Bayesian networks and the structure learner:
// a directed acyclic graph with cycle protection, plus the undirected graph
// the constraint-based learner manipulates (draft skeletons are undirected;
// Cheng's phases reason about undirected paths and cut-sets).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace wfbn {

using NodeId = std::size_t;

struct Edge {
  NodeId from;
  NodeId to;
  [[nodiscard]] bool operator==(const Edge&) const = default;
};

/// Directed acyclic graph over nodes 0..n-1. add_edge refuses cycles, so the
/// acyclicity invariant always holds.
class Dag {
 public:
  explicit Dag(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const noexcept { return parents_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds u → v. Returns false (and leaves the graph unchanged) if the edge
  /// already exists or would create a cycle. Throws on out-of-range nodes or
  /// self-loops.
  bool add_edge(NodeId u, NodeId v);

  /// Removes u → v; returns false if absent.
  bool remove_edge(NodeId u, NodeId v);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;
  [[nodiscard]] bool would_create_cycle(NodeId u, NodeId v) const;

  [[nodiscard]] const std::vector<NodeId>& parents(NodeId v) const {
    return parents_[v];
  }
  [[nodiscard]] const std::vector<NodeId>& children(NodeId v) const {
    return children_[v];
  }

  /// All edges in (from, to) lexicographic order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Topological order (parents before children). The graph is acyclic by
  /// construction, so this always succeeds.
  [[nodiscard]] std::vector<NodeId> topological_order() const;

  /// All ancestors of the nodes in `seeds` (excluding the seeds themselves
  /// unless reachable via a longer path).
  [[nodiscard]] std::vector<bool> ancestors_of(const std::vector<NodeId>& seeds) const;

  /// The undirected skeleton (edge directions dropped).
  [[nodiscard]] class UndirectedGraph skeleton() const;

 private:
  [[nodiscard]] bool reachable(NodeId from, NodeId to) const;

  std::vector<std::vector<NodeId>> parents_;
  std::vector<std::vector<NodeId>> children_;
  std::size_t edge_count_ = 0;
};

/// Simple undirected graph over nodes 0..n-1 (adjacency lists, no multi-edges).
class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Returns false if the edge already exists. Throws on out-of-range or
  /// self-loop.
  bool add_edge(NodeId u, NodeId v);
  bool remove_edge(NodeId u, NodeId v);
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId v) const {
    return adjacency_[v];
  }

  /// Undirected edges as (min, max) pairs in lexicographic order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Is there a path u ⇝ v? `blocked` nodes (if any) may not be traversed
  /// (u and v themselves are always allowed).
  [[nodiscard]] bool has_path(NodeId u, NodeId v,
                              const std::vector<bool>* blocked = nullptr) const;

  /// Nodes that lie on at least one simple path between u and v, excluding u
  /// and v — the search space for Cheng's cut-sets. A node w qualifies iff w
  /// reaches u without passing v and reaches v without passing u.
  [[nodiscard]] std::vector<NodeId> nodes_on_paths(NodeId u, NodeId v) const;

  /// Connected component label per node (labels are 0-based, ordered by
  /// smallest member).
  [[nodiscard]] std::vector<std::size_t> components() const;

 private:
  /// All nodes reachable from `start` without traversing `forbidden`.
  [[nodiscard]] std::vector<bool> reach_avoiding(NodeId start, NodeId forbidden) const;

  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace wfbn
