#include "bn/repository.hpp"

#include <map>

#include "util/error.hpp"

namespace wfbn {

namespace {

/// Helper assembling a network from (name, cardinality) node specs and
/// name-based edges, with Dirichlet CPTs.
BayesianNetwork build_random_cpt_network(
    const std::vector<std::pair<std::string, std::uint32_t>>& nodes,
    const std::vector<std::pair<std::string, std::string>>& edges,
    std::uint64_t cpt_seed) {
  std::map<std::string, NodeId> index;
  std::vector<std::uint32_t> cards;
  std::vector<std::string> names;
  for (const auto& [name, r] : nodes) {
    WFBN_EXPECT(index.emplace(name, names.size()).second, "duplicate node name");
    names.push_back(name);
    cards.push_back(r);
  }
  Dag dag(names.size());
  for (const auto& [from, to] : edges) {
    WFBN_EXPECT(index.count(from) == 1, "unknown edge endpoint: " + from);
    WFBN_EXPECT(index.count(to) == 1, "unknown edge endpoint: " + to);
    WFBN_EXPECT(dag.add_edge(index[from], index[to]), "bad edge: " + from + "->" + to);
  }
  BayesianNetwork network(std::move(dag), std::move(cards), std::move(names));
  network.randomize_cpts(cpt_seed);
  return network;
}

BayesianNetwork build_asia() {
  // Lauritzen & Spiegelhalter (1988) "chest clinic". States: 0 = yes, 1 = no.
  const std::vector<std::string> names = {"asia", "tub",    "smoke", "lung",
                                          "bronc", "either", "xray",  "dysp"};
  enum { ASIA, TUB, SMOKE, LUNG, BRONC, EITHER, XRAY, DYSP };
  Dag dag(8);
  dag.add_edge(ASIA, TUB);
  dag.add_edge(SMOKE, LUNG);
  dag.add_edge(SMOKE, BRONC);
  dag.add_edge(TUB, EITHER);
  dag.add_edge(LUNG, EITHER);
  dag.add_edge(EITHER, XRAY);
  dag.add_edge(EITHER, DYSP);
  dag.add_edge(BRONC, DYSP);
  BayesianNetwork bn(std::move(dag), std::vector<std::uint32_t>(8, 2), names);

  // Root priors: P(yes), P(no).
  bn.set_cpt(ASIA, Cpt::from_probabilities(2, {}, {0.01, 0.99}));
  bn.set_cpt(SMOKE, Cpt::from_probabilities(2, {}, {0.5, 0.5}));
  // Parent-state order: config index is parent-list order, first parent
  // fastest; columns below are [child=yes, child=no] per parent config.
  bn.set_cpt(TUB, Cpt::from_probabilities(2, {2},
                                          {/*asia=yes*/ 0.05, 0.95,
                                           /*asia=no */ 0.01, 0.99}));
  bn.set_cpt(LUNG, Cpt::from_probabilities(2, {2},
                                           {/*smoke=yes*/ 0.10, 0.90,
                                            /*smoke=no */ 0.01, 0.99}));
  bn.set_cpt(BRONC, Cpt::from_probabilities(2, {2},
                                            {/*smoke=yes*/ 0.60, 0.40,
                                             /*smoke=no */ 0.30, 0.70}));
  // either = tub OR lung (deterministic). Parents (tub, lung); tub fastest.
  bn.set_cpt(EITHER, Cpt::from_probabilities(
                         2, {2, 2},
                         {/*t=y,l=y*/ 1.0, 0.0,
                          /*t=n,l=y*/ 1.0, 0.0,
                          /*t=y,l=n*/ 1.0, 0.0,
                          /*t=n,l=n*/ 0.0, 1.0}));
  bn.set_cpt(XRAY, Cpt::from_probabilities(2, {2},
                                           {/*either=yes*/ 0.98, 0.02,
                                            /*either=no */ 0.05, 0.95}));
  // Parents (either, bronc); either fastest.
  bn.set_cpt(DYSP, Cpt::from_probabilities(
                       2, {2, 2},
                       {/*e=y,b=y*/ 0.90, 0.10,
                        /*e=n,b=y*/ 0.80, 0.20,
                        /*e=y,b=n*/ 0.70, 0.30,
                        /*e=n,b=n*/ 0.10, 0.90}));
  WFBN_EXPECT(bn.validate(), "ASIA CPTs malformed");
  return bn;
}

BayesianNetwork build_cancer() {
  // Korb & Nicholson's cancer network. States: 0 = first listed state.
  const std::vector<std::string> names = {"Pollution", "Smoker", "Cancer",
                                          "Xray", "Dyspnoea"};
  enum { POLLUTION, SMOKER, CANCER, XRAY, DYSP };
  Dag dag(5);
  dag.add_edge(POLLUTION, CANCER);
  dag.add_edge(SMOKER, CANCER);
  dag.add_edge(CANCER, XRAY);
  dag.add_edge(CANCER, DYSP);
  BayesianNetwork bn(std::move(dag), std::vector<std::uint32_t>(5, 2), names);
  bn.set_cpt(POLLUTION, Cpt::from_probabilities(2, {}, {0.90, 0.10}));  // low/high
  bn.set_cpt(SMOKER, Cpt::from_probabilities(2, {}, {0.30, 0.70}));     // yes/no
  // Parents (Pollution, Smoker); pollution fastest; child states (yes, no).
  bn.set_cpt(CANCER, Cpt::from_probabilities(
                         2, {2, 2},
                         {/*p=low ,s=yes*/ 0.030, 0.970,
                          /*p=high,s=yes*/ 0.050, 0.950,
                          /*p=low ,s=no */ 0.001, 0.999,
                          /*p=high,s=no */ 0.020, 0.980}));
  bn.set_cpt(XRAY, Cpt::from_probabilities(2, {2},
                                           {/*c=yes*/ 0.90, 0.10,
                                            /*c=no */ 0.20, 0.80}));
  bn.set_cpt(DYSP, Cpt::from_probabilities(2, {2},
                                           {/*c=yes*/ 0.65, 0.35,
                                            /*c=no */ 0.30, 0.70}));
  WFBN_EXPECT(bn.validate(), "CANCER CPTs malformed");
  return bn;
}

BayesianNetwork build_earthquake() {
  // Pearl (1988) burglary/earthquake/alarm. States: 0 = true, 1 = false.
  const std::vector<std::string> names = {"Burglary", "Earthquake", "Alarm",
                                          "JohnCalls", "MaryCalls"};
  enum { BURGLARY, EARTHQUAKE, ALARM, JOHN, MARY };
  Dag dag(5);
  dag.add_edge(BURGLARY, ALARM);
  dag.add_edge(EARTHQUAKE, ALARM);
  dag.add_edge(ALARM, JOHN);
  dag.add_edge(ALARM, MARY);
  BayesianNetwork bn(std::move(dag), std::vector<std::uint32_t>(5, 2), names);
  bn.set_cpt(BURGLARY, Cpt::from_probabilities(2, {}, {0.001, 0.999}));
  bn.set_cpt(EARTHQUAKE, Cpt::from_probabilities(2, {}, {0.002, 0.998}));
  // Parents (Burglary, Earthquake); burglary fastest.
  bn.set_cpt(ALARM, Cpt::from_probabilities(
                        2, {2, 2},
                        {/*b=t,e=t*/ 0.95, 0.05,
                         /*b=f,e=t*/ 0.29, 0.71,
                         /*b=t,e=f*/ 0.94, 0.06,
                         /*b=f,e=f*/ 0.001, 0.999}));
  bn.set_cpt(JOHN, Cpt::from_probabilities(2, {2},
                                           {/*a=t*/ 0.90, 0.10,
                                            /*a=f*/ 0.05, 0.95}));
  bn.set_cpt(MARY, Cpt::from_probabilities(2, {2},
                                           {/*a=t*/ 0.70, 0.30,
                                            /*a=f*/ 0.01, 0.99}));
  WFBN_EXPECT(bn.validate(), "EARTHQUAKE CPTs malformed");
  return bn;
}

BayesianNetwork build_survey(std::uint64_t seed) {
  return build_random_cpt_network(
      {{"Age", 3},
       {"Sex", 2},
       {"Education", 2},
       {"Occupation", 2},
       {"Residence", 2},
       {"Travel", 3}},
      {{"Age", "Education"},
       {"Sex", "Education"},
       {"Education", "Occupation"},
       {"Education", "Residence"},
       {"Occupation", "Travel"},
       {"Residence", "Travel"}},
      seed);
}

BayesianNetwork build_sachs(std::uint64_t seed) {
  // Sachs et al. (2005) consensus signaling network, 3-state discretization.
  return build_random_cpt_network(
      {{"Raf", 3}, {"Mek", 3}, {"Plcg", 3}, {"PIP2", 3}, {"PIP3", 3},
       {"Erk", 3}, {"Akt", 3}, {"PKA", 3}, {"PKC", 3}, {"P38", 3},
       {"Jnk", 3}},
      {{"PKC", "PKA"}, {"PKC", "Jnk"}, {"PKC", "P38"}, {"PKC", "Raf"},
       {"PKC", "Mek"}, {"PKA", "Jnk"}, {"PKA", "P38"}, {"PKA", "Raf"},
       {"PKA", "Mek"}, {"PKA", "Erk"}, {"PKA", "Akt"}, {"Raf", "Mek"},
       {"Mek", "Erk"}, {"Erk", "Akt"}, {"Plcg", "PIP2"}, {"Plcg", "PIP3"},
       {"PIP3", "PIP2"}},
      seed);
}

BayesianNetwork build_child(std::uint64_t seed) {
  // Spiegelhalter's CHILD (congenital heart disease) structure.
  return build_random_cpt_network(
      {{"BirthAsphyxia", 2}, {"Disease", 6},      {"Age", 3},
       {"LVH", 2},           {"DuctFlow", 3},     {"CardiacMixing", 4},
       {"LungParench", 3},   {"LungFlow", 3},     {"Sick", 2},
       {"LVHreport", 2},     {"HypDistrib", 2},   {"HypoxiaInO2", 3},
       {"CO2", 3},           {"ChestXray", 5},    {"Grunting", 2},
       {"LowerBodyO2", 3},   {"RUQO2", 3},        {"CO2Report", 2},
       {"XrayReport", 5},    {"GruntingReport", 2}},
      {{"BirthAsphyxia", "Disease"},
       {"Disease", "Age"},
       {"Disease", "Sick"},
       {"Disease", "LVH"},
       {"Disease", "DuctFlow"},
       {"Disease", "CardiacMixing"},
       {"Disease", "LungParench"},
       {"Disease", "LungFlow"},
       {"Sick", "Age"},
       {"LVH", "LVHreport"},
       {"DuctFlow", "HypDistrib"},
       {"CardiacMixing", "HypDistrib"},
       {"CardiacMixing", "HypoxiaInO2"},
       {"LungParench", "HypoxiaInO2"},
       {"LungParench", "CO2"},
       {"LungParench", "ChestXray"},
       {"LungFlow", "ChestXray"},
       {"LungParench", "Grunting"},
       {"Sick", "Grunting"},
       {"HypDistrib", "LowerBodyO2"},
       {"HypoxiaInO2", "LowerBodyO2"},
       {"HypoxiaInO2", "RUQO2"},
       {"CO2", "CO2Report"},
       {"ChestXray", "XrayReport"},
       {"Grunting", "GruntingReport"}},
      seed);
}

BayesianNetwork build_alarm(std::uint64_t seed) {
  // Beinlich et al. (1989) ALARM monitoring network, 37 nodes / 46 edges.
  return build_random_cpt_network(
      {{"CVP", 3},          {"PCWP", 3},        {"HISTORY", 2},
       {"TPR", 3},          {"BP", 3},          {"CO", 3},
       {"HRBP", 3},         {"HREKG", 3},       {"HRSAT", 3},
       {"PAP", 3},          {"SAO2", 3},        {"FIO2", 2},
       {"PRESS", 4},        {"EXPCO2", 4},      {"MINVOL", 4},
       {"MINVOLSET", 3},    {"HYPOVOLEMIA", 2}, {"LVFAILURE", 2},
       {"ANAPHYLAXIS", 2},  {"INSUFFANESTH", 2},{"PULMEMBOLUS", 2},
       {"INTUBATION", 3},   {"KINKEDTUBE", 2},  {"DISCONNECT", 2},
       {"LVEDVOLUME", 3},   {"STROKEVOLUME", 3},{"CATECHOL", 2},
       {"ERRLOWOUTPUT", 2}, {"HR", 3},          {"ERRCAUTER", 2},
       {"SHUNT", 2},        {"PVSAT", 3},       {"ARTCO2", 3},
       {"VENTALV", 4},      {"VENTLUNG", 4},    {"VENTTUBE", 4},
       {"VENTMACH", 4}},
      {{"MINVOLSET", "VENTMACH"},
       {"VENTMACH", "VENTTUBE"},
       {"DISCONNECT", "VENTTUBE"},
       {"VENTTUBE", "VENTLUNG"},
       {"KINKEDTUBE", "VENTLUNG"},
       {"INTUBATION", "VENTLUNG"},
       {"VENTLUNG", "VENTALV"},
       {"INTUBATION", "VENTALV"},
       {"VENTALV", "ARTCO2"},
       {"VENTALV", "PVSAT"},
       {"FIO2", "PVSAT"},
       {"PVSAT", "SAO2"},
       {"SHUNT", "SAO2"},
       {"PULMEMBOLUS", "PAP"},
       {"PULMEMBOLUS", "SHUNT"},
       {"INTUBATION", "SHUNT"},
       {"ARTCO2", "EXPCO2"},
       {"VENTLUNG", "EXPCO2"},
       {"VENTLUNG", "MINVOL"},
       {"INTUBATION", "MINVOL"},
       {"INTUBATION", "PRESS"},
       {"KINKEDTUBE", "PRESS"},
       {"VENTTUBE", "PRESS"},
       {"ARTCO2", "CATECHOL"},
       {"SAO2", "CATECHOL"},
       {"TPR", "CATECHOL"},
       {"INSUFFANESTH", "CATECHOL"},
       {"CATECHOL", "HR"},
       {"HR", "HRBP"},
       {"ERRLOWOUTPUT", "HRBP"},
       {"HR", "HREKG"},
       {"ERRCAUTER", "HREKG"},
       {"HR", "HRSAT"},
       {"ERRCAUTER", "HRSAT"},
       {"HR", "CO"},
       {"STROKEVOLUME", "CO"},
       {"CO", "BP"},
       {"TPR", "BP"},
       {"ANAPHYLAXIS", "TPR"},
       {"HYPOVOLEMIA", "LVEDVOLUME"},
       {"LVFAILURE", "LVEDVOLUME"},
       {"LVEDVOLUME", "CVP"},
       {"LVEDVOLUME", "PCWP"},
       {"HYPOVOLEMIA", "STROKEVOLUME"},
       {"LVFAILURE", "STROKEVOLUME"},
       {"LVFAILURE", "HISTORY"}},
      seed);
}

}  // namespace

BayesianNetwork load_network(RepositoryNetwork which, std::uint64_t cpt_seed) {
  switch (which) {
    case RepositoryNetwork::kAsia: return build_asia();
    case RepositoryNetwork::kCancer: return build_cancer();
    case RepositoryNetwork::kEarthquake: return build_earthquake();
    case RepositoryNetwork::kSurvey: return build_survey(cpt_seed);
    case RepositoryNetwork::kSachs: return build_sachs(cpt_seed);
    case RepositoryNetwork::kChild: return build_child(cpt_seed);
    case RepositoryNetwork::kAlarm: return build_alarm(cpt_seed);
  }
  throw PreconditionError("unknown repository network");
}

std::vector<RepositoryNetwork> all_repository_networks() {
  return {RepositoryNetwork::kAsia,   RepositoryNetwork::kCancer,
          RepositoryNetwork::kEarthquake, RepositoryNetwork::kSurvey,
          RepositoryNetwork::kSachs,  RepositoryNetwork::kChild,
          RepositoryNetwork::kAlarm};
}

std::string repository_network_name(RepositoryNetwork which) {
  switch (which) {
    case RepositoryNetwork::kAsia: return "asia";
    case RepositoryNetwork::kCancer: return "cancer";
    case RepositoryNetwork::kEarthquake: return "earthquake";
    case RepositoryNetwork::kSurvey: return "survey";
    case RepositoryNetwork::kSachs: return "sachs";
    case RepositoryNetwork::kChild: return "child";
    case RepositoryNetwork::kAlarm: return "alarm";
  }
  return "unknown";
}

}  // namespace wfbn
