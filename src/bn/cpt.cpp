#include "bn/cpt.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace wfbn {

namespace {
std::size_t config_product(const std::vector<std::uint32_t>& cards) {
  std::size_t configs = 1;
  for (const std::uint32_t r : cards) {
    WFBN_EXPECT(r >= 1, "parent cardinality must be >= 1");
    configs *= r;
    WFBN_EXPECT(configs <= (1u << 24), "CPT parent configuration space too large");
  }
  return configs;
}

/// Gamma(shape, 1) sampler (Marsaglia–Tsang for shape >= 1, boost for < 1).
double sample_gamma(double shape, Xoshiro256& rng) {
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
    const double u = rng.uniform01();
    return sample_gamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    // Standard normal via Box–Muller.
    const double u1 = rng.uniform01();
    const double u2 = rng.uniform01();
    const double x =
        std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
    const double v = std::pow(1.0 + c * x, 3);
    if (v <= 0.0) continue;
    const double u = rng.uniform01();
    if (std::log(u + 1e-300) < 0.5 * x * x + d - d * v + d * std::log(v)) {
      return d * v;
    }
  }
}
}  // namespace

Cpt::Cpt(std::uint32_t cardinality, std::vector<std::uint32_t> parent_cardinalities)
    : cardinality_(cardinality),
      parent_cardinalities_(std::move(parent_cardinalities)),
      configs_(config_product(parent_cardinalities_)) {
  WFBN_EXPECT(cardinality_ >= 1, "cardinality must be >= 1");
  table_.assign(configs_ * cardinality_, 1.0 / cardinality_);
}

Cpt Cpt::from_probabilities(std::uint32_t cardinality,
                            std::vector<std::uint32_t> parent_cardinalities,
                            std::vector<double> probabilities) {
  Cpt cpt(cardinality, std::move(parent_cardinalities));
  if (probabilities.size() != cpt.table_.size()) {
    throw DataError("CPT probability vector has wrong size");
  }
  cpt.table_ = std::move(probabilities);
  if (!cpt.is_normalized()) {
    throw DataError("CPT columns must be non-negative and sum to 1");
  }
  return cpt;
}

Cpt Cpt::random(std::uint32_t cardinality,
                std::vector<std::uint32_t> parent_cardinalities, Xoshiro256& rng,
                double alpha) {
  WFBN_EXPECT(alpha > 0.0, "Dirichlet concentration must be positive");
  Cpt cpt(cardinality, std::move(parent_cardinalities));
  for (std::size_t config = 0; config < cpt.configs_; ++config) {
    double sum = 0.0;
    for (std::uint32_t s = 0; s < cardinality; ++s) {
      const double g = sample_gamma(alpha, rng);
      cpt.table_[config * cardinality + s] = g;
      sum += g;
    }
    // Dirichlet draw = normalized independent gammas; guard the (measure-
    // zero) all-zeros corner by falling back to uniform.
    if (sum <= 0.0) {
      for (std::uint32_t s = 0; s < cardinality; ++s) {
        cpt.table_[config * cardinality + s] = 1.0 / cardinality;
      }
    } else {
      for (std::uint32_t s = 0; s < cardinality; ++s) {
        cpt.table_[config * cardinality + s] /= sum;
      }
    }
  }
  return cpt;
}

std::size_t Cpt::config_index(std::span<const State> parent_states) const {
  WFBN_EXPECT(parent_states.size() == parent_cardinalities_.size(),
              "parent state count mismatch");
  std::size_t index = 0;
  std::size_t stride = 1;
  for (std::size_t i = 0; i < parent_states.size(); ++i) {
    WFBN_EXPECT(parent_states[i] < parent_cardinalities_[i],
                "parent state out of range");
    index += parent_states[i] * stride;
    stride *= parent_cardinalities_[i];
  }
  return index;
}

State Cpt::sample(std::size_t parent_config, Xoshiro256& rng) const {
  WFBN_EXPECT(parent_config < configs_, "parent config out of range");
  const double u = rng.uniform01();
  double cumulative = 0.0;
  const double* column = table_.data() + parent_config * cardinality_;
  for (std::uint32_t s = 0; s + 1 < cardinality_; ++s) {
    cumulative += column[s];
    if (u < cumulative) return static_cast<State>(s);
  }
  return static_cast<State>(cardinality_ - 1);
}

bool Cpt::is_normalized() const noexcept {
  for (std::size_t config = 0; config < configs_; ++config) {
    double sum = 0.0;
    for (std::uint32_t s = 0; s < cardinality_; ++s) {
      const double p = table_[config * cardinality_ + s];
      if (p < 0.0 || p > 1.0 + 1e-9 || !std::isfinite(p)) return false;
      sum += p;
    }
    if (std::fabs(sum - 1.0) > 1e-6) return false;
  }
  return true;
}

}  // namespace wfbn
