// Forward (ancestral) sampling: generates i.i.d. observations from a
// Bayesian network by sampling nodes in topological order. This is the
// realistic-workload generator for the structure-learning examples and the
// statistical tests (the paper's own evaluation uses independent uniform
// data; see data/generators.hpp for that).
#pragma once

#include <cstdint>

#include "bn/network.hpp"
#include "data/dataset.hpp"

namespace wfbn {

/// Draws `samples` observations. Deterministic in (network, samples, seed,
/// threads): row block b uses RNG stream b. Parallel over row blocks.
[[nodiscard]] Dataset forward_sample(const BayesianNetwork& network,
                                     std::size_t samples, std::uint64_t seed,
                                     std::size_t threads = 1);

}  // namespace wfbn
