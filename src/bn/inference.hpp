// Exact inference on a Bayesian network by variable elimination.
//
// The paper positions inference as the complementary problem to structure
// learning (§III; its potential-table kernels descend from parallel exact
// inference work [26][27]). This module provides the exact-posterior oracle
// the tests and examples check the data-driven QueryEngine against:
//
//   P(Q | E = e)  for query set Q and evidence assignment e,
//
// computed by multiplying the network's CPTs as factors, restricting them to
// the evidence, and summing out non-query variables in a min-degree
// elimination order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bn/network.hpp"
#include "core/query.hpp"  // Evidence

namespace wfbn {

/// A factor over a set of variables: a dense non-negative table, first
/// variable fastest (same layout convention as MarginalTable/Cpt).
class Factor {
 public:
  Factor(std::vector<std::size_t> variables,
         std::vector<std::uint32_t> cardinalities);

  [[nodiscard]] const std::vector<std::size_t>& variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cardinalities() const noexcept {
    return cardinalities_;
  }
  [[nodiscard]] std::size_t cell_count() const noexcept { return values_.size(); }
  [[nodiscard]] double value_at(std::size_t cell) const { return values_[cell]; }
  void set_value(std::size_t cell, double v) { values_[cell] = v; }

  /// Factor product: result is over the union of the variable sets.
  [[nodiscard]] Factor multiply(const Factor& other) const;

  /// Sums out one variable (which must be present).
  [[nodiscard]] Factor sum_out(std::size_t variable) const;

  /// Restricts to variable = state (drops the variable from the scope).
  [[nodiscard]] Factor restrict_to(std::size_t variable, State state) const;

  /// Sum of all cells.
  [[nodiscard]] double total() const noexcept;

 private:
  [[nodiscard]] std::size_t position_of(std::size_t variable) const;

  std::vector<std::size_t> variables_;
  std::vector<std::uint32_t> cardinalities_;
  std::vector<double> values_;
};

/// Builds node v's CPT as a factor over (v, parents(v)...).
[[nodiscard]] Factor cpt_factor(const BayesianNetwork& network, NodeId v);

/// Exact posterior P(Q | evidence) as probabilities in MarginalTable layout
/// over `query` (first variable fastest). Throws DataError if the evidence
/// has zero probability.
[[nodiscard]] std::vector<double> exact_posterior(
    const BayesianNetwork& network, std::span<const std::size_t> query,
    std::span<const Evidence> evidence = {});

/// Exact marginal probability of an evidence assignment.
[[nodiscard]] double exact_evidence_probability(const BayesianNetwork& network,
                                                std::span<const Evidence> evidence);

}  // namespace wfbn
