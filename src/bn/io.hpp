// Bayesian-network persistence in a simple line-oriented text format
// (".net"-style, human-diffable):
//
//   wfbn-network 1
//   nodes <n>
//   node <name> <cardinality>              (× n)
//   parents <name> <k> <parent-names...>   (× n, in CPT configuration order)
//   cpt <name> <value-count> <p...>        (× n, probabilities in Cpt layout)
//   end
//
// Parent lists are serialized per node (not as an edge list) because parent
// order defines the CPT layout and must survive the round trip.
//
// Round-trips every BayesianNetwork this library can represent.
#pragma once

#include <iosfwd>
#include <string>

#include "bn/network.hpp"

namespace wfbn {

void write_network(const BayesianNetwork& network, std::ostream& out);
void write_network_file(const BayesianNetwork& network, const std::string& path);

/// Throws DataError on any malformed input.
[[nodiscard]] BayesianNetwork read_network(std::istream& in);
[[nodiscard]] BayesianNetwork read_network_file(const std::string& path);

}  // namespace wfbn
