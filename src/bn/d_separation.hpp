// d-separation queries on a DAG (paper §II-A: active paths / influence flow).
//
// Implements the linear-time "reachable" procedure (Koller & Friedman 2009,
// Alg. 3.1): BFS over (node, travel-direction) states after marking the
// ancestors of the conditioning set. Used by the tests to define ground-truth
// independencies and by the thinning phase to validate learned structures.
#pragma once

#include <vector>

#include "bn/dag.hpp"

namespace wfbn {

/// Nodes reachable from `source` via an active trail given evidence `z`
/// (indicator vector, z[v] = true ⇔ v observed). source itself is included.
[[nodiscard]] std::vector<bool> active_trail_nodes(const Dag& dag, NodeId source,
                                                   const std::vector<bool>& z);

/// True iff X ⟂ Y | Z in the graph (no active trail from any x∈X to any y∈Y).
/// X, Y must be disjoint from each other and from Z.
[[nodiscard]] bool d_separated(const Dag& dag, const std::vector<NodeId>& x,
                               const std::vector<NodeId>& y,
                               const std::vector<NodeId>& z);

/// Convenience single-pair form.
[[nodiscard]] bool d_separated(const Dag& dag, NodeId x, NodeId y,
                               const std::vector<NodeId>& z);

}  // namespace wfbn
