#include "bn/d_separation.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace wfbn {

std::vector<bool> active_trail_nodes(const Dag& dag, NodeId source,
                                     const std::vector<bool>& z) {
  const std::size_t n = dag.node_count();
  WFBN_EXPECT(source < n, "source out of range");
  WFBN_EXPECT(z.size() == n, "evidence indicator has wrong size");
  WFBN_EXPECT(!z[source], "source must not be observed");

  // Phase I: mark Z and all its ancestors (nodes whose descendants include
  // observed evidence activate v-structures).
  std::vector<bool> ancestor_of_z = z;
  {
    std::deque<NodeId> frontier;
    for (NodeId v = 0; v < n; ++v) {
      if (z[v]) frontier.push_back(v);
    }
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      for (const NodeId parent : dag.parents(v)) {
        if (!ancestor_of_z[parent]) {
          ancestor_of_z[parent] = true;
          frontier.push_back(parent);
        }
      }
    }
  }

  // Phase II: BFS over (node, direction) states. kUp = the trail reached the
  // node from one of its children; kDown = from one of its parents.
  enum Direction { kUp = 0, kDown = 1 };
  std::vector<bool> visited(n * 2, false);
  std::vector<bool> reachable(n, false);
  std::deque<std::pair<NodeId, Direction>> frontier;

  auto visit = [&](NodeId v, Direction d) {
    const std::size_t slot = v * 2 + static_cast<std::size_t>(d);
    if (!visited[slot]) {
      visited[slot] = true;
      frontier.emplace_back(v, d);
    }
  };

  visit(source, kUp);
  while (!frontier.empty()) {
    const auto [v, dir] = frontier.front();
    frontier.pop_front();
    if (!z[v]) reachable[v] = true;

    if (dir == kUp) {
      if (!z[v]) {
        for (const NodeId parent : dag.parents(v)) visit(parent, kUp);
        for (const NodeId child : dag.children(v)) visit(child, kDown);
      }
    } else {  // kDown: arrived from a parent
      if (!z[v]) {
        for (const NodeId child : dag.children(v)) visit(child, kDown);
      }
      if (ancestor_of_z[v]) {
        // v-structure v (or an ancestor-of-evidence collider): the trail may
        // turn around and go back up.
        for (const NodeId parent : dag.parents(v)) visit(parent, kUp);
      }
    }
  }
  return reachable;
}

bool d_separated(const Dag& dag, const std::vector<NodeId>& x,
                 const std::vector<NodeId>& y, const std::vector<NodeId>& z) {
  WFBN_EXPECT(!x.empty() && !y.empty(), "X and Y must be non-empty");
  std::vector<bool> evidence(dag.node_count(), false);
  for (const NodeId v : z) {
    WFBN_EXPECT(v < dag.node_count(), "evidence node out of range");
    evidence[v] = true;
  }
  for (const NodeId v : x) {
    WFBN_EXPECT(!evidence[v], "X intersects Z");
    WFBN_EXPECT(std::find(y.begin(), y.end(), v) == y.end(), "X intersects Y");
  }
  for (const NodeId v : y) WFBN_EXPECT(!evidence[v], "Y intersects Z");

  for (const NodeId source : x) {
    const std::vector<bool> reach = active_trail_nodes(dag, source, evidence);
    for (const NodeId target : y) {
      if (reach[target]) return false;
    }
  }
  return true;
}

bool d_separated(const Dag& dag, NodeId x, NodeId y,
                 const std::vector<NodeId>& z) {
  return d_separated(dag, std::vector<NodeId>{x}, std::vector<NodeId>{y}, z);
}

}  // namespace wfbn
