#include "bn/sampling.hpp"

#include "concurrent/thread_pool.hpp"
#include "util/error.hpp"

namespace wfbn {

Dataset forward_sample(const BayesianNetwork& network, std::size_t samples,
                       std::uint64_t seed, std::size_t threads) {
  WFBN_EXPECT(threads >= 1, "need at least one sampling thread");
  Dataset data(samples, network.cardinalities());
  const std::vector<NodeId> order = network.dag().topological_order();

  auto fill_block = [&](std::size_t block, std::size_t lo, std::size_t hi) {
    Xoshiro256 rng = Xoshiro256(seed).split(static_cast<unsigned>(block));
    std::vector<State> parent_states;
    for (std::size_t i = lo; i < hi; ++i) {
      auto row = data.row(i);
      for (const NodeId v : order) {
        const auto& parents = network.dag().parents(v);
        parent_states.clear();
        for (const NodeId parent : parents) parent_states.push_back(row[parent]);
        const Cpt& cpt = network.cpt(v);
        row[v] = cpt.sample(cpt.config_index(parent_states), rng);
      }
    }
  };

  if (threads == 1) {
    fill_block(0, 0, samples);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(0, samples, fill_block);
  }
  return data;
}

}  // namespace wfbn
