#include "bn/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace wfbn {

namespace {

constexpr const char* kMagic = "wfbn-network";
constexpr int kVersion = 1;

std::string next_token(std::istream& in, const char* what) {
  std::string token;
  if (!(in >> token)) throw DataError(std::string("truncated network file: expected ") + what);
  return token;
}

template <typename T>
T next_number(std::istream& in, const char* what) {
  T value{};
  if (!(in >> value)) {
    throw DataError(std::string("malformed network file: expected ") + what);
  }
  return value;
}

void expect_keyword(std::istream& in, const char* keyword) {
  const std::string token = next_token(in, keyword);
  if (token != keyword) {
    throw DataError(std::string("malformed network file: expected '") + keyword +
                    "', got '" + token + "'");
  }
}

}  // namespace

void write_network(const BayesianNetwork& network, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";
  out << "nodes " << network.node_count() << "\n";
  for (NodeId v = 0; v < network.node_count(); ++v) {
    WFBN_EXPECT(network.name(v).find_first_of(" \t\n") == std::string::npos,
                "node names must not contain whitespace");
    out << "node " << network.name(v) << " " << network.cardinality(v) << "\n";
  }
  // Parents are written per node, in CPT configuration order (parent order
  // defines the CPT layout, so it must survive the round trip exactly).
  for (NodeId v = 0; v < network.node_count(); ++v) {
    const auto& parents = network.dag().parents(v);
    out << "parents " << network.name(v) << " " << parents.size();
    for (const NodeId parent : parents) out << " " << network.name(parent);
    out << "\n";
  }
  out << std::setprecision(17);
  for (NodeId v = 0; v < network.node_count(); ++v) {
    const Cpt& cpt = network.cpt(v);
    out << "cpt " << network.name(v) << " " << cpt.raw().size();
    for (const double p : cpt.raw()) out << " " << p;
    out << "\n";
  }
  out << "end\n";
}

void write_network_file(const BayesianNetwork& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw DataError("cannot open for writing: " + path);
  write_network(network, out);
  if (!out) throw DataError("write failed: " + path);
}

BayesianNetwork read_network(std::istream& in) {
  expect_keyword(in, kMagic);
  const int version = next_number<int>(in, "version");
  if (version != kVersion) {
    throw DataError("unsupported network version " + std::to_string(version));
  }

  expect_keyword(in, "nodes");
  const auto node_count = next_number<std::size_t>(in, "node count");
  if (node_count == 0) throw DataError("network must have at least one node");
  std::vector<std::string> names;
  std::vector<std::uint32_t> cards;
  names.reserve(node_count);
  cards.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    expect_keyword(in, "node");
    names.push_back(next_token(in, "node name"));
    const auto r = next_number<std::uint32_t>(in, "cardinality");
    if (r == 0 || r > 255) throw DataError("cardinality out of range [1,255]");
    cards.push_back(r);
  }
  auto index_of = [&](const std::string& name) -> NodeId {
    for (NodeId v = 0; v < names.size(); ++v) {
      if (names[v] == name) return v;
    }
    throw DataError("unknown node name in network file: " + name);
  };

  Dag dag(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    expect_keyword(in, "parents");
    const NodeId child = index_of(next_token(in, "child name"));
    const auto parent_count = next_number<std::size_t>(in, "parent count");
    if (parent_count >= node_count) {
      throw DataError("parent count exceeds node count");
    }
    for (std::size_t k = 0; k < parent_count; ++k) {
      const NodeId parent = index_of(next_token(in, "parent name"));
      if (!dag.add_edge(parent, child)) {
        throw DataError("invalid edge in network file: " + names[parent] +
                        " -> " + names[child] + " (duplicate or cycle)");
      }
    }
  }

  BayesianNetwork network(std::move(dag), cards, names);
  for (std::size_t i = 0; i < node_count; ++i) {
    expect_keyword(in, "cpt");
    const NodeId v = index_of(next_token(in, "cpt node name"));
    const auto value_count = next_number<std::size_t>(in, "cpt size");
    std::vector<double> probabilities(value_count);
    for (double& p : probabilities) p = next_number<double>(in, "probability");
    std::vector<std::uint32_t> parent_cards;
    for (const NodeId parent : network.dag().parents(v)) {
      parent_cards.push_back(cards[parent]);
    }
    network.set_cpt(v, Cpt::from_probabilities(cards[v], std::move(parent_cards),
                                               std::move(probabilities)));
  }
  expect_keyword(in, "end");
  return network;
}

BayesianNetwork read_network_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("cannot open for reading: " + path);
  return read_network(in);
}

}  // namespace wfbn
