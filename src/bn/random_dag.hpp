// Random DAG generators for synthetic experiments: Erdős–Rényi-style layered
// graphs and preferential-attachment (hub-heavy) regulatory-network shapes.
// All are deterministic in the provided RNG.
#pragma once

#include <cstdint>

#include "bn/dag.hpp"
#include "util/rng.hpp"

namespace wfbn {

/// Erdős–Rényi DAG: every pair (u, v) with u < v gains the edge u → v with
/// probability `edge_probability` (node order is the topological order).
[[nodiscard]] Dag random_dag_erdos(std::size_t nodes, double edge_probability,
                                   Xoshiro256& rng);

/// Each node past the first picks 1..max_parents earlier nodes as parents,
/// preferring nodes that already have many children (two-candidate
/// preferential attachment) — produces hub-dominated structures like gene
/// regulatory networks.
[[nodiscard]] Dag random_dag_preferential(std::size_t nodes,
                                          std::size_t max_parents,
                                          Xoshiro256& rng);

/// Exactly `edges` edges distributed uniformly over the u < v pairs.
/// Throws PreconditionError if edges exceeds nodes·(nodes−1)/2.
[[nodiscard]] Dag random_dag_fixed_edges(std::size_t nodes, std::size_t edges,
                                         Xoshiro256& rng);

}  // namespace wfbn
