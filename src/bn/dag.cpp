#include "bn/dag.hpp"

#include <algorithm>
#include <deque>
#include <tuple>

#include "util/error.hpp"

namespace wfbn {

namespace {
void check_pair(std::size_t n, NodeId u, NodeId v) {
  WFBN_EXPECT(u < n && v < n, "node id out of range");
  WFBN_EXPECT(u != v, "self-loops are not allowed");
}

bool contains(const std::vector<NodeId>& list, NodeId v) {
  return std::find(list.begin(), list.end(), v) != list.end();
}

void erase_value(std::vector<NodeId>& list, NodeId v) {
  list.erase(std::remove(list.begin(), list.end(), v), list.end());
}
}  // namespace

Dag::Dag(std::size_t node_count)
    : parents_(node_count), children_(node_count) {}

bool Dag::has_edge(NodeId u, NodeId v) const {
  check_pair(node_count(), u, v);
  return contains(children_[u], v);
}

bool Dag::reachable(NodeId from, NodeId to) const {
  if (from == to) return true;
  std::vector<bool> seen(node_count(), false);
  std::deque<NodeId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const NodeId child : children_[v]) {
      if (child == to) return true;
      if (!seen[child]) {
        seen[child] = true;
        frontier.push_back(child);
      }
    }
  }
  return false;
}

bool Dag::would_create_cycle(NodeId u, NodeId v) const {
  check_pair(node_count(), u, v);
  // u → v closes a cycle iff v already reaches u.
  return reachable(v, u);
}

bool Dag::add_edge(NodeId u, NodeId v) {
  check_pair(node_count(), u, v);
  if (contains(children_[u], v) || would_create_cycle(u, v)) return false;
  children_[u].push_back(v);
  parents_[v].push_back(u);
  ++edge_count_;
  return true;
}

bool Dag::remove_edge(NodeId u, NodeId v) {
  check_pair(node_count(), u, v);
  if (!contains(children_[u], v)) return false;
  erase_value(children_[u], v);
  erase_value(parents_[v], u);
  --edge_count_;
  return true;
}

std::vector<Edge> Dag::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const NodeId v : children_[u]) out.push_back(Edge{u, v});
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.from, a.to) < std::tie(b.from, b.to);
  });
  return out;
}

std::vector<NodeId> Dag::topological_order() const {
  std::vector<std::size_t> in_degree(node_count());
  for (NodeId v = 0; v < node_count(); ++v) in_degree[v] = parents_[v].size();
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (in_degree[v] == 0) ready.push_back(v);
  }
  std::vector<NodeId> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const NodeId child : children_[v]) {
      if (--in_degree[child] == 0) ready.push_back(child);
    }
  }
  WFBN_EXPECT(order.size() == node_count(),
              "DAG invariant violated — graph has a cycle");
  return order;
}

std::vector<bool> Dag::ancestors_of(const std::vector<NodeId>& seeds) const {
  std::vector<bool> result(node_count(), false);
  std::deque<NodeId> frontier;
  for (const NodeId s : seeds) {
    WFBN_EXPECT(s < node_count(), "seed node out of range");
    frontier.push_back(s);
  }
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const NodeId parent : parents_[v]) {
      if (!result[parent]) {
        result[parent] = true;
        frontier.push_back(parent);
      }
    }
  }
  return result;
}

UndirectedGraph Dag::skeleton() const {
  UndirectedGraph g(node_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const NodeId v : children_[u]) g.add_edge(u, v);
  }
  return g;
}

UndirectedGraph::UndirectedGraph(std::size_t node_count)
    : adjacency_(node_count) {}

bool UndirectedGraph::add_edge(NodeId u, NodeId v) {
  check_pair(node_count(), u, v);
  if (contains(adjacency_[u], v)) return false;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++edge_count_;
  return true;
}

bool UndirectedGraph::remove_edge(NodeId u, NodeId v) {
  check_pair(node_count(), u, v);
  if (!contains(adjacency_[u], v)) return false;
  erase_value(adjacency_[u], v);
  erase_value(adjacency_[v], u);
  --edge_count_;
  return true;
}

bool UndirectedGraph::has_edge(NodeId u, NodeId v) const {
  check_pair(node_count(), u, v);
  return contains(adjacency_[u], v);
}

std::vector<Edge> UndirectedGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const NodeId v : adjacency_[u]) {
      if (u < v) out.push_back(Edge{u, v});
    }
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.from, a.to) < std::tie(b.from, b.to);
  });
  return out;
}

bool UndirectedGraph::has_path(NodeId u, NodeId v,
                               const std::vector<bool>* blocked) const {
  check_pair(node_count(), u, v);
  if (has_edge(u, v)) return true;
  std::vector<bool> seen(node_count(), false);
  std::deque<NodeId> frontier{u};
  seen[u] = true;
  while (!frontier.empty()) {
    const NodeId w = frontier.front();
    frontier.pop_front();
    for (const NodeId next : adjacency_[w]) {
      if (next == v) return true;
      if (seen[next]) continue;
      if (blocked != nullptr && (*blocked)[next]) continue;
      seen[next] = true;
      frontier.push_back(next);
    }
  }
  return false;
}

std::vector<bool> UndirectedGraph::reach_avoiding(NodeId start,
                                                  NodeId forbidden) const {
  std::vector<bool> seen(node_count(), false);
  std::deque<NodeId> frontier{start};
  seen[start] = true;
  while (!frontier.empty()) {
    const NodeId w = frontier.front();
    frontier.pop_front();
    for (const NodeId next : adjacency_[w]) {
      if (next == forbidden || seen[next]) continue;
      seen[next] = true;
      frontier.push_back(next);
    }
  }
  return seen;
}

std::vector<NodeId> UndirectedGraph::nodes_on_paths(NodeId u, NodeId v) const {
  check_pair(node_count(), u, v);
  // w is on a simple u–v path iff w reaches u avoiding v AND reaches v
  // avoiding u. (For graphs this is a slight over-approximation of simple-
  // path membership, but it is the standard cut-set search space: every true
  // separator is contained in it.)
  const std::vector<bool> from_u = reach_avoiding(u, v);
  const std::vector<bool> from_v = reach_avoiding(v, u);
  std::vector<NodeId> out;
  for (NodeId w = 0; w < node_count(); ++w) {
    if (w != u && w != v && from_u[w] && from_v[w]) out.push_back(w);
  }
  return out;
}

std::vector<std::size_t> UndirectedGraph::components() const {
  constexpr std::size_t kUnset = ~std::size_t{0};
  std::vector<std::size_t> label(node_count(), kUnset);
  std::size_t next_label = 0;
  for (NodeId root = 0; root < node_count(); ++root) {
    if (label[root] != kUnset) continue;
    label[root] = next_label;
    std::deque<NodeId> frontier{root};
    while (!frontier.empty()) {
      const NodeId w = frontier.front();
      frontier.pop_front();
      for (const NodeId next : adjacency_[w]) {
        if (label[next] == kUnset) {
          label[next] = next_label;
          frontier.push_back(next);
        }
      }
    }
    ++next_label;
  }
  return label;
}

}  // namespace wfbn
