#include "bn/random_dag.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace wfbn {

Dag random_dag_erdos(std::size_t nodes, double edge_probability,
                     Xoshiro256& rng) {
  WFBN_EXPECT(edge_probability >= 0.0 && edge_probability <= 1.0,
              "edge probability in [0,1]");
  Dag dag(nodes);
  for (NodeId u = 0; u < nodes; ++u) {
    for (NodeId v = u + 1; v < nodes; ++v) {
      if (rng.uniform01() < edge_probability) dag.add_edge(u, v);
    }
  }
  return dag;
}

Dag random_dag_preferential(std::size_t nodes, std::size_t max_parents,
                            Xoshiro256& rng) {
  WFBN_EXPECT(max_parents >= 1, "max_parents must be >= 1");
  Dag dag(nodes);
  for (NodeId v = 1; v < nodes; ++v) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.bounded(
                                  std::min<std::uint64_t>(max_parents, v)));
    for (std::size_t i = 0; i < k; ++i) {
      // Two-candidate preferential attachment: sample two earlier nodes,
      // keep the one with the larger out-degree.
      const NodeId a = static_cast<NodeId>(rng.bounded(v));
      const NodeId b = static_cast<NodeId>(rng.bounded(v));
      const NodeId parent =
          dag.children(a).size() >= dag.children(b).size() ? a : b;
      dag.add_edge(parent, v);  // duplicate adds are rejected harmlessly
    }
  }
  return dag;
}

Dag random_dag_fixed_edges(std::size_t nodes, std::size_t edges,
                           Xoshiro256& rng) {
  const std::size_t max_edges = nodes * (nodes - 1) / 2;
  WFBN_EXPECT(edges <= max_edges, "more edges than ordered pairs");
  // Reservoir-free approach: enumerate all pairs, Fisher–Yates a prefix.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(max_edges);
  for (NodeId u = 0; u < nodes; ++u) {
    for (NodeId v = u + 1; v < nodes; ++v) pairs.emplace_back(u, v);
  }
  for (std::size_t i = 0; i < edges; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.bounded(pairs.size() - i));
    std::swap(pairs[i], pairs[j]);
  }
  Dag dag(nodes);
  for (std::size_t i = 0; i < edges; ++i) {
    dag.add_edge(pairs[i].first, pairs[i].second);
  }
  return dag;
}

}  // namespace wfbn
