#include "bn/network.hpp"

#include <cmath>
#include <utility>

#include "data/dataset.hpp"
#include "util/error.hpp"

namespace wfbn {

namespace {
std::vector<std::uint32_t> parent_cards(const Dag& dag,
                                        const std::vector<std::uint32_t>& cards,
                                        NodeId v) {
  std::vector<std::uint32_t> out;
  out.reserve(dag.parents(v).size());
  for (const NodeId parent : dag.parents(v)) out.push_back(cards[parent]);
  return out;
}
}  // namespace

BayesianNetwork::BayesianNetwork(Dag dag, std::vector<std::uint32_t> cardinalities,
                                 std::vector<std::string> names)
    : dag_(std::move(dag)), cardinalities_(std::move(cardinalities)) {
  WFBN_EXPECT(dag_.node_count() == cardinalities_.size(),
              "cardinalities must match node count");
  for (const std::uint32_t r : cardinalities_) {
    WFBN_EXPECT(r >= 1 && r <= 255, "cardinality must be in [1, 255]");
  }
  cpts_.reserve(node_count());
  for (NodeId v = 0; v < node_count(); ++v) {
    cpts_.emplace_back(cardinalities_[v], parent_cards(dag_, cardinalities_, v));
  }
  if (names.empty()) {
    names_.reserve(node_count());
    for (NodeId v = 0; v < node_count(); ++v) {
      // Built via append (not operator+) to dodge GCC 12's -Wrestrict false
      // positive (PR105651) under -Werror.
      std::string name("X");
      name += std::to_string(v);
      names_.push_back(std::move(name));
    }
  } else {
    WFBN_EXPECT(names.size() == node_count(), "names must match node count");
    names_ = std::move(names);
  }
}

void BayesianNetwork::randomize_cpts(std::uint64_t seed, double alpha) {
  Xoshiro256 rng(seed);
  for (NodeId v = 0; v < node_count(); ++v) {
    cpts_[v] = Cpt::random(cardinalities_[v],
                           parent_cards(dag_, cardinalities_, v), rng, alpha);
  }
}

void BayesianNetwork::set_cpt(NodeId node, Cpt cpt) {
  WFBN_EXPECT(node < node_count(), "node out of range");
  if (cpt.cardinality() != cardinalities_[node] ||
      cpt.parent_cardinalities() != parent_cards(dag_, cardinalities_, node)) {
    throw DataError("CPT shape does not match node " + names_[node]);
  }
  cpts_[node] = std::move(cpt);
}

NodeId BayesianNetwork::node_by_name(const std::string& name) const {
  for (NodeId v = 0; v < node_count(); ++v) {
    if (names_[v] == name) return v;
  }
  throw DataError("no node named " + name);
}

std::size_t BayesianNetwork::parent_config_of(
    NodeId v, std::span<const State> states) const {
  const auto& parents = dag_.parents(v);
  std::size_t index = 0;
  std::size_t stride = 1;
  for (const NodeId parent : parents) {
    index += states[parent] * stride;
    stride *= cardinalities_[parent];
  }
  return index;
}

double BayesianNetwork::joint_probability(std::span<const State> states) const {
  WFBN_EXPECT(states.size() == node_count(), "assignment shape mismatch");
  double p = 1.0;
  for (NodeId v = 0; v < node_count(); ++v) {
    p *= cpts_[v].probability(states[v], parent_config_of(v, states));
  }
  return p;
}

double BayesianNetwork::average_log_likelihood(const Dataset& data) const {
  WFBN_EXPECT(data.variable_count() == node_count(), "dataset shape mismatch");
  WFBN_EXPECT(data.sample_count() > 0, "empty dataset");
  double total = 0.0;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    const double p = joint_probability(data.row(i));
    total += std::log(p + 1e-300);
  }
  return total / static_cast<double>(data.sample_count());
}

bool BayesianNetwork::validate() const {
  for (NodeId v = 0; v < node_count(); ++v) {
    if (cpts_[v].cardinality() != cardinalities_[v]) return false;
    if (cpts_[v].parent_cardinalities() != parent_cards(dag_, cardinalities_, v)) {
      return false;
    }
    if (!cpts_[v].is_normalized()) return false;
  }
  return true;
}

}  // namespace wfbn
