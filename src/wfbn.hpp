// Umbrella header: the full public API of the wfbn library.
//
// Fine-grained headers remain the preferred includes for library consumers
// who care about compile times; this header exists for quick experiments and
// notebooks-style usage:
//
//   #include "wfbn.hpp"
//   using namespace wfbn;
#pragma once

// util — RNG, timing, CLI, tables, error policy, fault injection
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

// concurrency substrate
#include "concurrent/affinity.hpp"
#include "concurrent/atomic_hash_map.hpp"
#include "concurrent/barrier.hpp"
#include "concurrent/retire_gate.hpp"
#include "concurrent/spsc_queue.hpp"
#include "concurrent/striped_hash_map.hpp"
#include "concurrent/thread_pool.hpp"

// potential-table representation
#include "table/dense_table.hpp"
#include "table/key_codec.hpp"
#include "table/key_traits.hpp"
#include "table/marginal_table.hpp"
#include "table/open_hash_table.hpp"
#include "table/partitioned_table.hpp"
#include "table/potential_table.hpp"
#include "table/wide_key_codec.hpp"

// the paper's primitives + statistics + queries
#include "core/all_pairs_mi.hpp"
#include "core/info_theory.hpp"
#include "core/marginalizer.hpp"
#include "core/query.hpp"
#include "core/wait_free_builder.hpp"

// serving: versioned snapshots + concurrent query serving
#include "serve/result_cache.hpp"
#include "serve/serve_engine.hpp"
#include "serve/snapshot.hpp"
#include "serve/snapshot_cell.hpp"
#include "serve/table_store.hpp"

// serving durability: crash-safe snapshot persistence + recovery
#include "serve/persist/durable_store.hpp"
#include "serve/persist/format.hpp"
#include "serve/persist/fs_util.hpp"
#include "serve/persist/snapshot_reader.hpp"
#include "serve/persist/snapshot_writer.hpp"

// network serving front end: framing, admission control, server + client
#include "net/admission.hpp"
#include "net/frame.hpp"
#include "net/serve_client.hpp"
#include "net/serve_server.hpp"
#include "net/socket_util.hpp"
#include "net/wire.hpp"

// baselines
#include "baselines/builders.hpp"

// data handling
#include "data/dataset.hpp"
#include "data/discretize.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"

// Bayesian networks
#include "bn/cpt.hpp"
#include "bn/d_separation.hpp"
#include "bn/dag.hpp"
#include "bn/inference.hpp"
#include "bn/io.hpp"
#include "bn/metrics.hpp"
#include "bn/network.hpp"
#include "bn/random_dag.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"

// structure learning
#include "learn/bootstrap.hpp"
#include "learn/cheng.hpp"
#include "learn/chow_liu.hpp"
#include "learn/ci_scheduler.hpp"
#include "learn/independence.hpp"
#include "learn/orientation.hpp"
#include "learn/pc_stable.hpp"
#include "learn/score.hpp"
#include "learn/sparse_candidate.hpp"

// multicore scaling simulation
#include "sim/cost_model.hpp"
#include "sim/scaling_sim.hpp"
