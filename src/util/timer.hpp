// Minimal wall-clock timing helpers used by benchmarks and the scaling
// simulator's calibration pass.
#pragma once

#include <chrono>
#include <cstdint>

namespace wfbn {

/// Steady-clock stopwatch. Started on construction.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

  [[nodiscard]] std::uint64_t nanoseconds() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  clock::time_point start_;
};

}  // namespace wfbn
