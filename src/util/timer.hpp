// Minimal wall-clock timing helpers used by benchmarks and the scaling
// simulator's calibration pass.
#pragma once

#include <ctime>

#include <chrono>
#include <cstdint>

namespace wfbn {

/// Steady-clock stopwatch. Started on construction.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

  [[nodiscard]] std::uint64_t nanoseconds() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID). Measures the
/// processor time the *calling thread* actually consumed, so per-worker busy
/// numbers stay meaningful even when worker threads timeshare fewer physical
/// cores than the pool has workers — the makespan model the scheduling
/// benchmarks report (max over workers of CPU busy time) is then the time a
/// machine with one core per worker would take. Started on construction.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() noexcept { reset(); }

  void reset() noexcept { start_ = now(); }

  [[nodiscard]] double seconds() const noexcept { return now() - start_; }

 private:
  [[nodiscard]] static double now() noexcept {
    timespec ts{};
    ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_ = 0.0;
};

}  // namespace wfbn
