// Error handling policy for the library (C++ Core Guidelines E.*):
//  - programming errors (precondition violations) -> WFBN_EXPECT, which
//    throws std::logic_error so tests can assert on misuse;
//  - environmental/data errors -> std::runtime_error with context;
//  - liveness failures (a wedged worker detected by a watchdog) -> StallError
//    carrying per-worker progress counters.
// See docs/ROBUSTNESS.md for the per-API failure semantics.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace wfbn {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown for malformed input data (bad CSV, state out of range, ...).
class DataError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a cooperative cancellation token (e.g. LearnRequest::cancel)
/// is observed set. A distinct type so callers can tell a deliberate abort
/// from a data or environment failure; the serving layer maps it to a clean
/// error response rather than a crash.
class OperationCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a stall watchdog detects that a parallel region stopped making
/// progress (e.g. a wedged producer or consumer in the pipelined builder).
/// Carries the per-worker progress counters observed at detection time so the
/// wedged worker can be identified from the error alone.
class StallError : public std::runtime_error {
 public:
  StallError(const std::string& what, std::vector<std::uint64_t> progress)
      : std::runtime_error(what), progress_(std::move(progress)) {}

  /// Units of work (rows + drained keys) each worker had completed when the
  /// watchdog fired; the minimum entry usually names the wedged worker.
  [[nodiscard]] const std::vector<std::uint64_t>& worker_progress()
      const noexcept {
    return progress_;
  }

 private:
  std::vector<std::uint64_t> progress_;
};

namespace detail {
[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace wfbn

/// Precondition check that is always on (cheap checks on public boundaries).
#define WFBN_EXPECT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::wfbn::detail::fail_precondition(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                       \
  } while (false)
