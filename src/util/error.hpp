// Error handling policy for the library (C++ Core Guidelines E.*):
//  - programming errors (precondition violations) -> WFBN_EXPECT, which
//    throws std::logic_error so tests can assert on misuse;
//  - environmental/data errors -> std::runtime_error with context.
#pragma once

#include <stdexcept>
#include <string>

namespace wfbn {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown for malformed input data (bad CSV, state out of range, ...).
class DataError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace wfbn

/// Precondition check that is always on (cheap checks on public boundaries).
#define WFBN_EXPECT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::wfbn::detail::fail_precondition(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                       \
  } while (false)
