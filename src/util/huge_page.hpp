// Optionally huge-page-backed flat array — the storage of the open-addressing
// count tables.
//
// The builders' stage-2 probe stream is uniformly random over a table that is
// far larger than cache, so on the paper's workloads nearly every probe costs
// a TLB walk on top of the cache miss. Backing the entry array with 2 MB
// pages (anonymous mmap + madvise(MADV_HUGEPAGE)) cuts the walk frequency by
// ~512×. The advice is strictly best-effort:
//
//   - allocations below one huge page keep normal heap backing (honoring the
//     request would waste most of a 2 MB page per partition);
//   - a refused mmap or madvise (THP disabled, fragmentation, the
//     table.huge_page fault point) falls back to normal pages — never an
//     error, surfaced through backing() so BuildStats can report it.
//
// The array owns trivially copyable elements only and value-initializes them
// (mmap zero-fill is NOT assumed: the tables' empty sentinel is all-ones).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define WFBN_HAVE_MMAP 1
#endif

#include "util/fault_injection.hpp"

namespace wfbn {

/// How a PageArray's memory ended up backed.
enum class PageBacking : int {
  kHeap = 0,        ///< normal pages, huge backing never requested (or the
                    ///< allocation is smaller than one huge page)
  kHugeAdvised,     ///< mmap'd and MADV_HUGEPAGE accepted
  kHugeFallback,    ///< requested for a huge-page-sized allocation, refused —
                    ///< normal pages serve instead (degradation, not error)
};

template <typename T>
class PageArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "PageArray elements must be trivially copyable");

 public:
  static constexpr std::size_t kHugePageBytes = 2u << 20;

  PageArray() = default;

  explicit PageArray(std::size_t count, bool huge_pages = false) {
    allocate(count, huge_pages);
    for (std::size_t i = 0; i < count_; ++i) new (data_ + i) T{};
  }

  PageArray(const PageArray& other) {
    allocate(other.count_, other.huge_requested_);
    if (count_ != 0) std::memcpy(data_, other.data_, count_ * sizeof(T));
  }

  PageArray& operator=(const PageArray& other) {
    if (this != &other) {
      PageArray copy(other);
      swap(copy);
    }
    return *this;
  }

  PageArray(PageArray&& other) noexcept { swap(other); }

  PageArray& operator=(PageArray&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  ~PageArray() { release(); }

  void swap(PageArray& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(count_, other.count_);
    std::swap(mapped_bytes_, other.mapped_bytes_);
    std::swap(backing_, other.backing_);
    std::swap(huge_requested_, other.huge_requested_);
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + count_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + count_; }

  [[nodiscard]] PageBacking backing() const noexcept { return backing_; }
  [[nodiscard]] bool huge_requested() const noexcept { return huge_requested_; }

 private:
  void allocate(std::size_t count, bool huge_pages) {
    count_ = count;
    huge_requested_ = huge_pages;
    if (count == 0) {
      data_ = nullptr;
      return;
    }
    const std::size_t bytes = count * sizeof(T);
#ifdef WFBN_HAVE_MMAP
    if (huge_pages && bytes >= kHugePageBytes) {
      // The table.huge_page fault point models a refused mmap/madvise: the
      // allocation degrades to normal heap pages below, never throws.
      const bool injected_refusal =
          fault::enabled() && fault::should_fail(fault::Point::kTableHugePage);
      if (!injected_refusal) {
        const std::size_t rounded =
            (bytes + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
        void* mapped = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                              MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (mapped != MAP_FAILED) {
          if (::madvise(mapped, rounded, MADV_HUGEPAGE) == 0) {
            data_ = static_cast<T*>(mapped);
            mapped_bytes_ = rounded;
            backing_ = PageBacking::kHugeAdvised;
            return;
          }
          ::munmap(mapped, rounded);
        }
      }
      backing_ = PageBacking::kHugeFallback;
    }
#endif
    data_ = static_cast<T*>(::operator new(bytes));
    if (backing_ != PageBacking::kHugeFallback) backing_ = PageBacking::kHeap;
  }

  void release() noexcept {
    if (data_ == nullptr) return;
#ifdef WFBN_HAVE_MMAP
    if (mapped_bytes_ != 0) {
      ::munmap(data_, mapped_bytes_);
      data_ = nullptr;
      mapped_bytes_ = 0;
      return;
    }
#endif
    ::operator delete(data_);
    data_ = nullptr;
  }

  T* data_ = nullptr;
  std::size_t count_ = 0;
  std::size_t mapped_bytes_ = 0;  // non-zero iff mmap-backed
  PageBacking backing_ = PageBacking::kHeap;
  bool huge_requested_ = false;
};

}  // namespace wfbn
