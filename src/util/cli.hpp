// Tiny command-line option parser shared by examples and bench binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` options, with
// typed accessors and an auto-generated --help. Not a general-purpose CLI
// library — just enough for reproducible experiment harnesses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wfbn {

class CliParser {
 public:
  /// `program_description` is printed at the top of --help output.
  explicit CliParser(std::string program_description);

  /// Registers an option before parse(). `help` documents it; `default_value`
  /// is returned by the typed getters when the flag is absent.
  void add_option(std::string name, std::string default_value, std::string help);
  void add_flag(std::string name, std::string help);

  /// Parses argv. Returns false (after printing help) if --help was given.
  /// Throws DataError on unknown options or missing values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;

  /// Comma-separated integer list, e.g. "--cores 1,2,4,8".
  [[nodiscard]] std::vector<std::int64_t> get_int_list(std::string_view name) const;

  /// Positional arguments left over after option parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string name;
    std::string value;
    std::string default_value;
    std::string help;
    bool is_flag = false;
    bool seen = false;
  };

  Option* find(std::string_view name);
  [[nodiscard]] const Option* find(std::string_view name) const;

  std::string description_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace wfbn
