// The library's one checksum: 64-bit FNV-1a, plus the avalanche finalizer
// the hashed-key consumers mix on top.
//
// Three subsystems need exactly the same primitive — the binary dataset
// format (payload checksum, data/io.cpp), the serving result cache (packed
// query-key hash, serve/result_cache.cpp), and the snapshot persistence
// layer (per-section corruption detection, serve/persist/) — so it lives
// here once instead of as three private copies. The byte flavor is seedable,
// which lets a caller checksum a file in sections while still getting one
// number per section; the word flavor hashes 64-bit lanes directly (cheaper
// than byte-at-a-time for packed keys, and what the result cache has always
// done — its on-disk-invisible hash values are unchanged by this move).
//
// FNV-1a is a detection code, not a MAC: it catches bit rot, truncation and
// torn writes, which is the threat model of every caller here. Anything
// adversarial needs a real MAC and does not belong in this header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace wfbn {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ULL;

/// FNV-1a over raw bytes. Pass a previous result as `seed` to checksum a
/// byte stream incrementally (fnv1a(ab) == fnv1a(b, fnv1a(a))).
[[nodiscard]] inline std::uint64_t fnv1a_bytes(
    const void* data, std::size_t size,
    std::uint64_t seed = kFnv1aOffsetBasis) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(bytes[i]);
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// FNV-1a over 64-bit lanes (one xor-multiply per word, not per byte).
/// Endianness-independent because the words are hashed as values.
[[nodiscard]] inline std::uint64_t fnv1a_words(
    std::span<const std::uint64_t> words,
    std::uint64_t seed = kFnv1aOffsetBasis) noexcept {
  std::uint64_t hash = seed;
  for (const std::uint64_t w : words) {
    hash = (hash ^ w) * kFnv1aPrime;
  }
  return hash;
}

/// Murmur3-style finalizer: avalanches the tail of an FNV chain so both the
/// high bits (shard/partition selection) and the low bits (table masking)
/// are well mixed even for near-identical inputs.
[[nodiscard]] inline std::uint64_t avalanche64(std::uint64_t h) noexcept {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

}  // namespace wfbn
