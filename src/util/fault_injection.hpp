// Deterministic fault injection for the concurrency layer.
//
// Every risky step in the wait-free primitives is a *named failure point*:
// queue chunk allocation, the stage-1 row loop, the barrier crossing, the
// stage-2 drain, thread spawn, core pinning, the append commit, and the
// marginalization / MI sweeps. Tests arm a point to fire on its k-th hit —
// throwing an InjectedFault, reporting a failure flag (for the graceful-
// degradation paths that must not throw), or stalling the hitting thread so
// the stall watchdog can be exercised. Hit counters are process-global
// atomics, so "fire on hit k" means exactly the k-th arrival fires, whichever
// worker gets there — one firing per armed point, reproducible effects.
//
// Cost when disabled: a single relaxed load of one global atomic bool per
// checkpoint (the hot row loops hoist even that into a register — see
// WaitFreeBuilder). Nothing is ever allocated or locked on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace wfbn {

/// Thrown by an armed failure point in kThrow mode. A distinct type so tests
/// can tell an injected failure from a genuine DataError/PreconditionError.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace fault {

/// The compiled-in failure points. Keep fault_point_name() in sync.
enum class Point : int {
  kThreadSpawn = 0,   ///< ThreadPool constructor, before each spawn
  kPinThread,         ///< pin_current_thread(), before the syscall
  kSpscChunkAlloc,    ///< SpscQueue::push, before allocating a fresh chunk
  kStage1Row,         ///< builder stage-1 kernel, once per scanned row
  kBarrier,           ///< phased builder, just before the barrier crossing
  kStage2Drain,       ///< phased builder stage 2, once per drained key
  kPipelineDrain,     ///< pipelined builder, once per drain sweep
  kAppendCommit,      ///< append(), after staging and before the commit
  kMarginalizeSweep,  ///< marginalizer worker, once per swept partition
  kMiSweep,           ///< all-pairs-MI worker, once per unit of sweep work
  kServePublish,      ///< TableStore::ingest, after the shadow fold and
                      ///< before the atomic snapshot swap
  kServeCache,        ///< ResultCache::insert, before storing a computed
                      ///< answer (degrades: the answer is served uncached)
  kPersistOpen,       ///< persist: before opening/creating a temp file
  kPersistWrite,      ///< persist: before writing serialized bytes
  kPersistFsync,      ///< persist: before fsyncing a written file
  kPersistRename,     ///< persist: before the atomic rename publish
  kPersistManifest,   ///< persist: before the manifest update begins
  kRecoverChecksum,   ///< recovery: during checksum validation (degrades:
                      ///< the section is treated as corrupt and recovery
                      ///< falls back — it never throws)
  kNetAccept,         ///< server event loop, before accepting a pending
                      ///< connection (the accept is abandoned; the listener
                      ///< keeps serving)
  kNetRead,           ///< server/client, before a socket read (the affected
                      ///< connection is closed; others are untouched)
  kNetWrite,          ///< server/client, before a socket write (ditto)
  kNetFrameChecksum,  ///< frame decoder, at payload checksum validation
                      ///< (degrades: the comparison reports a mismatch, so
                      ///< the frame is treated as corrupt)
  kAdmissionReject,   ///< admission controller, per admit() decision
                      ///< (degrades: the request is rejected OVERLOADED as
                      ///< if a queue were full)
  kLearnCiTest,       ///< CI tester, at the top of every statistics test
                      ///< (a throw mid-batch surfaces after the scheduler
                      ///< round completes; the learner's graphs are only
                      ///< mutated after a successful batch, so no torn state)
  kLearnSchedule,     ///< CI scheduler, before dispatching each work item
  kTableHugePage,     ///< hashtable backing allocation, at the huge-page
                      ///< mmap/madvise request (degrades: the table falls
                      ///< back to normal pages, reported in BuildStats —
                      ///< never an error)
};
inline constexpr int kPointCount = static_cast<int>(Point::kTableHugePage) + 1;

[[nodiscard]] const char* point_name(Point point) noexcept;

enum class Action : int {
  kThrow,  ///< fire by throwing InjectedFault (or returning true from should_fail)
  kStall,  ///< fire by sleeping stall_ms on the hitting thread
};

/// Global kill switch. All checkpoints reduce to one relaxed load + branch
/// while this is false, which is the default outside tests.
inline std::atomic<bool> g_enabled{false};

[[nodiscard]] inline bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

/// Arms `point` to fire on its `fire_on_hit`-th hit (1-based) counted from
/// the last reset(). kStall sleeps `stall_ms` instead of throwing.
void arm(Point point, std::uint64_t fire_on_hit, Action action = Action::kThrow,
         std::uint32_t stall_ms = 0);

/// Disarms every point and zeroes all hit counters. Does not toggle enabled().
void reset() noexcept;

/// Counts a hit on `point`; throws InjectedFault / stalls when it fires.
/// Callers must only reach this when enabled() is true.
void fire(Point point);

/// Counts a hit on `point`; returns true when it fires. The non-throwing
/// flavor for noexcept degradation paths (thread spawn, core pinning). A
/// kStall arming also stalls here before returning true.
[[nodiscard]] bool should_fail(Point point) noexcept;

/// Hits observed on `point` since the last reset(). Test introspection only.
[[nodiscard]] std::uint64_t hits(Point point) noexcept;

/// Arms a small pseudo-random subset of throwing points from `seed` (the
/// randomized fault-schedule fuzz sweep). Returns a human-readable schedule
/// description for failure traces.
std::string arm_random_schedule(std::uint64_t seed);

/// Arms a small pseudo-random subset of the network/admission points from
/// `seed` — the net-layer flavor of arm_random_schedule for the serving
/// front-end fuzz sweeps, covering both the throwing socket points
/// (net.accept/read/write) and the degradation points (net.frame_checksum,
/// admission.reject) that reject rather than throw.
std::string arm_random_net_schedule(std::uint64_t seed);

/// RAII for tests: reset + enable on construction, reset + restore previous
/// enabled state on destruction.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection()
      : was_enabled_(g_enabled.exchange(true, std::memory_order_seq_cst)) {
    reset();
  }
  ~ScopedFaultInjection() {
    reset();
    g_enabled.store(was_enabled_, std::memory_order_seq_cst);
  }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  bool was_enabled_;
};

}  // namespace fault
}  // namespace wfbn

/// Checkpoint macro for paths outside the innermost loops: one relaxed load
/// when disabled. The row-loop call sites hoist enabled() manually instead.
#define WFBN_FAULT_POINT(point)                             \
  do {                                                      \
    if (::wfbn::fault::enabled()) [[unlikely]] {            \
      ::wfbn::fault::fire(point);                           \
    }                                                       \
  } while (false)
