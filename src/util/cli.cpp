#include "util/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <utility>

#include "util/error.hpp"

namespace wfbn {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {
  add_flag("help", "Print this help text and exit");
}

void CliParser::add_option(std::string name, std::string default_value,
                           std::string help) {
  WFBN_EXPECT(find(name) == nullptr, "duplicate option: " + name);
  options_.push_back(Option{std::move(name), "", std::move(default_value),
                            std::move(help), /*is_flag=*/false, false});
}

void CliParser::add_flag(std::string name, std::string help) {
  WFBN_EXPECT(find(name) == nullptr, "duplicate flag: " + name);
  options_.push_back(Option{std::move(name), "", "false", std::move(help),
                            /*is_flag=*/true, false});
}

CliParser::Option* CliParser::find(std::string_view name) {
  auto it = std::find_if(options_.begin(), options_.end(),
                         [&](const Option& o) { return o.name == name; });
  return it == options_.end() ? nullptr : &*it;
}

const CliParser::Option* CliParser::find(std::string_view name) const {
  auto it = std::find_if(options_.begin(), options_.end(),
                         [&](const Option& o) { return o.name == name; });
  return it == options_.end() ? nullptr : &*it;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name(arg);
    std::optional<std::string> inline_value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
    }
    Option* opt = find(name);
    if (opt == nullptr) throw DataError("unknown option --" + name);
    opt->seen = true;
    if (opt->is_flag) {
      opt->value = inline_value.value_or("true");
    } else if (inline_value) {
      opt->value = *inline_value;
    } else {
      if (i + 1 >= argc) throw DataError("missing value for --" + name);
      opt->value = argv[++i];
    }
  }
  if (get_bool("help")) {
    std::fputs(help_text().c_str(), stdout);
    return false;
  }
  return true;
}

std::string CliParser::get(std::string_view name) const {
  const Option* opt = find(name);
  WFBN_EXPECT(opt != nullptr, "option not registered: " + std::string(name));
  return opt->seen ? opt->value : opt->default_value;
}

std::int64_t CliParser::get_int(std::string_view name) const {
  const std::string v = get(name);
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw DataError("option --" + std::string(name) + " expects an integer, got '" +
                    v + "'");
  }
  return out;
}

double CliParser::get_double(std::string_view name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw DataError("");
    return out;
  } catch (const std::exception&) {
    throw DataError("option --" + std::string(name) + " expects a number, got '" +
                    v + "'");
  }
}

bool CliParser::get_bool(std::string_view name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::int64_t> CliParser::get_int_list(std::string_view name) const {
  const std::string v = get(name);
  std::vector<std::int64_t> out;
  std::size_t begin = 0;
  while (begin <= v.size()) {
    std::size_t end = v.find(',', begin);
    if (end == std::string::npos) end = v.size();
    const std::string_view piece(v.data() + begin, end - begin);
    if (!piece.empty()) {
      std::int64_t item = 0;
      auto [ptr, ec] = std::from_chars(piece.data(), piece.data() + piece.size(), item);
      if (ec != std::errc{} || ptr != piece.data() + piece.size()) {
        throw DataError("option --" + std::string(name) +
                        " expects comma-separated integers, got '" + v + "'");
      }
      out.push_back(item);
    }
    begin = end + 1;
  }
  return out;
}

std::string CliParser::help_text() const {
  std::string out = description_ + "\n\nOptions:\n";
  for (const Option& opt : options_) {
    out += "  --" + opt.name;
    if (!opt.is_flag) out += " <value>";
    out += "\n      " + opt.help;
    if (!opt.is_flag && !opt.default_value.empty()) {
      out += " (default: " + opt.default_value + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace wfbn
