#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace wfbn::simd {

namespace {

/// -1 = no override; otherwise a Level cap installed by ScopedForceLevel.
std::atomic<int> g_forced_cap{-1};

Level host_level() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kScalar;
#else
  return Level::kScalar;
#endif
}

/// The WFBN_SIMD environment variable caps detection for whole-process
/// force-disable (the CI scalar leg): "scalar" pins every dispatch to the
/// portable kernels, "avx2"/"auto"/unset leave detection alone. Read once.
Level env_ceiling() noexcept {
  static const Level ceiling = [] {
    const char* value = std::getenv("WFBN_SIMD");
    if (value != nullptr && std::strcmp(value, "scalar") == 0) {
      return Level::kScalar;
    }
    return Level::kAvx2;
  }();
  return ceiling;
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

const char* policy_name(Policy policy) noexcept {
  switch (policy) {
    case Policy::kAuto: return "auto";
    case Policy::kScalar: return "scalar";
    case Policy::kAvx2: return "avx2";
  }
  return "?";
}

bool parse_policy(const char* text, Policy& out) noexcept {
  if (text == nullptr) return false;
  if (std::strcmp(text, "auto") == 0) {
    out = Policy::kAuto;
  } else if (std::strcmp(text, "scalar") == 0) {
    out = Policy::kScalar;
  } else if (std::strcmp(text, "avx2") == 0) {
    out = Policy::kAvx2;
  } else {
    return false;
  }
  return true;
}

Level detected() noexcept {
  Level level = host_level();
  if (env_ceiling() < level) level = env_ceiling();
  const int forced = g_forced_cap.load(std::memory_order_relaxed);
  if (forced >= 0 && static_cast<Level>(forced) < level) {
    level = static_cast<Level>(forced);
  }
  return level;
}

Level resolve(Policy policy) noexcept {
  const Level cap = detected();
  switch (policy) {
    case Policy::kAuto: return cap;
    case Policy::kScalar: return Level::kScalar;
    case Policy::kAvx2:
      return cap < Level::kAvx2 ? cap : Level::kAvx2;
  }
  return Level::kScalar;
}

ScopedForceLevel::ScopedForceLevel(Level level) noexcept
    : previous_(g_forced_cap.exchange(static_cast<int>(level),
                                      std::memory_order_relaxed)) {}

ScopedForceLevel::~ScopedForceLevel() {
  g_forced_cap.store(previous_, std::memory_order_relaxed);
}

}  // namespace wfbn::simd
