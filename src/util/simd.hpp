// Runtime SIMD capability probe and dispatch policy for the vectorized
// build hot path (encode / hash / probe kernels).
//
// Kernels are compiled per *level* — kScalar always, kAvx2 behind a GCC/clang
// `target("avx2")` function attribute on x86-64 — and selected at runtime so
// one binary runs correctly on any host. The selection funnel:
//
//   requested (WaitFreeBuilderOptions::simd / bench --simd)
//     ∧ detected host capability (cpuid, cached)
//     ∧ WFBN_SIMD environment ceiling (CI force-disable leg)
//     ∧ ScopedForceLevel test override (forced-downgrade coverage)
//   = effective level, reported in BuildStats::simd_level
//
// Downgrades are silent and graceful by design: requesting kAvx2 on a host
// without AVX2 runs the scalar kernels, bit-identically (the oracle tests pin
// this down at every level). There is no "fail if unsupported" mode — the
// levels compute the same bits, only at different speeds.
#pragma once

namespace wfbn::simd {

/// Kernel dispatch levels, ordered: a higher level strictly implies the
/// capabilities of every lower one.
enum class Level : int {
  kScalar = 0,  ///< portable C++, no instruction-set assumptions
  kAvx2 = 1,    ///< x86-64 AVX2 specializations (runtime-verified)
};

/// What a caller may ask for. kAuto resolves to the best detected level.
enum class Policy : int {
  kAuto = 0,
  kScalar = 1,
  kAvx2 = 2,
};

[[nodiscard]] const char* level_name(Level level) noexcept;
[[nodiscard]] const char* policy_name(Policy policy) noexcept;

/// Parses "auto" / "scalar" / "avx2" (the bench/CLI spelling). Returns false
/// on anything else, leaving `out` untouched.
[[nodiscard]] bool parse_policy(const char* text, Policy& out) noexcept;

/// Highest level this host can execute, after the WFBN_SIMD environment
/// ceiling (read once) and any ScopedForceLevel override. Cheap: the cpuid
/// probe runs once per process.
[[nodiscard]] Level detected() noexcept;

/// Resolves a request against detected(): kAuto → detected(); an explicit
/// request is capped at detected() (graceful downgrade, never an error).
[[nodiscard]] Level resolve(Policy policy) noexcept;

/// RAII test hook: caps detected() at `level` for the scope's lifetime, so
/// the scalar fallback of every dispatch site is exercisable on any host —
/// including one whose hardware supports the higher level. Not thread-safe
/// against concurrent resolve() races by design (test-only, armed before the
/// parallel region starts).
class ScopedForceLevel {
 public:
  explicit ScopedForceLevel(Level level) noexcept;
  ~ScopedForceLevel();
  ScopedForceLevel(const ScopedForceLevel&) = delete;
  ScopedForceLevel& operator=(const ScopedForceLevel&) = delete;

 private:
  int previous_;
};

}  // namespace wfbn::simd
