// Aligned-column text tables for benchmark output. The bench binaries print
// the same rows/series as the paper's figures; this keeps them readable and
// machine-parseable (also emits CSV).
#pragma once

#include <string>
#include <vector>

namespace wfbn {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant decimals.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::uint64_t value);

  /// Renders an aligned ASCII table (with header separator).
  [[nodiscard]] std::string to_string() const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our content).
  [[nodiscard]] std::string to_csv() const;

  /// Prints to stdout, prefixed by `title` if non-empty.
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wfbn
