#include "util/fault_injection.hpp"

#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace wfbn::fault {

namespace {

// Per-point state on its own cache line: hit counters are bumped from every
// worker thread, and sharing a line across points would couple unrelated
// failure points' costs.
struct alignas(64) PointState {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::int64_t> fire_on{-1};  // 1-based hit index; -1 = disarmed
  std::atomic<int> action{static_cast<int>(Action::kThrow)};
  std::atomic<std::uint32_t> stall_ms{0};
};

PointState g_points[kPointCount];

PointState& state_of(Point point) noexcept {
  return g_points[static_cast<int>(point)];
}

/// Counts a hit and reports whether this is exactly the armed one.
bool advance_and_check(PointState& s) noexcept {
  const std::uint64_t hit =
      s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::int64_t fire_on = s.fire_on.load(std::memory_order_relaxed);
  return fire_on >= 0 && hit == static_cast<std::uint64_t>(fire_on);
}

void stall_for(std::uint32_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

const char* point_name(Point point) noexcept {
  switch (point) {
    case Point::kThreadSpawn: return "pool.spawn";
    case Point::kPinThread: return "affinity.pin";
    case Point::kSpscChunkAlloc: return "spsc.chunk_alloc";
    case Point::kStage1Row: return "builder.stage1_row";
    case Point::kBarrier: return "builder.barrier";
    case Point::kStage2Drain: return "builder.stage2_drain";
    case Point::kPipelineDrain: return "builder.pipeline_drain";
    case Point::kAppendCommit: return "builder.append_commit";
    case Point::kMarginalizeSweep: return "marginalizer.sweep";
    case Point::kMiSweep: return "all_pairs_mi.sweep";
    case Point::kServePublish: return "serve.publish";
    case Point::kServeCache: return "serve.cache_insert";
    case Point::kPersistOpen: return "persist.open";
    case Point::kPersistWrite: return "persist.write";
    case Point::kPersistFsync: return "persist.fsync";
    case Point::kPersistRename: return "persist.rename";
    case Point::kPersistManifest: return "persist.manifest";
    case Point::kRecoverChecksum: return "recover.checksum";
    case Point::kNetAccept: return "net.accept";
    case Point::kNetRead: return "net.read";
    case Point::kNetWrite: return "net.write";
    case Point::kNetFrameChecksum: return "net.frame_checksum";
    case Point::kAdmissionReject: return "admission.reject";
    case Point::kLearnCiTest: return "learn.ci_test";
    case Point::kLearnSchedule: return "learn.schedule";
    case Point::kTableHugePage: return "table.huge_page";
  }
  return "unknown";
}

void arm(Point point, std::uint64_t fire_on_hit, Action action,
         std::uint32_t stall_ms) {
  PointState& s = state_of(point);
  s.hits.store(0, std::memory_order_relaxed);
  s.action.store(static_cast<int>(action), std::memory_order_relaxed);
  s.stall_ms.store(stall_ms, std::memory_order_relaxed);
  s.fire_on.store(static_cast<std::int64_t>(fire_on_hit),
                  std::memory_order_relaxed);
}

void reset() noexcept {
  for (PointState& s : g_points) {
    s.fire_on.store(-1, std::memory_order_relaxed);
    s.hits.store(0, std::memory_order_relaxed);
    s.action.store(static_cast<int>(Action::kThrow), std::memory_order_relaxed);
    s.stall_ms.store(0, std::memory_order_relaxed);
  }
}

void fire(Point point) {
  PointState& s = state_of(point);
  if (!advance_and_check(s)) return;
  if (s.action.load(std::memory_order_relaxed) ==
      static_cast<int>(Action::kStall)) {
    stall_for(s.stall_ms.load(std::memory_order_relaxed));
    return;
  }
  throw InjectedFault(std::string("injected fault at ") + point_name(point));
}

bool should_fail(Point point) noexcept {
  PointState& s = state_of(point);
  if (!advance_and_check(s)) return false;
  if (s.action.load(std::memory_order_relaxed) ==
      static_cast<int>(Action::kStall)) {
    stall_for(s.stall_ms.load(std::memory_order_relaxed));
  }
  return true;
}

std::uint64_t hits(Point point) noexcept {
  return state_of(point).hits.load(std::memory_order_relaxed);
}

std::string arm_random_schedule(std::uint64_t seed) {
  // Only throwing points participate: spawn/pin/cache-insert/recover-checksum/
  // table.huge_page arming changes behavior via degradation instead of an
  // error, which the fuzz sweeps exercise separately from their
  // match-or-typed-error oracle.
  //
  // Every point here is width-generic: the builder, marginalizer, MI, and
  // serve kernels are one key-trait-templated implementation, so a schedule
  // armed through this function fires identically under narrow (64-bit) and
  // wide (two-word) keys. The wide sweep in tests/test_fault_injection.cpp
  // relies on this — there is no separate wide point list to keep in sync.
  // The socket points (net.accept/read/write) are armed here too: they throw
  // like the rest, and a schedule armed before a non-network run simply
  // leaves them unreached (hit count 0), so the existing build/serve/persist
  // sweeps keep their oracle. The degradation-flavor net points live in
  // arm_random_net_schedule below.
  static constexpr Point kThrowing[] = {
      Point::kSpscChunkAlloc, Point::kStage1Row,  Point::kBarrier,
      Point::kStage2Drain,    Point::kPipelineDrain, Point::kAppendCommit,
      Point::kMarginalizeSweep, Point::kMiSweep, Point::kServePublish,
      Point::kPersistOpen,    Point::kPersistWrite, Point::kPersistFsync,
      Point::kPersistRename,  Point::kPersistManifest,
      Point::kNetAccept,      Point::kNetRead, Point::kNetWrite,
      Point::kLearnCiTest,    Point::kLearnSchedule,
  };
  constexpr std::size_t kThrowingCount = sizeof kThrowing / sizeof kThrowing[0];
  reset();
  Xoshiro256 rng(seed);
  const std::size_t armed = 1 + rng.bounded(3);
  std::string description;
  for (std::size_t i = 0; i < armed; ++i) {
    const Point point = kThrowing[rng.bounded(kThrowingCount)];
    const std::uint64_t fire_on = 1 + rng.bounded(64);
    arm(point, fire_on);
    if (!description.empty()) description += ", ";
    description += std::string(point_name(point)) + "@" +
                   std::to_string(fire_on);
  }
  return description;
}

std::string arm_random_net_schedule(std::uint64_t seed) {
  // Every network-facing point participates, including the degradation
  // flavors: the net fuzz oracle is not "error XOR bit-identical result" but
  // "the server survives and every other connection keeps serving", which
  // holds for forced checksum mismatches and forced rejections just as it
  // does for thrown socket failures.
  static constexpr Point kNetPoints[] = {
      Point::kNetAccept, Point::kNetRead, Point::kNetWrite,
      Point::kNetFrameChecksum, Point::kAdmissionReject,
  };
  constexpr std::size_t kNetCount = sizeof kNetPoints / sizeof kNetPoints[0];
  reset();
  Xoshiro256 rng(seed);
  const std::size_t armed = 1 + rng.bounded(2);
  std::string description;
  for (std::size_t i = 0; i < armed; ++i) {
    const Point point = kNetPoints[rng.bounded(kNetCount)];
    const std::uint64_t fire_on = 1 + rng.bounded(16);
    arm(point, fire_on);
    if (!description.empty()) description += ", ";
    description += std::string(point_name(point)) + "@" +
                   std::to_string(fire_on);
  }
  return description;
}

}  // namespace wfbn::fault
