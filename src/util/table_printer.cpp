#include "util/table_printer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "util/error.hpp"

namespace wfbn {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WFBN_EXPECT(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  WFBN_EXPECT(cells.size() == headers_.size(),
              "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::fmt(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  return buf;
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    // Trim trailing padding on the last column.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::to_csv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) line += ",";
    }
    return line + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void TablePrinter::print(const std::string& title) const {
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  std::fputs(to_string().c_str(), stdout);
}

}  // namespace wfbn
