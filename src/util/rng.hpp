// Deterministic, fast pseudo-random number generation.
//
// The library never uses std::mt19937 internally: benchmark workload
// generation is on the critical path (hundreds of millions of draws for the
// paper-scale datasets), and reproducibility across platforms matters for the
// test suite. xoshiro256** is small, fast, and has well-understood quality;
// splitmix64 turns a single user seed into independent streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace wfbn {

/// splitmix64: used to expand one 64-bit seed into a full generator state.
/// Advances `state` and returns the next output.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator,
/// so it can be handed to <random> distributions when convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64 so that nearby
  /// seeds still yield uncorrelated streams.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x6a09e667f3bcc908ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(); used to derive per-thread
  /// non-overlapping streams from a common seed.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> s{};
    for (std::uint64_t jump_word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (jump_word & (1ULL << bit)) {
          s[0] ^= state_[0];
          s[1] ^= state_[1];
          s[2] ^= state_[2];
          s[3] ^= state_[3];
        }
        (*this)();
      }
    }
    state_ = s;
  }

  /// A generator whose stream is disjoint from this one: copy + `n_jumps`
  /// jump() calls. Stream 0 is the generator itself.
  [[nodiscard]] constexpr Xoshiro256 split(unsigned n_jumps) const noexcept {
    Xoshiro256 g = *this;
    for (unsigned i = 0; i < n_jumps; ++i) g.jump();
    return g;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    // Multiply-shift: maps a 64-bit draw onto [0, bound) nearly uniformly;
    // the rejection loop removes the residual bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace wfbn
