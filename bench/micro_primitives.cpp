// Micro-benchmarks (google-benchmark) of the per-operation costs underlying
// the scaling model: encode/decode, table updates, queue ops, projection,
// and the concurrent-map baselines. These are the measured counterparts of
// the MachineModel entries in src/sim/cost_model.hpp.
#include <benchmark/benchmark.h>

#include <mutex>

#include "bn/d_separation.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "concurrent/atomic_hash_map.hpp"
#include "concurrent/spsc_queue.hpp"
#include "concurrent/striped_hash_map.hpp"
#include "core/all_pairs_mi.hpp"
#include "core/info_theory.hpp"
#include "core/marginalizer.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "table/key_codec.hpp"
#include "table/open_hash_table.hpp"
#include "table/wide_key_codec.hpp"

namespace {

using namespace wfbn;

constexpr std::size_t kRows = 50000;

const Dataset& shared_data(std::size_t n) {
  static const Dataset d30 = generate_uniform(kRows, 30, 2, 11);
  static const Dataset d50 = generate_uniform(kRows, 50, 2, 12);
  return n == 30 ? d30 : d50;
}

void BM_KeyEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Dataset& data = shared_data(n);
  const KeyCodec codec = data.codec();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(data.row(i)));
    i = (i + 1) % kRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyEncode)->Arg(30)->Arg(50);

void BM_KeyDecodeSingleVar(benchmark::State& state) {
  const KeyCodec codec = KeyCodec::uniform(30, 2);
  Key key = 0x155555555;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(key, 17));
    ++key;
  }
}
BENCHMARK(BM_KeyDecodeSingleVar);

void BM_KeyProjectPair(benchmark::State& state) {
  const KeyCodec codec = KeyCodec::uniform(30, 2);
  const std::size_t vars[] = {3, 17};
  const KeyProjector projector(codec, vars);
  Key key = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(projector.project(key));
    key = key * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG walk
  }
}
BENCHMARK(BM_KeyProjectPair);

void BM_OpenHashTableIncrement(benchmark::State& state) {
  const Dataset& data = shared_data(30);
  const KeyCodec codec = data.codec();
  std::vector<Key> keys(kRows);
  for (std::size_t i = 0; i < kRows; ++i) keys[i] = codec.encode(data.row(i));
  OpenHashTable table(kRows);
  std::size_t i = 0;
  for (auto _ : state) {
    table.increment(keys[i]);
    i = (i + 1) % kRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenHashTableIncrement);

void BM_StripedMapIncrement(benchmark::State& state) {
  const Dataset& data = shared_data(30);
  const KeyCodec codec = data.codec();
  std::vector<Key> keys(kRows);
  for (std::size_t i = 0; i < kRows; ++i) keys[i] = codec.encode(data.row(i));
  StripedHashMap map(kRows, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    map.increment(keys[i]);
    i = (i + 1) % kRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StripedMapIncrement)->Arg(1)->Arg(64)->Arg(1024);

void BM_AtomicMapIncrement(benchmark::State& state) {
  const Dataset& data = shared_data(30);
  const KeyCodec codec = data.codec();
  std::vector<Key> keys(kRows);
  for (std::size_t i = 0; i < kRows; ++i) keys[i] = codec.encode(data.row(i));
  AtomicHashMap map(kRows);
  std::size_t i = 0;
  for (auto _ : state) {
    map.increment(keys[i]);
    i = (i + 1) % kRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicMapIncrement);

void BM_SpscPush(benchmark::State& state) {
  SpscQueue<Key> queue;
  Key key = 0;
  Key out = 0;
  std::size_t pending = 0;
  for (auto _ : state) {
    queue.push(key++);
    // Periodically drain so memory stays bounded during long runs.
    if (++pending == 1 << 16) {
      state.PauseTiming();
      while (queue.try_pop(out)) benchmark::DoNotOptimize(out);
      pending = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPush);

void BM_SpscPushPopRoundTrip(benchmark::State& state) {
  SpscQueue<Key> queue;
  Key key = 0;
  Key out = 0;
  for (auto _ : state) {
    queue.push(key++);
    benchmark::DoNotOptimize(queue.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPushPopRoundTrip);

void BM_MutexLockUnlock(benchmark::State& state) {
  std::mutex mutex;
  for (auto _ : state) {
    mutex.lock();
    benchmark::DoNotOptimize(&mutex);
    mutex.unlock();
  }
}
BENCHMARK(BM_MutexLockUnlock);

void BM_PairMutualInformation(benchmark::State& state) {
  MarginalTable joint({0, 1}, {2, 2});
  joint.add(0, 400);
  joint.add(1, 100);
  joint.add(2, 100);
  joint.add(3, 400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mutual_information(joint));
  }
}
BENCHMARK(BM_PairMutualInformation);

void BM_WaitFreeBuildThroughput(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const Dataset& data = shared_data(30);
  WaitFreeBuilderOptions options;
  options.threads = threads;
  WaitFreeBuilder builder(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows));
}
BENCHMARK(BM_WaitFreeBuildThroughput)->Arg(1)->Arg(2)->Arg(4);

void BM_MarginalizePair(benchmark::State& state) {
  const Dataset& data = shared_data(30);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  const Marginalizer marginalizer(static_cast<std::size_t>(state.range(0)));
  const std::size_t vars[] = {3, 17};
  for (auto _ : state) {
    benchmark::DoNotOptimize(marginalizer.marginalize(table, vars));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(table.distinct_keys()));
}
BENCHMARK(BM_MarginalizePair)->Arg(1)->Arg(4);

void BM_AllPairsMiFused(benchmark::State& state) {
  const Dataset data = generate_uniform(20000, 16, 2, 13);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  AllPairsMi all_pairs(
      AllPairsOptions{static_cast<std::size_t>(state.range(0)),
                      AllPairsStrategy::kFused});
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_pairs.compute(table));
  }
}
BENCHMARK(BM_AllPairsMiFused)->Arg(1)->Arg(4);

void BM_DSeparationQueryAlarm(benchmark::State& state) {
  const BayesianNetwork alarm = load_network(RepositoryNetwork::kAlarm);
  const NodeId lvf = alarm.node_by_name("LVFAILURE");
  const NodeId bp = alarm.node_by_name("BP");
  const std::vector<NodeId> z{alarm.node_by_name("CO")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(d_separated(alarm.dag(), lvf, bp, z));
  }
}
BENCHMARK(BM_DSeparationQueryAlarm);

void BM_ForwardSampleAlarm(benchmark::State& state) {
  const BayesianNetwork alarm = load_network(RepositoryNetwork::kAlarm);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forward_sample(alarm, 1000, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ForwardSampleAlarm);

void BM_WideEncode(benchmark::State& state) {
  const WideKeyCodec codec = WideKeyCodec::uniform(100, 2);
  const Dataset data = generate_uniform(kRows, 100, 2, 14);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(data.row(i)));
    i = (i + 1) % kRows;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WideEncode);

}  // namespace

BENCHMARK_MAIN();
