// Snapshot save/load throughput for the durability layer.
//
// For each (width, checksums on/off) configuration: serialize + atomically
// write a published snapshot `repeat` times (save MB/s), then parse + fully
// validate it back `repeat` times (load MB/s). The segment byte size is the
// numerator on both sides, so the two rates are directly comparable and the
// checksum on/off delta isolates the FNV-1a cost from the IO cost.
//
// The sweep runs at both key widths from the same binary — narrow entries
// are 16 bytes on disk, wide entries 24 — so the trajectory tracks the
// wide-key serialization overhead alongside the narrow baseline.
//
// Machine-readable output: a BENCH_persist.json datapoint (path configurable
// with --json-out, empty string disables), plus the same JSON on stdout.
//
//   ./persist_throughput --samples 200000 --repeat 5
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "serve/persist/format.hpp"
#include "serve/persist/snapshot_reader.hpp"
#include "serve/persist/snapshot_writer.hpp"
#include "serve/snapshot.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

namespace {

using namespace wfbn;
namespace persist = serve::persist;

struct ConfigResult {
  const char* width = "narrow";
  bool checksums = true;
  std::size_t variables = 0;
  std::uint64_t distinct_keys = 0;
  std::size_t segment_bytes = 0;
  double save_seconds = 0.0;  ///< serialize + atomic write + fsync, summed
  double load_seconds = 0.0;  ///< read + parse + full validation, summed
  int repeat = 1;

  [[nodiscard]] double save_mb_per_sec() const {
    return save_seconds == 0.0
               ? 0.0
               : static_cast<double>(segment_bytes) *
                     static_cast<double>(repeat) / save_seconds / 1e6;
  }
  [[nodiscard]] double load_mb_per_sec() const {
    return load_seconds == 0.0
               ? 0.0
               : static_cast<double>(segment_bytes) *
                     static_cast<double>(repeat) / load_seconds / 1e6;
  }
};

struct SweepConfig {
  std::size_t samples = 0;
  std::size_t variables = 0;
  std::size_t threads = 0;
  int repeat = 1;
  bool fsync = true;
  std::uint64_t seed = 0;
  std::filesystem::path dir;
};

template <typename K>
void run_sweep(const SweepConfig& config, std::vector<ConfigResult>& results) {
  WaitFreeBuilderOptions build_options;
  build_options.threads = config.threads;
  const Dataset data = generate_chain_correlated(
      config.samples, config.variables, 2, 0.8, config.seed);
  const serve::BasicSnapshot<K> snap(
      BasicWaitFreeBuilder<K>(build_options).build(data), 1);

  for (const bool checksums : {true, false}) {
    const std::filesystem::path dir =
        config.dir / (std::string(KeyTraits<K>::kWidthName) +
                      (checksums ? "_crc" : "_nocrc"));
    std::filesystem::create_directories(dir);
    persist::WriterOptions options;
    options.section_checksums = checksums;
    options.fsync = config.fsync;
    persist::BasicSnapshotWriter<K> writer(dir, options);

    ConfigResult cr;
    cr.width = KeyTraits<K>::kWidthName;
    cr.checksums = checksums;
    cr.variables = config.variables;
    cr.distinct_keys = snap.table().distinct_keys();
    cr.repeat = config.repeat;

    writer.write(snap);  // warm-up write; also sizes the segment
    cr.segment_bytes = static_cast<std::size_t>(
        std::filesystem::file_size(dir / persist::segment_name(1)));

    {
      Timer timer;
      for (int i = 0; i < config.repeat; ++i) writer.write(snap);
      cr.save_seconds = timer.seconds();
    }
    {
      Timer timer;
      for (int i = 0; i < config.repeat; ++i) {
        const auto loaded =
            persist::read_segment<K>(dir / persist::segment_name(1));
        if (loaded.table.sample_count() != snap.table().sample_count()) {
          std::fprintf(stderr, "load verification failed\n");
          std::exit(1);
        }
      }
      cr.load_seconds = timer.seconds();
    }
    results.push_back(cr);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("persist_throughput — snapshot save/load throughput");
  cli.add_option("samples", "200000", "Rows folded into the persisted table");
  cli.add_option("variables", "12", "Binary variables (narrow store)");
  cli.add_option("wide-variables", "100",
                 "Binary variables for the wide-key sweep (0 disables it)");
  cli.add_option("threads", "4", "Builder threads (= table partitions)");
  cli.add_option("repeat", "5", "Timed save/load iterations per config");
  cli.add_option("fsync", "1", "fsync on every atomic write (0 disables)");
  cli.add_option("seed", "42", "Workload seed");
  cli.add_option("dir", "", "Scratch directory (default: a temp dir)");
  cli.add_option("json-out", "BENCH_persist.json",
                 "JSON datapoint path (empty disables the file)");
  if (!cli.parse(argc, argv)) return 0;

  SweepConfig config;
  config.samples = static_cast<std::size_t>(cli.get_int("samples"));
  config.variables = static_cast<std::size_t>(cli.get_int("variables"));
  config.threads = static_cast<std::size_t>(cli.get_int("threads"));
  config.repeat = static_cast<int>(cli.get_int("repeat"));
  config.fsync = cli.get_int("fsync") != 0;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto wide_n = static_cast<std::size_t>(cli.get_int("wide-variables"));
  const std::string json_out = cli.get("json-out");

  const std::string dir_arg = cli.get("dir");
  config.dir = dir_arg.empty()
                   ? std::filesystem::temp_directory_path() / "wfbn_persist_bench"
                   : std::filesystem::path(dir_arg);
  std::filesystem::create_directories(config.dir);

  std::vector<ConfigResult> results;
  run_sweep<Key>(config, results);
  if (wide_n > 0) {
    SweepConfig wide_config = config;
    wide_config.variables = wide_n;
    run_sweep<WideKey>(wide_config, results);
  }

  TablePrinter table({"width", "checksums", "vars", "keys", "segment MB",
                      "save MB/s", "load MB/s"});
  for (const ConfigResult& cr : results) {
    table.add_row({cr.width, cr.checksums ? "on" : "off",
                   std::to_string(cr.variables),
                   std::to_string(cr.distinct_keys),
                   TablePrinter::fmt(
                       static_cast<double>(cr.segment_bytes) / 1e6, 2),
                   TablePrinter::fmt(cr.save_mb_per_sec(), 1),
                   TablePrinter::fmt(cr.load_mb_per_sec(), 1)});
  }
  table.print("persist_throughput — snapshot save/load");

  std::string json = "{\n  \"bench\": \"persist_throughput\",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"config\": {\"samples\": " + std::to_string(config.samples) +
          ", \"variables\": " + std::to_string(config.variables) +
          ", \"wide_variables\": " + std::to_string(wide_n) +
          ", \"partitions\": " + std::to_string(config.threads) +
          ", \"repeat\": " + std::to_string(config.repeat) +
          ", \"fsync\": " + (config.fsync ? "true" : "false") +
          ", \"seed\": " + std::to_string(config.seed) + "},\n";
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& cr = results[i];
    char row[320];
    std::snprintf(row, sizeof row,
                  "    {\"width\": \"%s\", \"checksums\": %s, "
                  "\"variables\": %zu, \"distinct_keys\": %llu, "
                  "\"segment_bytes\": %zu, \"save_mb_per_sec\": %.1f, "
                  "\"load_mb_per_sec\": %.1f}%s\n",
                  cr.width, cr.checksums ? "true" : "false", cr.variables,
                  static_cast<unsigned long long>(cr.distinct_keys),
                  cr.segment_bytes, cr.save_mb_per_sec(), cr.load_mb_per_sec(),
                  i + 1 == results.size() ? "" : ",");
    json += row;
  }
  json += "  ]\n}\n";

  std::printf("\n-- JSON --\n%s", json.c_str());
  if (!json_out.empty()) {
    if (std::FILE* f = std::fopen(json_out.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_out.c_str());
    } else {
      std::printf("could not write %s\n", json_out.c_str());
    }
  }
  return 0;
}
