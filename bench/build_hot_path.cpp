// Block-routing hot-path sweep: stage-1 + stage-2 construction throughput as
// a function of the write-combining buffer size (route_buffer_keys) and the
// stage-2 probe-prefetch lookahead (prefetch_distance), against the scalar
// baseline (route_buffer_keys = 1, prefetch_distance = 0,
// encode_block_rows = 1) on the same workload.
//
// Every swept configuration is verified to produce a table identical to the
// scalar baseline (same distinct keys, same total count, same
// order-independent content checksum) before its timing is reported — a
// faster build of a different table would be worthless.
//
// Reported per configuration: best-of-reps wall clock, the critical path
// max_p(stage1_p) + max_p(stage2_p) (the makespan a P-core machine would
// observe; on hosts with fewer cores than P the wall clock serializes the
// workers and stops being informative — the JSON records host_cores), rows/s
// on the critical path, speedup vs the scalar baseline, and the transfer
// efficiency counters (foreign keys per flush, drained keys per bulk pop).
//
// Machine-readable output: a BENCH_build_hot_path.json datapoint (path
// configurable with --json-out, empty string disables), plus the same JSON
// on stdout.
//
//   ./build_hot_path --samples 1000000 --variables 30 --threads 8
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "table/key_traits.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace wfbn;

struct SweepConfig {
  std::size_t samples = 0;
  std::size_t variables = 0;
  std::uint32_t cardinality = 2;
  std::size_t threads = 8;
  std::size_t reps = 2;
  bool pipelined = false;
  std::uint64_t seed = 42;
};

struct TableDigest {
  std::uint64_t distinct = 0;
  std::uint64_t total = 0;
  std::uint64_t checksum = 0;  // order-independent content hash

  [[nodiscard]] bool operator==(const TableDigest&) const = default;
};

TableDigest digest_of(const PotentialTable& table) {
  TableDigest digest;
  table.partitions().for_each([&](Key key, std::uint64_t c) {
    ++digest.distinct;
    digest.total += c;
    // Commutative fold: summing per-entry mixes is insensitive to the sweep
    // order, which differs across partition geometries.
    std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    digest.checksum += h ^ (c * 0x94D049BB133111EBULL);
  });
  return digest;
}

struct ConfigResult {
  std::size_t buffer = 0;
  std::size_t prefetch = 0;
  double wall_seconds = 0.0;
  double critical_seconds = 0.0;
  std::uint64_t route_flushes = 0;
  std::uint64_t bulk_pops = 0;
  std::uint64_t foreign = 0;
  std::uint64_t drained = 0;
  bool identical = false;

  [[nodiscard]] double rows_per_sec(std::size_t m) const {
    return critical_seconds == 0.0
               ? 0.0
               : static_cast<double>(m) / critical_seconds;
  }
};

WaitFreeBuilderOptions options_for(const SweepConfig& config,
                                   std::size_t buffer, std::size_t prefetch,
                                   std::size_t strip) {
  WaitFreeBuilderOptions options;
  options.threads = config.threads;
  options.pipelined = config.pipelined;
  options.route_buffer_keys = buffer;
  options.prefetch_distance = prefetch;
  options.encode_block_rows = strip;
  return options;
}

ConfigResult run_config(const Dataset& data, const SweepConfig& config,
                        std::size_t buffer, std::size_t prefetch,
                        std::size_t strip, const TableDigest& reference) {
  ConfigResult result;
  result.buffer = buffer;
  result.prefetch = prefetch;
  result.wall_seconds = 1e300;
  result.critical_seconds = 1e300;
  WaitFreeBuilder builder(options_for(config, buffer, prefetch, strip));
  for (std::size_t rep = 0; rep < config.reps; ++rep) {
    const PotentialTable table = builder.build(data);
    const BuildStats& stats = builder.stats();
    if (stats.total_seconds < result.wall_seconds) {
      result.wall_seconds = stats.total_seconds;
    }
    if (stats.critical_path_seconds() < result.critical_seconds) {
      result.critical_seconds = stats.critical_path_seconds();
    }
    result.route_flushes = stats.total_route_flushes();
    result.bulk_pops = stats.total_bulk_pops();
    result.foreign = stats.total_foreign_pushes();
    result.drained = 0;
    for (const WorkerStats& w : stats.workers) result.drained += w.stage2_pops;
    if (rep == 0) result.identical = digest_of(table) == reference;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "build_hot_path — write-combining / bulk-transfer sweep of the "
      "two-stage construction kernel");
  cli.add_option("samples", "1000000", "Training rows m");
  cli.add_option("variables", "30", "Variables n");
  cli.add_option("cardinality", "2", "States per variable r");
  cli.add_option("threads", "8", "Workers (= partitions) P");
  cli.add_option("buffers", "1,16,64,256",
                 "route_buffer_keys values to sweep (1 = scalar routing)");
  cli.add_option("prefetch", "0,4,8", "prefetch_distance values to sweep");
  cli.add_option("encode-rows", "32",
                 "encode_block_rows for swept configs (baseline always 1)");
  cli.add_option("reps", "2", "Repetitions per configuration (best-of)");
  cli.add_option("seed", "42", "Workload seed");
  cli.add_flag("pipelined", "Sweep the barrier-free pipelined variant");
  cli.add_option("json-out", "BENCH_build_hot_path.json",
                 "JSON datapoint path (empty disables the file)");
  if (!cli.parse(argc, argv)) return 0;

  SweepConfig config;
  config.samples = static_cast<std::size_t>(cli.get_int("samples"));
  config.variables = static_cast<std::size_t>(cli.get_int("variables"));
  config.cardinality = static_cast<std::uint32_t>(cli.get_int("cardinality"));
  config.threads = static_cast<std::size_t>(cli.get_int("threads"));
  config.reps = static_cast<std::size_t>(cli.get_int("reps"));
  config.pipelined = cli.get_bool("pipelined");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto strip = static_cast<std::size_t>(cli.get_int("encode-rows"));
  const std::string json_out = cli.get("json-out");

  std::printf("generating %zu x %zu (r=%u) workload...\n", config.samples,
              config.variables, config.cardinality);
  const Dataset data = generate_uniform(config.samples, config.variables,
                                        config.cardinality, config.seed);

  // Scalar baseline: block size 1 at every layer.
  WaitFreeBuilder scalar(options_for(config, 1, 0, 1));
  TableDigest reference;
  double scalar_wall = 1e300;
  double scalar_critical = 1e300;
  for (std::size_t rep = 0; rep < config.reps; ++rep) {
    const PotentialTable table = scalar.build(data);
    if (rep == 0) reference = digest_of(table);
    scalar_wall = std::min(scalar_wall, scalar.stats().total_seconds);
    scalar_critical =
        std::min(scalar_critical, scalar.stats().critical_path_seconds());
  }
  std::printf("scalar baseline: wall %.3fs, critical path %.3fs\n",
              scalar_wall, scalar_critical);

  std::vector<ConfigResult> results;
  for (const std::int64_t buffer : cli.get_int_list("buffers")) {
    for (const std::int64_t prefetch : cli.get_int_list("prefetch")) {
      results.push_back(run_config(data, config,
                                   static_cast<std::size_t>(buffer),
                                   static_cast<std::size_t>(prefetch), strip,
                                   reference));
    }
  }

  TablePrinter table({"buffer", "prefetch", "wall s", "critical s", "rows/s",
                      "speedup", "keys/flush", "keys/pop", "identical"});
  for (const ConfigResult& r : results) {
    const double keys_per_flush =
        r.route_flushes == 0 ? 0.0
                             : static_cast<double>(r.foreign) /
                                   static_cast<double>(r.route_flushes);
    const double keys_per_pop =
        r.bulk_pops == 0 ? 0.0
                         : static_cast<double>(r.drained) /
                               static_cast<double>(r.bulk_pops);
    table.add_row({std::to_string(r.buffer), std::to_string(r.prefetch),
                   TablePrinter::fmt(r.wall_seconds, 3),
                   TablePrinter::fmt(r.critical_seconds, 3),
                   TablePrinter::fmt(r.rows_per_sec(config.samples), 0),
                   TablePrinter::fmt(scalar_critical / r.critical_seconds, 2),
                   TablePrinter::fmt(keys_per_flush, 1),
                   TablePrinter::fmt(keys_per_pop, 1),
                   r.identical ? "yes" : "NO"});
  }
  table.print("build_hot_path — block routing sweep (P=" +
              std::to_string(config.threads) + ")");

  std::string json = "{\n  \"bench\": \"build_hot_path\",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"config\": {\"samples\": " + std::to_string(config.samples) +
          ", \"variables\": " + std::to_string(config.variables) +
          ", \"cardinality\": " + std::to_string(config.cardinality) +
          ", \"threads\": " + std::to_string(config.threads) +
          ", \"encode_block_rows\": " + std::to_string(strip) +
          ", \"pipelined\": " + (config.pipelined ? "true" : "false") +
          ", \"reps\": " + std::to_string(config.reps) +
          ", \"seed\": " + std::to_string(config.seed) + "},\n";
  char baseline[160];
  std::snprintf(baseline, sizeof baseline,
                "  \"scalar_baseline\": {\"wall_seconds\": %.6f, "
                "\"critical_path_seconds\": %.6f},\n",
                scalar_wall, scalar_critical);
  json += baseline;
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    char row[400];
    std::snprintf(
        row, sizeof row,
        "    {\"route_buffer_keys\": %zu, \"prefetch_distance\": %zu, "
        "\"wall_seconds\": %.6f, \"critical_path_seconds\": %.6f, "
        "\"rows_per_sec\": %.1f, \"speedup_vs_scalar\": %.3f, "
        "\"route_flushes\": %llu, \"bulk_pops\": %llu, "
        "\"identical_to_scalar\": %s}%s\n",
        r.buffer, r.prefetch, r.wall_seconds, r.critical_seconds,
        r.rows_per_sec(config.samples), scalar_critical / r.critical_seconds,
        static_cast<unsigned long long>(r.route_flushes),
        static_cast<unsigned long long>(r.bulk_pops),
        r.identical ? "true" : "false", i + 1 == results.size() ? "" : ",");
    json += row;
  }
  json += "  ]\n}\n";

  std::printf("\n-- JSON --\n%s", json.c_str());
  if (!json_out.empty()) {
    if (std::FILE* f = std::fopen(json_out.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_out.c_str());
    } else {
      std::printf("could not write %s\n", json_out.c_str());
    }
  }

  bool all_identical = true;
  for (const ConfigResult& r : results) all_identical &= r.identical;
  if (!all_identical) {
    std::printf("ERROR: a swept configuration diverged from the scalar "
                "baseline table\n");
    return 1;
  }
  return 0;
}
