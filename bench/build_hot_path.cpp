// Hot-path sweep of the two-stage construction kernel: stage-1 + stage-2
// throughput as a function of the write-combining buffer (route_buffer_keys),
// the stage-2 prefetch lookahead (prefetch_distance), the encode/probe
// kernel dispatch (--simd: scalar reference loops vs. runtime-resolved AVX2
// SoA tiles), the stage-2 probe parallelism (--cursors: 0 = in-order drain,
// >= 2 = multi-cursor batched probing), huge-page table backing
// (--huge-pages), and the workload cardinality (--cardinality, a sweep list —
// r shifts the distinct-key population and therefore the table/TLB pressure).
//
// Every swept configuration is verified to produce a table identical to the
// scalar baseline (route_buffer_keys = 1, prefetch_distance = 0,
// encode_block_rows = 1, simd = scalar, cursors = 0, normal pages) on the
// same workload — same distinct keys, same total count, same
// order-independent content checksum — before its timing is reported; a
// faster build of a different table would be worthless.
//
// Reported per configuration: best-of-reps wall clock, the critical path
// max_p(stage1_p) + max_p(stage2_p) (the makespan a P-core machine would
// observe; on hosts with fewer cores than P the wall clock serializes the
// workers and stops being informative — the JSON records host_cores), rows/s
// on the critical path, speedup vs the scalar baseline, the effective SIMD
// level, and the huge-page backing outcome.
//
// Machine-readable output: a BENCH_build_hot_path.json datapoint with one
// "sweeps" entry per cardinality (path configurable with --json-out, empty
// string disables), plus the same JSON on stdout.
//
//   ./build_hot_path --samples 1000000 --variables 30 --threads 8
//       --cardinality 2,4,8 --simd scalar,auto --cursors 0,16 --huge-pages 0,1
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "table/key_traits.hpp"
#include "util/cli.hpp"
#include "util/simd.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace wfbn;

struct SweepConfig {
  std::size_t samples = 0;
  std::size_t variables = 0;
  std::size_t threads = 8;
  std::size_t reps = 2;
  bool pipelined = false;
  std::uint64_t seed = 42;
};

struct TableDigest {
  std::uint64_t distinct = 0;
  std::uint64_t total = 0;
  std::uint64_t checksum = 0;  // order-independent content hash

  [[nodiscard]] bool operator==(const TableDigest&) const = default;
};

TableDigest digest_of(const PotentialTable& table) {
  TableDigest digest;
  table.partitions().for_each([&](Key key, std::uint64_t c) {
    ++digest.distinct;
    digest.total += c;
    // Commutative fold: summing per-entry mixes is insensitive to the sweep
    // order, which differs across partition geometries.
    std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    digest.checksum += h ^ (c * 0x94D049BB133111EBULL);
  });
  return digest;
}

struct Knobs {
  std::size_t buffer = 1;
  std::size_t prefetch = 0;
  std::size_t strip = 1;
  simd::Policy simd = simd::Policy::kScalar;
  std::size_t cursors = 0;
  bool huge_pages = false;
};

struct ConfigResult {
  Knobs knobs;
  simd::Level level = simd::Level::kScalar;  // effective, from BuildStats
  std::size_t huge_tables = 0;
  std::size_t huge_fallbacks = 0;
  double wall_seconds = 0.0;
  double critical_seconds = 0.0;
  bool identical = false;

  [[nodiscard]] double rows_per_sec(std::size_t m) const {
    return critical_seconds == 0.0
               ? 0.0
               : static_cast<double>(m) / critical_seconds;
  }
};

WaitFreeBuilderOptions options_for(const SweepConfig& config,
                                   const Knobs& knobs) {
  WaitFreeBuilderOptions options;
  options.threads = config.threads;
  options.pipelined = config.pipelined;
  options.route_buffer_keys = knobs.buffer;
  options.prefetch_distance = knobs.prefetch;
  options.encode_block_rows = knobs.strip;
  options.simd = knobs.simd;
  options.probe_cursors = knobs.cursors;
  options.huge_pages = knobs.huge_pages;
  return options;
}

ConfigResult run_config(const Dataset& data, const SweepConfig& config,
                        const Knobs& knobs, const TableDigest& reference) {
  ConfigResult result;
  result.knobs = knobs;
  result.wall_seconds = 1e300;
  result.critical_seconds = 1e300;
  WaitFreeBuilder builder(options_for(config, knobs));
  for (std::size_t rep = 0; rep < config.reps; ++rep) {
    const PotentialTable table = builder.build(data);
    const BuildStats& stats = builder.stats();
    result.wall_seconds = std::min(result.wall_seconds, stats.total_seconds);
    result.critical_seconds =
        std::min(result.critical_seconds, stats.critical_path_seconds());
    result.level = stats.simd_level;
    result.huge_tables = stats.huge_page_tables;
    result.huge_fallbacks = stats.huge_page_fallbacks;
    if (rep == 0) result.identical = digest_of(table) == reference;
  }
  return result;
}

std::vector<simd::Policy> parse_simd_list(const std::string& text) {
  std::vector<simd::Policy> out;
  std::size_t at = 0;
  while (at <= text.size()) {
    const std::size_t comma = std::min(text.find(',', at), text.size());
    const std::string token = text.substr(at, comma - at);
    simd::Policy policy;
    if (!token.empty() && simd::parse_policy(token.c_str(), policy)) {
      out.push_back(policy);
    } else {
      std::printf("unknown --simd value '%s' (want auto|scalar|avx2)\n",
                  token.c_str());
      std::exit(1);
    }
    at = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "build_hot_path — kernel-dispatch / write-combining / probe sweep of "
      "the two-stage construction kernel");
  cli.add_option("samples", "1000000", "Training rows m");
  cli.add_option("variables", "30", "Variables n");
  cli.add_option("cardinality", "2",
                 "States per variable r — a sweep list (e.g. 2,4,8)");
  cli.add_option("threads", "8", "Workers (= partitions) P");
  cli.add_option("buffers", "1,64",
                 "route_buffer_keys values to sweep (1 = scalar routing)");
  cli.add_option("prefetch", "0,4", "prefetch_distance values to sweep");
  cli.add_option("encode-rows", "32",
                 "encode_block_rows for swept configs (baseline always 1)");
  cli.add_option("simd", "scalar,auto",
                 "Kernel dispatch policies to sweep: auto|scalar|avx2");
  cli.add_option("cursors", "0,16",
                 "probe_cursors values to sweep (0 = in-order drain)");
  cli.add_option("huge-pages", "0",
                 "Huge-page table backing values to sweep (0 and/or 1)");
  cli.add_option("reps", "2", "Repetitions per configuration (best-of)");
  cli.add_option("seed", "42", "Workload seed");
  cli.add_flag("pipelined", "Sweep the barrier-free pipelined variant");
  cli.add_option("json-out", "BENCH_build_hot_path.json",
                 "JSON datapoint path (empty disables the file)");
  if (!cli.parse(argc, argv)) return 0;

  SweepConfig config;
  config.samples = static_cast<std::size_t>(cli.get_int("samples"));
  config.variables = static_cast<std::size_t>(cli.get_int("variables"));
  config.threads = static_cast<std::size_t>(cli.get_int("threads"));
  config.reps = static_cast<std::size_t>(cli.get_int("reps"));
  config.pipelined = cli.get_bool("pipelined");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto strip = static_cast<std::size_t>(cli.get_int("encode-rows"));
  const std::string json_out = cli.get("json-out");
  const std::vector<std::int64_t> cardinalities =
      cli.get_int_list("cardinality");
  const std::vector<simd::Policy> policies = parse_simd_list(cli.get("simd"));
  const std::vector<std::int64_t> cursor_list = cli.get_int_list("cursors");
  const std::vector<std::int64_t> huge_list = cli.get_int_list("huge-pages");

  std::printf("host simd level: %s\n", simd::level_name(simd::detected()));

  std::string json = "{\n  \"bench\": \"build_hot_path\",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"host_simd\": \"" +
          std::string(simd::level_name(simd::detected())) + "\",\n";
  json += "  \"config\": {\"samples\": " + std::to_string(config.samples) +
          ", \"variables\": " + std::to_string(config.variables) +
          ", \"threads\": " + std::to_string(config.threads) +
          ", \"encode_block_rows\": " + std::to_string(strip) +
          ", \"pipelined\": " + (config.pipelined ? "true" : "false") +
          ", \"reps\": " + std::to_string(config.reps) +
          ", \"seed\": " + std::to_string(config.seed) + "},\n";
  json += "  \"sweeps\": [\n";

  bool all_identical = true;
  for (std::size_t ci = 0; ci < cardinalities.size(); ++ci) {
    const auto r = static_cast<std::uint32_t>(cardinalities[ci]);
    std::printf("generating %zu x %zu (r=%u) workload...\n", config.samples,
                config.variables, r);
    const Dataset data =
        generate_uniform(config.samples, config.variables, r, config.seed);

    // Scalar baseline: block size 1 at every layer, reference kernels,
    // in-order probing, normal pages.
    WaitFreeBuilder scalar(options_for(config, Knobs{}));
    TableDigest reference;
    double scalar_wall = 1e300;
    double scalar_critical = 1e300;
    for (std::size_t rep = 0; rep < config.reps; ++rep) {
      const PotentialTable table = scalar.build(data);
      if (rep == 0) reference = digest_of(table);
      scalar_wall = std::min(scalar_wall, scalar.stats().total_seconds);
      scalar_critical =
          std::min(scalar_critical, scalar.stats().critical_path_seconds());
    }
    std::printf("r=%u scalar baseline: wall %.3fs, critical path %.3fs\n", r,
                scalar_wall, scalar_critical);

    std::vector<ConfigResult> results;
    for (const simd::Policy policy : policies) {
      for (const std::int64_t cursors : cursor_list) {
        for (const std::int64_t huge : huge_list) {
          for (const std::int64_t buffer : cli.get_int_list("buffers")) {
            for (const std::int64_t prefetch : cli.get_int_list("prefetch")) {
              Knobs knobs;
              knobs.buffer = static_cast<std::size_t>(buffer);
              knobs.prefetch = static_cast<std::size_t>(prefetch);
              knobs.strip = strip;
              knobs.simd = policy;
              knobs.cursors = static_cast<std::size_t>(cursors);
              knobs.huge_pages = huge != 0;
              results.push_back(run_config(data, config, knobs, reference));
            }
          }
        }
      }
    }

    TablePrinter table({"simd", "cursors", "huge", "buffer", "prefetch",
                        "wall s", "critical s", "rows/s", "speedup",
                        "identical"});
    for (const ConfigResult& res : results) {
      table.add_row(
          {simd::level_name(res.level), std::to_string(res.knobs.cursors),
           res.knobs.huge_pages ? "on" : "off",
           std::to_string(res.knobs.buffer), std::to_string(res.knobs.prefetch),
           TablePrinter::fmt(res.wall_seconds, 3),
           TablePrinter::fmt(res.critical_seconds, 3),
           TablePrinter::fmt(res.rows_per_sec(config.samples), 0),
           TablePrinter::fmt(scalar_critical / res.critical_seconds, 2),
           res.identical ? "yes" : "NO"});
    }
    table.print("build_hot_path — r=" + std::to_string(r) + " sweep (P=" +
                std::to_string(config.threads) + ")");

    json += "    {\"cardinality\": " + std::to_string(r) + ",\n";
    char baseline[160];
    std::snprintf(baseline, sizeof baseline,
                  "     \"scalar_baseline\": {\"wall_seconds\": %.6f, "
                  "\"critical_path_seconds\": %.6f},\n",
                  scalar_wall, scalar_critical);
    json += baseline;
    json += "     \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ConfigResult& res = results[i];
      char row[512];
      std::snprintf(
          row, sizeof row,
          "      {\"route_buffer_keys\": %zu, \"prefetch_distance\": %zu, "
          "\"simd\": \"%s\", \"simd_level\": \"%s\", \"probe_cursors\": %zu, "
          "\"huge_pages\": %s, \"huge_page_tables\": %zu, "
          "\"huge_page_fallbacks\": %zu, \"wall_seconds\": %.6f, "
          "\"critical_path_seconds\": %.6f, \"rows_per_sec\": %.1f, "
          "\"speedup_vs_scalar\": %.3f, \"identical_to_scalar\": %s}%s\n",
          res.knobs.buffer, res.knobs.prefetch,
          simd::policy_name(res.knobs.simd), simd::level_name(res.level),
          res.knobs.cursors, res.knobs.huge_pages ? "true" : "false",
          res.huge_tables, res.huge_fallbacks, res.wall_seconds,
          res.critical_seconds, res.rows_per_sec(config.samples),
          scalar_critical / res.critical_seconds,
          res.identical ? "true" : "false",
          i + 1 == results.size() ? "" : ",");
      json += row;
      all_identical &= res.identical;
    }
    json += "     ]}";
    json += (ci + 1 == cardinalities.size()) ? "\n" : ",\n";
  }
  json += "  ]\n}\n";

  std::printf("\n-- JSON --\n%s", json.c_str());
  if (!json_out.empty()) {
    if (std::FILE* f = std::fopen(json_out.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_out.c_str());
    } else {
      std::printf("could not write %s\n", json_out.c_str());
    }
  }

  if (!all_identical) {
    std::printf("ERROR: a swept configuration diverged from the scalar "
                "baseline table\n");
    return 1;
  }
  return 0;
}
