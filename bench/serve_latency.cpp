// Open-loop latency of the network serving front end, and the admission-
// control overload property.
//
// A ServeServer runs on loopback over a freshly built store. Three traffic
// classes hit it concurrently, each from its own generator thread with its
// own connection:
//
//   interactive — marginal / pair-MI queries at a fixed arrival rate,
//   ingest      — observation batches at a configurable flood rate,
//   admin       — a light stats poll.
//
// Generation is OPEN-LOOP: every request has a scheduled due time
// (i / rate), requests are sent as soon as they are due regardless of how
// many are still in flight (pipelined on the connection), and latency is
// measured from the DUE time to response receipt. A server that falls
// behind therefore accrues queueing delay in the recorded latencies instead
// of silently slowing the generator down — the standard fix for coordinated
// omission.
//
// Two phases per admission mode (enabled / disabled):
//
//   baseline — interactive + admin only.
//   overload — the ingest flood added.
//
// With admission enabled, ingest lives in its own bounded queue with its own
// dispatcher: the flood gets explicit OVERLOADED rejections and interactive
// p99 stays near baseline. Disabled reproduces the naive front end — one
// shared FIFO, one dispatcher — where every query queues behind whole ingest
// builds, and interactive p99 inflates by orders of magnitude. The emitted
// BENCH_serve_latency.json records both, plus the property verdict.
//
//   ./serve_latency --duration-ms 1000 --query-rate 2000 --ingest-rate 60
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "net/serve_client.hpp"
#include "net/serve_server.hpp"
#include "serve/serve_engine.hpp"
#include "serve/table_store.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace wfbn;

using Clock = std::chrono::steady_clock;

double now_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ClassResult {
  std::string phase;
  bool admission = false;
  std::string traffic_class;
  double target_rate = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_ms;  ///< due-time latency of OK responses

  [[nodiscard]] double percentile(double p) const {
    if (latencies_ms.empty()) return 0.0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }
  [[nodiscard]] double max_ms() const {
    return latencies_ms.empty()
               ? 0.0
               : *std::max_element(latencies_ms.begin(), latencies_ms.end());
  }
};

/// One open-loop generator: sends `make(i)` at due time i/rate for
/// `duration` seconds, drains responses continuously, then collects
/// stragglers. Latency of response id is receipt - due(id).
template <typename MakeRequest>
ClassResult run_generator(std::uint16_t port, double rate, double duration,
                          MakeRequest make, const std::string& cls) {
  ClassResult result;
  result.traffic_class = cls;
  result.target_rate = rate;
  if (rate <= 0.0) return result;

  net::ClientOptions options;
  options.port = port;
  options.timeout_ms = 10000;
  net::ServeClient client(options);

  const Clock::time_point start = Clock::now();
  std::vector<double> due_s;  // due time of request id i, seconds from start
  const auto drain = [&](int timeout_ms) {
    while (std::optional<net::Response> r = client.try_receive(timeout_ms)) {
      switch (r->status) {
        case net::Status::kOk:
          ++result.ok;
          result.latencies_ms.push_back(
              (now_seconds(start) - due_s[r->id]) * 1e3);
          break;
        case net::Status::kOverloaded:
          ++result.overloaded;
          break;
        default:
          ++result.errors;
          break;
      }
      if (timeout_ms != 0) break;  // straggler mode: one at a time
    }
  };

  std::uint64_t next_id = 0;
  while (true) {
    const double t = now_seconds(start);
    if (t >= duration) break;
    // Send everything due by now — behind-schedule requests go out
    // immediately and their queueing delay lands in the measured latency.
    while (static_cast<double>(next_id) / rate <= t) {
      due_s.push_back(static_cast<double>(next_id) / rate);
      client.send(make(next_id));
      ++result.sent;
      ++next_id;
    }
    drain(0);
    const double next_due = static_cast<double>(next_id) / rate;
    const double sleep_s = std::min(next_due - now_seconds(start), 1e-3);
    if (sleep_s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    }
  }
  // Collect stragglers (bounded: an unresponsive server must not hang the
  // bench; anything still missing counts as an error).
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(5000);
  while (result.ok + result.overloaded + result.errors < result.sent &&
         Clock::now() < deadline) {
    try {
      drain(50);
    } catch (const std::exception&) {
      break;
    }
  }
  result.errors += result.sent - (result.ok + result.overloaded + result.errors);
  return result;
}

struct PhaseConfig {
  std::string name;
  bool admission = true;
  double query_rate = 0.0;
  double ingest_rate = 0.0;
  double admin_rate = 0.0;
  /// Token-bucket cap on admitted ingest (admission-on phases): the
  /// operator's knob that keeps a flood from saturating the host. Excess
  /// batches get explicit OVERLOADED + retry-after. 0 = uncapped.
  double ingest_admit_rate = 0.0;
};

std::vector<ClassResult> run_phase(const PhaseConfig& phase,
                                   const Dataset& base, const Dataset& batch,
                                   double duration, std::size_t threads) {
  // Fresh store + engine per phase so ingest from a previous phase cannot
  // change the table the next phase queries.
  serve::TableStore store([&] {
    WaitFreeBuilderOptions options;
    options.threads = threads;
    return WaitFreeBuilder(options).build(base);
  }());
  serve::ServeEngine engine(store);
  ThreadPool pool(threads);
  net::ServerOptions server_options;
  server_options.admission.enabled = phase.admission;
  if (phase.admission && phase.ingest_admit_rate > 0.0) {
    net::ClassPolicy& ingest_policy =
        server_options.admission
            .per_class[static_cast<std::size_t>(net::RequestClass::kIngest)];
    ingest_policy.rate_per_sec = phase.ingest_admit_rate;
    ingest_policy.burst = 16;
  }
  net::ServeServer server(engine, pool, server_options);
  server.start();
  const std::uint16_t port = server.port();

  const std::size_t n = base.cardinalities().size();
  {
    // Warm-up outside the measurement: first-touch page faults, the pool's
    // first serve_batch, and the connection handshake all land here instead
    // of in the first phase's percentiles.
    net::ClientOptions options;
    options.port = port;
    net::ServeClient warm(options);
    for (std::uint64_t i = 0; i < 64; ++i) {
      net::Request request;
      request.id = i;
      request.opcode = net::Opcode::kMarginal;
      request.query.kind = serve::QueryKind::kMarginal;
      request.query.variables = {i % n};
      (void)warm.call(request);
    }
  }
  std::vector<ClassResult> results(3);
  std::thread interactive([&] {
    results[0] = run_generator(
        port, phase.query_rate, duration,
        [&](std::uint64_t id) {
          net::Request request;
          request.id = id;
          if (id % 4 == 3) {
            request.opcode = net::Opcode::kPairMi;
            request.query.kind = serve::QueryKind::kPairMi;
            request.query.variables = {id % n, (id + 1) % n};
          } else {
            request.opcode = net::Opcode::kMarginal;
            request.query.kind = serve::QueryKind::kMarginal;
            request.query.variables = {id % n, (id + 3) % n};
          }
          return request;
        },
        "interactive");
  });
  std::thread ingest([&] {
    results[1] = run_generator(
        port, phase.ingest_rate, duration,
        [&](std::uint64_t id) {
          net::Request request;
          request.id = id;
          request.opcode = net::Opcode::kIngest;
          request.ingest_samples = batch.sample_count();
          request.ingest_cardinalities = batch.cardinalities();
          request.ingest_cells.assign(batch.raw().begin(), batch.raw().end());
          return request;
        },
        "ingest");
  });
  std::thread admin([&] {
    results[2] = run_generator(
        port, phase.admin_rate, duration,
        [&](std::uint64_t id) {
          net::Request request;
          request.id = id;
          request.opcode = net::Opcode::kStats;
          return request;
        },
        "admin");
  });
  interactive.join();
  ingest.join();
  admin.join();
  for (ClassResult& r : results) {
    r.phase = phase.name;
    r.admission = phase.admission;
  }
  server.stop();
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Open-loop latency of the network serving front end: per-class "
      "p50/p95/p99 plus the overload sweep showing per-class admission "
      "control holding interactive tail latency under ingest flood.");
  cli.add_option("samples", "60000", "Rows in the base table");
  cli.add_option("variables", "10", "Variables (binary)");
  cli.add_option("threads", "4", "Server worker threads");
  cli.add_option("duration-ms", "1200", "Open-loop generation time per phase");
  cli.add_option("query-rate", "1500", "Interactive arrivals/sec");
  cli.add_option("ingest-rate", "400", "Overload-phase ingest batches/sec");
  cli.add_option("ingest-admit-rate", "120",
                 "Admission-on cap on admitted ingest batches/sec");
  cli.add_option("ingest-batch", "16000", "Rows per ingest batch");
  cli.add_option("admin-rate", "20", "Admin stats polls/sec");
  cli.add_option("seed", "42", "Workload seed");
  cli.add_option("json-out", "BENCH_serve_latency.json",
                 "Write the JSON datapoint here ('' disables)");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t samples = static_cast<std::size_t>(cli.get_int("samples"));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("variables"));
  const std::size_t threads = static_cast<std::size_t>(cli.get_int("threads"));
  const double duration = static_cast<double>(cli.get_int("duration-ms")) / 1e3;
  const double query_rate = static_cast<double>(cli.get_int("query-rate"));
  const double ingest_rate = static_cast<double>(cli.get_int("ingest-rate"));
  const double ingest_admit_rate =
      static_cast<double>(cli.get_int("ingest-admit-rate"));
  const double admin_rate = static_cast<double>(cli.get_int("admin-rate"));
  const std::size_t batch_rows =
      static_cast<std::size_t>(cli.get_int("ingest-batch"));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const Dataset base = generate_uniform(samples, n, 2, seed, threads);
  const Dataset batch = generate_uniform(batch_rows, n, 2, seed + 1, threads);

  const std::vector<PhaseConfig> phases = {
      {"baseline", true, query_rate, 0.0, admin_rate, ingest_admit_rate},
      {"overload", true, query_rate, ingest_rate, admin_rate,
       ingest_admit_rate},
      {"baseline", false, query_rate, 0.0, admin_rate, 0.0},
      {"overload", false, query_rate, ingest_rate, admin_rate, 0.0},
  };

  std::vector<ClassResult> all;
  for (const PhaseConfig& phase : phases) {
    std::printf("phase %-8s admission=%-3s query=%.0f/s ingest=%.0f/s ...\n",
                phase.name.c_str(), phase.admission ? "on" : "off",
                phase.query_rate, phase.ingest_rate);
    std::vector<ClassResult> rs =
        run_phase(phase, base, batch, duration, threads);
    all.insert(all.end(), std::make_move_iterator(rs.begin()),
               std::make_move_iterator(rs.end()));
  }

  TablePrinter table(
      {"phase", "admission", "class", "rate/s", "sent", "ok", "overloaded",
       "p50 ms", "p95 ms", "p99 ms", "max ms"});
  for (const ClassResult& r : all) {
    if (r.target_rate <= 0.0) continue;
    table.add_row({r.phase, r.admission ? "on" : "off", r.traffic_class,
                   TablePrinter::fmt(r.target_rate, 0),
                   std::to_string(r.sent), std::to_string(r.ok),
                   std::to_string(r.overloaded),
                   TablePrinter::fmt(r.percentile(50), 3),
                   TablePrinter::fmt(r.percentile(95), 3),
                   TablePrinter::fmt(r.percentile(99), 3),
                   TablePrinter::fmt(r.max_ms(), 3)});
  }
  table.print("serve_latency — open-loop per-class latency");

  // The admission-control property: interactive p99 under ingest overload,
  // admission on vs off.
  const auto find = [&](const char* phase, bool admission) -> const ClassResult& {
    for (const ClassResult& r : all) {
      if (r.phase == phase && r.admission == admission &&
          r.traffic_class == "interactive") {
        return r;
      }
    }
    static const ClassResult empty;
    return empty;
  };
  const double p99_on = find("overload", true).percentile(99);
  const double p99_off = find("overload", false).percentile(99);
  const double p99_base_on = find("baseline", true).percentile(99);
  const bool holds = p99_on < p99_off;
  std::printf(
      "\nadmission property: overload interactive p99 %.3fms (on) vs %.3fms "
      "(off), baseline %.3fms — %s\n",
      p99_on, p99_off, p99_base_on,
      holds ? "admission control holds the tail" : "PROPERTY VIOLATED");

  std::string json = "{\n  \"bench\": \"serve_latency\",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"config\": {\"samples\": " + std::to_string(samples) +
          ", \"variables\": " + std::to_string(n) +
          ", \"threads\": " + std::to_string(threads) +
          ", \"duration_ms\": " + std::to_string(cli.get_int("duration-ms")) +
          ", \"query_rate\": " + TablePrinter::fmt(query_rate, 0) +
          ", \"ingest_rate\": " + TablePrinter::fmt(ingest_rate, 0) +
          ", \"ingest_admit_rate\": " + TablePrinter::fmt(ingest_admit_rate, 0) +
          ", \"ingest_batch\": " + std::to_string(batch_rows) +
          ", \"admin_rate\": " + TablePrinter::fmt(admin_rate, 0) +
          ", \"seed\": " + std::to_string(seed) + "},\n";
  json += "  \"results\": [\n";
  bool first = true;
  for (const ClassResult& r : all) {
    if (r.target_rate <= 0.0) continue;
    if (!first) json += ",\n";
    first = false;
    json += "    {\"phase\": \"" + r.phase + "\", \"admission\": " +
            (r.admission ? "true" : "false") + ", \"class\": \"" +
            r.traffic_class + "\", \"target_rate\": " +
            TablePrinter::fmt(r.target_rate, 0) +
            ", \"sent\": " + std::to_string(r.sent) +
            ", \"ok\": " + std::to_string(r.ok) +
            ", \"overloaded\": " + std::to_string(r.overloaded) +
            ", \"errors\": " + std::to_string(r.errors) +
            ", \"p50_ms\": " + TablePrinter::fmt(r.percentile(50), 3) +
            ", \"p95_ms\": " + TablePrinter::fmt(r.percentile(95), 3) +
            ", \"p99_ms\": " + TablePrinter::fmt(r.percentile(99), 3) +
            ", \"max_ms\": " + TablePrinter::fmt(r.max_ms(), 3) + "}";
  }
  json += "\n  ],\n";
  json += "  \"property\": {\"overload_interactive_p99_ms_admission_on\": " +
          TablePrinter::fmt(p99_on, 3) +
          ", \"overload_interactive_p99_ms_admission_off\": " +
          TablePrinter::fmt(p99_off, 3) +
          ", \"baseline_interactive_p99_ms\": " +
          TablePrinter::fmt(p99_base_on, 3) +
          ", \"holds\": " + (holds ? "true" : "false") + "}\n}\n";

  std::printf("\n%s", json.c_str());
  const std::string json_out = cli.get("json-out");
  if (!json_out.empty()) {
    if (std::FILE* f = std::fopen(json_out.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_out.c_str());
    }
  }
  return 0;
}
