// Figure 4 reproduction: scalability of the wait-free table-construction
// primitive vs. the TBB-like baseline as the number of random variables
// varies (paper: n ∈ {30, 40, 50}, m = 10^7, r = 2, P = 1..32).
#include <cstdio>

#include "baselines/builders.hpp"
#include "bench/bench_common.hpp"
#include "data/generators.hpp"

int main(int argc, char** argv) {
  using namespace wfbn;
  using namespace wfbn::bench;

  CliParser cli(
      "fig4_variables_scaling — reproduces paper Fig. 4 (construction "
      "scalability vs. variable count)");
  add_common_options(cli);
  cli.add_option("samples", "0", "Sample count (0 = scale preset)");
  cli.add_option("variables", "30,40,50",
                 "Comma-separated variable counts (paper: 30,40,50)");
  if (!cli.parse(argc, argv)) return 0;

  const bool paper_scale = cli.get("scale") == "paper";
  std::size_t samples = static_cast<std::size_t>(cli.get_int("samples"));
  if (samples == 0) samples = paper_scale ? 10000000 : 100000;
  const auto variable_counts = to_sizes(cli.get_int_list("variables"));
  const auto cores = to_sizes(cli.get_int_list("cores"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const ScalingSimulator sim = make_simulator();

  TablePrinter sim_runtime({"series", "cores", "sim_ms"});
  TablePrinter sim_speedup({"series", "cores", "sim_speedup"});
  TablePrinter wall_runtime({"series", "cores", "wall_ms"});
  TablePrinter wall_speedup({"series", "cores", "wall_speedup"});

  for (const std::size_t n : variable_counts) {
    std::printf("\ngenerating m=%zu n=%zu r=2 (uniform independent)...\n",
                samples, n);
    const Dataset data = generate_uniform(samples, n, 2, seed);
    const std::string label = "n=" + std::to_string(n);

    const ScalingCurve wf = sim.wait_free_construction(data, cores);
    const ScalingCurve locked = sim.locked_construction(samples, n, cores);
    append_curve(sim_runtime, sim_speedup, "wait-free " + label, wf);
    append_curve(sim_runtime, sim_speedup, "tbb-like " + label, locked);

    ScalingCurve wall_wf{"wait-free", {}};
    ScalingCurve wall_striped{"striped", {}};
    for (const std::size_t p : cores) {
      BuilderOptions options;
      options.threads = p;
      auto wf_builder = make_builder(BuilderKind::kWaitFree, options);
      (void)wf_builder->build(data);
      wall_wf.points.push_back(
          ScalingPoint{p, wf_builder->stats().build_seconds, 1.0});
      auto striped = make_builder(BuilderKind::kStriped, options);
      (void)striped->build(data);
      wall_striped.points.push_back(
          ScalingPoint{p, striped->stats().build_seconds, 1.0});
    }
    fill_speedups(wall_wf);
    fill_speedups(wall_striped);
    append_curve(wall_runtime, wall_speedup, "wait-free " + label, wall_wf);
    append_curve(wall_runtime, wall_speedup, "tbb-like " + label, wall_striped);
  }

  print_tables(sim_runtime, sim_speedup, "Fig. 4 (simulated P-core makespan)",
               cli.get_bool("csv"));
  print_tables(wall_runtime, wall_speedup,
               "Fig. 4 (measured wall-clock on this host)", cli.get_bool("csv"));
  std::printf(
      "\nExpected shape (paper Fig. 4): runtime grows linearly with n (equal\n"
      "gaps between curves); wait-free speedup stays near-linear in P while\n"
      "the TBB-like curve flattens and regresses past ~16 cores.\n");
  return 0;
}
