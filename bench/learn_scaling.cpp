// Parallel CI-test scheduling sweep: Cheng and PC-stable structure learning
// over a borrowed ThreadPool of P workers, P in {1, 2, 4, 8}.
//
// The host container may timeshare fewer cores than P, so wall clock cannot
// show the scheduling win. Instead every scheduler batch measures each
// worker's *busy CPU time* (CLOCK_THREAD_CPUTIME_ID) and the JSON reports
// the modeled makespan of the scheduled CI phases:
//
//   critical_path_seconds = Σ over batches of max-over-workers busy CPU
//
// — what a machine with one core per worker would observe. The P=1 run's
// critical path is by definition the serial CPU cost of the same work, so
// modeled_speedup = critical_path(P=1) / critical_path(P). Because learner
// results are bit-identical across pool widths (frozen-phase scheduling,
// canonical marginal order), every swept P is verified to produce the same
// skeleton and orientation as P=1 before its timing is reported.
//
// Also reported: CI tests per modeled second, and the marginal-reuse cache
// hit rate (hits / (hits + misses)) at each P.
//
//   ./learn_scaling --samples 60000 --variables 12 --threads 1,2,4,8
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "learn/cheng.hpp"
#include "learn/pc_stable.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace wfbn;

struct LearnOutcome {
  std::vector<Edge> skeleton;
  std::vector<Edge> oriented;
  std::uint64_t ci_tests = 0;
  CiScheduleStats schedule;
};

struct PointResult {
  std::size_t threads = 0;
  double critical_path_seconds = 0.0;
  double total_busy_seconds = 0.0;
  std::uint64_t work_items = 0;
  std::uint64_t batches = 0;
  std::uint64_t ci_tests = 0;
  double cache_hit_rate = 0.0;
  bool identical_to_serial = false;
};

LearnOutcome run_cheng(const PotentialTable& table, double mi_threshold,
                       ThreadPool& pool) {
  ChengOptions options;
  options.ci.mi_threshold = mi_threshold;
  const ChengResult result = BasicChengLearner<Key>(options, pool).learn(table);
  return {result.skeleton.edges(), result.oriented.edges(), result.ci_tests,
          result.schedule};
}

LearnOutcome run_pc_stable(const PotentialTable& table, double mi_threshold,
                           std::size_t max_level, ThreadPool& pool) {
  PcStableOptions options;
  options.ci.mi_threshold = mi_threshold;
  options.max_level = max_level;
  const PcStableResult result =
      BasicPcStableLearner<Key>(options, pool).learn(table);
  return {result.skeleton.edges(), result.oriented.edges(), result.ci_tests,
          result.schedule};
}

template <typename RunFn>
std::vector<PointResult> sweep(const RunFn& run,
                               const std::vector<std::size_t>& thread_counts,
                               std::size_t reps) {
  std::vector<PointResult> points;
  LearnOutcome serial;
  for (const std::size_t threads : thread_counts) {
    ThreadPool pool(threads);
    PointResult point;
    point.threads = threads;
    point.critical_path_seconds = 1e300;
    LearnOutcome outcome;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      outcome = run(pool);
      if (outcome.schedule.critical_path_seconds <
          point.critical_path_seconds) {
        point.critical_path_seconds = outcome.schedule.critical_path_seconds;
        point.total_busy_seconds = outcome.schedule.total_busy_seconds;
      }
    }
    point.work_items = outcome.schedule.work_items;
    point.batches = outcome.schedule.batches;
    point.ci_tests = outcome.ci_tests;
    const std::uint64_t probes =
        outcome.schedule.cache_hits + outcome.schedule.cache_misses;
    point.cache_hit_rate =
        probes == 0 ? 0.0
                    : static_cast<double>(outcome.schedule.cache_hits) /
                          static_cast<double>(probes);
    if (points.empty()) serial = outcome;
    point.identical_to_serial = outcome.skeleton == serial.skeleton &&
                                outcome.oriented == serial.oriented &&
                                outcome.ci_tests == serial.ci_tests;
    points.push_back(point);
  }
  return points;
}

void print_table(const char* name, const std::vector<PointResult>& points) {
  const double serial = points.front().critical_path_seconds;
  TablePrinter table({"P", "critical s", "busy s", "items", "tests/s",
                      "hit rate", "speedup", "identical"});
  for (const PointResult& p : points) {
    const double tests_per_sec =
        p.critical_path_seconds == 0.0
            ? 0.0
            : static_cast<double>(p.ci_tests) / p.critical_path_seconds;
    table.add_row(
        {std::to_string(p.threads), TablePrinter::fmt(p.critical_path_seconds, 4),
         TablePrinter::fmt(p.total_busy_seconds, 4),
         std::to_string(p.work_items), TablePrinter::fmt(tests_per_sec, 0),
         TablePrinter::fmt(p.cache_hit_rate, 3),
         TablePrinter::fmt(p.critical_path_seconds == 0.0
                               ? 0.0
                               : serial / p.critical_path_seconds,
                           2),
         p.identical_to_serial ? "yes" : "NO"});
  }
  table.print(std::string(name) + " — modeled makespan of scheduled CI phases");
}

std::string json_points(const std::vector<PointResult>& points) {
  const double serial = points.front().critical_path_seconds;
  std::string json;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    char row[400];
    std::snprintf(
        row, sizeof row,
        "      {\"threads\": %zu, \"critical_path_seconds\": %.6f, "
        "\"total_busy_seconds\": %.6f, \"work_items\": %llu, "
        "\"batches\": %llu, \"ci_tests\": %llu, \"ci_tests_per_sec\": %.1f, "
        "\"cache_hit_rate\": %.4f, \"modeled_speedup\": %.3f, "
        "\"identical_to_serial\": %s}%s\n",
        p.threads, p.critical_path_seconds, p.total_busy_seconds,
        static_cast<unsigned long long>(p.work_items),
        static_cast<unsigned long long>(p.batches),
        static_cast<unsigned long long>(p.ci_tests),
        p.critical_path_seconds == 0.0
            ? 0.0
            : static_cast<double>(p.ci_tests) / p.critical_path_seconds,
        p.cache_hit_rate,
        p.critical_path_seconds == 0.0 ? 0.0
                                       : serial / p.critical_path_seconds,
        p.identical_to_serial ? "true" : "false",
        i + 1 == points.size() ? "" : ",");
    json += row;
  }
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "learn_scaling — parallel CI-test scheduling sweep for the Cheng and "
      "PC-stable learners");
  cli.add_option("samples", "60000", "Training rows m");
  cli.add_option("variables", "12", "Variables n");
  cli.add_option("copy-prob", "0.8", "Chain correlation strength");
  cli.add_option("mi-threshold", "0.01", "CI threshold epsilon (nats)");
  cli.add_option("max-level", "2", "PC-stable conditioning-set cap");
  cli.add_option("threads", "1,2,4,8", "Pool widths P to sweep");
  cli.add_option("reps", "2", "Repetitions per P (best-of critical path)");
  cli.add_option("seed", "42", "Workload seed");
  cli.add_option("json-out", "BENCH_learn.json",
                 "JSON datapoint path (empty disables the file)");
  if (!cli.parse(argc, argv)) return 0;

  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto variables = static_cast<std::size_t>(cli.get_int("variables"));
  const double copy_prob = cli.get_double("copy-prob");
  const double mi_threshold = cli.get_double("mi-threshold");
  const auto max_level = static_cast<std::size_t>(cli.get_int("max-level"));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string json_out = cli.get("json-out");
  std::vector<std::size_t> thread_counts;
  for (const std::int64_t p : cli.get_int_list("threads")) {
    thread_counts.push_back(static_cast<std::size_t>(p));
  }

  std::printf("generating %zu x %zu chain workload (copy %.2f)...\n", samples,
              variables, copy_prob);
  const Dataset data =
      generate_chain_correlated(samples, variables, 2, copy_prob, seed);
  WaitFreeBuilderOptions build_options;
  build_options.threads = 4;
  const PotentialTable table = WaitFreeBuilder(build_options).build(data);

  const std::vector<PointResult> cheng = sweep(
      [&](ThreadPool& pool) { return run_cheng(table, mi_threshold, pool); },
      thread_counts, reps);
  print_table("cheng", cheng);
  const std::vector<PointResult> pc_stable = sweep(
      [&](ThreadPool& pool) {
        return run_pc_stable(table, mi_threshold, max_level, pool);
      },
      thread_counts, reps);
  print_table("pc_stable", pc_stable);

  std::string json = "{\n  \"bench\": \"learn_scaling\",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json +=
      "  \"note\": \"critical_path_seconds = sum over scheduler batches of "
      "the slowest worker's busy CPU time (CLOCK_THREAD_CPUTIME_ID) — the "
      "makespan of the scheduled CI phases on a machine with one core per "
      "worker. Results at every P are verified bit-identical to P=1.\",\n";
  json += "  \"config\": {\"samples\": " + std::to_string(samples) +
          ", \"variables\": " + std::to_string(variables) +
          ", \"cardinality\": 2, \"copy_prob\": " +
          TablePrinter::fmt(copy_prob, 2) +
          ", \"mi_threshold\": " + TablePrinter::fmt(mi_threshold, 4) +
          ", \"max_level\": " + std::to_string(max_level) +
          ", \"reps\": " + std::to_string(reps) +
          ", \"seed\": " + std::to_string(seed) + "},\n";
  json += "  \"algorithms\": [\n";
  json += "    {\"algorithm\": \"cheng\", \"results\": [\n" +
          json_points(cheng) + "    ]},\n";
  json += "    {\"algorithm\": \"pc_stable\", \"results\": [\n" +
          json_points(pc_stable) + "    ]}\n";
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (!json_out.empty()) {
    if (std::FILE* f = std::fopen(json_out.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_out.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", json_out.c_str());
      return 1;
    }
  }
  return 0;
}
