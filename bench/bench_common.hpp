// Shared helpers for the figure-reproduction benches.
//
// Every bench binary:
//  - runs argument-less with container-friendly sizes (minutes, not hours);
//  - accepts --scale paper for the full-size parameters of the paper
//    (m up to 10^7, n up to 50) and --cores / --samples overrides;
//  - prints both the *measured* wall-clock of the real multithreaded
//    implementation on this host and the *simulated* P-core makespan from
//    the calibrated cost model (see src/sim) — the latter reproduces the
//    figure shapes when the host has fewer cores than the paper's testbed.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/scaling_sim.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace wfbn::bench {

/// The paper's core-count sweep (x-axis of every figure).
inline std::vector<std::size_t> default_cores() { return {1, 2, 4, 8, 16, 32}; }

inline std::vector<std::size_t> to_sizes(const std::vector<std::int64_t>& v) {
  std::vector<std::size_t> out;
  out.reserve(v.size());
  for (const std::int64_t x : v) out.push_back(static_cast<std::size_t>(x));
  return out;
}

/// Registers the options shared by all figure benches.
inline void add_common_options(CliParser& cli) {
  cli.add_option("scale", "ci", "Experiment scale: ci (fast) or paper (full size)");
  cli.add_option("cores", "1,2,4,8,16,32", "Simulated core counts");
  cli.add_option("seed", "42", "Workload seed");
  cli.add_flag("csv", "Also print CSV blocks for plotting");
}

/// Prints one curve as paper-style runtime and speedup rows.
inline void append_curve(TablePrinter& runtime, TablePrinter& speedup,
                         const std::string& series, const ScalingCurve& curve) {
  for (const ScalingPoint& point : curve.points) {
    runtime.add_row({series, std::to_string(point.cores),
                     TablePrinter::fmt(point.seconds * 1e3, 3)});
    speedup.add_row({series, std::to_string(point.cores),
                     TablePrinter::fmt(point.speedup, 2)});
  }
}

inline void print_tables(const TablePrinter& runtime, const TablePrinter& speedup,
                         const std::string& figure, bool csv) {
  runtime.print(figure + " — runtime");
  speedup.print(figure + " — speedup");
  if (csv) {
    std::printf("\n-- CSV (%s runtime) --\n%s", figure.c_str(),
                runtime.to_csv().c_str());
    std::printf("\n-- CSV (%s speedup) --\n%s", figure.c_str(),
                speedup.to_csv().c_str());
  }
}

/// A calibrated model shared by a bench run (calibration takes ~a second).
inline ScalingSimulator make_simulator() {
  std::printf("calibrating machine model on this host...\n");
  const MachineModel model = MachineModel::calibrate();
  std::printf(
      "  t_encode/var=%.2fns t_update=%.2fns t_push=%.2fns t_pop=%.2fns\n"
      "  t_project/var=%.2fns t_entry=%.2fns t_mutex=%.2fns t_barrier/core=%.2fns\n"
      "  modeled: t_line_transfer=%.0fns coherence_quadratic=%.2fns\n",
      model.t_encode_per_var * 1e9, model.t_update * 1e9, model.t_push * 1e9,
      model.t_pop * 1e9, model.t_project_per_var * 1e9,
      model.t_entry_visit * 1e9, model.t_mutex * 1e9,
      model.t_barrier_per_core * 1e9, model.t_line_transfer * 1e9,
      model.coherence_quadratic * 1e9);
  return ScalingSimulator(model);
}

}  // namespace wfbn::bench
