// Figure 3 reproduction: scalability of the wait-free table-construction
// primitive vs. the TBB-like lock-striped baseline as the number of samples
// varies (paper: m ∈ {0.1, 1, 10} million, n = 30, r = 2, P = 1..32).
//
// Output per series (one per m): runtime vs. cores (Fig. 3a) and speedup vs.
// cores (Fig. 3b), for both the simulated P-core makespan (cost model over
// measured op counts — the figure reproduction) and the measured wall-clock
// of the real pthread implementation on this host (honest but bounded by the
// physical core count).
#include <cstdio>

#include "baselines/builders.hpp"
#include "bench/bench_common.hpp"
#include "data/generators.hpp"

namespace {

using namespace wfbn;
using namespace wfbn::bench;

struct Series {
  std::size_t samples;
  std::string label;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "fig3_table_construction — reproduces paper Fig. 3 (construction "
      "scalability vs. sample count)");
  add_common_options(cli);
  cli.add_option("samples", "",
                 "Comma-separated sample counts (overrides --scale presets)");
  cli.add_option("variables", "30", "Number of random variables (paper: 30)");
  if (!cli.parse(argc, argv)) return 0;

  const bool paper_scale = cli.get("scale") == "paper";
  std::vector<Series> series;
  if (!cli.get("samples").empty()) {
    for (const std::int64_t m : cli.get_int_list("samples")) {
      series.push_back({static_cast<std::size_t>(m),
                        std::to_string(m / 1000) + "k"});
    }
  } else if (paper_scale) {
    series = {{100000, "0.1M"}, {1000000, "1M"}, {10000000, "10M"}};
  } else {
    series = {{20000, "20k"}, {100000, "100k"}, {400000, "400k"}};
  }
  const auto n = static_cast<std::size_t>(cli.get_int("variables"));
  const auto cores = to_sizes(cli.get_int_list("cores"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const ScalingSimulator sim = make_simulator();

  TablePrinter sim_runtime({"series", "cores", "sim_ms"});
  TablePrinter sim_speedup({"series", "cores", "sim_speedup"});
  TablePrinter wall_runtime({"series", "cores", "wall_ms"});
  TablePrinter wall_speedup({"series", "cores", "wall_speedup"});

  for (const Series& s : series) {
    std::printf("\ngenerating m=%zu n=%zu r=2 (uniform independent)...\n",
                s.samples, n);
    const Dataset data = generate_uniform(s.samples, n, 2, seed);

    // ---- simulated P-core curves (the figure reproduction).
    const ScalingCurve wf = sim.wait_free_construction(data, cores);
    const ScalingCurve locked =
        sim.locked_construction(s.samples, n, cores);
    append_curve(sim_runtime, sim_speedup, "wait-free m=" + s.label, wf);
    append_curve(sim_runtime, sim_speedup, "tbb-like m=" + s.label, locked);

    // ---- measured wall-clock of the real implementations on this host.
    ScalingCurve wall_wf{"wait-free", {}};
    ScalingCurve wall_striped{"striped", {}};
    for (const std::size_t p : cores) {
      BuilderOptions options;
      options.threads = p;
      auto wf_builder = make_builder(BuilderKind::kWaitFree, options);
      (void)wf_builder->build(data);
      wall_wf.points.push_back(
          ScalingPoint{p, wf_builder->stats().build_seconds, 1.0});
      auto striped = make_builder(BuilderKind::kStriped, options);
      (void)striped->build(data);
      wall_striped.points.push_back(
          ScalingPoint{p, striped->stats().build_seconds, 1.0});
    }
    fill_speedups(wall_wf);
    fill_speedups(wall_striped);
    append_curve(wall_runtime, wall_speedup, "wait-free m=" + s.label, wall_wf);
    append_curve(wall_runtime, wall_speedup, "tbb-like m=" + s.label,
                 wall_striped);
  }

  print_tables(sim_runtime, sim_speedup,
               "Fig. 3 (simulated P-core makespan)", cli.get_bool("csv"));
  print_tables(wall_runtime, wall_speedup,
               "Fig. 3 (measured wall-clock on this host)", cli.get_bool("csv"));
  std::printf(
      "\nNote: this host exposes %zu hardware core(s); the simulated tables\n"
      "above are the figure reproduction, the wall-clock tables are sanity\n"
      "reference only. See EXPERIMENTS.md.\n",
      static_cast<std::size_t>(std::thread::hardware_concurrency()));
  return 0;
}
