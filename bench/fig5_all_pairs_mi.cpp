// Figure 5 reproduction: scalability of all-pairs mutual information
// (Algorithm 4 built on the marginalization primitive) with the number of
// random variables (paper: n ∈ {30, 40, 50}, m = 10^7, r = 2, P = 1..32).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/all_pairs_mi.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"

int main(int argc, char** argv) {
  using namespace wfbn;
  using namespace wfbn::bench;

  CliParser cli(
      "fig5_all_pairs_mi — reproduces paper Fig. 5 (all-pairs mutual "
      "information scalability)");
  add_common_options(cli);
  cli.add_option("samples", "0", "Sample count (0 = scale preset)");
  cli.add_option("variables", "30,40,50", "Comma-separated variable counts");
  if (!cli.parse(argc, argv)) return 0;

  const bool paper_scale = cli.get("scale") == "paper";
  std::size_t samples = static_cast<std::size_t>(cli.get_int("samples"));
  if (samples == 0) samples = paper_scale ? 10000000 : 100000;
  const auto variable_counts = to_sizes(cli.get_int_list("variables"));
  const auto cores = to_sizes(cli.get_int_list("cores"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const ScalingSimulator sim = make_simulator();

  TablePrinter sim_runtime({"series", "cores", "sim_ms"});
  TablePrinter sim_speedup({"series", "cores", "sim_speedup"});
  TablePrinter wall_runtime({"series", "cores", "wall_ms"});
  TablePrinter wall_speedup({"series", "cores", "wall_speedup"});

  for (const std::size_t n : variable_counts) {
    std::printf("\ngenerating m=%zu n=%zu r=2 (uniform independent)...\n",
                samples, n);
    const Dataset data = generate_uniform(samples, n, 2, seed);
    const std::string label = "n=" + std::to_string(n);

    // Simulated P-core curve from partition populations (Fig. 5 proper).
    append_curve(sim_runtime, sim_speedup, label,
                 sim.all_pairs_mi(data, cores));

    // Measured wall-clock of the real pair-parallel implementation.
    WaitFreeBuilderOptions build_options;
    build_options.threads = 4;
    WaitFreeBuilder builder(build_options);
    const PotentialTable table = builder.build(data);
    ScalingCurve wall{label, {}};
    for (const std::size_t p : cores) {
      AllPairsMi all_pairs(AllPairsOptions{p, AllPairsStrategy::kPairParallel});
      (void)all_pairs.compute(table);
      wall.points.push_back(
          ScalingPoint{p, all_pairs.stats().total_seconds, 1.0});
    }
    fill_speedups(wall);
    append_curve(wall_runtime, wall_speedup, label, wall);
  }

  print_tables(sim_runtime, sim_speedup, "Fig. 5 (simulated P-core makespan)",
               cli.get_bool("csv"));
  print_tables(wall_runtime, wall_speedup,
               "Fig. 5 (measured wall-clock on this host)", cli.get_bool("csv"));
  std::printf(
      "\nExpected shape (paper Fig. 5): runtime decreases consistently with\n"
      "P for every n; speedup close to linear (data parallelism over disjoint\n"
      "partitions — no shared writes).\n");
  return 0;
}
