// Mixed read/write serving throughput over the snapshot store.
//
// For each reader count R: R reader threads issue a mixed marginal /
// conditional / pair-MI workload against one ServeEngine for a fixed
// duration, while one ingest thread publishes observation batches at a fixed
// pacing the whole time. Reported per configuration: queries/sec (total and
// per reader), cache hit rate, versions published, and rows ingested/sec.
//
// The sweep runs twice through the same key-trait-templated harness: once
// over a narrow (64-bit key) store and once over a wide (two-word key) store
// at a variable count past the 64-bit limit, so the perf trajectory tracks
// both widths from the same binary.
//
// Readers take no locks on the hot path — snapshot acquisition is one atomic
// shared_ptr load and the table sweep runs on immutable data — so on a
// machine with enough cores reader throughput scales with R while ingestion
// proceeds. (On fewer cores than R+1 the curve flattens to the hardware; the
// JSON records host_cores so the trajectory stays interpretable.)
//
// Machine-readable output: a BENCH_serve_throughput.json datapoint (path
// configurable with --json-out, empty string disables), plus the same JSON on
// stdout.
//
//   ./serve_throughput --readers 1,2,4 --duration-ms 300
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.hpp"
#include "serve/serve_engine.hpp"
#include "serve/table_store.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

namespace {

using namespace wfbn;

struct ConfigResult {
  const char* width = "narrow";
  std::size_t variables = 0;
  std::size_t readers = 0;
  double seconds = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t versions_published = 0;
  std::uint64_t rows_ingested = 0;

  [[nodiscard]] double qps() const {
    return seconds == 0.0 ? 0.0 : static_cast<double>(queries) / seconds;
  }
  [[nodiscard]] double hit_rate() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(queries);
  }
};

struct SweepConfig {
  std::size_t samples = 0;
  std::size_t variables = 0;
  std::size_t threads = 0;
  std::size_t duration_ms = 0;
  std::size_t ingest_batch = 0;
  std::size_t ingest_period_ms = 0;
  std::uint64_t seed = 0;
};

/// One reader-count sweep over a store of key type K. The workload, pacing,
/// and measurement are identical across widths; only the key representation
/// (and thus the variable count the codec can hold) differs.
template <typename K>
void run_sweep(const SweepConfig& config,
               const std::vector<std::size_t>& reader_counts,
               std::vector<ConfigResult>& results) {
  const std::size_t n = config.variables;

  WaitFreeBuilderOptions build_options;
  build_options.threads = config.threads;

  // Pre-generate the ingest batches once; the ingest thread cycles them.
  std::vector<Dataset> batches;
  for (std::uint64_t b = 0; b < 8; ++b) {
    batches.push_back(generate_chain_correlated(config.ingest_batch, n, 2, 0.8,
                                                config.seed + 100 + b));
  }

  for (const std::size_t readers : reader_counts) {
    // Fresh store + engine per configuration so versions and cache state
    // start identical across the sweep.
    serve::BasicTableStore<K> store(
        BasicWaitFreeBuilder<K>(build_options)
            .build(generate_chain_correlated(config.samples, n, 2, 0.8,
                                             config.seed)),
        build_options);
    serve::BasicServeEngine<K> engine(store);

    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> queries(readers, 0);
    std::vector<std::uint64_t> hits(readers, 0);

    std::vector<std::thread> reader_threads;
    reader_threads.reserve(readers);
    for (std::size_t r = 0; r < readers; ++r) {
      reader_threads.emplace_back([&, r] {
        std::uint64_t q = 0, h = 0;
        std::size_t tick = r * 7;  // desynchronize the reader streams
        while (!stop.load(std::memory_order_acquire)) {
          serve::ServeResult result;
          const std::size_t a = tick % n;
          const std::size_t b = (tick / 3 + 1) % n;
          switch (tick % 3) {
            case 0: {
              const std::size_t vars[] = {a};
              result = engine.marginal(vars);
              break;
            }
            case 1: {
              const std::size_t vars[] = {a};
              const Evidence evidence[] = {{a == b ? (b + 1) % n : b, 0}};
              result = engine.conditional(vars, evidence);
              break;
            }
            default:
              result = engine.pair_mi(a, a == b ? (b + 1) % n : b);
              break;
          }
          ++q;
          if (result.cache_hit) ++h;
          ++tick;
        }
        queries[r] = q;
        hits[r] = h;
      });
    }

    std::uint64_t published = 0, rows = 0;
    std::thread ingest_thread([&] {
      std::size_t b = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const Dataset& batch = batches[b++ % batches.size()];
        engine.ingest(batch);
        ++published;
        rows += batch.sample_count();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config.ingest_period_ms));
      }
    });

    Timer window;
    std::this_thread::sleep_for(std::chrono::milliseconds(config.duration_ms));
    stop.store(true, std::memory_order_release);
    for (std::thread& t : reader_threads) t.join();
    ingest_thread.join();

    ConfigResult cr;
    cr.width = KeyTraits<K>::kWidthName;
    cr.variables = n;
    cr.readers = readers;
    cr.seconds = window.seconds();
    for (std::size_t r = 0; r < readers; ++r) {
      cr.queries += queries[r];
      cr.cache_hits += hits[r];
    }
    cr.versions_published = published;
    cr.rows_ingested = rows;
    results.push_back(cr);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("serve_throughput — mixed read/write serving throughput");
  cli.add_option("samples", "20000", "Initial table rows (version 1)");
  cli.add_option("variables", "10", "Binary variables (narrow store)");
  cli.add_option("wide-variables", "100",
                 "Binary variables for the wide-key store (0 disables the "
                 "wide sweep)");
  cli.add_option("threads", "4", "Builder threads (= table partitions)");
  cli.add_option("readers", "1,2,4", "Reader-thread counts to sweep");
  cli.add_option("duration-ms", "300", "Measured window per configuration");
  cli.add_option("ingest-batch", "2000", "Rows per published batch");
  cli.add_option("ingest-period-ms", "10", "Pacing between publishes");
  cli.add_option("seed", "42", "Workload seed");
  cli.add_option("json-out", "BENCH_serve_throughput.json",
                 "JSON datapoint path (empty disables the file)");
  if (!cli.parse(argc, argv)) return 0;

  SweepConfig config;
  config.samples = static_cast<std::size_t>(cli.get_int("samples"));
  config.variables = static_cast<std::size_t>(cli.get_int("variables"));
  config.threads = static_cast<std::size_t>(cli.get_int("threads"));
  config.duration_ms = static_cast<std::size_t>(cli.get_int("duration-ms"));
  config.ingest_batch = static_cast<std::size_t>(cli.get_int("ingest-batch"));
  config.ingest_period_ms =
      static_cast<std::size_t>(cli.get_int("ingest-period-ms"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto wide_n = static_cast<std::size_t>(cli.get_int("wide-variables"));
  const std::string json_out = cli.get("json-out");

  std::vector<std::size_t> reader_counts;
  for (const std::int64_t r : cli.get_int_list("readers")) {
    reader_counts.push_back(static_cast<std::size_t>(r));
  }

  std::vector<ConfigResult> results;
  run_sweep<Key>(config, reader_counts, results);
  if (wide_n > 0) {
    SweepConfig wide_config = config;
    wide_config.variables = wide_n;
    run_sweep<WideKey>(wide_config, reader_counts, results);
  }

  TablePrinter table({"width", "vars", "readers", "queries/s",
                      "per-reader q/s", "cache hit %", "versions",
                      "ingest rows/s"});
  for (const ConfigResult& cr : results) {
    table.add_row({cr.width, std::to_string(cr.variables),
                   std::to_string(cr.readers),
                   TablePrinter::fmt(cr.qps(), 0),
                   TablePrinter::fmt(cr.qps() / static_cast<double>(cr.readers), 0),
                   TablePrinter::fmt(100.0 * cr.hit_rate(), 1),
                   std::to_string(cr.versions_published),
                   TablePrinter::fmt(static_cast<double>(cr.rows_ingested) /
                                         cr.seconds, 0)});
  }
  table.print("serve_throughput — mixed read/write serving");

  // One JSON datapoint per width for the bench trajectory.
  std::string json = "{\n  \"bench\": \"serve_throughput\",\n";
  json += "  \"host_cores\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"config\": {\"samples\": " + std::to_string(config.samples) +
          ", \"variables\": " + std::to_string(config.variables) +
          ", \"wide_variables\": " + std::to_string(wide_n) +
          ", \"partitions\": " + std::to_string(config.threads) +
          ", \"duration_ms\": " + std::to_string(config.duration_ms) +
          ", \"ingest_batch\": " + std::to_string(config.ingest_batch) +
          ", \"ingest_period_ms\": " + std::to_string(config.ingest_period_ms) +
          ", \"seed\": " + std::to_string(config.seed) + "},\n";
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& cr = results[i];
    char row[320];
    std::snprintf(row, sizeof row,
                  "    {\"width\": \"%s\", \"variables\": %zu, "
                  "\"readers\": %zu, \"queries_per_sec\": %.1f, "
                  "\"cache_hit_rate\": %.4f, \"versions_published\": %llu, "
                  "\"ingest_rows_per_sec\": %.1f}%s\n",
                  cr.width, cr.variables, cr.readers, cr.qps(), cr.hit_rate(),
                  static_cast<unsigned long long>(cr.versions_published),
                  static_cast<double>(cr.rows_ingested) / cr.seconds,
                  i + 1 == results.size() ? "" : ",");
    json += row;
  }
  json += "  ]\n}\n";

  std::printf("\n-- JSON --\n%s", json.c_str());
  if (!json_out.empty()) {
    if (std::FILE* f = std::fopen(json_out.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_out.c_str());
    } else {
      std::printf("could not write %s\n", json_out.c_str());
    }
  }
  return 0;
}
