// Headline reproduction: "the experiment results show 23.5× speedup compared
// to a single thread implementation" on 32 cores (paper abstract / §I / §V).
//
// Runs the full phase-1 pipeline — wait-free table construction followed by
// all-pairs mutual information — at P = 1 and P = 32 (simulated makespan from
// measured op counts; see src/sim) and reports the end-to-end speedup.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"

int main(int argc, char** argv) {
  using namespace wfbn;
  using namespace wfbn::bench;

  CliParser cli("headline_speedup — the paper's 23.5×-at-32-cores claim");
  add_common_options(cli);
  cli.add_option("samples", "0", "Sample count (0 = scale preset)");
  cli.add_option("variables", "30", "Number of random variables");
  if (!cli.parse(argc, argv)) return 0;

  const bool paper_scale = cli.get("scale") == "paper";
  std::size_t samples = static_cast<std::size_t>(cli.get_int("samples"));
  if (samples == 0) samples = paper_scale ? 10000000 : 200000;
  const auto n = static_cast<std::size_t>(cli.get_int("variables"));
  const auto cores = to_sizes(cli.get_int_list("cores"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("phase-1 pipeline, m=%zu n=%zu r=2\n", samples, n);
  const Dataset data = generate_uniform(samples, n, 2, seed);
  const ScalingSimulator sim = make_simulator();

  const ScalingCurve build_curve = sim.wait_free_construction(data, cores);
  const ScalingCurve mi_curve = sim.all_pairs_mi(data, cores);

  TablePrinter table({"cores", "build_ms", "all_pairs_mi_ms", "pipeline_ms",
                      "pipeline_speedup"});
  double base = 0.0;
  double at32 = 0.0;
  for (std::size_t k = 0; k < cores.size(); ++k) {
    const double pipeline =
        build_curve.points[k].seconds + mi_curve.points[k].seconds;
    if (k == 0) base = pipeline;
    if (cores[k] == 32) at32 = pipeline;
    table.add_row({std::to_string(cores[k]),
                   TablePrinter::fmt(build_curve.points[k].seconds * 1e3, 3),
                   TablePrinter::fmt(mi_curve.points[k].seconds * 1e3, 3),
                   TablePrinter::fmt(pipeline * 1e3, 3),
                   TablePrinter::fmt(base > 0 ? base / pipeline : 0.0, 2)});
  }
  table.print("Headline — phase-1 pipeline scaling (simulated P cores)");

  if (at32 > 0.0) {
    std::printf(
        "\npipeline speedup at 32 cores: %.1fx   (paper reports 23.5x on a\n"
        "32-core AMD Opteron 6278; shape target is ~20-30x — see "
        "EXPERIMENTS.md)\n",
        base / at32);
  }
  return 0;
}
