// Ablations over the design decisions DESIGN.md §6 calls out:
//   ABL-PART   key→owner partition function (modulo vs. contiguous range)
//              on uniform and skewed key populations;
//   ABL-QUEUE  phased (paper) vs. pipelined (future-work) stage coupling;
//   ABL-MI     all-pairs MI scheduling strategy;
//   ABL-IMPL   all construction strategies side by side.
#include <cstdio>

#include "baselines/builders.hpp"
#include "bench/bench_common.hpp"
#include "core/all_pairs_mi.hpp"
#include "core/wait_free_builder.hpp"
#include "bn/metrics.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "data/generators.hpp"
#include "learn/score.hpp"
#include "learn/sparse_candidate.hpp"
#include "util/timer.hpp"

namespace {

using namespace wfbn;
using namespace wfbn::bench;

void run_partition_ablation(const ScalingSimulator& sim, std::size_t samples,
                            std::uint64_t seed) {
  TablePrinter table({"data", "scheme", "cores", "max/min partition",
                      "sim_ms", "sim_speedup"});
  const std::vector<std::pair<const char*, Dataset>> datasets = [&] {
    std::vector<std::pair<const char*, Dataset>> out;
    out.emplace_back("uniform", generate_uniform(samples, 24, 2, seed));
    out.emplace_back("skewed", generate_skewed(samples, 24, 2, 1e-5, 0.8, seed));
    return out;
  }();

  for (const auto& [label, data] : datasets) {
    for (const PartitionScheme scheme :
         {PartitionScheme::kModulo, PartitionScheme::kRange}) {
      double base = 0.0;
      for (const std::size_t p : {std::size_t{1}, std::size_t{8}, std::size_t{32}}) {
        WaitFreeBuilderOptions options;
        options.threads = p;
        options.scheme = scheme;
        WaitFreeBuilder builder(options);
        const PotentialTable pot = builder.build(data);
        const auto [largest, smallest] = pot.partitions().population_extremes();
        const double seconds = predict_wait_free_seconds(
            sim.model(), builder.stats(), data.variable_count());
        if (p == 1) base = seconds;
        table.add_row(
            {label, scheme == PartitionScheme::kModulo ? "modulo" : "range",
             std::to_string(p),
             std::to_string(largest) + "/" + std::to_string(smallest),
             TablePrinter::fmt(seconds * 1e3, 3),
             TablePrinter::fmt(base > 0 ? base / seconds : 0.0, 2)});
      }
    }
  }
  table.print("ABL-PART — partition function vs. key skew");
}

void run_pipeline_ablation(std::size_t samples, std::uint64_t seed) {
  const Dataset data = generate_uniform(samples, 30, 2, seed);
  TablePrinter table({"variant", "threads", "wall_ms", "foreign_pushes"});
  for (const bool pipelined : {false, true}) {
    for (const std::size_t p : {2u, 4u, 8u}) {
      WaitFreeBuilderOptions options;
      options.threads = p;
      options.pipelined = pipelined;
      WaitFreeBuilder builder(options);
      (void)builder.build(data);
      table.add_row({pipelined ? "pipelined" : "phased", std::to_string(p),
                     TablePrinter::fmt(builder.stats().total_seconds * 1e3, 3),
                     TablePrinter::fmt(builder.stats().total_foreign_pushes())});
    }
  }
  table.print("ABL-QUEUE — phased (paper) vs. pipelined stage coupling");
}

void run_mi_strategy_ablation(std::size_t samples, std::uint64_t seed) {
  const Dataset data = generate_uniform(samples, 24, 2, seed);
  WaitFreeBuilderOptions build_options;
  build_options.threads = 4;
  WaitFreeBuilder builder(build_options);
  const PotentialTable table = builder.build(data);

  TablePrinter out({"strategy", "threads", "wall_ms"});
  const std::pair<const char*, AllPairsStrategy> strategies[] = {
      {"pair-parallel", AllPairsStrategy::kPairParallel},
      {"entry-parallel", AllPairsStrategy::kEntryParallel},
      {"fused", AllPairsStrategy::kFused}};
  for (const auto& [label, strategy] : strategies) {
    for (const std::size_t p : {1u, 4u}) {
      AllPairsMi all_pairs(AllPairsOptions{p, strategy});
      (void)all_pairs.compute(table);
      out.add_row({label, std::to_string(p),
                   TablePrinter::fmt(all_pairs.stats().total_seconds * 1e3, 3)});
    }
  }
  out.print("ABL-MI — all-pairs MI scheduling strategies");
}

void run_builder_ablation(std::size_t samples, std::uint64_t seed) {
  const Dataset data = generate_uniform(samples, 30, 2, seed);
  TablePrinter out({"builder", "threads", "wall_ms", "lock_acquisitions"});
  const BuilderKind kinds[] = {BuilderKind::kSequential, BuilderKind::kGlobalLock,
                               BuilderKind::kStriped, BuilderKind::kAtomic,
                               BuilderKind::kWaitFree,
                               BuilderKind::kWaitFreePipelined};
  for (const BuilderKind kind : kinds) {
    BuilderOptions options;
    options.threads = kind == BuilderKind::kSequential ? 1 : 4;
    auto builder = make_builder(kind, options);
    (void)builder->build(data);
    out.add_row({std::string(builder->name()),
                 std::to_string(options.threads),
                 TablePrinter::fmt(builder->stats().build_seconds * 1e3, 3),
                 TablePrinter::fmt(builder->stats().lock_acquisitions)});
  }
  out.print("ABL-IMPL — construction strategies side by side");
}

void run_wide_key_ablation(std::size_t samples, std::uint64_t seed) {
  // ABL-WIDE: what the two-word codec costs on data the 64-bit path could
  // also handle (the price of lifting the 2^63 state-space limit).
  const Dataset data = generate_uniform(samples, 30, 2, seed);
  TablePrinter out({"codec", "threads", "build_ms"});
  for (const std::size_t p : {1u, 4u}) {
    WaitFreeBuilderOptions narrow_options;
    narrow_options.threads = p;
    WaitFreeBuilder narrow(narrow_options);
    Timer timer;
    (void)narrow.build(data);
    out.add_row({"64-bit", std::to_string(p),
                 TablePrinter::fmt(timer.milliseconds(), 3)});
    WideBuilderOptions wide_options;
    wide_options.threads = p;
    WideWaitFreeBuilder wide(wide_options);
    timer.reset();
    (void)wide.build(data);
    out.add_row({"128-bit", std::to_string(p),
                 TablePrinter::fmt(timer.milliseconds(), 3)});
  }
  out.print("ABL-WIDE — 64-bit vs two-word key codec (same workload)");
}

void run_sparse_candidate_ablation(std::uint64_t seed) {
  // ABL-SPARSE: the paper's §III claim — all-pairs MI as a search-space
  // pruner for score-based learners. Compare hill climbing with and without
  // MI-derived candidate-parent sets on a sampled CHILD network.
  const BayesianNetwork truth = load_network(RepositoryNetwork::kChild);
  const Dataset data = forward_sample(truth, 60000, seed, 4);
  WaitFreeBuilderOptions builder_options;
  builder_options.threads = 4;
  WaitFreeBuilder builder(builder_options);
  const PotentialTable table = builder.build(data);

  TablePrinter out({"search space", "families evaluated", "moves", "BIC",
                    "skeleton F1"});
  auto report = [&](const char* label, const HillClimbResult& result) {
    const SkeletonMetrics m =
        compare_skeletons(result.dag.skeleton(), truth.dag().skeleton());
    out.add_row({label, TablePrinter::fmt(result.families_evaluated),
                 TablePrinter::fmt(static_cast<std::uint64_t>(result.moves)),
                 TablePrinter::fmt(result.score, 1), TablePrinter::fmt(m.f1, 3)});
  };

  HillClimbOptions unpruned;
  unpruned.threads = 4;
  report("all parents", hill_climb(table, unpruned));

  AllPairsMi all_pairs(AllPairsOptions{4, AllPairsStrategy::kFused});
  const MiMatrix mi = all_pairs.compute(table);
  HillClimbOptions pruned;
  pruned.threads = 4;
  pruned.candidate_parents = sparse_candidates(mi, 5);
  report("top-5 MI candidates", hill_climb(table, pruned));

  out.print("ABL-SPARSE — MI-based search-space pruning (paper §III)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_design — design-decision ablations (DESIGN.md §6)");
  add_common_options(cli);
  cli.add_option("samples", "0", "Sample count (0 = scale preset)");
  if (!cli.parse(argc, argv)) return 0;

  std::size_t samples = static_cast<std::size_t>(cli.get_int("samples"));
  if (samples == 0) samples = cli.get("scale") == "paper" ? 2000000 : 100000;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const ScalingSimulator sim = make_simulator();
  run_partition_ablation(sim, samples, seed);
  run_pipeline_ablation(samples, seed);
  run_mi_strategy_ablation(samples, seed);
  run_builder_ablation(samples, seed);
  run_wide_key_ablation(samples, seed);
  run_sparse_candidate_ablation(seed);
  return 0;
}
