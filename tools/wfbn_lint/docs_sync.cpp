// Parsing and regeneration of the generated doc blocks: the atomics-audit
// table in docs/ALGORITHMS.md and the fault-point table in docs/ROBUSTNESS.md.
// Both live between HTML-comment markers; --fix-docs rewrites only the block
// interior and preserves the hand-written prose columns (Invariant / Fires)
// by key, so regeneration never loses documentation.
#include "lint.hpp"

#include <algorithm>
#include <sstream>

namespace wfbn_lint {

namespace {

[[nodiscard]] std::string trim(std::string s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.erase(s.begin());
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.pop_back();
  }
  return s;
}

[[nodiscard]] std::string strip_backticks(std::string s) {
  if (s.size() >= 2 && s.front() == '`' && s.back() == '`') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

/// Splits a markdown table row into trimmed cells. Returns empty for
/// non-row lines and separator rows (|---|---|).
[[nodiscard]] std::vector<std::string> split_row(const std::string& line) {
  const std::string trimmed = trim(line);
  if (trimmed.size() < 2 || trimmed.front() != '|') return {};
  std::vector<std::string> cells;
  std::string cell;
  for (std::size_t i = 1; i < trimmed.size(); ++i) {
    if (trimmed[i] == '|') {
      cells.push_back(trim(cell));
      cell.clear();
    } else {
      cell.push_back(trimmed[i]);
    }
  }
  if (!trim(cell).empty()) cells.push_back(trim(cell));
  const bool separator = std::all_of(cells.begin(), cells.end(), [](const std::string& c) {
    return !c.empty() && c.find_first_not_of("-: ") == std::string::npos;
  });
  if (separator) return {};
  return cells;
}

/// Splits text into lines, tolerating a missing trailing newline.
[[nodiscard]] std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) lines.push_back(line);
  return lines;
}

/// Locates the generated block; returns {begin_idx, end_idx} (0-based line
/// indexes of the marker lines) or nullopt.
[[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>> find_block(
    const std::vector<std::string>& lines, const std::string& begin_marker,
    const std::string& end_marker) {
  std::size_t begin = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find(begin_marker) != std::string::npos) {
      begin = i;
      break;
    }
  }
  if (begin == lines.size()) return std::nullopt;
  for (std::size_t i = begin + 1; i < lines.size(); ++i) {
    if (lines[i].find(end_marker) != std::string::npos) {
      return std::make_pair(begin, i);
    }
  }
  return std::nullopt;
}

[[nodiscard]] std::vector<int> parse_lines_cell(const std::string& cell) {
  std::vector<int> out;
  int value = 0;
  bool in_number = false;
  for (const char c : cell + ",") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      in_number = true;
    } else {
      if (in_number) out.push_back(value);
      value = 0;
      in_number = false;
    }
  }
  return out;
}

[[nodiscard]] std::string render_lines_cell(const std::vector<int>& lines) {
  std::string out;
  for (const int line : lines) {
    if (!out.empty()) out += ", ";
    out += std::to_string(line);
  }
  return out;
}

}  // namespace

AuditDoc parse_audit_doc(const std::string& text, const std::string& rel_path) {
  AuditDoc doc;
  const std::vector<std::string> lines = split_lines(text);
  const auto block = find_block(lines, kAuditBegin, kAuditEnd);
  if (!block) {
    doc.errors.push_back({Rule::kAuditSync, rel_path, 1,
                          "missing generated atomics-audit block (markers `" +
                              std::string(kAuditBegin) + "` ... end)"});
    return doc;
  }
  doc.found = true;
  bool header_seen = false;
  for (std::size_t i = block->first + 1; i < block->second; ++i) {
    const std::vector<std::string> cells = split_row(lines[i]);
    if (cells.empty()) continue;
    if (!header_seen) {  // the `| File | Object | ... |` header row
      header_seen = true;
      continue;
    }
    if (cells.size() != 6) {
      doc.errors.push_back({Rule::kAuditSync, rel_path, static_cast<int>(i + 1),
                            "audit row must have 6 cells (File, Object, Op, Ordering, Lines, Invariant), got " +
                                std::to_string(cells.size())});
      continue;
    }
    AuditRow row;
    row.file = strip_backticks(cells[0]);
    row.object = strip_backticks(cells[1]);
    row.op = strip_backticks(cells[2]);
    row.order = strip_backticks(cells[3]);
    row.lines = parse_lines_cell(cells[4]);
    row.invariant = cells[5];
    row.doc_line = static_cast<int>(i + 1);
    doc.rows.push_back(row);
  }
  return doc;
}

FaultDoc parse_fault_doc(const std::string& text, const std::string& rel_path) {
  FaultDoc doc;
  const std::vector<std::string> lines = split_lines(text);
  const auto block = find_block(lines, kFaultBegin, kFaultEnd);
  if (!block) {
    doc.errors.push_back({Rule::kFaultSync, rel_path, 1,
                          "missing generated fault-point block (markers `" +
                              std::string(kFaultBegin) + "` ... end)"});
    return doc;
  }
  doc.found = true;
  bool header_seen = false;
  for (std::size_t i = block->first + 1; i < block->second; ++i) {
    const std::vector<std::string> cells = split_row(lines[i]);
    if (cells.empty()) continue;
    if (!header_seen) {
      header_seen = true;
      continue;
    }
    if (cells.size() != 3) {
      doc.errors.push_back({Rule::kFaultSync, rel_path, static_cast<int>(i + 1),
                            "fault-point row must have 3 cells (Point, Schedules, Fires), got " +
                                std::to_string(cells.size())});
      continue;
    }
    FaultDocRow row;
    row.name = strip_backticks(cells[0]);
    row.schedules = strip_backticks(cells[1]);
    row.fires = cells[2];
    row.doc_line = static_cast<int>(i + 1);
    doc.rows.push_back(row);
  }
  return doc;
}

std::optional<std::string> replace_block(const std::string& text,
                                         const std::string& begin_marker,
                                         const std::string& end_marker,
                                         const std::string& rows_markdown) {
  const std::vector<std::string> lines = split_lines(text);
  const auto block = find_block(lines, begin_marker, end_marker);
  if (!block) return std::nullopt;
  std::string out;
  for (std::size_t i = 0; i <= block->first; ++i) out += lines[i] + "\n";
  out += rows_markdown;
  if (!rows_markdown.empty() && rows_markdown.back() != '\n') out += "\n";
  for (std::size_t i = block->second; i < lines.size(); ++i) out += lines[i] + "\n";
  return out;
}

std::string render_audit_block(const std::vector<AuditRow>& rows) {
  std::vector<AuditRow> sorted = rows;
  std::sort(sorted.begin(), sorted.end(), [](const AuditRow& a, const AuditRow& b) {
    if (a.file != b.file) return a.file < b.file;
    const int la = a.lines.empty() ? 0 : a.lines.front();
    const int lb = b.lines.empty() ? 0 : b.lines.front();
    if (la != lb) return la < lb;
    if (a.object != b.object) return a.object < b.object;
    return a.op < b.op;
  });
  std::ostringstream out;
  out << "| File | Object | Op | Ordering | Lines | Invariant |\n";
  out << "|---|---|---|---|---|---|\n";
  for (const AuditRow& row : sorted) {
    out << "| `" << row.file << "` | `" << row.object << "` | `" << row.op
        << "` | `" << row.order << "` | " << render_lines_cell(row.lines)
        << " | " << (row.invariant.empty() ? kInvariantPlaceholder : row.invariant)
        << " |\n";
  }
  return out.str();
}

std::string schedules_of(const FaultPoint& point) {
  if (point.in_random && point.in_net) return "random+net";
  if (point.in_random) return "random";
  if (point.in_net) return "net";
  return "manual";
}

std::string render_fault_block(const std::vector<FaultPoint>& points,
                               const std::vector<FaultDocRow>& old_rows) {
  std::ostringstream out;
  out << "| Point | Schedules | Fires |\n";
  out << "|---|---|---|\n";
  for (const FaultPoint& point : points) {
    std::string fires = kFiresPlaceholder;
    for (const FaultDocRow& row : old_rows) {
      if (row.name == point.wire_name && !row.fires.empty()) {
        fires = row.fires;
        break;
      }
    }
    out << "| `" << point.wire_name << "` | " << schedules_of(point) << " | "
        << fires << " |\n";
  }
  return out.str();
}

}  // namespace wfbn_lint
