// Command-line front end.
//
// Exit codes:
//   0  clean tree
//   1  findings reported
//   2  usage or I/O error
#include "lint.hpp"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

namespace {

void print_usage(std::FILE* stream) {
  std::fputs(
      "usage: wfbn_lint [--root <dir>] [--json] [--fix-docs] [--dump-sites]\n"
      "\n"
      "Static concurrency lint for the wfbn tree. Enforces:\n"
      "  implicit-order    explicit memory orderings in protocol directories\n"
      "  audit-sync        docs/ALGORITHMS.md atomics-audit block matches the code\n"
      "  fault-sync        fault-point enum / wire names / arm schedules /\n"
      "                    docs/ROBUSTNESS.md table all agree\n"
      "  policy-purity     no bare std::atomic, mutexes, or sleeps in\n"
      "                    atomics-policy seam files\n"
      "  wait-free-region  no allocation, locks, or blocking inside\n"
      "                    // wfbn-lint: wait-free-begin/end annotations\n"
      "\n"
      "  --root <dir>   repository root to lint (default: .)\n"
      "  --json         machine-readable findings on stdout\n"
      "  --fix-docs     regenerate the generated doc blocks from the code\n"
      "  --dump-sites   list every extracted atomic site and exit 0\n",
      stream);
}

}  // namespace

int main(int argc, char** argv) {
  wfbn_lint::Options options;
  bool json = false;
  bool dump_sites = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      options.root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fix-docs") {
      options.fix_docs = true;
    } else if (arg == "--dump-sites") {
      dump_sites = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "wfbn-lint: unknown argument `%s`\n", arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }

  const wfbn_lint::Result result = wfbn_lint::run(options);
  if (result.io_error) {
    std::fprintf(stderr, "wfbn-lint: error: %s\n", result.io_error_message.c_str());
    return 2;
  }
  if (dump_sites) {
    for (const wfbn_lint::AtomicSite& site : result.sites) {
      std::printf("%s:%d: %s.%s @ %s%s\n", site.file.c_str(), site.line,
                  site.object.c_str(), site.op.c_str(), site.order.c_str(),
                  site.implicit ? " (implicit)" : "");
    }
    return 0;
  }
  std::fputs(json ? wfbn_lint::render_json(result, options.root).c_str()
                  : wfbn_lint::render_human(result).c_str(),
             stdout);
  return result.findings.empty() ? 0 : 1;
}
