// Token-level extraction: atomic declarations, atomic operation sites,
// policy-seam detection, operator RMWs, and the fault-point registry.
#include "lint.hpp"

#include <algorithm>
#include <cctype>

namespace wfbn_lint {

namespace {

[[nodiscard]] bool is_ident(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when text[pos..] matches `token` on identifier boundaries.
[[nodiscard]] bool word_at(const std::string& text, std::size_t pos,
                           const std::string& token) {
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && is_ident(text[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  if (end < text.size() && is_ident(text[end])) return false;
  return true;
}

[[nodiscard]] std::size_t skip_spaces(const std::string& text, std::size_t pos) {
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  return pos;
}

/// Reads the identifier starting at `pos`; empty if none.
[[nodiscard]] std::string ident_at(const std::string& text, std::size_t pos) {
  std::string out;
  while (pos < text.size() && is_ident(text[pos])) out.push_back(text[pos++]);
  return out;
}

/// Balances `<...>` starting at the '<' at `pos`; returns the index one past
/// the matching '>', or npos when unbalanced on this line.
[[nodiscard]] std::size_t balance_angles(const std::string& text, std::size_t pos) {
  int depth = 0;
  for (; pos < text.size(); ++pos) {
    if (text[pos] == '<') ++depth;
    if (text[pos] == '>') {
      --depth;
      if (depth == 0) return pos + 1;
    }
  }
  return std::string::npos;
}

/// After an atomic type spelling ends at `pos`, reads the declared variable
/// name across `* & const` qualifiers. Returns "" when the spelling is not a
/// declaration (alias target, template argument, ...).
[[nodiscard]] std::string declared_name(const std::string& line, std::size_t pos) {
  for (;;) {
    pos = skip_spaces(line, pos);
    if (pos < line.size() && (line[pos] == '*' || line[pos] == '&')) {
      ++pos;
      continue;
    }
    if (word_at(line, pos, "const") || word_at(line, pos, "mutable")) {
      pos += line[pos] == 'm' ? 7u : 5u;
      continue;
    }
    break;
  }
  const std::string name = ident_at(line, pos);
  if (name.empty()) return "";
  const std::size_t after = skip_spaces(line, pos + name.size());
  if (after >= line.size()) return name;  // declaration continues next line
  switch (line[after]) {
    case ';': case '{': case '=': case ',': case ')': case '[':
      return name;
    default:
      return "";  // e.g. a function or alias, not a variable declaration
  }
}

const char* const kOps[] = {
    "compare_exchange_strong", "compare_exchange_weak", "exchange",
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "load", "store",
};

/// Captures a balanced argument list starting at the '(' at (line_idx, pos),
/// spanning at most a handful of lines. Returns the argument text (without
/// the outer parens) or nullopt when unbalanced.
[[nodiscard]] std::optional<std::string> capture_args(const SourceFile& file,
                                                      std::size_t line_idx,
                                                      std::size_t pos) {
  std::string args;
  int depth = 0;
  for (std::size_t l = line_idx; l < file.code.size() && l < line_idx + 12; ++l) {
    const std::string& line = file.code[l];
    for (std::size_t i = l == line_idx ? pos : 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;
      }
      if (c == ')') {
        --depth;
        if (depth == 0) return args;
      }
      if (depth >= 1) args.push_back(c);
    }
    args.push_back(' ');
  }
  return std::nullopt;
}

/// All std::memory_order_* suffixes mentioned in `args`, in order.
[[nodiscard]] std::vector<std::string> orders_in(const std::string& args) {
  std::vector<std::string> out;
  const std::string needle = "memory_order_";
  std::size_t pos = 0;
  while ((pos = args.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    std::string suffix;
    while (pos < args.size() &&
           (std::islower(static_cast<unsigned char>(args[pos])) != 0 ||
            args[pos] == '_')) {
      suffix.push_back(args[pos++]);
    }
    if (!suffix.empty()) out.push_back(suffix);
  }
  return out;
}

/// Finds the function definition line containing `signature_token` and
/// returns the [first, last] line range (0-based) of its brace-balanced
/// body; nullopt when not found.
[[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>> function_body(
    const SourceFile& file, const std::string& signature_token) {
  for (std::size_t l = 0; l < file.code.size(); ++l) {
    const std::size_t pos = file.code[l].find(signature_token);
    if (pos == std::string::npos) continue;
    if (file.code[l].find(';') != std::string::npos) continue;  // a declaration
    int depth = 0;
    bool opened = false;
    for (std::size_t b = l; b < file.code.size(); ++b) {
      for (const char c : file.code[b]) {
        if (c == '{') {
          ++depth;
          opened = true;
        }
        if (c == '}') --depth;
      }
      if (opened && depth == 0) return std::make_pair(l, b);
    }
    return std::nullopt;
  }
  return std::nullopt;
}

/// All `Point::kXyz` enum references inside a line range.
[[nodiscard]] std::set<std::string> point_refs(const SourceFile& file,
                                               std::size_t first, std::size_t last) {
  std::set<std::string> out;
  const std::string needle = "Point::";
  for (std::size_t l = first; l <= last && l < file.code.size(); ++l) {
    const std::string& line = file.code[l];
    std::size_t pos = 0;
    while ((pos = line.find(needle, pos)) != std::string::npos) {
      pos += needle.size();
      const std::string name = ident_at(line, pos);
      if (!name.empty()) out.insert(name);
    }
  }
  return out;
}

}  // namespace

std::set<std::string> atomic_names(const SourceFile& file) {
  std::set<std::string> names;
  for (const std::string& line : file.code) {
    std::size_t pos = 0;
    while (pos < line.size()) {
      std::size_t type_end = std::string::npos;
      if (word_at(line, pos, "std") &&
          line.compare(pos, 11, "std::atomic") == 0 &&
          pos + 11 < line.size() && line[pos + 11] == '<') {
        type_end = balance_angles(line, pos + 11);
      } else if (word_at(line, pos, "Atomic") && pos + 6 < line.size() &&
                 line[pos + 6] == '<') {
        type_end = balance_angles(line, pos + 6);
      }
      if (type_end == std::string::npos) {
        ++pos;
        continue;
      }
      const std::string name = declared_name(line, type_end);
      if (!name.empty()) names.insert(name);
      pos = type_end;
    }
  }
  return names;
}

bool is_policy_seam(const SourceFile& file) {
  for (const std::string& line : file.code) {
    if (line.find("::template Atomic<") != std::string::npos) return true;
  }
  return false;
}

std::vector<AtomicSite> extract_sites(const SourceFile& file,
                                      const std::set<std::string>& names) {
  std::vector<AtomicSite> sites;
  for (std::size_t l = 0; l < file.code.size(); ++l) {
    const std::string& line = file.code[l];
    for (const char* const op : kOps) {
      const std::string op_name = op;
      std::size_t pos = 0;
      while ((pos = line.find(op_name, pos)) != std::string::npos) {
        const std::size_t start = pos;
        pos += op_name.size();
        if (!word_at(line, start, op_name)) continue;
        // Must be a member call: `.op(` or `->op(`.
        if (start == 0) continue;
        std::size_t recv_end;
        if (line[start - 1] == '.') {
          recv_end = start - 1;
        } else if (start >= 2 && line[start - 1] == '>' && line[start - 2] == '-') {
          recv_end = start - 2;
        } else {
          continue;
        }
        const std::size_t paren = skip_spaces(line, start + op_name.size());
        if (paren >= line.size() || line[paren] != '(') continue;
        // Receiver's trailing identifier.
        std::size_t rb = recv_end;
        while (rb > 0 && is_ident(line[rb - 1])) --rb;
        const std::string receiver = line.substr(rb, recv_end - rb);

        const std::optional<std::string> args = capture_args(file, l, paren);
        if (!args) continue;
        const std::vector<std::string> orders = orders_in(*args);
        const bool empty_args =
            args->find_first_not_of(" \t") == std::string::npos;
        // `store()` with no arguments is a getter named store, never an
        // atomic op; same for the RMWs. A zero-arg load() can be a real
        // implicit-seq_cst atomic load, so it stays — gated on the receiver
        // being a declared atomic below.
        if (op_name != "load" && empty_args && orders.empty()) continue;
        const bool known_atomic = !receiver.empty() && names.count(receiver) > 0;
        if (!known_atomic && orders.empty()) continue;

        AtomicSite site;
        site.file = file.rel_path;
        site.line = static_cast<int>(l + 1);
        site.object = receiver.empty() ? "(expr)" : receiver;
        site.op = op_name;
        site.implicit = orders.empty();
        if (orders.empty()) {
          site.order = "seq_cst";
        } else {
          std::string joined;
          for (const std::string& order : orders) {
            if (!joined.empty()) joined += "/";
            joined += order;
          }
          site.order = joined;
        }
        sites.push_back(site);
      }
    }
  }
  std::sort(sites.begin(), sites.end(), [](const AtomicSite& a, const AtomicSite& b) {
    return a.line < b.line;
  });
  return sites;
}

std::vector<OperatorSite> extract_operator_sites(const SourceFile& file,
                                                 const std::set<std::string>& names) {
  static const char* const kRmwOps[] = {"++", "--", "+=", "-=", "|=", "&=", "^="};
  std::vector<OperatorSite> out;
  for (std::size_t l = 0; l < file.code.size(); ++l) {
    const std::string& line = file.code[l];
    for (const std::string& name : names) {
      std::size_t pos = 0;
      while ((pos = line.find(name, pos)) != std::string::npos) {
        const std::size_t start = pos;
        pos += name.size();
        if (!word_at(line, start, name)) continue;
        // Guard against locals/parameters shadowing an atomic member's name
        // (e.g. a `count` parameter vs. Chunk's `count`): a bare identifier
        // only counts when it follows the repo's member/global naming idiom
        // (trailing `_` or leading `g_`); otherwise require explicit member
        // access (`obj.name` / `ptr->name`).
        const bool member_access =
            start > 0 && (line[start - 1] == '.' || line[start - 1] == '>');
        const bool idiomatic_name =
            name.back() == '_' || name.compare(0, 2, "g_") == 0;
        if (!member_access && !idiomatic_name) continue;
        const std::size_t after = skip_spaces(line, start + name.size());
        for (const char* const rmw : kRmwOps) {
          const bool postfix = line.compare(after, 2, rmw) == 0;
          const bool prefix =
              start >= 2 && line.compare(start - 2, 2, rmw) == 0 &&
              (rmw[0] == '+' || rmw[0] == '-') && rmw[0] == rmw[1];
          if (postfix || prefix) {
            out.push_back({static_cast<int>(l + 1), name, rmw});
            break;
          }
        }
      }
    }
  }
  return out;
}

FaultModel extract_fault_points(const SourceFile& hpp, const SourceFile& cpp) {
  FaultModel model;

  // 1. Enum constants from `enum class Point { ... };` in the header.
  std::size_t enum_first = std::string::npos;
  for (std::size_t l = 0; l < hpp.code.size(); ++l) {
    if (hpp.code[l].find("enum class Point") != std::string::npos) {
      enum_first = l;
      break;
    }
  }
  if (enum_first == std::string::npos) {
    model.errors.push_back({Rule::kFaultSync, hpp.rel_path, 1,
                            "cannot find `enum class Point` in the fault-injection header"});
    return model;
  }
  for (std::size_t l = enum_first; l < hpp.code.size(); ++l) {
    const std::string& line = hpp.code[l];
    const std::size_t pos = skip_spaces(line, 0);
    if (line.find("};") != std::string::npos) break;
    const std::string name = ident_at(line, pos);
    if (name.size() > 1 && name[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(name[1])) != 0) {
      FaultPoint point;
      point.enum_name = name;
      point.decl_line = static_cast<int>(l + 1);
      model.points.push_back(point);
    }
  }
  if (model.points.empty()) {
    model.errors.push_back({Rule::kFaultSync, hpp.rel_path,
                            static_cast<int>(enum_first + 1),
                            "`enum class Point` declares no fault points"});
    return model;
  }

  // 2. Wire names from the point_name() switch in the .cpp: the string
  // literal on (or directly after) each `case Point::kXyz:` line.
  auto find_point = [&](const std::string& enum_name) -> FaultPoint* {
    for (FaultPoint& point : model.points) {
      if (point.enum_name == enum_name) return &point;
    }
    return nullptr;
  };
  const auto name_body = function_body(cpp, "point_name(Point");
  if (!name_body) {
    model.errors.push_back({Rule::kFaultSync, cpp.rel_path, 1,
                            "cannot find the point_name() definition"});
    return model;
  }
  for (std::size_t l = name_body->first; l <= name_body->second; ++l) {
    const std::string& line = cpp.code[l];
    std::size_t pos = line.find("case ");
    if (pos == std::string::npos) continue;
    pos = line.find("Point::", pos);
    if (pos == std::string::npos) continue;
    const std::string enum_name = ident_at(line, pos + 7);
    FaultPoint* point = find_point(enum_name);
    if (point == nullptr) {
      model.errors.push_back({Rule::kFaultSync, cpp.rel_path, static_cast<int>(l + 1),
                              "point_name() names `Point::" + enum_name +
                                  "` which the Point enum does not declare"});
      continue;
    }
    point->case_line = static_cast<int>(l + 1);
    for (const StringLit& lit : cpp.strings) {
      if (lit.line == static_cast<int>(l + 1) ||
          lit.line == static_cast<int>(l + 2)) {
        point->wire_name = lit.text;
        break;
      }
    }
    if (point->wire_name.empty()) {
      model.errors.push_back({Rule::kFaultSync, cpp.rel_path, static_cast<int>(l + 1),
                              "no wire-name string found for `Point::" + enum_name + "`"});
    }
  }
  for (const FaultPoint& point : model.points) {
    if (point.case_line == 0) {
      model.errors.push_back(
          {Rule::kFaultSync, hpp.rel_path, point.decl_line,
           "`Point::" + point.enum_name +
               "` has no case in point_name() — it would print as \"unknown\""});
    }
  }

  // 3. Schedule wiring: Point:: references inside the two arm functions.
  const auto random_body = function_body(cpp, "arm_random_schedule(");
  const auto net_body = function_body(cpp, "arm_random_net_schedule(");
  if (!random_body || !net_body) {
    model.errors.push_back({Rule::kFaultSync, cpp.rel_path, 1,
                            "cannot find arm_random_schedule()/arm_random_net_schedule() definitions"});
    return model;
  }
  const std::set<std::string> in_random =
      point_refs(cpp, random_body->first, random_body->second);
  const std::set<std::string> in_net =
      point_refs(cpp, net_body->first, net_body->second);
  for (FaultPoint& point : model.points) {
    point.in_random = in_random.count(point.enum_name) > 0;
    point.in_net = in_net.count(point.enum_name) > 0;
  }
  for (const std::string& name : in_random) {
    if (find_point(name) == nullptr) {
      model.errors.push_back({Rule::kFaultSync, cpp.rel_path,
                              static_cast<int>(random_body->first + 1),
                              "arm_random_schedule() references undeclared `Point::" + name + "`"});
    }
  }
  for (const std::string& name : in_net) {
    if (find_point(name) == nullptr) {
      model.errors.push_back({Rule::kFaultSync, cpp.rel_path,
                              static_cast<int>(net_body->first + 1),
                              "arm_random_net_schedule() references undeclared `Point::" + name + "`"});
    }
  }
  return model;
}

}  // namespace wfbn_lint
