// The lint driver: walks src/**, lexes every translation unit, and enforces
// the five rules against the code and the two generated doc blocks. With
// --fix-docs it first regenerates the blocks from the code (preserving the
// hand-written Invariant / Fires prose by key) and then checks the patched
// text, so the only findings that survive a fix run are ones that need a
// human (e.g. placeholder invariants).
#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace fs = std::filesystem;

namespace wfbn_lint {

namespace {

[[nodiscard]] bool is_ident(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool word_at(const std::string& text, std::size_t pos,
                           const std::string& token) {
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && is_ident(text[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  if (end < text.size() && is_ident(text[end])) return false;
  return true;
}

[[nodiscard]] bool contains_word(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    if (word_at(line, pos, token)) return true;
    pos += token.size();
  }
  return false;
}

[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

[[nodiscard]] std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

[[nodiscard]] bool write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

/// The directories where R1 (explicit orderings) is enforced.
[[nodiscard]] bool in_explicit_order_scope(const std::string& rel) {
  return starts_with(rel, "src/concurrent/") || starts_with(rel, "src/serve/") ||
         starts_with(rel, "src/core/") || starts_with(rel, "src/net/") ||
         starts_with(rel, "src/analysis/");
}

/// Production code whose atomic sites must appear in the audit table.
[[nodiscard]] bool in_audit_scope(const std::string& rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/analysis/");
}

/// The paired header/source path of `rel` ("a/b.cpp" <-> "a/b.hpp").
[[nodiscard]] std::optional<std::string> pair_of(const std::string& rel) {
  if (rel.size() > 4 && rel.compare(rel.size() - 4, 4, ".cpp") == 0) {
    return rel.substr(0, rel.size() - 4) + ".hpp";
  }
  if (rel.size() > 4 && rel.compare(rel.size() - 4, 4, ".hpp") == 0) {
    return rel.substr(0, rel.size() - 4) + ".cpp";
  }
  return std::nullopt;
}

struct GroupKey {
  std::string file, object, op, order;
  bool operator<(const GroupKey& other) const {
    if (file != other.file) return file < other.file;
    if (object != other.object) return object < other.object;
    if (op != other.op) return op < other.op;
    return order < other.order;
  }
};

// Tokens forbidden inside wait-free regions. Deallocation (delete / free)
// stays legal: freeing exhausted chunks is bounded work intrinsic to a
// drain; *acquiring* memory or a lock is the unbounded-latency hazard.
const char* const kRegionWords[] = {
    "new",        "malloc",      "calloc",     "realloc",
    "aligned_alloc", "posix_memalign", "lock_guard", "unique_lock",
    "scoped_lock", "shared_lock", "condition_variable", "sleep_for",
    "sleep_until", "usleep",      "nanosleep",
};

// Tokens forbidden in atomics-policy seam files (R4): anything that
// hard-codes the real backend or blocks, invisible to wfcheck.
const char* const kSeamTokens[] = {
    "std::atomic<",          "std::mutex",          "std::condition_variable",
    "std::shared_mutex",     "std::recursive_mutex", "std::timed_mutex",
};
const char* const kSeamWords[] = {"sleep_for", "sleep_until"};

}  // namespace

Result run(const Options& options) {
  Result result;
  const fs::path root = options.root;
  const fs::path src_root = root / "src";
  if (!fs::exists(src_root) || !fs::is_directory(src_root)) {
    result.io_error = true;
    result.io_error_message = "no src/ directory under lint root " + root.string();
    return result;
  }

  // ---- 1. Lex every C++ file under src/. -----------------------------------
  std::map<std::string, SourceFile> files;  // rel path -> lexed view
  std::vector<std::string> rel_paths;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
    const std::string rel = fs::relative(entry.path(), root).generic_string();
    const std::optional<std::string> text = read_file(entry.path());
    if (!text) {
      result.io_error = true;
      result.io_error_message = "cannot read " + rel;
      return result;
    }
    files.emplace(rel, lex_source(*text, rel));
    rel_paths.push_back(rel);
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  // Declared atomic names per file, unioned with the .cpp/.hpp pair so a
  // member declared in the header is recognized at sites in the source file.
  std::map<std::string, std::set<std::string>> names_of;
  for (const std::string& rel : rel_paths) {
    std::set<std::string> names = atomic_names(files.at(rel));
    if (const auto pair = pair_of(rel); pair && files.count(*pair) > 0) {
      const std::set<std::string> pair_names = atomic_names(files.at(*pair));
      names.insert(pair_names.begin(), pair_names.end());
    }
    names_of.emplace(rel, std::move(names));
  }

  // ---- 2. Suppression machinery. -------------------------------------------
  // A finding at (file, line) is suppressed by `// wfbn-lint: allow(<rule>)
  // <reason>` on the same line or the line directly above. Malformed
  // directives are findings themselves and never suppress anything.
  auto is_suppressed = [&](const Finding& finding) {
    const auto it = files.find(finding.file);
    if (it == files.end()) return false;
    const std::string name = rule_name(finding.rule);
    for (const Directive& directive : it->second.directives) {
      if (directive.kind != Directive::Kind::kAllow) continue;
      if (directive.line != finding.line && directive.line != finding.line - 1) {
        continue;
      }
      if (directive.reason.empty()) continue;  // invalid, reported separately
      for (const std::string& rule : directive.rules) {
        if (rule == name) return true;
      }
    }
    return false;
  };
  auto add = [&](Finding finding) {
    if (!is_suppressed(finding)) result.findings.push_back(std::move(finding));
  };

  // Validate every directive up front.
  for (const std::string& rel : rel_paths) {
    const SourceFile& file = files.at(rel);
    for (const Directive& directive : file.directives) {
      if (directive.kind == Directive::Kind::kUnknown) {
        add({Rule::kDirective, rel, directive.line,
             "unrecognized wfbn-lint directive (expected wait-free-begin, wait-free-end, or allow(<rule>) <reason>)"});
      } else if (directive.kind == Directive::Kind::kAllow) {
        if (directive.rules.empty()) {
          add({Rule::kDirective, rel, directive.line,
               "allow() names no rule"});
        }
        for (const std::string& rule : directive.rules) {
          if (!rule_from_name(rule)) {
            add({Rule::kDirective, rel, directive.line,
                 "allow() names unknown rule `" + rule + "`"});
          }
        }
        if (directive.reason.empty()) {
          add({Rule::kDirective, rel, directive.line,
               "allow(...) requires a reason after the closing parenthesis"});
        }
      }
    }
  }

  // ---- 3. Extract sites; apply R1 (implicit orders). -----------------------
  std::map<GroupKey, std::vector<int>> groups;  // audit-scope sites by key
  for (const std::string& rel : rel_paths) {
    const SourceFile& file = files.at(rel);
    const std::set<std::string>& names = names_of.at(rel);
    const std::vector<AtomicSite> sites = extract_sites(file, names);
    for (const AtomicSite& site : sites) {
      result.sites.push_back(site);
      if (site.implicit && in_explicit_order_scope(rel)) {
        add({Rule::kImplicitOrder, rel, site.line,
             "`" + site.object + "." + site.op +
                 "` uses implicit seq_cst — spell out the std::memory_order"});
      }
      if (in_audit_scope(rel)) {
        groups[{rel, site.object, site.op, site.order}].push_back(site.line);
      }
    }
    // Operator RMWs are implicit seq_cst AND invisible to the audit table,
    // so they are flagged everywhere, not just in the R1 directories.
    for (const OperatorSite& op_site : extract_operator_sites(file, names)) {
      add({Rule::kImplicitOrder, rel, op_site.line,
           "operator `" + op_site.op + "` on atomic `" + op_site.object +
               "` is an implicit-seq_cst RMW — use an explicit fetch_ op"});
    }
  }

  // ---- 4. R5: wait-free-region hygiene. ------------------------------------
  for (const std::string& rel : rel_paths) {
    const SourceFile& file = files.at(rel);
    std::vector<std::pair<int, int>> regions;
    std::vector<int> open;
    std::vector<Directive> markers;
    for (const Directive& directive : file.directives) {
      if (directive.kind == Directive::Kind::kWaitFreeBegin ||
          directive.kind == Directive::Kind::kWaitFreeEnd) {
        markers.push_back(directive);
      }
    }
    std::sort(markers.begin(), markers.end(),
              [](const Directive& a, const Directive& b) { return a.line < b.line; });
    for (const Directive& marker : markers) {
      if (marker.kind == Directive::Kind::kWaitFreeBegin) {
        open.push_back(marker.line);
      } else if (open.empty()) {
        add({Rule::kDirective, rel, marker.line,
             "wait-free-end without a matching wait-free-begin"});
      } else {
        regions.emplace_back(open.back(), marker.line);
        open.pop_back();
      }
    }
    for (const int line : open) {
      add({Rule::kDirective, rel, line,
           "wait-free-begin without a matching wait-free-end"});
    }
    for (const auto& [begin, end] : regions) {
      for (int l = begin; l <= end; ++l) {
        const std::string& line = file.code[static_cast<std::size_t>(l - 1)];
        for (const char* const word : kRegionWords) {
          if (contains_word(line, word)) {
            add({Rule::kWaitFreeRegion, rel, l,
                 std::string("`") + word +
                     "` inside a wait-free region — no allocation, locks, or blocking here"});
          }
        }
        if (line.find(".lock(") != std::string::npos ||
            line.find("->lock(") != std::string::npos) {
          add({Rule::kWaitFreeRegion, rel, l,
               "lock acquisition inside a wait-free region"});
        }
      }
    }
  }

  // ---- 5. R4: atomics-policy purity. ---------------------------------------
  for (const std::string& rel : rel_paths) {
    const SourceFile& file = files.at(rel);
    if (!is_policy_seam(file)) continue;
    for (std::size_t l = 0; l < file.code.size(); ++l) {
      const std::string& line = file.code[l];
      for (const char* const token : kSeamTokens) {
        if (line.find(token) != std::string::npos) {
          add({Rule::kPolicyPurity, rel, static_cast<int>(l + 1),
               std::string("`") + token +
                   "` in an atomics-policy seam file — route through the Policy to keep wfcheck coverage"});
        }
      }
      for (const char* const word : kSeamWords) {
        if (contains_word(line, word)) {
          add({Rule::kPolicyPurity, rel, static_cast<int>(l + 1),
               std::string("`") + word +
                   "` blocks in an atomics-policy seam file — use Policy-provided backoff"});
        }
      }
      if (line.find("this_thread::yield") != std::string::npos) {
        add({Rule::kPolicyPurity, rel, static_cast<int>(l + 1),
             "`std::this_thread::yield` in an atomics-policy seam file — use Policy::yield()"});
      }
    }
  }

  // ---- 6. R2: audit-table sync against docs/ALGORITHMS.md. -----------------
  const std::string audit_rel = "docs/ALGORITHMS.md";
  std::optional<std::string> audit_text = read_file(root / audit_rel);
  if (!audit_text) {
    add({Rule::kAuditSync, audit_rel, 1, "cannot read " + audit_rel});
  } else {
    if (options.fix_docs) {
      const AuditDoc old_doc = parse_audit_doc(*audit_text, audit_rel);
      std::vector<AuditRow> rows;
      for (const auto& [key, lines] : groups) {
        AuditRow row;
        row.file = key.file;
        row.object = key.object;
        row.op = key.op;
        row.order = key.order;
        row.lines = lines;
        for (const AuditRow& old_row : old_doc.rows) {
          if (old_row.file == key.file && old_row.object == key.object &&
              old_row.op == key.op && old_row.order == key.order) {
            row.invariant = old_row.invariant;
            break;
          }
        }
        rows.push_back(row);
      }
      const std::optional<std::string> patched =
          replace_block(*audit_text, kAuditBegin, kAuditEnd, render_audit_block(rows));
      if (patched && *patched != *audit_text) {
        if (!write_file(root / audit_rel, *patched)) {
          result.io_error = true;
          result.io_error_message = "cannot write " + audit_rel;
          return result;
        }
        result.fixed_files.push_back(audit_rel);
        audit_text = patched;
      }
    }
    const AuditDoc doc = parse_audit_doc(*audit_text, audit_rel);
    for (const Finding& finding : doc.errors) add(finding);
    if (doc.found) {
      for (const auto& [key, lines] : groups) {
        const AuditRow* match = nullptr;
        bool object_op_known = false;
        for (const AuditRow& row : doc.rows) {
          if (row.file == key.file && row.object == key.object && row.op == key.op) {
            object_op_known = true;
            if (row.order == key.order) match = &row;
          }
        }
        if (match == nullptr) {
          const std::string what =
              object_op_known ? "audit row ordering does not match the code ("
                              : "no audit row in docs/ALGORITHMS.md for (";
          add({Rule::kAuditSync, key.file, lines.front(),
               what + "`" + key.object + "." + key.op + "` @ " + key.order +
                   ") — run wfbn_lint --fix-docs, then document the invariant"});
        }
      }
      for (const AuditRow& row : doc.rows) {
        const auto it = groups.find({row.file, row.object, row.op, row.order});
        if (it == groups.end()) {
          add({Rule::kAuditSync, audit_rel, row.doc_line,
               "stale audit row: no `" + row.object + "." + row.op + "` @ " +
                   row.order + " site in " + row.file});
        } else if (row.invariant == kInvariantPlaceholder || row.invariant.empty()) {
          add({Rule::kAuditSync, audit_rel, row.doc_line,
               "audit row for `" + row.object + "." + row.op + "` in " + row.file +
                   " has a placeholder invariant — document what the ordering protects"});
        }
      }
    }
  }

  // ---- 7. R3: fault-point sync. --------------------------------------------
  const std::string fault_hpp_rel = "src/util/fault_injection.hpp";
  const std::string fault_cpp_rel = "src/util/fault_injection.cpp";
  const std::string robustness_rel = "docs/ROBUSTNESS.md";
  if (files.count(fault_hpp_rel) == 0 || files.count(fault_cpp_rel) == 0) {
    add({Rule::kFaultSync, fault_hpp_rel, 1,
         "fault-injection sources not found under src/util/"});
  } else {
    const FaultModel model =
        extract_fault_points(files.at(fault_hpp_rel), files.at(fault_cpp_rel));
    for (const Finding& finding : model.errors) add(finding);
    std::optional<std::string> fault_text = read_file(root / robustness_rel);
    if (!fault_text) {
      add({Rule::kFaultSync, robustness_rel, 1, "cannot read " + robustness_rel});
    } else {
      if (options.fix_docs) {
        const FaultDoc old_doc = parse_fault_doc(*fault_text, robustness_rel);
        const std::optional<std::string> patched =
            replace_block(*fault_text, kFaultBegin, kFaultEnd,
                          render_fault_block(model.points, old_doc.rows));
        if (patched && *patched != *fault_text) {
          if (!write_file(root / robustness_rel, *patched)) {
            result.io_error = true;
            result.io_error_message = "cannot write " + robustness_rel;
            return result;
          }
          result.fixed_files.push_back(robustness_rel);
          fault_text = patched;
        }
      }
      const FaultDoc doc = parse_fault_doc(*fault_text, robustness_rel);
      for (const Finding& finding : doc.errors) add(finding);
      if (doc.found) {
        for (const FaultPoint& point : model.points) {
          const FaultDocRow* match = nullptr;
          for (const FaultDocRow& row : doc.rows) {
            if (row.name == point.wire_name) match = &row;
          }
          if (match == nullptr) {
            add({Rule::kFaultSync, fault_hpp_rel, point.decl_line,
                 "fault point `" + point.wire_name +
                     "` has no row in docs/ROBUSTNESS.md — run wfbn_lint --fix-docs"});
            continue;
          }
          const std::string wired = schedules_of(point);
          if (match->schedules != wired) {
            add({Rule::kFaultSync, robustness_rel, match->doc_line,
                 "fault point `" + point.wire_name + "` documented as `" +
                     match->schedules + "` but the arm functions wire it as `" +
                     wired + "`"});
          }
          if (match->fires == kFiresPlaceholder || match->fires.empty()) {
            add({Rule::kFaultSync, robustness_rel, match->doc_line,
                 "fault point `" + point.wire_name +
                     "` has a placeholder Fires description"});
          }
        }
        for (const FaultDocRow& row : doc.rows) {
          const bool known = std::any_of(
              model.points.begin(), model.points.end(),
              [&](const FaultPoint& point) { return point.wire_name == row.name; });
          if (!known) {
            add({Rule::kFaultSync, robustness_rel, row.doc_line,
                 "stale fault-point row `" + row.name +
                     "`: no such point is declared in fault_injection.hpp"});
          }
        }
      }
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  std::sort(result.sites.begin(), result.sites.end(),
            [](const AtomicSite& a, const AtomicSite& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return result;
}

}  // namespace wfbn_lint
