// wfbn-lint: the project-specific concurrency linter.
//
// The wait-free guarantees of this library live in artifacts that ordinary
// compilers and sanitizers never cross-check: the per-site memory-order
// audit table in docs/ALGORITHMS.md, the fault-point registry in
// docs/ROBUSTNESS.md, the rule that model-checkable protocol code goes
// through Policy::Atomic instead of bare std::atomic, and the convention
// that the publish/read/drain hot paths never allocate or block. wfcheck
// (src/analysis/) checks the *dynamic* half of that discipline; this tool is
// the static half — a token-level analyzer (own comment/string-stripping
// lexer, no libclang) that extracts every atomic operation site and enforces
// five rules on every CI run:
//
//   R1 implicit-order    no implicit-seq_cst atomic op in src/concurrent,
//                        src/serve, src/core, src/net, src/analysis — every
//                        ordering is spelled out where the protocol lives.
//                        Operator RMWs on atomics (++/+=/...) are flagged
//                        repo-wide: they are implicit AND unauditable.
//   R2 audit-sync        the generated atomics-audit block in
//                        docs/ALGORITHMS.md matches the code, both
//                        directions: every production atomic site (src/**
//                        minus src/analysis) has a row whose ordering and
//                        line list match; stale rows are errors too.
//   R3 fault-sync        the fault-point registry is consistent three ways:
//                        the Point enum, the point_name() wire names, the
//                        arm_random_schedule / arm_random_net_schedule
//                        wiring, and the generated table in
//                        docs/ROBUSTNESS.md all agree.
//   R4 policy-purity     files that use the atomics-policy seam
//                        (Policy::template Atomic<...>) must not smuggle in
//                        bare std::atomic / std::mutex / sleeps /
//                        this_thread::yield — otherwise wfcheck coverage
//                        silently shrinks.
//   R5 wait-free-region  inside // wfbn-lint: wait-free-begin ... -end
//                        annotations, no allocation, locks, or blocking
//                        calls. (Deallocation of consumer-exhausted memory
//                        is allowed: freeing is bounded and intrinsic to the
//                        drain; acquisition is the unbounded-latency risk.)
//
// Suppressions: `// wfbn-lint: allow(<rule>[,<rule>...]) <reason>` on the
// finding's line or the line directly above. The reason is mandatory — a
// bare allow is itself a finding (rule `directive`).
//
// Everything is heuristic token analysis, tuned to this repo's idiom; the
// limits (single-line declarations, receiver-name matching across a
// .cpp/.hpp pair) are documented in docs/VERIFICATION.md.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace wfbn_lint {

enum class Rule {
  kImplicitOrder,
  kAuditSync,
  kFaultSync,
  kPolicyPurity,
  kWaitFreeRegion,
  kDirective,
};

[[nodiscard]] const char* rule_name(Rule rule) noexcept;
[[nodiscard]] std::optional<Rule> rule_from_name(const std::string& name);

struct Finding {
  Rule rule = Rule::kDirective;
  std::string file;  ///< path relative to the lint root
  int line = 0;      ///< 1-based
  std::string message;
};

/// A lint directive parsed from a comment.
struct Directive {
  enum class Kind { kAllow, kWaitFreeBegin, kWaitFreeEnd, kUnknown };
  Kind kind = Kind::kUnknown;
  int line = 0;
  std::vector<std::string> rules;  ///< for kAllow
  std::string reason;              ///< for kAllow
};

struct StringLit {
  int line = 0;
  std::string text;
};

/// One lexed file: code with comments and string/char literal contents
/// blanked to spaces (line structure and columns preserved), plus the
/// directives and string literals the stripping recorded.
struct SourceFile {
  std::string rel_path;
  std::vector<std::string> code;  ///< code[i] is line i+1
  std::vector<Directive> directives;
  std::vector<StringLit> strings;
};

/// One atomic operation site: `object.op(args)` where either the receiver is
/// a declared atomic variable or the arguments name a std::memory_order.
struct AtomicSite {
  std::string file;
  int line = 0;
  std::string object;  ///< receiver's trailing identifier ("(expr)" if none)
  std::string op;      ///< load / store / exchange / compare_exchange_* / fetch_*
  std::string order;   ///< canonical suffixes, "/"-joined for CAS; "seq_cst" if implicit
  bool implicit = false;
};

/// A row of the generated atomics-audit block in docs/ALGORITHMS.md.
struct AuditRow {
  std::string file, object, op, order;
  std::vector<int> lines;
  std::string invariant;
  int doc_line = 0;
};

/// One declared fault point, cross-referenced across fault_injection.{hpp,cpp}.
struct FaultPoint {
  std::string enum_name;  ///< e.g. kStage1Row
  std::string wire_name;  ///< e.g. "builder.stage1_row"
  int decl_line = 0;      ///< enum constant line in fault_injection.hpp
  int case_line = 0;      ///< point_name() case line in fault_injection.cpp
  bool in_random = false; ///< referenced inside arm_random_schedule()
  bool in_net = false;    ///< referenced inside arm_random_net_schedule()
};

/// A row of the generated fault-point block in docs/ROBUSTNESS.md.
struct FaultDocRow {
  std::string name, schedules, fires;
  int doc_line = 0;
};

// ---- lexer.cpp -------------------------------------------------------------

[[nodiscard]] SourceFile lex_source(const std::string& text, std::string rel_path);

// ---- extract.cpp -----------------------------------------------------------

/// Names of variables declared with an atomic type in this file:
/// `std::atomic<...> name` or the policy-seam `Atomic<...> name` /
/// `typename Policy::template Atomic<...> name`. Single-line declarations
/// only (the repo's idiom; a multi-line declaration is missed).
[[nodiscard]] std::set<std::string> atomic_names(const SourceFile& file);

/// Extracts every atomic operation site (see AtomicSite). `names` should be
/// the union of atomic_names() over the file and its .cpp/.hpp pair.
[[nodiscard]] std::vector<AtomicSite> extract_sites(const SourceFile& file,
                                                    const std::set<std::string>& names);

/// True when the file routes atomics through the policy seam
/// (`::template Atomic<` appears in code) — the R4 trigger.
[[nodiscard]] bool is_policy_seam(const SourceFile& file);

/// Operator RMWs (++/--/+=/...) applied to a declared atomic name; each is
/// an implicit-seq_cst site the audit table cannot express.
struct OperatorSite {
  int line = 0;
  std::string object, op;
};
[[nodiscard]] std::vector<OperatorSite> extract_operator_sites(
    const SourceFile& file, const std::set<std::string>& names);

struct FaultModel {
  std::vector<FaultPoint> points;
  std::vector<Finding> errors;  ///< inconsistencies found while extracting
};

/// Cross-references the Point enum (hpp), the point_name() switch and the
/// two arm-schedule function bodies (cpp).
[[nodiscard]] FaultModel extract_fault_points(const SourceFile& hpp,
                                              const SourceFile& cpp);

// ---- docs_sync.cpp ---------------------------------------------------------

inline constexpr const char* kAuditBegin = "<!-- wfbn-lint:atomics-audit:begin -->";
inline constexpr const char* kAuditEnd = "<!-- wfbn-lint:atomics-audit:end -->";
inline constexpr const char* kFaultBegin = "<!-- wfbn-lint:fault-points:begin -->";
inline constexpr const char* kFaultEnd = "<!-- wfbn-lint:fault-points:end -->";
inline constexpr const char* kInvariantPlaceholder = "(document the invariant)";
inline constexpr const char* kFiresPlaceholder = "(document where this point fires)";

struct AuditDoc {
  bool found = false;
  std::vector<AuditRow> rows;
  std::vector<Finding> errors;
};
struct FaultDoc {
  bool found = false;
  std::vector<FaultDocRow> rows;
  std::vector<Finding> errors;
};

[[nodiscard]] AuditDoc parse_audit_doc(const std::string& text, const std::string& rel_path);
[[nodiscard]] FaultDoc parse_fault_doc(const std::string& text, const std::string& rel_path);

/// Replaces the generated block between the markers with `rows_markdown`
/// (which must include the table header). Returns the patched text, or
/// nullopt when the markers are absent.
[[nodiscard]] std::optional<std::string> replace_block(const std::string& text,
                                                       const std::string& begin_marker,
                                                       const std::string& end_marker,
                                                       const std::string& rows_markdown);

[[nodiscard]] std::string render_audit_block(const std::vector<AuditRow>& rows);
[[nodiscard]] std::string render_fault_block(const std::vector<FaultPoint>& points,
                                             const std::vector<FaultDocRow>& old_rows);
[[nodiscard]] std::string schedules_of(const FaultPoint& point);

// ---- rules.cpp -------------------------------------------------------------

struct Options {
  std::string root = ".";
  bool fix_docs = false;  ///< regenerate the docs' generated blocks first
};

struct Result {
  std::vector<Finding> findings;
  std::vector<std::string> fixed_files;  ///< docs rewritten by --fix-docs
  std::vector<AtomicSite> sites;         ///< every extracted site (for --dump-sites)
  bool io_error = false;
  std::string io_error_message;
};

[[nodiscard]] Result run(const Options& options);

// ---- output.cpp ------------------------------------------------------------

[[nodiscard]] std::string render_human(const Result& result);
[[nodiscard]] std::string render_json(const Result& result, const std::string& root);

}  // namespace wfbn_lint
