// Comment/string-stripping lexer. The analyzer never sees a token that was
// inside a comment, a string, or a char literal — those become spaces in the
// code view, preserving line and column structure — while comments are kept
// separately for directive parsing and string literals for the fault-point
// wire-name extraction.
#include "lint.hpp"

#include <cctype>
#include <map>

namespace wfbn_lint {

namespace {

[[nodiscard]] bool is_ident(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parses one `wfbn-lint:` directive out of a comment line's text.
[[nodiscard]] std::optional<Directive> parse_directive(const std::string& comment,
                                                       int line) {
  const std::size_t tag = comment.find("wfbn-lint:");
  if (tag == std::string::npos) return std::nullopt;
  std::size_t pos = tag + std::string("wfbn-lint:").size();
  while (pos < comment.size() && comment[pos] == ' ') ++pos;

  Directive directive;
  directive.line = line;
  if (comment.compare(pos, 15, "wait-free-begin") == 0) {
    directive.kind = Directive::Kind::kWaitFreeBegin;
    return directive;
  }
  if (comment.compare(pos, 13, "wait-free-end") == 0) {
    directive.kind = Directive::Kind::kWaitFreeEnd;
    return directive;
  }
  if (comment.compare(pos, 6, "allow(") == 0) {
    directive.kind = Directive::Kind::kAllow;
    pos += 6;
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) {
      directive.kind = Directive::Kind::kUnknown;
      return directive;
    }
    std::string rule;
    for (std::size_t i = pos; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        while (!rule.empty() && rule.front() == ' ') rule.erase(rule.begin());
        while (!rule.empty() && rule.back() == ' ') rule.pop_back();
        if (!rule.empty()) directive.rules.push_back(rule);
        rule.clear();
      } else {
        rule.push_back(c);
      }
    }
    std::string reason = comment.substr(close + 1);
    while (!reason.empty() && (reason.front() == ' ' || reason.front() == '-')) {
      reason.erase(reason.begin());
    }
    while (!reason.empty() &&
           (reason.back() == ' ' || reason.back() == '\r' || reason.back() == '\n')) {
      reason.pop_back();
    }
    directive.reason = reason;
    return directive;
  }
  directive.kind = Directive::Kind::kUnknown;
  return directive;
}

}  // namespace

SourceFile lex_source(const std::string& text, std::string rel_path) {
  SourceFile out;
  out.rel_path = std::move(rel_path);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;

  std::string code_line;
  std::map<int, std::string> comments;   // line -> accumulated comment text
  int line = 1;
  std::string raw_delim;                 // for R"delim( ... )delim"
  StringLit current_lit;

  auto end_line = [&] {
    out.code.push_back(code_line);
    code_line.clear();
    ++line;
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      end_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string; a trailing identifier char before
          // the quote that is not R means a literal suffix/prefix we treat
          // as ordinary (u8"..." etc. still lex as strings).
          if (!code_line.empty() && code_line.back() == 'R' &&
              (code_line.size() < 2 || !is_ident(code_line[code_line.size() - 2]))) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < n && text[j] != '(' && text[j] != '\n') {
              raw_delim.push_back(text[j]);
              ++j;
            }
            state = State::kRawString;
            current_lit = {line, ""};
            code_line.push_back('"');
            for (std::size_t k = i + 1; k <= j && k < n; ++k) code_line.push_back(' ');
            i = j;  // consumed through the '('
          } else {
            state = State::kString;
            current_lit = {line, ""};
            code_line.push_back('"');
          }
        } else if (c == '\'') {
          // Heuristic: a ' directly after an identifier/digit would be a
          // digit separator (1'000) — not a char literal.
          if (!code_line.empty() && is_ident(code_line.back())) {
            code_line.push_back(' ');
          } else {
            state = State::kChar;
            code_line.push_back('\'');
          }
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        comments[line].push_back(c);
        code_line.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comments[line].push_back(c);
          code_line.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\') {
          current_lit.text.push_back(next);
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.strings.push_back(current_lit);
          code_line.push_back('"');
        } else {
          current_lit.text.push_back(c);
          code_line.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line.push_back('\'');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          out.strings.push_back(current_lit);
          for (std::size_t k = 0; k < close.size(); ++k) code_line.push_back(' ');
          i += close.size() - 1;
        } else {
          current_lit.text.push_back(c);
          code_line.push_back(' ');
        }
        break;
      }
    }
  }
  if (!code_line.empty() || out.code.empty()) end_line();

  for (const auto& [comment_line, comment_text] : comments) {
    if (auto directive = parse_directive(comment_text, comment_line)) {
      out.directives.push_back(*directive);
    }
  }
  return out;
}

}  // namespace wfbn_lint
