// Rendering: rule-name mapping, the human diff-style report, and the
// machine-readable JSON document consumed by the CI artifact upload.
#include "lint.hpp"

#include <map>
#include <sstream>

namespace wfbn_lint {

const char* rule_name(Rule rule) noexcept {
  switch (rule) {
    case Rule::kImplicitOrder: return "implicit-order";
    case Rule::kAuditSync: return "audit-sync";
    case Rule::kFaultSync: return "fault-sync";
    case Rule::kPolicyPurity: return "policy-purity";
    case Rule::kWaitFreeRegion: return "wait-free-region";
    case Rule::kDirective: return "directive";
  }
  return "unknown";
}

std::optional<Rule> rule_from_name(const std::string& name) {
  static const std::map<std::string, Rule> kNames = {
      {"implicit-order", Rule::kImplicitOrder},
      {"audit-sync", Rule::kAuditSync},
      {"fault-sync", Rule::kFaultSync},
      {"policy-purity", Rule::kPolicyPurity},
      {"wait-free-region", Rule::kWaitFreeRegion},
      {"directive", Rule::kDirective},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end()) return std::nullopt;
  return it->second;
}

std::string render_human(const Result& result) {
  std::ostringstream out;
  if (result.io_error) {
    out << "wfbn-lint: error: " << result.io_error_message << "\n";
    return out.str();
  }
  for (const std::string& fixed : result.fixed_files) {
    out << "wfbn-lint: rewrote generated block in " << fixed << "\n";
  }
  for (const Finding& finding : result.findings) {
    out << finding.file << ":" << finding.line << ": [" << rule_name(finding.rule)
        << "] " << finding.message << "\n";
  }
  if (result.findings.empty()) {
    out << "wfbn-lint: clean (" << result.sites.size() << " atomic sites audited)\n";
  } else {
    out << "wfbn-lint: " << result.findings.size() << " finding"
        << (result.findings.size() == 1 ? "" : "s") << " across "
        << result.sites.size() << " atomic sites\n";
  }
  return out.str();
}

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string render_json(const Result& result, const std::string& root) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"root\": \"" << json_escape(root) << "\",\n";
  out << "  \"io_error\": " << (result.io_error ? "true" : "false") << ",\n";
  if (result.io_error) {
    out << "  \"io_error_message\": \"" << json_escape(result.io_error_message)
        << "\",\n";
  }
  out << "  \"site_count\": " << result.sites.size() << ",\n";
  out << "  \"fixed_files\": [";
  for (std::size_t i = 0; i < result.fixed_files.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(result.fixed_files[i]) << "\"";
  }
  out << "],\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& finding = result.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << rule_name(finding.rule) << "\", \"file\": \""
        << json_escape(finding.file) << "\", \"line\": " << finding.line
        << ", \"message\": \"" << json_escape(finding.message) << "\"}";
  }
  out << (result.findings.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

}  // namespace wfbn_lint
