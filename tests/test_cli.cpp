// Unit tests for the CLI option parser used by benches and examples.
#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

CliParser make_parser() {
  CliParser cli("test tool");
  cli.add_option("samples", "1000", "sample count");
  cli.add_option("label", "default", "a string");
  cli.add_option("ratio", "0.5", "a double");
  cli.add_option("cores", "1,2,4", "core list");
  cli.add_flag("verbose", "chatty output");
  return cli;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> out{"prog"};
  out.insert(out.end(), args.begin(), args.end());
  return out;
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli = make_parser();
  auto argv = argv_of({});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("samples"), 1000);
  EXPECT_EQ(cli.get("label"), "default");
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 0.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  CliParser cli = make_parser();
  auto argv = argv_of({"--samples", "250", "--label", "hello"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("samples"), 250);
  EXPECT_EQ(cli.get("label"), "hello");
}

TEST(Cli, EqualsSeparatedValues) {
  CliParser cli = make_parser();
  auto argv = argv_of({"--samples=99", "--ratio=0.25"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("samples"), 99);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 0.25);
}

TEST(Cli, FlagsToggle) {
  CliParser cli = make_parser();
  auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, IntListParsing) {
  CliParser cli = make_parser();
  auto argv = argv_of({"--cores", "1,2,8,32"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int_list("cores"),
            (std::vector<std::int64_t>{1, 2, 8, 32}));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli = make_parser();
  auto argv = argv_of({"input.csv", "--samples", "5", "out.csv"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.positional(),
            (std::vector<std::string>{"input.csv", "out.csv"}));
}

TEST(Cli, HelpReturnsFalseAndPrints) {
  CliParser cli = make_parser();
  auto argv = argv_of({"--help"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(cli.help_text().find("--samples"), std::string::npos);
  EXPECT_NE(cli.help_text().find("sample count"), std::string::npos);
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli = make_parser();
  auto argv = argv_of({"--bogus", "1"});
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()), DataError);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli = make_parser();
  auto argv = argv_of({"--samples"});
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()), DataError);
}

TEST(Cli, NonIntegerValueThrows) {
  CliParser cli = make_parser();
  auto argv = argv_of({"--samples", "abc"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW((void)cli.get_int("samples"), DataError);
}

TEST(Cli, MalformedListThrows) {
  CliParser cli = make_parser();
  auto argv = argv_of({"--cores", "1,x,3"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_int_list("cores"), DataError);
}

TEST(Cli, DuplicateRegistrationIsAProgrammingError) {
  CliParser cli("t");
  cli.add_option("x", "1", "");
  EXPECT_THROW(cli.add_option("x", "2", ""), PreconditionError);
}

TEST(Cli, UnregisteredGetIsAProgrammingError) {
  CliParser cli("t");
  EXPECT_THROW(cli.get("nope"), PreconditionError);
}

}  // namespace
}  // namespace wfbn
