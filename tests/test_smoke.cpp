// End-to-end smoke test: the one-screen usage story from the README.
#include <gtest/gtest.h>

#include "core/all_pairs_mi.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "learn/cheng.hpp"

namespace wfbn {
namespace {

TEST(Smoke, BuildTableComputeMiLearnStructure) {
  const Dataset data = generate_chain_correlated(20000, 6, 2, 0.9, 123);

  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  EXPECT_EQ(table.sample_count(), 20000u);
  EXPECT_TRUE(table.validate());

  AllPairsMi all_pairs(AllPairsOptions{4, AllPairsStrategy::kFused});
  const MiMatrix mi = all_pairs.compute(table);
  // Adjacent chain variables share far more information than distant ones.
  EXPECT_GT(mi.at(0, 1), mi.at(0, 5));

  ChengLearner learner;
  const ChengResult result = learner.learn(table);
  EXPECT_TRUE(result.skeleton.has_edge(2, 3));
}

}  // namespace
}  // namespace wfbn
