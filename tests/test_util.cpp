// Unit tests for TablePrinter, Timer and the error-handling macros.
#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

namespace wfbn {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name         value"), std::string::npos);
  EXPECT_NE(out.find("longer-name  22"), std::string::npos);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TablePrinter, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter({}), PreconditionError);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt(std::uint64_t{42}), "42");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(timer.milliseconds(), timer.seconds() * 1e3,
              timer.seconds() * 100);
}

TEST(Timer, ResetRestartsTheClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.01);
}

TEST(Error, ExpectThrowsWithContext) {
  try {
    WFBN_EXPECT(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Error, ExpectPassesSilently) {
  WFBN_EXPECT(true, "never seen");
  SUCCEED();
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw DataError("bad file"), std::runtime_error);
  EXPECT_THROW(throw PreconditionError("bad call"), std::logic_error);
}

}  // namespace
}  // namespace wfbn
