// Tests for Bayesian-network serialization (src/bn/io).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "bn/io.hpp"
#include "bn/repository.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

void expect_equal_networks(const BayesianNetwork& a, const BayesianNetwork& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.cardinalities(), b.cardinalities());
  for (NodeId v = 0; v < a.node_count(); ++v) {
    EXPECT_EQ(a.name(v), b.name(v));
    EXPECT_EQ(a.dag().parents(v), b.dag().parents(v));
    ASSERT_EQ(a.cpt(v).raw().size(), b.cpt(v).raw().size());
    for (std::size_t i = 0; i < a.cpt(v).raw().size(); ++i) {
      EXPECT_DOUBLE_EQ(a.cpt(v).raw()[i], b.cpt(v).raw()[i]) << "cpt of node " << v;
    }
  }
}

class NetworkRoundTrip : public ::testing::TestWithParam<RepositoryNetwork> {};

TEST_P(NetworkRoundTrip, StreamRoundTripPreservesEverything) {
  const BayesianNetwork original = load_network(GetParam());
  std::stringstream stream;
  write_network(original, stream);
  const BayesianNetwork loaded = read_network(stream);
  expect_equal_networks(original, loaded);
  EXPECT_TRUE(loaded.validate());
}

INSTANTIATE_TEST_SUITE_P(AllRepositoryNetworks, NetworkRoundTrip,
                         ::testing::ValuesIn(all_repository_networks()),
                         [](const auto& param_info) {
                           return repository_network_name(param_info.param);
                         });

TEST(NetworkIo, FileRoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "wfbn_test_net.txt";
  const BayesianNetwork original = load_network(RepositoryNetwork::kAsia);
  write_network_file(original, path);
  const BayesianNetwork loaded = read_network_file(path);
  expect_equal_networks(original, loaded);
  std::remove(path.c_str());
}

TEST(NetworkIo, RejectsWrongMagic) {
  std::stringstream stream("not-a-network 1\n");
  EXPECT_THROW((void)read_network(stream), DataError);
}

TEST(NetworkIo, RejectsWrongVersion) {
  std::stringstream stream("wfbn-network 99\nnodes 1\nnode a 2\nparents a 0\n");
  EXPECT_THROW((void)read_network(stream), DataError);
}

TEST(NetworkIo, RejectsTruncation) {
  const BayesianNetwork original = load_network(RepositoryNetwork::kCancer);
  std::stringstream full;
  write_network(original, full);
  const std::string text = full.str();
  // Any prefix cut inside the body must fail loudly, not mis-parse.
  for (const double fraction : {0.2, 0.5, 0.9}) {
    std::stringstream cut(text.substr(0, static_cast<std::size_t>(
                                             fraction * static_cast<double>(text.size()))));
    EXPECT_THROW((void)read_network(cut), DataError);
  }
}

TEST(NetworkIo, RejectsCyclicParentLists) {
  std::stringstream stream(
      "wfbn-network 1\nnodes 2\nnode a 2\nnode b 2\n"
      "parents a 1 b\nparents b 1 a\n");
  EXPECT_THROW((void)read_network(stream), DataError);
}

TEST(NetworkIo, RejectsUnknownParentName) {
  std::stringstream stream(
      "wfbn-network 1\nnodes 1\nnode a 2\nparents a 1 ghost\n");
  EXPECT_THROW((void)read_network(stream), DataError);
}

TEST(NetworkIo, RejectsUnnormalizedCpt) {
  std::stringstream stream(
      "wfbn-network 1\nnodes 1\nnode a 2\nparents a 0\n"
      "cpt a 2 0.9 0.9\nend\n");
  EXPECT_THROW((void)read_network(stream), DataError);
}

TEST(NetworkIo, RejectsZeroCardinality) {
  std::stringstream stream("wfbn-network 1\nnodes 1\nnode a 0\nparents a 0\n");
  EXPECT_THROW((void)read_network(stream), DataError);
}

TEST(NetworkIo, ParentOrderSurvivesRoundTrip) {
  // Build a node whose parents are deliberately NOT in ascending id order —
  // the CPT layout depends on it.
  Dag dag(3);
  dag.add_edge(2, 0);  // parents(0) = [2, 1]
  dag.add_edge(1, 0);
  BayesianNetwork bn(std::move(dag), {2, 2, 2}, {"child", "p1", "p2"});
  bn.set_cpt(0, Cpt::from_probabilities(
                    2, {2, 2}, {0.1, 0.9, 0.2, 0.8, 0.3, 0.7, 0.4, 0.6}));
  std::stringstream stream;
  write_network(bn, stream);
  const BayesianNetwork loaded = read_network(stream);
  EXPECT_EQ(loaded.dag().parents(0), (std::vector<NodeId>{2, 1}));
  EXPECT_DOUBLE_EQ(loaded.cpt(0).probability(0, 1), 0.2);
}

TEST(NetworkIo, MissingFileThrows) {
  EXPECT_THROW((void)read_network_file("/nonexistent/net.txt"), DataError);
}

}  // namespace
}  // namespace wfbn
