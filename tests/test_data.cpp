// Tests for Dataset, the synthetic generators, and CSV/binary IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

// -------------------------------------------------------------------- Dataset

TEST(Dataset, ZeroInitialized) {
  Dataset data(10, {2, 3});
  EXPECT_EQ(data.sample_count(), 10u);
  EXPECT_EQ(data.variable_count(), 2u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(data.at(i, 0), 0);
    EXPECT_EQ(data.at(i, 1), 0);
  }
  EXPECT_TRUE(data.validate());
}

TEST(Dataset, RowAccessAndMutation) {
  Dataset data(3, {2, 2, 4});
  data.set(1, 2, 3);
  EXPECT_EQ(data.at(1, 2), 3);
  auto row = data.row(1);
  EXPECT_EQ(row[2], 3);
  row[0] = 1;
  EXPECT_EQ(data.at(1, 0), 1);
}

TEST(Dataset, WrappingConstructorValidates) {
  EXPECT_THROW(Dataset(2, {2, 2}, {0, 1, 0}), DataError);      // wrong size
  EXPECT_THROW(Dataset(1, {2, 2}, {0, 2}), DataError);         // out of range
  EXPECT_NO_THROW(Dataset(2, {2, 2}, {0, 1, 1, 0}));
}

TEST(Dataset, CodecMatchesCardinalities) {
  Dataset data(1, {2, 5, 3});
  const KeyCodec codec = data.codec();
  EXPECT_EQ(codec.variable_count(), 3u);
  EXPECT_EQ(codec.state_space_size(), 30u);
}

// ------------------------------------------------------------------ generators

TEST(Generators, UniformIsDeterministicInSeed) {
  const Dataset a = generate_uniform(1000, 10, 3, 91);
  const Dataset b = generate_uniform(1000, 10, 3, 91);
  const Dataset c = generate_uniform(1000, 10, 3, 92);
  EXPECT_TRUE(std::equal(a.raw().begin(), a.raw().end(), b.raw().begin()));
  EXPECT_FALSE(std::equal(a.raw().begin(), a.raw().end(), c.raw().begin()));
}

TEST(Generators, UniformMarginalsAreBalanced) {
  const Dataset data = generate_uniform(60000, 5, 3, 93);
  for (std::size_t j = 0; j < 5; ++j) {
    std::vector<int> histogram(3, 0);
    for (std::size_t i = 0; i < data.sample_count(); ++i) {
      ++histogram[data.at(i, j)];
    }
    for (const int h : histogram) {
      EXPECT_NEAR(h / 60000.0, 1.0 / 3.0, 0.01);
    }
  }
}

TEST(Generators, UniformParallelGenerationIsValid) {
  const Dataset data = generate_uniform(10000, 8, 2, 94, /*threads=*/4);
  EXPECT_TRUE(data.validate());
  EXPECT_EQ(data.sample_count(), 10000u);
  // Thread count changes block boundaries, hence content — but determinism
  // within a fixed thread count must hold.
  const Dataset again = generate_uniform(10000, 8, 2, 94, /*threads=*/4);
  EXPECT_TRUE(std::equal(data.raw().begin(), data.raw().end(),
                         again.raw().begin()));
}

TEST(Generators, ChainCorrelationStrength) {
  const Dataset data = generate_chain_correlated(50000, 4, 2, 0.9, 95);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    agree += data.at(i, 1) == data.at(i, 0);
  }
  // P(agree) = copy + (1-copy)/r = 0.9 + 0.05 = 0.95.
  EXPECT_NEAR(static_cast<double>(agree) / 50000.0, 0.95, 0.01);
}

TEST(Generators, ChainWithZeroCopyIsIndependent) {
  const Dataset data = generate_chain_correlated(50000, 3, 2, 0.0, 96);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    agree += data.at(i, 1) == data.at(i, 0);
  }
  EXPECT_NEAR(static_cast<double>(agree) / 50000.0, 0.5, 0.015);
}

TEST(Generators, SkewedConcentratesMass) {
  const Dataset data = generate_skewed(20000, 16, 2, 1e-4, 0.9, 97);
  EXPECT_TRUE(data.validate());
  const KeyCodec codec = data.codec();
  // ~90% of rows fall in the tiny hot prefix of the key space.
  const std::uint64_t hot_bound = static_cast<std::uint64_t>(
      1e-4 * static_cast<double>(codec.state_space_size()));
  std::size_t hot = 0;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    hot += codec.encode(data.row(i)) < std::max<std::uint64_t>(hot_bound, 1);
  }
  EXPECT_GT(static_cast<double>(hot) / 20000.0, 0.85);
}

TEST(Generators, ValidateArguments) {
  EXPECT_THROW(generate_uniform(10, 4, 2, 1, 0), PreconditionError);
  EXPECT_THROW(generate_chain_correlated(10, 4, 2, 1.5, 1), PreconditionError);
  EXPECT_THROW(generate_skewed(10, 4, 2, 0.0, 0.5, 1), PreconditionError);
  EXPECT_THROW(generate_skewed(10, 4, 2, 0.5, 1.5, 1), PreconditionError);
}

// -------------------------------------------------------------------------- IO

TEST(Io, CsvRoundTrip) {
  const Dataset original = generate_uniform(200, std::vector<std::uint32_t>{2, 4, 3}, 98);
  std::stringstream stream;
  write_csv(original, stream);
  const Dataset loaded = read_csv(stream);
  EXPECT_EQ(loaded.sample_count(), original.sample_count());
  EXPECT_EQ(loaded.cardinalities(), original.cardinalities());
  EXPECT_TRUE(std::equal(original.raw().begin(), original.raw().end(),
                         loaded.raw().begin()));
}

TEST(Io, CsvHandlesCrlfAndBlankLines) {
  std::stringstream stream("2,2\r\n0,1\r\n\r\n1,0\r\n");
  const Dataset loaded = read_csv(stream);
  EXPECT_EQ(loaded.sample_count(), 2u);
  EXPECT_EQ(loaded.at(0, 1), 1);
  EXPECT_EQ(loaded.at(1, 0), 1);
}

class CsvRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(CsvRejects, MalformedInputThrows) {
  std::stringstream stream(GetParam());
  EXPECT_THROW((void)read_csv(stream), DataError);
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, CsvRejects,
    ::testing::Values("",                  // empty file
                      "2,x\n0,0\n",        // bad header
                      "2,2\n0\n",          // ragged row
                      "2,2\n0,2\n",        // state out of range
                      "2,2\n0,a\n",        // non-integer state
                      "0,2\n0,0\n",        // zero cardinality
                      "2,999\n0,0\n"));    // cardinality above uint8

TEST(Io, BinaryRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "wfbn_test_roundtrip.bin";
  const Dataset original =
      generate_uniform(500, std::vector<std::uint32_t>{3, 2, 5}, 99);
  write_binary_file(original, path);
  const Dataset loaded = read_binary_file(path);
  EXPECT_EQ(loaded.sample_count(), original.sample_count());
  EXPECT_EQ(loaded.cardinalities(), original.cardinalities());
  EXPECT_TRUE(std::equal(original.raw().begin(), original.raw().end(),
                         loaded.raw().begin()));
  std::remove(path.c_str());
}

TEST(Io, BinaryRejectsGarbage) {
  const std::string path =
      std::filesystem::temp_directory_path() / "wfbn_test_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a dataset";
  }
  EXPECT_THROW((void)read_binary_file(path), DataError);
  std::remove(path.c_str());
}

TEST(Io, BinaryRejectsTruncation) {
  const std::string path =
      std::filesystem::temp_directory_path() / "wfbn_test_trunc.bin";
  const Dataset original = generate_uniform(100, 4, 2, 100);
  write_binary_file(original, path);
  // Truncate the file to half its size.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW((void)read_binary_file(path), DataError);
  std::remove(path.c_str());
}

TEST(Io, BinaryRejectsCorruptPayload) {
  const std::string path =
      std::filesystem::temp_directory_path() / "wfbn_test_corrupt.bin";
  const Dataset original = generate_uniform(200, 4, 2, 102);
  write_binary_file(original, path);
  // Flip one bit in the last payload byte: the size and header stay valid,
  // only the checksum can catch it.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file);
    file.seekg(-1, std::ios::end);
    char byte = 0;
    file.get(byte);
    file.seekp(-1, std::ios::end);
    file.put(static_cast<char>(byte ^ 0x01));
  }
  try {
    (void)read_binary_file(path);
    FAIL() << "expected DataError for corrupt payload";
  } catch (const DataError& error) {
    EXPECT_NE(std::string(error.what()).find("corrupt dataset"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Io, MissingFilesThrow) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/x.csv"), DataError);
  EXPECT_THROW((void)read_binary_file("/nonexistent/x.bin"), DataError);
  const Dataset d = generate_uniform(10, 2, 2, 101);
  EXPECT_THROW(write_csv_file(d, "/nonexistent/dir/x.csv"), DataError);
  EXPECT_THROW(write_binary_file(d, "/nonexistent/dir/x.bin"), DataError);
}

TEST(Io, CsvFileRoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "wfbn_test_roundtrip.csv";
  const Dataset original = generate_uniform(100, 3, 2, 102);
  write_csv_file(original, path);
  const Dataset loaded = read_csv_file(path);
  EXPECT_TRUE(std::equal(original.raw().begin(), original.raw().end(),
                         loaded.raw().begin()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wfbn
