// Tests for the secondary MI consumers: Chow–Liu trees and sparse-candidate
// parent selection (paper §III).
#include <gtest/gtest.h>

#include "core/all_pairs_mi.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "learn/chow_liu.hpp"
#include "learn/sparse_candidate.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

MiMatrix mi_of(const Dataset& data) {
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  return AllPairsMi(AllPairsOptions{4, AllPairsStrategy::kFused}).compute(table);
}

TEST(ChowLiu, RecoversChainFromChainData) {
  const Dataset data = generate_chain_correlated(60000, 6, 2, 0.85, 81);
  const ChowLiuResult result = chow_liu_tree(mi_of(data));
  EXPECT_EQ(result.tree.edge_count(), 5u);
  for (NodeId v = 0; v + 1 < 6; ++v) {
    EXPECT_TRUE(result.tree.has_edge(v, v + 1))
        << "missing chain edge " << v << "-" << v + 1;
  }
  EXPECT_GT(result.total_mi, 0.5);
}

TEST(ChowLiu, RootedTreePointsAwayFromRoot) {
  const Dataset data = generate_chain_correlated(40000, 5, 2, 0.85, 82);
  const ChowLiuResult result = chow_liu_tree(mi_of(data), 0.0, /*root=*/2);
  // Rooted at 2 on a chain: edges 2→1, 1→0, 2→3, 3→4.
  EXPECT_TRUE(result.rooted.has_edge(2, 1));
  EXPECT_TRUE(result.rooted.has_edge(1, 0));
  EXPECT_TRUE(result.rooted.has_edge(2, 3));
  EXPECT_TRUE(result.rooted.has_edge(3, 4));
  EXPECT_EQ(result.rooted.edge_count(), 4u);
  EXPECT_EQ(result.rooted.topological_order().front(), 2u);
}

TEST(ChowLiu, MinMiThresholdYieldsForest) {
  // Two independent correlated pairs: (0,1) and (2,3).
  MiMatrix mi(4);
  mi.set(0, 1, 0.5);
  mi.set(2, 3, 0.4);
  mi.set(0, 2, 0.0001);  // below threshold noise
  const ChowLiuResult result = chow_liu_tree(mi, /*min_mi=*/0.01);
  EXPECT_EQ(result.tree.edge_count(), 2u);
  EXPECT_TRUE(result.tree.has_edge(0, 1));
  EXPECT_TRUE(result.tree.has_edge(2, 3));
  EXPECT_FALSE(result.tree.has_path(0, 2));
  EXPECT_NEAR(result.total_mi, 0.9, 1e-12);
}

TEST(ChowLiu, TreeIsSpanningOnConnectedMi) {
  MiMatrix mi(5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      mi.set(i, j, 0.01 + 0.01 * static_cast<double>(i + j));
    }
  }
  const ChowLiuResult result = chow_liu_tree(mi);
  EXPECT_EQ(result.tree.edge_count(), 4u);  // |V| - 1: a spanning tree
  const auto labels = result.tree.components();
  for (const std::size_t l : labels) EXPECT_EQ(l, labels[0]);
}

TEST(ChowLiu, MaximizesWeightAgainstAlternatives) {
  // Star data: 0 strongly tied to 1,2,3; weak 1-2, 1-3, 2-3 links must lose.
  MiMatrix mi(4);
  mi.set(0, 1, 0.5);
  mi.set(0, 2, 0.45);
  mi.set(0, 3, 0.4);
  mi.set(1, 2, 0.2);
  mi.set(1, 3, 0.15);
  mi.set(2, 3, 0.1);
  const ChowLiuResult result = chow_liu_tree(mi);
  EXPECT_TRUE(result.tree.has_edge(0, 1));
  EXPECT_TRUE(result.tree.has_edge(0, 2));
  EXPECT_TRUE(result.tree.has_edge(0, 3));
  EXPECT_NEAR(result.total_mi, 1.35, 1e-12);
}

TEST(SparseCandidate, SelectsTopKPartners) {
  MiMatrix mi(4);
  mi.set(0, 1, 0.5);
  mi.set(0, 2, 0.3);
  mi.set(0, 3, 0.1);
  mi.set(1, 2, 0.05);
  const auto candidates = sparse_candidates(mi, 2);
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_EQ(candidates[0], (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(candidates[1], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(candidates[3], (std::vector<std::size_t>{0}));  // only one > 0
}

TEST(SparseCandidate, ZeroMiPartnersExcluded) {
  MiMatrix mi(3);
  const auto candidates = sparse_candidates(mi, 5);
  for (const auto& c : candidates) EXPECT_TRUE(c.empty());
}

TEST(SparseCandidate, CoversTrueChainNeighbors) {
  const Dataset data = generate_chain_correlated(40000, 8, 2, 0.85, 83);
  const auto candidates = sparse_candidates(mi_of(data), 2);
  for (NodeId v = 1; v + 1 < 8; ++v) {
    // Interior chain nodes: both neighbors are the top-2 MI partners.
    EXPECT_TRUE(std::find(candidates[v].begin(), candidates[v].end(), v - 1) !=
                candidates[v].end());
    EXPECT_TRUE(std::find(candidates[v].begin(), candidates[v].end(), v + 1) !=
                candidates[v].end());
  }
}

TEST(SparseCandidate, RejectsZeroK) {
  MiMatrix mi(3);
  EXPECT_THROW((void)sparse_candidates(mi, 0), PreconditionError);
}

TEST(ChowLiu, RejectsEmptyMatrix) {
  // MiMatrix cannot be empty in practice, but the API contract is explicit.
  MiMatrix mi(1);
  const ChowLiuResult result = chow_liu_tree(mi);
  EXPECT_EQ(result.tree.edge_count(), 0u);
}

}  // namespace
}  // namespace wfbn
